// Package repro is a from-scratch Go reproduction of "Fault Tolerant
// Energy Aware Data Dissemination Protocol in Sensor Networks" (Khanna,
// Bagchi, Wu — DSN 2004): the SPMS protocol, its SPIN and flooding
// baselines, the discrete-event sensor-network simulator they run on, and
// a benchmark harness that regenerates every table and figure of the
// paper's evaluation.
//
// Start with README.md for a tour; DESIGN.md maps the paper's systems to
// packages and states the concurrency contract (single-threaded schedulers,
// parallel sweeps). The root package holds only the figure-regeneration
// benchmarks (bench_test.go).
package repro
