// Command spmsim runs a single SPMS/SPIN/flooding simulation scenario and
// prints its metrics. It is the exploratory companion to cmd/figures:
// every knob of the experiment harness is exposed as a flag, and a full
// scenario — including the nested SPMS-timer and failure-model configs —
// can be loaded from a JSON spec with -scenario (the same wire format
// campaign files use; see internal/campaign). When -scenario is given,
// explicitly set flags override the file's fields.
//
// Examples:
//
//	spmsim -protocol spms -nodes 169 -radius 20
//	spmsim -protocol spin -nodes 100 -radius 15 -failures
//	spmsim -protocol spms -workload cluster -radius 25 -cluster-interest 0.1
//	spmsim -mobility -mobility-period 50ms -mobility-fraction 0.1 -radius 20
//	spmsim -placement clustered -placement-clusters 5 -nodes 100 -radius 20
//	spmsim -mobility -mobility-model waypoint -waypoint-speed-max 10 -radius 20
//	spmsim -failures -failure-model burst -burst-radius 25 -radius 20
//	spmsim -scenario scenario.json -seed 7
//	spmsim -protocol spms -nodes 100 -radius 20 -replications 10
//
// -replications N (N > 1) runs N independent trials whose seeds derive
// deterministically from -seed, executed on the parallel sweep pool, and
// prints mean / std / 95% CI / min / max per metric instead of the
// single-run report.
//
// Single runs can additionally stream observability artifacts
// (internal/obs, DESIGN.md §11) without perturbing the metrics: -trace
// writes one JSONL line per packet event (byte-identical at every
// -sim-workers value), -timeline samples the live counters every
// -timeline-interval of simulated time into a bounded JSONL series, and
// -run-stats reports phase timings plus event-kernel statistics as JSON
// ("-" writes to stderr). These flags apply to exactly one run and are
// rejected when -replications > 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scenarioPath = flag.String("scenario", "", "JSON scenario file to run (explicit flags override its fields)")
		protoName    = flag.String("protocol", "spms", "protocol: spms | spin | flood")
		wlName       = flag.String("workload", "all-to-all", "workload: all-to-all | cluster")
		nodes        = flag.Int("nodes", 169, "number of sensor nodes")
		radius       = flag.Float64("radius", 20, "maximum transmission radius in meters (zone radius)")
		spacing      = flag.Float64("spacing", 5, "grid spacing in meters")
		placement    = flag.String("placement", "grid", "node placement model: grid | uniform | chain | clustered")
		placeK       = flag.Int("placement-clusters", 0, "clustered placement: number of Gaussian blobs (0 = default 4)")
		placeSpread  = flag.Float64("placement-spread", 0, "clustered placement: per-axis blob deviation in meters (0 = 2×spacing)")
		packets      = flag.Int("packets", 10, "data items generated per node")
		sources      = flag.Int("sources", 0, "nodes that originate data: the first N ids (0 = every node)")
		clusterProb  = flag.Float64("cluster-interest", 0.05, "clustered workload: bystander interest probability in [0,1]")
		failures     = flag.Bool("failures", false, "inject node failures (see -failure-model; Table 1 timing by default)")
		failureModel = flag.String("failure-model", "transient", "failure model: transient | crash | burst")
		burstRadius  = flag.Float64("burst-radius", 0, "burst failures: epicenter radius in meters (0 = zone radius)")
		mobility     = flag.Bool("mobility", false, "move nodes periodically (see -mobility-model, -mobility-period, -mobility-fraction)")
		mobModel     = flag.String("mobility-model", "relocate", "mobility model: relocate | waypoint")
		mobPeriod    = flag.Duration("mobility-period", 100*time.Millisecond, "interval between mobility events")
		mobFraction  = flag.Float64("mobility-fraction", 0.05, "fraction of nodes moving, in [0,1]")
		wpSpeedMin   = flag.Float64("waypoint-speed-min", 0, "waypoint mobility: minimum leg speed in m/s (0 = default 5)")
		wpSpeedMax   = flag.Float64("waypoint-speed-max", 0, "waypoint mobility: maximum leg speed in m/s (0 = default 15)")
		wpPauseMin   = flag.Duration("waypoint-pause-min", 0, "waypoint mobility: minimum arrival pause")
		wpPauseMax   = flag.Duration("waypoint-pause-max", 0, "waypoint mobility: maximum arrival pause (0 = default 100ms)")
		carrier      = flag.Bool("carrier-sense", false, "serialize transmissions on a shared channel (MAC ablation)")
		chargeDBF    = flag.Bool("charge-initial-dbf", false, "charge the initial DBF convergence energy, not just mobility re-runs")
		seed         = flag.Int64("seed", 1, "simulation seed")
		drain        = flag.Duration("drain", 3*time.Second, "extra simulated time after the last origination")
		altRoutes    = flag.Int("routes", 2, "SPMS routing entries per destination")
		replications = flag.Int("replications", 1, "independent seed-derived trials; above 1 prints mean ± 95% CI per metric")
		parallel     = flag.Int("parallel", 0, "replicate worker pool size (0 = all cores, 1 = serial)")
		simWorkers   = flag.Int("sim-workers", 0, "goroutines for the data-parallel kernels inside one simulation (0/1 = serial; output is identical at any value)")
		tracePath    = flag.String("trace", "", "write a structured packet-event trace (JSONL, one line per tx/deliver/drop) to this file")
		timelinePath = flag.String("timeline", "", "write a sim-time metrics timeline (JSONL, one sample per interval) to this file")
		timelineIntv = flag.Duration("timeline-interval", 50*time.Millisecond, "simulated time between -timeline samples")
		runStatsPath = flag.String("run-stats", "", `write phase timings and event-kernel stats as JSON to this file ("-" = stderr)`)
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
		return 1
	}
	defer stopProfiles()

	var sc experiment.Scenario
	fromFile := *scenarioPath != ""
	if fromFile {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
			return 1
		}
		if err := json.Unmarshal(data, &sc); err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %s: %v\n", *scenarioPath, err)
			return 1
		}
	}

	// Without -scenario every flag applies (defaults included, the
	// original behavior); with it, only flags the user actually set
	// override the file.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	use := func(name string) bool { return !fromFile || set[name] }

	if use("protocol") {
		p, err := experiment.ParseProtocol(*protoName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
			return 2
		}
		sc.Protocol = p
	}
	if use("workload") {
		w, err := experiment.ParseWorkload(*wlName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
			return 2
		}
		sc.Workload = w
	}
	if use("nodes") {
		sc.Nodes = *nodes
	}
	if use("radius") {
		sc.ZoneRadius = *radius
	}
	if use("spacing") {
		sc.GridSpacing = *spacing
	}
	if use("placement") {
		p, err := experiment.ParsePlacement(*placement)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
			return 2
		}
		sc.Placement = p
	}
	if use("placement-clusters") {
		sc.PlacementClusters = *placeK
	}
	if use("placement-spread") {
		sc.PlacementSpread = *placeSpread
	}
	if use("packets") {
		sc.PacketsPerNode = *packets
	}
	if use("sources") {
		sc.Sources = *sources
	}
	if use("cluster-interest") {
		sc.ClusterInterestProb = *clusterProb
	}
	if use("failures") {
		sc.Failures = *failures
	}
	if use("failure-model") {
		m, err := fault.ParseModel(*failureModel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
			return 2
		}
		sc.FailureCfg.Model = m
	}
	if use("burst-radius") {
		sc.FailureCfg.BurstRadius = *burstRadius
	}
	if use("mobility") {
		sc.Mobility = *mobility
	}
	if use("mobility-model") {
		m, err := experiment.ParseMobilityModel(*mobModel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
			return 2
		}
		sc.MobilityModel = m
	}
	if use("mobility-period") {
		sc.MobilityPeriod = *mobPeriod
	}
	if use("mobility-fraction") {
		sc.MobilityFraction = *mobFraction
	}
	if use("waypoint-speed-min") {
		sc.WaypointSpeedMin = *wpSpeedMin
	}
	if use("waypoint-speed-max") {
		sc.WaypointSpeedMax = *wpSpeedMax
	}
	if use("waypoint-pause-min") {
		sc.WaypointPauseMin = *wpPauseMin
	}
	if use("waypoint-pause-max") {
		sc.WaypointPauseMax = *wpPauseMax
	}
	if use("carrier-sense") {
		sc.CarrierSense = *carrier
	}
	if use("charge-initial-dbf") {
		sc.ChargeInitialDBF = *chargeDBF
	}
	if use("seed") {
		sc.Seed = *seed
	}
	if use("drain") {
		sc.Drain = *drain
	}
	if use("routes") {
		sc.RouteAlternatives = *altRoutes
	}
	if use("replications") {
		sc.Replications = *replications
	}

	// Fill defaults before running so the printed scenario line shows the
	// values actually simulated (Run would apply them anyway; WithDefaults
	// is idempotent).
	sc = sc.WithDefaults()

	obsWanted := *tracePath != "" || *timelinePath != "" || *runStatsPath != ""
	if experiment.Replications(sc) > 1 {
		if obsWanted {
			fmt.Fprintln(os.Stderr, "spmsim: -trace/-timeline/-run-stats describe a single run and cannot be combined with -replications > 1")
			return 2
		}
		return runReplicated(sc, *parallel, *simWorkers)
	}

	// Observability is an execution knob: the observer watches the run but
	// never changes Result (DESIGN.md §11), so it attaches unconditionally
	// to the same RunWith call.
	var o *obs.RunObserver
	var traceFile *os.File
	if obsWanted {
		o = &obs.RunObserver{}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
				return 1
			}
			traceFile = f
			o.Trace = obs.NewTraceSink(f)
		}
		if *timelinePath != "" {
			tl, err := obs.NewTimeline(*timelineIntv, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
				return 2
			}
			o.Timeline = tl
		}
	}

	start := time.Now()
	res, err := experiment.RunWith(sc, experiment.RunConfig{SimWorkers: *simWorkers, Obs: o})
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
		return 1
	}
	wall := time.Since(start).Round(time.Millisecond)

	if code := writeObsOutputs(o, traceFile, *tracePath, *timelinePath, *runStatsPath); code != 0 {
		return code
	}

	fmt.Printf("scenario: %s %s nodes=%d radius=%.1fm packets/node=%d failures=%v mobility=%v seed=%d\n",
		sc.Protocol, sc.Workload, sc.Nodes, sc.ZoneRadius, sc.PacketsPerNode, sc.Failures, sc.Mobility, sc.Seed)
	fmt.Printf("wall clock: %v\n\n", wall)

	fmt.Printf("energy:    total=%.2f µJ   per-packet=%.4f µJ   routing-control=%.2f µJ\n",
		res.TotalEnergy, res.EnergyPerPacket, res.CtrlEnergy)
	fmt.Printf("delay:     mean=%v   p95=%v   max=%v\n", res.MeanDelay, res.P95Delay, res.MaxDelay)
	fmt.Printf("delivery:  %d/%d (%.2f%%) across %d items\n",
		res.Deliveries, res.Expected, 100*res.DeliveryRate, res.Items)
	fmt.Printf("traffic:   ADV=%d REQ=%d DATA=%d drops=%d duplicates=%d\n",
		res.SentADV, res.SentREQ, res.SentDATA, res.Drops, res.Duplicates)
	fmt.Printf("recovery:  timeouts=%d failovers=%d failures-injected=%d\n",
		res.Timeouts, res.Failovers, res.FailuresInjected)
	if sc.Protocol == experiment.SPMS {
		fmt.Printf("routing:   DBF rounds=%d vector-broadcasts=%d mobility-events=%d\n",
			res.DBFRounds, res.DBFBroadcasts, res.MobilityEvents)
	}
	return 0
}

// writeObsOutputs flushes the observability artifacts a finished run
// produced: the streaming trace file, the timeline JSONL, and the run-stats
// JSON. Returns a non-zero exit code on any I/O failure.
func writeObsOutputs(o *obs.RunObserver, traceFile *os.File, tracePath, timelinePath, runStatsPath string) int {
	if o == nil {
		return 0
	}
	if traceFile != nil {
		err := o.Trace.Flush()
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: trace %s: %v\n", tracePath, err)
			return 1
		}
	}
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err == nil {
			err = o.Timeline.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: timeline %s: %v\n", timelinePath, err)
			return 1
		}
	}
	if runStatsPath != "" {
		data, err := json.MarshalIndent(o.Stats(), "", "  ")
		if err == nil {
			data = append(data, '\n')
			if runStatsPath == "-" {
				_, err = os.Stderr.Write(data)
			} else {
				err = os.WriteFile(runStatsPath, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmsim: run-stats: %v\n", err)
			return 1
		}
	}
	return 0
}

// startProfiles arms the requested pprof outputs and returns the teardown
// that stops the CPU profile and snapshots the heap. The no-op teardown on
// error keeps the caller's defer unconditional.
func startProfiles(cpuPath, memPath string) (func(), error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return func() {}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, err
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
			writeHeapProfile(memPath)
		}, nil
	}
	return func() { writeHeapProfile(memPath) }, nil
}

// writeHeapProfile snapshots the heap to path; "" means no profile.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}

// runReplicated runs the scenario's seed-derived trials through the
// replicated sweep pool and prints per-metric statistics.
func runReplicated(sc experiment.Scenario, workers, simWorkers int) int {
	var runFn func(experiment.Scenario) (experiment.Result, error)
	if simWorkers > 1 {
		cfg := experiment.RunConfig{SimWorkers: simWorkers}
		runFn = func(sc experiment.Scenario) (experiment.Result, error) {
			return experiment.RunWith(sc, cfg)
		}
	}
	start := time.Now()
	reps, err := experiment.ReplicatedSweep{
		Points:  []experiment.Scenario{sc},
		Workers: workers,
		Run:     runFn,
	}.Execute()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
		return 1
	}
	wall := time.Since(start).Round(time.Millisecond)

	fmt.Printf("scenario: %s %s nodes=%d radius=%.1fm packets/node=%d failures=%v mobility=%v seed=%d replications=%d\n",
		sc.Protocol, sc.Workload, sc.Nodes, sc.ZoneRadius, sc.PacketsPerNode, sc.Failures, sc.Mobility, sc.Seed,
		experiment.Replications(sc))
	fmt.Printf("wall clock: %v\n\n", wall)

	names := experiment.ResultMetricNames()
	fmt.Printf("%-22s %14s %14s %14s %14s %14s\n", "metric", "mean", "std", "ci95", "min", "max")
	for i, s := range experiment.AggregateResults(reps[0]) {
		fmt.Printf("%-22s %14.4f %14.4f %14.4f %14.4f %14.4f\n", names[i], s.Mean, s.Std, s.CI95, s.Min, s.Max)
	}
	return 0
}
