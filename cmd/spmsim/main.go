// Command spmsim runs a single SPMS/SPIN/flooding simulation scenario and
// prints its metrics. It is the exploratory companion to cmd/figures: every
// knob of the experiment harness is exposed as a flag.
//
// Examples:
//
//	spmsim -protocol spms -nodes 169 -radius 20
//	spmsim -protocol spin -nodes 100 -radius 15 -failures
//	spmsim -protocol spms -workload cluster -radius 25 -mobility
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protoName = flag.String("protocol", "spms", "protocol: spms | spin | flood")
		wlName    = flag.String("workload", "all-to-all", "workload: all-to-all | cluster")
		nodes     = flag.Int("nodes", 169, "number of sensor nodes (square grid)")
		radius    = flag.Float64("radius", 20, "maximum transmission radius in meters (zone radius)")
		spacing   = flag.Float64("spacing", 5, "grid spacing in meters")
		packets   = flag.Int("packets", 10, "data items generated per node")
		failures  = flag.Bool("failures", false, "inject transient node failures (Table 1 parameters)")
		mobility  = flag.Bool("mobility", false, "relocate 5% of nodes every 100 ms")
		seed      = flag.Int64("seed", 1, "simulation seed")
		drain     = flag.Duration("drain", 3*time.Second, "extra simulated time after the last origination")
		altRoutes = flag.Int("routes", 2, "SPMS routing entries per destination")
	)
	flag.Parse()

	sc := experiment.Scenario{
		Workload:          experiment.AllToAll,
		Nodes:             *nodes,
		GridSpacing:       *spacing,
		ZoneRadius:        *radius,
		PacketsPerNode:    *packets,
		Failures:          *failures,
		Mobility:          *mobility,
		Seed:              *seed,
		Drain:             *drain,
		RouteAlternatives: *altRoutes,
	}
	switch strings.ToLower(*protoName) {
	case "spms":
		sc.Protocol = experiment.SPMS
	case "spin":
		sc.Protocol = experiment.SPIN
	case "flood":
		sc.Protocol = experiment.Flooding
	default:
		fmt.Fprintf(os.Stderr, "spmsim: unknown protocol %q\n", *protoName)
		return 2
	}
	switch strings.ToLower(*wlName) {
	case "all-to-all", "alltoall":
		sc.Workload = experiment.AllToAll
	case "cluster", "clustered":
		sc.Workload = experiment.Clustered
	default:
		fmt.Fprintf(os.Stderr, "spmsim: unknown workload %q\n", *wlName)
		return 2
	}

	start := time.Now()
	res, err := experiment.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmsim: %v\n", err)
		return 1
	}
	wall := time.Since(start).Round(time.Millisecond)

	fmt.Printf("scenario: %s %s nodes=%d radius=%.1fm packets/node=%d failures=%v mobility=%v seed=%d\n",
		sc.Protocol, *wlName, *nodes, *radius, *packets, *failures, *mobility, *seed)
	fmt.Printf("wall clock: %v\n\n", wall)

	fmt.Printf("energy:    total=%.2f µJ   per-packet=%.4f µJ   routing-control=%.2f µJ\n",
		res.TotalEnergy, res.EnergyPerPacket, res.CtrlEnergy)
	fmt.Printf("delay:     mean=%v   p95=%v   max=%v\n", res.MeanDelay, res.P95Delay, res.MaxDelay)
	fmt.Printf("delivery:  %d/%d (%.2f%%) across %d items\n",
		res.Deliveries, res.Expected, 100*res.DeliveryRate, res.Items)
	fmt.Printf("traffic:   ADV=%d REQ=%d DATA=%d drops=%d duplicates=%d\n",
		res.SentADV, res.SentREQ, res.SentDATA, res.Drops, res.Duplicates)
	fmt.Printf("recovery:  timeouts=%d failovers=%d failures-injected=%d\n",
		res.Timeouts, res.Failovers, res.FailuresInjected)
	if sc.Protocol == experiment.SPMS {
		fmt.Printf("routing:   DBF rounds=%d vector-broadcasts=%d mobility-events=%d\n",
			res.DBFRounds, res.DBFBroadcasts, res.MobilityEvents)
	}
	return 0
}
