// Command benchjson runs the repository's benchmark suite in
// machine-readable mode: `go test -bench <re> -benchtime 1x -benchmem`
// across all packages, parsed into a JSON document written to
// BENCH_<date>.json (override with -out). It seeds the perf trajectory the
// ROADMAP calls for: commit one snapshot per optimization PR and CI uploads
// one per run as a build artifact.
//
// With -campaign it additionally times a full declarative campaign (the
// 1024-node stress grid is the intended subject) and records the wall
// clock; -campaign-baseline records a reference wall clock from a previous
// build next to it, so the JSON carries the measured speedup. The optional
// -campaign-jsonl/-campaign-csv passthroughs capture the campaign's result
// stream for byte-identity diffing against that same previous build.
//
// Usage:
//
//	go run ./cmd/benchjson                       # full suite -> BENCH_<date>.json
//	go run ./cmd/benchjson -bench 'ReachedBy|Contenders' -out bench.json
//	go run ./cmd/benchjson -campaign examples/campaigns/stress-1k.json \
//	    -campaign-baseline 5160 -parallel 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *float64           `json:"bytesPerOp,omitempty"`
	AllocsPerOp *float64           `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// CampaignTiming is one timed campaign execution, with an optional baseline
// wall clock from a previous build for the speedup ratio.
type CampaignTiming struct {
	Spec            string  `json:"spec"`
	Points          int     `json:"points"`
	Replications    int     `json:"replications"`
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	BaselineSeconds float64 `json:"baselineSeconds,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"goVersion"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	BenchRegex string           `json:"benchRegex"`
	Benchmarks []Benchmark      `json:"benchmarks"`
	Campaigns  []CampaignTiming `json:"campaigns,omitempty"`
}

func main() {
	benchRE := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	out := flag.String("out", "", `output path (default "BENCH_<date>.json")`)
	pkgs := flag.String("pkgs", "./...", "package pattern passed to go test")
	campaignSpec := flag.String("campaign", "", "campaign spec to run and time (optional)")
	campaignBaseline := flag.Float64("campaign-baseline", 0, "reference wall clock in seconds for the campaign, from a previous build")
	campaignJSONL := flag.String("campaign-jsonl", "", "write the campaign's JSONL result stream here (optional)")
	campaignCSV := flag.String("campaign-csv", "", "write the campaign's CSV result stream here (optional)")
	parallel := flag.Int("parallel", 0, "campaign sweep workers (0 = one per core)")
	flag.Parse()

	if *out == "" {
		*out = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	report := Report{
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		BenchRegex: *benchRE,
		Benchmarks: []Benchmark{},
	}

	if err := runBenchmarks(&report, *benchRE, *pkgs); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *campaignSpec != "" {
		ct, err := runCampaign(*campaignSpec, *parallel, *campaignJSONL, *campaignCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if *campaignBaseline > 0 {
			ct.BaselineSeconds = *campaignBaseline
			ct.Speedup = *campaignBaseline / ct.Seconds
		}
		report.Campaigns = append(report.Campaigns, ct)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks, %d campaigns -> %s\n",
		len(report.Benchmarks), len(report.Campaigns), *out)
}

// runBenchmarks shells out to go test and parses the bench lines. Benchmark
// output goes to stdout as it arrives (the log stays human-readable); the
// parse works on the captured copy.
func runBenchmarks(report *Report, benchRE, pkgs string) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRE, "-benchtime", "1x", "-benchmem", pkgs)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	report.Benchmarks = parseBenchLines(buf.String())
	return nil
}

// benchLine matches "BenchmarkName-8   	 100	  123 ns/op	 ..." with any
// trailing metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchLines extracts every benchmark result from go test output.
// Unparseable lines are skipped — go test interleaves status lines freely.
func parseBenchLines(out string) []Benchmark {
	var res []Benchmark
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
		}
		// The remainder is value/unit pairs: "123 ns/op  0 B/op  4.5 spot_ratio".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				val := v
				b.BytesPerOp = &val
			case "allocs/op":
				val := v
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		res = append(res, b)
	}
	return res
}

// runCampaign executes one campaign spec through the library (no subprocess
// — the timing excludes compilation) and returns its wall clock.
func runCampaign(specPath string, workers int, jsonlPath, csvPath string) (CampaignTiming, error) {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		return CampaignTiming{}, err
	}
	c, err := campaign.Expand(spec)
	if err != nil {
		return CampaignTiming{}, err
	}

	var sinks []campaign.Sink
	var closers []io.Closer
	addFileSink := func(path string, mk func(io.Writer) campaign.Sink) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		sinks = append(sinks, mk(f))
		return nil
	}
	if err := addFileSink(jsonlPath, func(w io.Writer) campaign.Sink { return campaign.NewJSONLSink(w) }); err != nil {
		return CampaignTiming{}, err
	}
	if err := addFileSink(csvPath, func(w io.Writer) campaign.Sink { return campaign.NewCSVSink(w) }); err != nil {
		return CampaignTiming{}, err
	}

	fmt.Fprintf(os.Stderr, "benchjson: running campaign %q (%d points)...\n", c.Spec.Name, len(c.Points))
	start := time.Now()
	_, err = c.Run(campaign.RunOptions{Workers: workers, Sinks: sinks})
	elapsed := time.Since(start)
	for _, cl := range closers {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return CampaignTiming{}, err
	}
	return CampaignTiming{
		Spec:         specPath,
		Points:       len(c.Points),
		Replications: c.Replications(),
		Workers:      workers,
		Seconds:      elapsed.Seconds(),
	}, nil
}
