// Command benchjson runs the repository's benchmark suite in
// machine-readable mode: `go test -bench <re> -benchtime 1x -benchmem`
// across all packages, parsed into a JSON document written to
// BENCH_<date>.json (override with -out). It seeds the perf trajectory the
// ROADMAP calls for: commit one snapshot per optimization PR and CI uploads
// one per run as a build artifact.
//
// With -sims it additionally times the single-simulation group: the
// N-scaling curve (SPIN at 10³/10⁴/10⁵ nodes with fixed source-restricted
// traffic) and worker-scaling rows on the 1024-node stress scenario at
// -sim-workers 1 and 4.
//
// With -campaign it additionally times a full declarative campaign (the
// 1024-node stress grid is the intended subject) and records the wall
// clock; -campaign-baseline records a reference wall clock from a previous
// build next to it, so the JSON carries the measured speedup. The optional
// -campaign-jsonl/-campaign-csv passthroughs capture the campaign's result
// stream for byte-identity diffing against that same previous build.
//
// Usage:
//
//	go run ./cmd/benchjson                       # full suite -> BENCH_<date>.json
//	go run ./cmd/benchjson -bench 'ReachedBy|Contenders' -out bench.json
//	go run ./cmd/benchjson -campaign examples/campaigns/stress-1k.json \
//	    -campaign-baseline 5160 -parallel 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiment"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *float64           `json:"bytesPerOp,omitempty"`
	AllocsPerOp *float64           `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// CampaignTiming is one timed campaign execution, with an optional baseline
// wall clock from a previous build for the speedup ratio.
type CampaignTiming struct {
	Spec            string  `json:"spec"`
	Points          int     `json:"points"`
	Replications    int     `json:"replications"`
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	BaselineSeconds float64 `json:"baselineSeconds,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// SimTiming is one timed single-simulation run from the -sims group: the
// N-scaling curve (10³ → 10⁵ nodes at fixed traffic) and the worker-scaling
// rows on the 1024-node stress point. Speedup compares a multi-worker row
// against the serial row with the same label; on a single-core machine it
// records what the machine actually gives (~1.0), never an extrapolation.
type SimTiming struct {
	Label        string  `json:"label"`
	Protocol     string  `json:"protocol"`
	Nodes        int     `json:"nodes"`
	SimWorkers   int     `json:"simWorkers"`
	Seconds      float64 `json:"seconds"`
	Items        int     `json:"items"`
	DeliveryRate float64 `json:"deliveryRate"`
	Speedup      float64 `json:"speedup,omitempty"`
	// BaselineSeconds/BaselineSpeedup compare the serial stress-1024 row
	// against a previous build's wall clock (-sims-baseline), the
	// cross-build counterpart of the within-build worker Speedup.
	BaselineSeconds float64 `json:"baselineSeconds,omitempty"`
	BaselineSpeedup float64 `json:"baselineSpeedup,omitempty"`
}

// HostInfo identifies the machine and toolchain a report was produced on,
// so numbers from different hosts are never compared as if they were the
// same baseline. GOMAXPROCS is recorded separately from NumCPU because CI
// runners routinely cap it below the physical core count.
type HostInfo struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Date       string           `json:"date"`
	Host       HostInfo         `json:"hostInfo"`
	BenchRegex string           `json:"benchRegex"`
	Benchmarks []Benchmark      `json:"benchmarks"`
	Sims       []SimTiming      `json:"sims,omitempty"`
	Campaigns  []CampaignTiming `json:"campaigns,omitempty"`
}

func main() {
	benchRE := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	out := flag.String("out", "", `output path (default "BENCH_<date>.json")`)
	pkgs := flag.String("pkgs", "./...", "package pattern passed to go test")
	sims := flag.Bool("sims", false, "also run the single-simulation timing group: N-scaling 10³..10⁵ plus worker scaling on the 1024-node stress sim")
	simsBaseline := flag.Float64("sims-baseline", 0, "previous build's wall clock in seconds for the serial stress-1024 sim, recorded as baselineSpeedup on that row")
	campaignSpec := flag.String("campaign", "", "campaign spec to run and time (optional)")
	campaignBaseline := flag.Float64("campaign-baseline", 0, "reference wall clock in seconds for the campaign, from a previous build")
	campaignJSONL := flag.String("campaign-jsonl", "", "write the campaign's JSONL result stream here (optional)")
	campaignCSV := flag.String("campaign-csv", "", "write the campaign's CSV result stream here (optional)")
	parallel := flag.Int("parallel", 0, "campaign sweep workers (0 = one per core)")
	flag.Parse()

	if *out == "" {
		*out = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	report := Report{
		Date: time.Now().Format(time.RFC3339),
		Host: HostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		BenchRegex: *benchRE,
		Benchmarks: []Benchmark{},
	}

	if err := runBenchmarks(&report, *benchRE, *pkgs); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *sims {
		if err := runSims(&report, *simsBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *campaignSpec != "" {
		ct, err := runCampaign(*campaignSpec, *parallel, *campaignJSONL, *campaignCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if *campaignBaseline > 0 {
			ct.BaselineSeconds = *campaignBaseline
			ct.Speedup = *campaignBaseline / ct.Seconds
		}
		report.Campaigns = append(report.Campaigns, ct)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks, %d sims, %d campaigns -> %s\n",
		len(report.Benchmarks), len(report.Sims), len(report.Campaigns), *out)
}

// runBenchmarks shells out to go test and parses the bench lines. Benchmark
// output goes to stdout as it arrives (the log stays human-readable); the
// parse works on the captured copy.
func runBenchmarks(report *Report, benchRE, pkgs string) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRE, "-benchtime", "1x", "-benchmem", pkgs)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	report.Benchmarks = parseBenchLines(buf.String())
	return nil
}

// benchLine matches "BenchmarkName-8   	 100	  123 ns/op	 ..." with any
// trailing metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchLines extracts every benchmark result from go test output.
// Unparseable lines are skipped — go test interleaves status lines freely.
func parseBenchLines(out string) []Benchmark {
	var res []Benchmark
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
		}
		// The remainder is value/unit pairs: "123 ns/op  0 B/op  4.5 spot_ratio".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				val := v
				b.BytesPerOp = &val
			case "allocs/op":
				val := v
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		res = append(res, b)
	}
	return res
}

// simCase is one -sims group entry; workerCounts produces one SimTiming row
// per count, with the first count (always 1) serving as the speedup baseline.
type simCase struct {
	label        string
	scenario     experiment.Scenario
	workerCounts []int
}

// simCases is the committed timing group. The N-scaling rows hold traffic
// constant (200 source nodes × 1 packet) while the field grows 100×, so the
// curve isolates topology-scale costs: flat seconds/node means the spatial
// index and caches stayed O(degree). The stress rows are the 1024-node
// all-to-all grid from examples/campaigns/stress-1k.json, plain and with
// mobility (mobility forces the zone-parallel routing recomputes, which is
// where extra workers can actually bite).
func simCases() []simCase {
	scale := func(nodes int) experiment.Scenario {
		return experiment.Scenario{
			Protocol:       experiment.SPIN,
			Workload:       experiment.Clustered,
			Nodes:          nodes,
			ZoneRadius:     20,
			Placement:      experiment.PlaceUniform,
			PacketsPerNode: 1,
			Sources:        200,
			Seed:           1,
			Drain:          2 * time.Second,
		}
	}
	stress := experiment.Scenario{
		Protocol:       experiment.SPMS,
		Workload:       experiment.AllToAll,
		Nodes:          1024,
		ZoneRadius:     20,
		PacketsPerNode: 1,
		Seed:           1,
		Drain:          2 * time.Second,
	}
	stressMobility := stress
	stressMobility.Mobility = true
	stressMobility.MobilityPeriod = 500 * time.Millisecond
	stressMobility.MobilityFraction = 0.05
	return []simCase{
		{label: "scale-1e3", scenario: scale(1_000), workerCounts: []int{1}},
		{label: "scale-1e4", scenario: scale(10_000), workerCounts: []int{1}},
		{label: "scale-1e5", scenario: scale(100_000), workerCounts: []int{1}},
		{label: "stress-1024", scenario: stress, workerCounts: []int{1, 4}},
		{label: "stress-1024-mobility", scenario: stressMobility, workerCounts: []int{1, 4}},
	}
}

// runSims times every simCases entry in-process and appends the rows.
// simsBaseline, when set, is a previous build's serial stress-1024 wall
// clock; it lands on that row as the cross-build speedup.
func runSims(report *Report, simsBaseline float64) error {
	for _, sc := range simCases() {
		var baseline float64
		for i, workers := range sc.workerCounts {
			fmt.Fprintf(os.Stderr, "benchjson: sim %s workers=%d...\n", sc.label, workers)
			start := time.Now()
			res, err := experiment.RunWith(sc.scenario, experiment.RunConfig{SimWorkers: workers})
			if err != nil {
				return fmt.Errorf("sim %s workers=%d: %w", sc.label, workers, err)
			}
			row := SimTiming{
				Label:        sc.label,
				Protocol:     sc.scenario.Protocol.String(),
				Nodes:        sc.scenario.Nodes,
				SimWorkers:   workers,
				Seconds:      time.Since(start).Seconds(),
				Items:        res.Items,
				DeliveryRate: res.DeliveryRate,
			}
			if i == 0 {
				baseline = row.Seconds
			} else if row.Seconds > 0 {
				row.Speedup = baseline / row.Seconds
			}
			if sc.label == "stress-1024" && workers == 1 && simsBaseline > 0 && row.Seconds > 0 {
				row.BaselineSeconds = simsBaseline
				row.BaselineSpeedup = simsBaseline / row.Seconds
			}
			report.Sims = append(report.Sims, row)
		}
	}
	return nil
}

// runCampaign executes one campaign spec through the library (no subprocess
// — the timing excludes compilation) and returns its wall clock.
func runCampaign(specPath string, workers int, jsonlPath, csvPath string) (CampaignTiming, error) {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		return CampaignTiming{}, err
	}
	c, err := campaign.Expand(spec)
	if err != nil {
		return CampaignTiming{}, err
	}

	var sinks []campaign.Sink
	var closers []io.Closer
	addFileSink := func(path string, mk func(io.Writer) campaign.Sink) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		sinks = append(sinks, mk(f))
		return nil
	}
	if err := addFileSink(jsonlPath, func(w io.Writer) campaign.Sink { return campaign.NewJSONLSink(w) }); err != nil {
		return CampaignTiming{}, err
	}
	if err := addFileSink(csvPath, func(w io.Writer) campaign.Sink { return campaign.NewCSVSink(w) }); err != nil {
		return CampaignTiming{}, err
	}

	fmt.Fprintf(os.Stderr, "benchjson: running campaign %q (%d points)...\n", c.Spec.Name, len(c.Points))
	start := time.Now()
	_, err = c.Run(campaign.RunOptions{Workers: workers, Sinks: sinks})
	elapsed := time.Since(start)
	for _, cl := range closers {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return CampaignTiming{}, err
	}
	return CampaignTiming{
		Spec:         specPath,
		Points:       len(c.Points),
		Replications: c.Replications(),
		Workers:      workers,
		Seconds:      elapsed.Seconds(),
	}, nil
}
