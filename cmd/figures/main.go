// Command figures regenerates every table and figure from the paper's
// evaluation (DSN 2004, "Fault Tolerant Energy Aware Data Dissemination
// Protocol in Sensor Networks").
//
// Usage:
//
//	figures [-quick] [-csv] [-only fig6,fig8] [-seed N] [-parallel N] [-replications N]
//
// Without -only it renders Table 1, Figures 3 and 5 (analytic), Figures
// 6–13 (simulation), and the §5.1.3 mobility break-even threshold. -quick
// runs the reduced workload (2 packets/node, smaller sweeps) instead of the
// paper-scale one. Simulation sweeps execute on a worker pool, one point
// per goroutine; -parallel bounds the pool (default all cores). Output is
// byte-identical at every pool size — scenarios are independent seeded
// runs reassembled in point order. -replications N (N > 1) averages every
// simulated series over N seed-derived trials, as the paper does, adding
// a ± column (95% CI half-width) per series.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	os.Exit(run())
}

// emitter is the single -csv-aware output path: every block the command
// prints — figure tables, Table 1, the mobility threshold — goes through
// it, so -csv consistently switches the whole report.
type emitter struct{ csv bool }

// table renders one reproduced figure or table.
func (e emitter) table(t experiment.Table) {
	if e.csv {
		fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		return
	}
	fmt.Println(t.Format())
}

// kv renders a key/value block: the pre-rendered text verbatim normally,
// or a `# id — title` header plus CSV rows with -csv. A write error (full
// disk, closed pipe) is returned so the command exits non-zero instead of
// passing off a truncated report as complete.
func (e emitter) kv(id, title, text string, rows [][2]string) error {
	if !e.csv {
		fmt.Print(text)
		return nil
	}
	fmt.Printf("# %s — %s\n", id, title)
	w := csv.NewWriter(os.Stdout)
	for _, r := range rows {
		if err := w.Write([]string{r[0], r[1]}); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Println()
	return nil
}

func run() int {
	quick := flag.Bool("quick", false, "reduced workload (2 pkts/node, smaller sweeps)")
	quality := flag.String("quality", "", "sweep scale: quick | standard | full (overrides -quick)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	only := flag.String("only", "", "comma-separated subset: table1,fig3,fig5,fig6,...,fig13,mobility-threshold")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = all cores, 1 = serial)")
	replications := flag.Int("replications", 1, "seed-derived trials per sweep point; above 1 adds ± (95% CI) columns")
	flag.Parse()

	q := experiment.Full()
	if *quick {
		q = experiment.Quick()
	}
	switch *quality {
	case "":
	case "quick":
		q = experiment.Quick()
	case "standard":
		q = experiment.Standard()
	case "full":
		q = experiment.Full()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown quality %q\n", *quality)
		return 2
	}
	q.Seed = *seed
	q.Replications = *replications

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }
	emit := emitter{csv: *csv}

	if selected("table1") {
		err := emit.kv("table1", "Simulation Parameters", experiment.Table1()+"\n",
			append([][2]string{{"parameter", "value"}}, experiment.Table1Rows()...))
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			return 1
		}
	}
	if selected("fig3") {
		emit.table(experiment.Figure3())
	}
	if selected("fig5") {
		emit.table(experiment.Figure5())
	}

	runner := experiment.NewRunnerWorkers(q, *parallel)
	simFigures := []struct {
		id  string
		run func() (experiment.Table, error)
	}{
		{"fig6", runner.Figure6},
		{"fig7", runner.Figure7},
		{"fig8", runner.Figure8},
		{"fig9", runner.Figure9},
		{"fig10", runner.Figure10},
		{"fig11", runner.Figure11},
		{"fig12", runner.Figure12},
		{"fig13", runner.Figure13},
	}
	for _, f := range simFigures {
		if !selected(f.id) {
			continue
		}
		t, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", f.id, err)
			return 1
		}
		emit.table(t)
	}

	if selected("mobility-threshold") {
		breakEven, dbf, err := runner.MobilityThreshold()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: mobility-threshold: %v\n", err)
			return 1
		}
		text := fmt.Sprintf("## §5.1.3 — Mobility break-even\n"+
			"DBF re-convergence energy per mobility event: %.2f µJ\n"+
			"Packets needed between mobility events for SPMS to win: %.2f (paper: 239.18)\n\n", dbf, breakEven)
		err = emit.kv("mobility-threshold", "§5.1.3 break-even", text, [][2]string{
			{"metric", "value"},
			{"dbf_energy_uJ_per_event", fmt.Sprintf("%g", dbf)},
			{"break_even_packets", fmt.Sprintf("%g", breakEven)},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			return 1
		}
	}
	return 0
}
