package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// specPath is a small real campaign spec, used by setup-failure tests
// (the failures trigger before any simulation runs).
const specPath = "../../testdata/golden/campaigns/stress-quick.json"

func TestShellQuote(t *testing.T) {
	cases := map[string]string{
		"plain":            "plain",
		"out/dir.jsonl":    "out/dir.jsonl",
		"-resume":          "-resume",
		"":                 "''",
		"has space":        "'has space'",
		"semi;colon":       "'semi;colon'",
		"a'b":              `'a'\''b'`,
		"$(rm -rf x)":      `'$(rm -rf x)'`,
		"tab\tchar":        "'tab\tchar'",
		"glob*.json":       "'glob*.json'",
		"name=value,x:y@z": "name=value,x:y@z",
	}
	for in, want := range cases {
		if got := shellQuote(in); got != want {
			t.Errorf("shellQuote(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestResumeCommand locks the resume-hint contract: -resume is appended
// exactly when no -resume flag token is present (a flag *value* spelled
// "resume" must not suppress it), and every token is shell-quoted.
func TestResumeCommand(t *testing.T) {
	self := shellQuote(os.Args[0])
	cases := []struct {
		name string
		spec string
		args []string
		want string
	}{
		{
			name: "appends resume",
			spec: "spec.json",
			args: []string{"-checkpoint", "ckpt"},
			want: self + " run spec.json -checkpoint ckpt -resume",
		},
		{
			name: "already resuming",
			spec: "spec.json",
			args: []string{"-checkpoint", "ckpt", "-resume"},
			want: self + " run spec.json -checkpoint ckpt -resume",
		},
		{
			name: "double-dash and assigned forms count",
			spec: "spec.json",
			args: []string{"--resume=true", "-checkpoint", "ckpt"},
			want: self + " run spec.json --resume=true -checkpoint ckpt",
		},
		{
			name: "flag value named resume does not suppress",
			spec: "spec.json",
			args: []string{"-checkpoint", "resume"},
			want: self + " run spec.json -checkpoint resume -resume",
		},
		{
			name: "tokens with spaces are quoted",
			spec: "my spec.json",
			args: []string{"-jsonl", "out dir/res.jsonl"},
			want: self + " run 'my spec.json' -jsonl 'out dir/res.jsonl' -resume",
		},
		{
			name: "single quotes survive",
			spec: "it's.json",
			args: []string{"-checkpoint", "ckpt"},
			want: self + ` run 'it'\''s.json' -checkpoint ckpt -resume`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := resumeCommand(c.spec, c.args); got != c.want {
				t.Errorf("resumeCommand(%q, %v)\n got %s\nwant %s", c.spec, c.args, got, c.want)
			}
		})
	}
}

// openPartialFDs lists this process's open file descriptors pointing at
// .partial sink files under dir.
func openPartialFDs(t *testing.T, dir string) []string {
	t.Helper()
	fds, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	var leaked []string
	for _, fd := range fds {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", fd.Name()))
		if err != nil {
			continue
		}
		if strings.HasPrefix(target, dir) && strings.HasSuffix(target, ".partial") {
			leaked = append(leaked, target)
		}
	}
	return leaked
}

// TestRunAbortsSinksOnSetupFailure is the sink-leak regression test: when
// setup fails after a FileSink was created (here: -checkpoint pointing at
// an existing file, so the journal cannot open), the sink must be aborted
// — its .partial file descriptor closed — before runCampaign returns.
func TestRunAbortsSinksOnSetupFailure(t *testing.T) {
	dir := t.TempDir()
	notADir := filepath.Join(dir, "ckpt")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.jsonl")

	code := runCampaign(specPath, []string{"-jsonl", out, "-checkpoint", notADir})
	if code == 0 {
		t.Fatal("runCampaign succeeded with a file as -checkpoint dir")
	}
	if leaked := openPartialFDs(t, dir); len(leaked) != 0 {
		t.Fatalf("open .partial file descriptors leaked after setup failure: %v", leaked)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("final output %s exists after failed setup (err=%v)", out, err)
	}
}

// TestHeartbeatStopsOnSetupFailure is the heartbeat-leak regression test:
// a setup failure after -progress armed the heartbeat must still stop it,
// observable as the final progress line stop() prints.
func TestHeartbeatStopsOnSetupFailure(t *testing.T) {
	dir := t.TempDir()
	notADir := filepath.Join(dir, "ckpt")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture stderr: the heartbeat writes there, and stop() prints one
	// final line even if no tick ever fired.
	orig := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	code := runCampaign(specPath, []string{
		"-progress", "-jsonl", filepath.Join(dir, "out.jsonl"), "-checkpoint", notADir,
	})
	w.Close()
	os.Stderr = orig
	captured, _ := io.ReadAll(r)
	r.Close()

	if code == 0 {
		t.Fatal("runCampaign succeeded with a file as -checkpoint dir")
	}
	if !strings.Contains(string(captured), "progress: stress-quick") {
		t.Fatalf("no final heartbeat line on setup failure — heartbeat goroutine leaked:\n%s", captured)
	}
}

// TestRunDispatch covers the subcommand surface incl. the serve special
// case (no spec path) without binding a real port for the others.
func TestRunDispatch(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("run() = %d, want usage (2)", code)
	}
	if code := run([]string{"run"}); code != 2 {
		t.Errorf("run(run) = %d, want usage (2)", code)
	}
	if code := run([]string{"run", "-parallel"}); code != 2 {
		t.Errorf("flag before spec path = %d, want usage (2)", code)
	}
	if code := run([]string{"frobnicate", "x.json"}); code != 2 {
		t.Errorf("unknown subcommand = %d, want usage (2)", code)
	}
	if code := run([]string{"validate", specPath}); code != 0 {
		t.Errorf("validate = %d, want 0", code)
	}
	// serve with an unusable listen address exits 1 (not usage): the
	// subcommand parsed without a spec path.
	if code := run([]string{"serve", "-addr", "256.256.256.256:0"}); code != 1 {
		t.Errorf("serve with bad addr = %d, want 1", code)
	}
}
