// Command campaign runs declarative experiment campaigns: JSON specs that
// name a base scenario plus parameter axes (see internal/campaign and
// DESIGN.md §6). The grid expands deterministically, executes on the
// parallel sweep engine, and streams every finished point — in point
// order, byte-identical at any pool size — to JSONL and/or CSV sinks.
//
// Usage:
//
//	campaign run <spec.json> [-parallel N] [-sim-workers N] [-jsonl PATH] [-csv PATH] [-replications N] [-per-replicate] [-progress] [-debug-addr ADDR] [-checkpoint DIR] [-resume] [-cache DIR] [-retries N] [-retry-backoff DUR]
//	campaign serve [-addr :8080] [-checkpoint DIR] [-cache DIR] [-parallel N] [-sim-workers N] [-retries N] [-retry-backoff DUR]
//	campaign expand <spec.json>
//	campaign validate <spec.json>
//
// `run` streams JSONL to stdout by default; -jsonl/-csv redirect to files
// ("-" means stdout, at most one sink may claim it). File outputs stream
// to <path>.partial and are renamed into place only when the run completes
// cleanly, so the existence of the final name certifies a full result set.
// `expand` prints the expanded grid without simulating; `validate` just
// checks the spec. -replications overrides the spec's replication count;
// above 1 the sinks emit aggregate records (mean/std/CI per metric across
// seed-derived trials), and -per-replicate additionally streams every
// trial's own JSONL record.
//
// Crash safety (internal/checkpoint, DESIGN.md §13): -checkpoint DIR
// journals every finished point (fsynced, write-ahead of the sinks) to
// DIR/journal.jsonl; after a crash or interrupt, the same invocation plus
// -resume replays the journaled prefix and executes only the missing
// points — output byte-identical to an uninterrupted run. -cache DIR
// shares finished points across campaigns by canonical scenario hash.
// -retries N re-executes failed trials (same seed — deterministic) with
// exponential backoff starting at -retry-backoff. SIGINT/SIGTERM drains
// the in-flight points, journals them, and prints the exact resume
// command; a second signal exits immediately.
//
// Live telemetry (internal/obs): -progress prints a heartbeat line to
// stderr every second (points done/total, completion rate, ETA, in-flight
// point indices), and -debug-addr starts an HTTP debug endpoint serving
// /debug/progress (JSON snapshot), /debug/vars (expvar), and /debug/pprof.
// Neither affects the result stream: sink output stays byte-identical.
//
// Service mode (internal/service, DESIGN.md §14): `campaign serve` runs a
// long-lived HTTP daemon instead of a single campaign. POST a campaign
// spec to /v1/jobs (optionally with {"shard": {"index": i, "count": n}})
// to start a job; poll GET /v1/jobs/{id}, stream JSONL from
// /v1/jobs/{id}/results (SSE-framed under Accept: text/event-stream,
// resumable via Last-Event-ID), and DELETE to cancel with drain
// semantics. With -checkpoint DIR each job journals into its own
// subdirectory and the daemon resumes every unfinished job from its
// journal on restart; -cache DIR is shared across all jobs. SIGINT or
// SIGTERM drains every in-flight job before exit; a second signal exits
// immediately.
//
// Examples:
//
//	campaign run examples/campaigns/fig8.json -parallel 4
//	campaign run examples/campaigns/stress-1k.json -jsonl out.jsonl -csv out.csv
//	campaign run examples/campaigns/stress-1k.json -jsonl out.jsonl -checkpoint ckpt/
//	campaign run examples/campaigns/stress-1k.json -jsonl out.jsonl -checkpoint ckpt/ -resume
//	campaign expand examples/campaigns/fig8.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintf(os.Stderr, `usage:
  campaign run <spec.json> [-parallel N] [-sim-workers N] [-jsonl PATH] [-csv PATH] [-replications N] [-per-replicate] [-progress] [-debug-addr ADDR] [-checkpoint DIR] [-resume] [-cache DIR] [-retries N] [-retry-backoff DUR]
  campaign serve [-addr :8080] [-checkpoint DIR] [-cache DIR] [-parallel N] [-sim-workers N] [-retries N] [-retry-backoff DUR]
  campaign expand <spec.json>
  campaign validate <spec.json>
`)
	return 2
}

func run(args []string) int {
	if len(args) < 1 {
		return usage()
	}
	sub, rest := args[0], args[1:]
	if sub == "serve" {
		// serve takes no spec path — jobs arrive over HTTP.
		return serveCampaigns(rest)
	}
	if len(rest) < 1 || rest[0] == "" || rest[0][0] == '-' {
		return usage()
	}
	specPath, rest := rest[0], rest[1:]
	switch sub {
	case "run":
		return runCampaign(specPath, rest)
	case "expand":
		return expandCampaign(specPath, rest)
	case "validate":
		return validateCampaign(specPath, rest)
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", sub)
		return usage()
	}
}

// load parses and expands a spec file. replications > 0 overrides the
// spec's own replication count before expansion.
func load(specPath string, replications int) (*campaign.Campaign, int) {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return nil, 1
	}
	if replications > 0 {
		spec.Replications = replications
	}
	c, err := campaign.Expand(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return nil, 1
	}
	return c, 0
}

func runCampaign(specPath string, args []string) int {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	parallel := fs.Int("parallel", 0, "sweep worker pool size (0 = all cores, 1 = serial)")
	jsonlPath := fs.String("jsonl", "-", `JSONL output: "-" for stdout, a path, or "" to disable`)
	csvPath := fs.String("csv", "", `CSV output: "-" for stdout, a path, or "" to disable`)
	replications := fs.Int("replications", 0, "override the spec's replication count (0 = use the spec's)")
	perReplicate := fs.Bool("per-replicate", false, "also emit each replicate's own JSONL record, not just the aggregate")
	simWorkers := fs.Int("sim-workers", 0, "goroutines for the data-parallel kernels inside each simulation (0/1 = serial; output is identical at any value)")
	progressFlag := fs.Bool("progress", false, "print a live heartbeat to stderr every second: points done/total, rate, ETA, in-flight points")
	debugAddr := fs.String("debug-addr", "", `serve a debug/ops HTTP endpoint on this address (e.g. ":6060"): /debug/progress, /debug/vars (expvar), /debug/pprof`)
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	checkpointDir := fs.String("checkpoint", "", "journal every finished point to DIR/journal.jsonl so an interrupted run can -resume")
	resume := fs.Bool("resume", false, "resume from the journal in -checkpoint: replay completed points, execute only the rest (output identical to an uninterrupted run)")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory: finished points are reused across campaigns by scenario hash")
	retries := fs.Int("retries", 0, "re-execute a failed trial up to N more times (same seed — deterministic)")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "wait before the first retry, doubling per attempt")
	fs.Parse(args)

	if *resume && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "campaign: -resume requires -checkpoint DIR")
		return 2
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	defer stopProfiles()

	c, code := load(specPath, *replications)
	if code != 0 {
		return code
	}

	// Live telemetry: the tracker exists whenever either consumer (the
	// heartbeat or the debug endpoint) wants it; neither affects sink
	// output in any way.
	var progress *obs.CampaignProgress
	if *progressFlag || *debugAddr != "" {
		progress = obs.NewCampaignProgress(c.Spec.Name, len(c.Points))
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: debug endpoint on http://%s/debug/progress (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	stopHeartbeat := func() {}
	if *progressFlag {
		stopHeartbeat = progress.Heartbeat(os.Stderr, time.Second)
	}
	// Deferred so the heartbeat goroutine never outlives an early-exit
	// setup failure below; stop is idempotent, so the explicit call after
	// Run (which prints the final line before the summary) stays.
	defer stopHeartbeat()

	if *csvPath == "-" && *jsonlPath == "-" {
		// CSV claims stdout; an explicitly doubled "-" is an error.
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "jsonl" {
				explicit = true
			}
		})
		if explicit {
			fmt.Fprintln(os.Stderr, "campaign: -jsonl and -csv cannot both write to stdout")
			return 2
		}
		*jsonlPath = ""
	}

	// File outputs stream through a FileSink (<path>.partial, renamed on
	// clean completion); stdout streams directly and needs no lifecycle.
	// Until the campaign takes ownership of the sinks, every early-exit
	// path below must abort them, or a setup failure after a FileSink was
	// created (bad -csv path, unreadable checkpoint, …) leaks its open
	// .partial file.
	var sinks []campaign.Sink
	sinksHandedOff := false
	defer func() {
		if sinksHandedOff {
			return
		}
		for _, s := range sinks {
			s.Abort()
		}
	}()
	addSink := func(path string, build func(io.Writer) campaign.Sink) error {
		if path == "-" {
			sinks = append(sinks, build(os.Stdout))
			return nil
		}
		s, err := campaign.NewFileSink(path, build)
		if err != nil {
			return err
		}
		sinks = append(sinks, s)
		return nil
	}
	if *jsonlPath != "" {
		err := addSink(*jsonlPath, func(w io.Writer) campaign.Sink {
			s := campaign.NewJSONLSink(w)
			s.PerReplicate = *perReplicate
			return s
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
	}
	if *csvPath != "" {
		if err := addSink(*csvPath, func(w io.Writer) campaign.Sink { return campaign.NewCSVSink(w) }); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
	}

	// Durability wiring: on -resume, replay and validate the journal before
	// reopening it in append mode.
	var journal *checkpoint.Journal
	var completed map[int][]experiment.Result
	if *checkpointDir != "" {
		if *resume {
			var err error
			completed, err = c.LoadCheckpoint(*checkpointDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
				return 1
			}
			if len(completed) > 0 {
				fmt.Fprintf(os.Stderr, "campaign: resuming %q: %d/%d points from %s\n",
					c.Spec.Name, len(completed), len(c.Points), checkpoint.JournalPath(*checkpointDir))
			}
		}
		var err error
		journal, err = checkpoint.OpenJournal(*checkpointDir, *resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		defer journal.Close()
	}
	var cache *checkpoint.Cache
	if *cacheDir != "" {
		var err error
		cache, err = checkpoint.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM closes Cancel — workers
	// drain (and journal) the in-flight points, sinks are aborted leaving
	// .partial files, and the exact resume command is printed. A second
	// signal exits immediately.
	cancel := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "campaign: received %v; draining in-flight points (signal again to exit immediately)\n", s)
		close(cancel)
		<-sigc
		fmt.Fprintln(os.Stderr, "campaign: second signal; exiting without drain")
		os.Exit(130)
	}()

	start := time.Now()
	sinksHandedOff = true // Run owns the sink lifecycle (Close/Abort) from here
	_, err = c.Run(campaign.RunOptions{
		Workers:    *parallel,
		Sinks:      sinks,
		SimWorkers: *simWorkers,
		Progress:   progress,
		Retry:      campaign.RetryPolicy{Max: *retries, Backoff: *retryBackoff},
		Journal:    journal,
		Completed:  completed,
		Cache:      cache,
		Cancel:     cancel,
	})
	stopHeartbeat()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		if *checkpointDir != "" {
			fmt.Fprintf(os.Stderr, "campaign: resume with:\n  %s\n", resumeCommand(specPath, args))
		}
		if errors.Is(err, experiment.ErrCancelled) {
			return 130
		}
		return 1
	}
	if reps := c.Replications(); reps > 1 {
		fmt.Fprintf(os.Stderr, "campaign %q: %d points × %d replications across %d axes in %v\n",
			c.Spec.Name, len(c.Points), reps, len(c.AxisNames), time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(os.Stderr, "campaign %q: %d points across %d axes in %v\n",
			c.Spec.Name, len(c.Points), len(c.AxisNames), time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// serveCampaigns runs the campaign service daemon (internal/service): an
// HTTP API that accepts campaign specs as jobs, streams their results,
// and — with -checkpoint — resumes unfinished jobs from their journals on
// restart. The bound address is printed to stderr (useful with -addr :0).
// The first SIGINT/SIGTERM drains every in-flight job, then the server
// shuts down cleanly; a second signal exits immediately.
func serveCampaigns(args []string) int {
	fs := flag.NewFlagSet("campaign serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", `listen address (host:port; ":0" picks a free port, printed to stderr)`)
	checkpointRoot := fs.String("checkpoint", "", "checkpoint root: every job journals into its own subdirectory and unfinished jobs resume on daemon restart")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory shared by every job (and by CLI runs pointed at it)")
	parallel := fs.Int("parallel", 0, "per-job sweep worker pool size (0 = all cores, 1 = serial)")
	simWorkers := fs.Int("sim-workers", 0, "goroutines for the data-parallel kernels inside each simulation (0/1 = serial)")
	retries := fs.Int("retries", 0, "re-execute a failed trial up to N more times (same seed — deterministic)")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "wait before the first retry, doubling per attempt")
	fs.Parse(args)

	cfg := service.Config{
		CheckpointRoot: *checkpointRoot,
		Workers:        *parallel,
		SimWorkers:     *simWorkers,
		Retry:          campaign.RetryPolicy{Max: *retries, Backoff: *retryBackoff},
	}
	if *cacheDir != "" {
		cache, err := checkpoint.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		cfg.Cache = cache
	}

	m := service.NewManager(cfg)
	recovered, err := m.Recover()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	for _, j := range recovered {
		rng := j.Range()
		fmt.Fprintf(os.Stderr, "campaign: resuming job %s (points [%d,%d))\n", j.ID(), rng.Lo, rng.Hi)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: service.NewHandler(m)}
	fmt.Fprintf(os.Stderr, "campaign: serving on http://%s\n", ln.Addr())

	// Graceful shutdown: the first signal drains every job (in-flight
	// points finish and are journaled), then stops the HTTP server —
	// result streams of draining jobs end with their terminal state before
	// Shutdown returns. A second signal exits immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "campaign: received %v; draining jobs (signal again to exit immediately)\n", s)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "campaign: second signal; exiting without drain")
			os.Exit(130)
		}()
		m.Drain()
		srv.Shutdown(context.Background())
	}()

	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "campaign: drained, shutting down")
	return 0
}

// resumeCommand reconstructs the invocation that continues an interrupted
// checkpointed run: the original arguments plus -resume (if not already
// present). Every token is shell-quoted, so the printed line can be pasted
// into a shell even when paths contain spaces or metacharacters, and only
// flag tokens (leading '-') count as a -resume occurrence — a flag *value*
// that happens to be "resume" (say, a checkpoint directory name) must not
// suppress the appended flag.
func resumeCommand(specPath string, args []string) string {
	cmd := append([]string{os.Args[0], "run", specPath}, args...)
	hasResume := false
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			continue
		}
		trimmed := strings.TrimLeft(a, "-")
		if trimmed == "resume" || strings.HasPrefix(trimmed, "resume=") {
			hasResume = true
			break
		}
	}
	if !hasResume {
		cmd = append(cmd, "-resume")
	}
	quoted := make([]string, len(cmd))
	for i, a := range cmd {
		quoted[i] = shellQuote(a)
	}
	return strings.Join(quoted, " ")
}

// shellQuote returns a token safe to paste into a POSIX shell: unchanged
// when it contains only safe characters, otherwise single-quoted, with
// each embedded single quote escaped.
func shellQuote(s string) string {
	if s == "" {
		return "''"
	}
	safe := true
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.', r == '/', r == '=', r == ':', r == ',', r == '+', r == '@', r == '%':
		default:
			safe = false
		}
		if !safe {
			break
		}
	}
	if safe {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

// startProfiles arms the requested pprof outputs and returns the teardown
// that stops the CPU profile and snapshots the heap. The no-op teardown on
// error keeps the caller's defer unconditional.
func startProfiles(cpuPath, memPath string) (func(), error) {
	writeHeap := func() {
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return func() {}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, err
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
			writeHeap()
		}, nil
	}
	return writeHeap, nil
}

func expandCampaign(specPath string, args []string) int {
	fs := flag.NewFlagSet("campaign expand", flag.ExitOnError)
	fs.Parse(args)
	c, code := load(specPath, 0)
	if code != 0 {
		return code
	}
	for _, p := range c.Points {
		fmt.Printf("%d\t%s\n", p.Index, p.ParamsString())
	}
	fmt.Fprintf(os.Stderr, "campaign %q: %d points across %d axes\n", c.Spec.Name, len(c.Points), len(c.AxisNames))
	return 0
}

func validateCampaign(specPath string, args []string) int {
	fs := flag.NewFlagSet("campaign validate", flag.ExitOnError)
	fs.Parse(args)
	c, code := load(specPath, 0)
	if code != 0 {
		return code
	}
	fmt.Printf("ok: campaign %q expands to %d valid points\n", c.Spec.Name, len(c.Points))
	return 0
}
