// Command campaign runs declarative experiment campaigns: JSON specs that
// name a base scenario plus parameter axes (see internal/campaign and
// DESIGN.md §6). The grid expands deterministically, executes on the
// parallel sweep engine, and streams every finished point — in point
// order, byte-identical at any pool size — to JSONL and/or CSV sinks.
//
// Usage:
//
//	campaign run <spec.json> [-parallel N] [-sim-workers N] [-jsonl PATH] [-csv PATH] [-replications N] [-per-replicate] [-progress] [-debug-addr ADDR]
//	campaign expand <spec.json>
//	campaign validate <spec.json>
//
// `run` streams JSONL to stdout by default; -jsonl/-csv redirect to files
// ("-" means stdout, at most one sink may claim it). `expand` prints the
// expanded grid without simulating; `validate` just checks the spec.
// -replications overrides the spec's replication count; above 1 the sinks
// emit aggregate records (mean/std/CI per metric across seed-derived
// trials), and -per-replicate additionally streams every trial's own
// JSONL record.
//
// Live telemetry (internal/obs): -progress prints a heartbeat line to
// stderr every second (points done/total, completion rate, ETA, in-flight
// point indices), and -debug-addr starts an HTTP debug endpoint serving
// /debug/progress (JSON snapshot), /debug/vars (expvar), and /debug/pprof.
// Neither affects the result stream: sink output stays byte-identical.
//
// Examples:
//
//	campaign run examples/campaigns/fig8.json -parallel 4
//	campaign run examples/campaigns/stress-1k.json -jsonl out.jsonl -csv out.csv
//	campaign expand examples/campaigns/fig8.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintf(os.Stderr, `usage:
  campaign run <spec.json> [-parallel N] [-sim-workers N] [-jsonl PATH] [-csv PATH] [-replications N] [-per-replicate] [-progress] [-debug-addr ADDR]
  campaign expand <spec.json>
  campaign validate <spec.json>
`)
	return 2
}

func run(args []string) int {
	if len(args) < 2 || args[1] == "" || args[1][0] == '-' {
		return usage()
	}
	sub, specPath, rest := args[0], args[1], args[2:]
	switch sub {
	case "run":
		return runCampaign(specPath, rest)
	case "expand":
		return expandCampaign(specPath, rest)
	case "validate":
		return validateCampaign(specPath, rest)
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", sub)
		return usage()
	}
}

// load parses and expands a spec file. replications > 0 overrides the
// spec's own replication count before expansion.
func load(specPath string, replications int) (*campaign.Campaign, int) {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return nil, 1
	}
	if replications > 0 {
		spec.Replications = replications
	}
	c, err := campaign.Expand(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return nil, 1
	}
	return c, 0
}

func runCampaign(specPath string, args []string) int {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	parallel := fs.Int("parallel", 0, "sweep worker pool size (0 = all cores, 1 = serial)")
	jsonlPath := fs.String("jsonl", "-", `JSONL output: "-" for stdout, a path, or "" to disable`)
	csvPath := fs.String("csv", "", `CSV output: "-" for stdout, a path, or "" to disable`)
	replications := fs.Int("replications", 0, "override the spec's replication count (0 = use the spec's)")
	perReplicate := fs.Bool("per-replicate", false, "also emit each replicate's own JSONL record, not just the aggregate")
	simWorkers := fs.Int("sim-workers", 0, "goroutines for the data-parallel kernels inside each simulation (0/1 = serial; output is identical at any value)")
	progressFlag := fs.Bool("progress", false, "print a live heartbeat to stderr every second: points done/total, rate, ETA, in-flight points")
	debugAddr := fs.String("debug-addr", "", `serve a debug/ops HTTP endpoint on this address (e.g. ":6060"): /debug/progress, /debug/vars (expvar), /debug/pprof`)
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	fs.Parse(args)

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	defer stopProfiles()

	c, code := load(specPath, *replications)
	if code != 0 {
		return code
	}

	// Live telemetry: the tracker exists whenever either consumer (the
	// heartbeat or the debug endpoint) wants it; neither affects sink
	// output in any way.
	var progress *obs.CampaignProgress
	if *progressFlag || *debugAddr != "" {
		progress = obs.NewCampaignProgress(c.Spec.Name, len(c.Points))
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: debug endpoint on http://%s/debug/progress (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	stopHeartbeat := func() {}
	if *progressFlag {
		stopHeartbeat = progress.Heartbeat(os.Stderr, time.Second)
	}

	if *csvPath == "-" && *jsonlPath == "-" {
		// CSV claims stdout; an explicitly doubled "-" is an error.
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "jsonl" {
				explicit = true
			}
		})
		if explicit {
			fmt.Fprintln(os.Stderr, "campaign: -jsonl and -csv cannot both write to stdout")
			return 2
		}
		*jsonlPath = ""
	}

	var sinks []campaign.Sink
	var closers []io.Closer
	open := func(path string) (io.Writer, error) {
		if path == "-" {
			return os.Stdout, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		closers = append(closers, f)
		return f, nil
	}
	if *jsonlPath != "" {
		w, err := open(*jsonlPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		sink := campaign.NewJSONLSink(w)
		sink.PerReplicate = *perReplicate
		sinks = append(sinks, sink)
	}
	if *csvPath != "" {
		w, err := open(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		sinks = append(sinks, campaign.NewCSVSink(w))
	}

	start := time.Now()
	_, err = c.Run(campaign.RunOptions{Workers: *parallel, Sinks: sinks, SimWorkers: *simWorkers, Progress: progress})
	stopHeartbeat()
	for _, cl := range closers {
		if cerr := cl.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	if reps := c.Replications(); reps > 1 {
		fmt.Fprintf(os.Stderr, "campaign %q: %d points × %d replications across %d axes in %v\n",
			c.Spec.Name, len(c.Points), reps, len(c.AxisNames), time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(os.Stderr, "campaign %q: %d points across %d axes in %v\n",
			c.Spec.Name, len(c.Points), len(c.AxisNames), time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// startProfiles arms the requested pprof outputs and returns the teardown
// that stops the CPU profile and snapshots the heap. The no-op teardown on
// error keeps the caller's defer unconditional.
func startProfiles(cpuPath, memPath string) (func(), error) {
	writeHeap := func() {
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return func() {}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, err
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
			writeHeap()
		}, nil
	}
	return writeHeap, nil
}

func expandCampaign(specPath string, args []string) int {
	fs := flag.NewFlagSet("campaign expand", flag.ExitOnError)
	fs.Parse(args)
	c, code := load(specPath, 0)
	if code != 0 {
		return code
	}
	for _, p := range c.Points {
		fmt.Printf("%d\t%s\n", p.Index, p.ParamsString())
	}
	fmt.Fprintf(os.Stderr, "campaign %q: %d points across %d axes\n", c.Spec.Name, len(c.Points), len(c.AxisNames))
	return 0
}

func validateCampaign(specPath string, args []string) int {
	fs := flag.NewFlagSet("campaign validate", flag.ExitOnError)
	fs.Parse(args)
	c, code := load(specPath, 0)
	if code != 0 {
		return code
	}
	fmt.Printf("ok: campaign %q expands to %d valid points\n", c.Spec.Name, len(c.Points))
	return 0
}
