// Command repolint runs the repository's invariants-as-code analyzer
// suite (internal/lint) over every package in the module — production and
// test files — and reports file:line diagnostics, exiting non-zero on any
// finding. It is the machine check behind the three contracts the
// codebase rests on: byte-identical deterministic output (DESIGN §2,
// §10), nil-hooks-are-free observability (§11), and zero-value wire-form
// compatibility (§9). See DESIGN.md §12 for the analyzer table and the
// //repolint:allow waiver syntax.
//
// Usage:
//
//	repolint [-C dir] [-list]
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "run as if started in this directory")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-C dir] [-list]\n\nAnalyzers (see DESIGN.md §12):\n")
		for _, a := range lint.All {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() > 0 {
		// The suite is module-global by design: contracts span packages,
		// so partial runs would let stale annotations hide.
		fmt.Fprintln(os.Stderr, "repolint: package arguments are not supported; the suite always covers the whole module")
		os.Exit(2)
	}

	pkgs, err := lint.Load(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	broken := false
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "repolint: type error in %s: %v\n", p.Path, e)
			broken = true
		}
	}
	if broken {
		os.Exit(2)
	}

	diags := lint.Run(lint.DefaultConfig(), pkgs, lint.All)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
