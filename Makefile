# Developer entry points. The repository is plain `go build`/`go test`;
# these targets just bundle the flags the CI pipeline and the perf
# trajectory (BENCH_<date>.json snapshots) standardize on.

GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test race lint cover fuzz-smoke golden-update bench bench-smoke figures clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the invariants-as-code analyzer suite (cmd/repolint,
# DESIGN.md §12) over every package in the module, production and test
# files alike. Non-zero exit on any finding; waivers need a reasoned
# //repolint:allow annotation.
lint:
	$(GO) run ./cmd/repolint

race:
	$(GO) test -race ./...

# cover mirrors the CI coverage gate locally (the ratcheted baseline lives
# in .github/workflows/ci.yml).
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# fuzz-smoke runs the CI fuzz budget against both strict JSON decoders.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeScenario -fuzztime=10s ./internal/experiment/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSpec -fuzztime=10s ./internal/campaign/

# golden-update regenerates the byte-level regression corpus under
# testdata/golden/ after an intentional output change; commit the rewritten
# files with an explanation of why the bytes moved.
golden-update:
	$(GO) test -run TestGolden -update -count=1 .

# bench runs the full benchmark suite once (-benchtime=1x -benchmem) and
# writes machine-readable results to BENCH_<date>.json. Commit a snapshot
# alongside performance-affecting PRs; see DESIGN.md §7.
bench:
	$(GO) run ./cmd/benchjson -bench . -sims -out BENCH_$(DATE).json

# bench-smoke is the CI variant: just the topology and scheduler
# micro-benchmarks plus a timed quick-scale campaign, written to bench.json
# for artifact upload.
bench-smoke:
	$(GO) run ./cmd/benchjson \
		-bench 'BenchmarkReachedBy|BenchmarkContenders|BenchmarkZoneNeighborsRebuild|BenchmarkScheduler' \
		-campaign examples/campaigns/fig8.json \
		-out bench.json

figures:
	$(GO) run ./cmd/figures -quick

clean:
	rm -f bench.json coverage.out
