# Developer entry points. The repository is plain `go build`/`go test`;
# these targets just bundle the flags the CI pipeline and the perf
# trajectory (BENCH_<date>.json snapshots) standardize on.

GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test race bench bench-smoke figures clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the full benchmark suite once (-benchtime=1x -benchmem) and
# writes machine-readable results to BENCH_<date>.json. Commit a snapshot
# alongside performance-affecting PRs; see DESIGN.md §7.
bench:
	$(GO) run ./cmd/benchjson -bench . -out BENCH_$(DATE).json

# bench-smoke is the CI variant: just the topology and scheduler
# micro-benchmarks plus a timed quick-scale campaign, written to bench.json
# for artifact upload.
bench-smoke:
	$(GO) run ./cmd/benchjson \
		-bench 'BenchmarkReachedBy|BenchmarkContenders|BenchmarkZoneNeighborsRebuild|BenchmarkScheduler' \
		-campaign examples/campaigns/fig8.json \
		-out bench.json

figures:
	$(GO) run ./cmd/figures -quick

clean:
	rm -f bench.json
