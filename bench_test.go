// bench_test.go regenerates every table and figure of the paper under
// `go test -bench=.`. One benchmark per table/figure, plus ablation benches
// for the design choices DESIGN.md calls out and micro-benchmarks for the
// hot substrates.
//
// Figure benches run the Quick quality (2 packets/node) so a full -bench=.
// pass completes in minutes; `go run ./cmd/figures` regenerates the
// paper-scale versions. Each bench reports the figure's headline numbers as
// custom metrics (µJ/packet, ms of delay) so the benchmark log doubles as a
// results table.
package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
)

// reportLastRow attaches the final sweep point's series values as custom
// benchmark metrics.
func reportLastRow(b *testing.B, t experiment.Table, unit string) {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatal("empty table")
	}
	last := t.Rows[len(t.Rows)-1]
	for i, col := range t.Columns {
		b.ReportMetric(last.Cells[i], col+"_"+unit)
	}
}

// BenchmarkFig3AnalyticDelayRatio regenerates Figure 3 (analytic SPIN/SPMS
// delay ratio vs radius) and checks the paper's printed 2.7865 spot value.
func BenchmarkFig3AnalyticDelayRatio(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := experiment.Figure3()
		if len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
		ratio = analysis.PaperParams().DelayRatio(45, 5)
	}
	if ratio < 2.786 || ratio > 2.787 {
		b.Fatalf("spot value %v, want 2.7865", ratio)
	}
	b.ReportMetric(ratio, "spot_ratio")
}

// BenchmarkFig5AnalyticEnergyRatio regenerates Figure 5 (analytic energy
// ratio on the k-relay chain).
func BenchmarkFig5AnalyticEnergyRatio(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		t := experiment.Figure5()
		last = t.Rows[len(t.Rows)-1].Cells[0]
	}
	b.ReportMetric(last, "ratio_at_k30")
}

// benchFigure regenerates one figure per iteration through the parallel
// sweep engine (NewRunner defaults to a worker per core).
func benchFigure(b *testing.B, run func(*experiment.Runner) (experiment.Table, error), unit string) {
	b.Helper()
	var table experiment.Table
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(experiment.Quick())
		t, err := run(r)
		if err != nil {
			b.Fatal(err)
		}
		table = t
	}
	reportLastRow(b, table, unit)
}

// BenchmarkSweepWorkers measures the sweep engine's scaling on the Figure 8
// grid: the same scenario batch at pool sizes 1, 2, and one per core. The
// tables are byte-identical across pool sizes (asserted against serial), so
// the only difference is wall clock.
func BenchmarkSweepWorkers(b *testing.B) {
	serial, err := experiment.NewRunnerWorkers(experiment.Quick(), 1).Figure8()
	if err != nil {
		b.Fatal(err)
	}
	pools := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range pools {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiment.NewRunnerWorkers(experiment.Quick(), w)
				t, err := r.Figure8()
				if err != nil {
					b.Fatal(err)
				}
				if t.Format() != serial.Format() {
					b.Fatal("parallel table diverged from serial")
				}
			}
		})
	}
}

// runSweep executes scenarios through the same parallel sweep engine the
// figure runners use and returns results in point order.
func runSweep(b *testing.B, points ...experiment.Scenario) []experiment.Result {
	b.Helper()
	res, err := (experiment.Sweep{Points: points}).Execute()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig6EnergyVsNodes regenerates Figure 6 (energy vs node count).
func BenchmarkFig6EnergyVsNodes(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure6, "uJ")
}

// BenchmarkFig7EnergyVsRadius regenerates Figure 7 (energy vs radius).
func BenchmarkFig7EnergyVsRadius(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure7, "uJ")
}

// BenchmarkFig8DelayVsNodes regenerates Figure 8 (delay vs node count).
func BenchmarkFig8DelayVsNodes(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure8, "ms")
}

// BenchmarkFig9DelayVsRadius regenerates Figure 9 (delay vs radius).
func BenchmarkFig9DelayVsRadius(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure9, "ms")
}

// BenchmarkFig10FailureDelayVsNodes regenerates Figure 10 (delay vs node
// count under transient failures; SPMS/F-SPMS/SPIN/F-SPIN).
func BenchmarkFig10FailureDelayVsNodes(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure10, "ms")
}

// BenchmarkFig11FailureDelayVsRadius regenerates Figure 11 (delay vs radius
// under transient failures).
func BenchmarkFig11FailureDelayVsRadius(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure11, "ms")
}

// BenchmarkFig12MobilityEnergy regenerates Figure 12 (energy vs radius with
// mobile nodes; SPMS pays DBF re-convergence).
func BenchmarkFig12MobilityEnergy(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure12, "uJ")
}

// BenchmarkFig13ClusterEnergy regenerates Figure 13 (energy vs radius for
// cluster-based hierarchical communication, with and without failures).
func BenchmarkFig13ClusterEnergy(b *testing.B) {
	benchFigure(b, (*experiment.Runner).Figure13, "uJ")
}

// BenchmarkMobilityThreshold recomputes the §5.1.3 break-even packet count.
func BenchmarkMobilityThreshold(b *testing.B) {
	var breakEven, dbf float64
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(experiment.Quick())
		be, d, err := r.MobilityThreshold()
		if err != nil {
			b.Fatal(err)
		}
		breakEven, dbf = be, d
	}
	b.ReportMetric(breakEven, "breakeven_pkts")
	b.ReportMetric(dbf, "dbf_uJ_per_event")
}

// ablationScenario is the shared configuration for the design-choice
// ablations: mid-size field, failure injection on, so recovery paths run.
func ablationScenario() experiment.Scenario {
	return experiment.Scenario{
		Protocol:       experiment.SPMS,
		Workload:       experiment.AllToAll,
		Nodes:          49,
		ZoneRadius:     20,
		PacketsPerNode: 2,
		Failures:       true,
		Seed:           1,
		Drain:          2 * time.Second,
	}
}

// BenchmarkAblationRelayADV compares SPMS with and without relay
// re-advertisement (DESIGN.md §5.3): disabling it removes PRONE promotion
// and slows zone crossing.
func BenchmarkAblationRelayADV(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run("relayADV="+name, func(b *testing.B) {
			var res experiment.Result
			for i := 0; i < b.N; i++ {
				sc := ablationScenario()
				cfg := core.DefaultConfig()
				cfg.DisableRelayADV = disabled
				sc.SPMSConfig = cfg
				res = runSweep(b, sc)[0]
			}
			b.ReportMetric(res.EnergyPerPacket, "uJ_per_pkt")
			b.ReportMetric(float64(res.MeanDelay)/1e6, "ms_delay")
			b.ReportMetric(res.DeliveryRate, "delivery_rate")
		})
	}
}

// BenchmarkAblationRouteAlternatives sweeps the routing-table depth k
// (DESIGN.md §5.2: the paper keeps the shortest and second-shortest path).
func BenchmarkAblationRouteAlternatives(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run("k="+string(rune('0'+k)), func(b *testing.B) {
			var res experiment.Result
			for i := 0; i < b.N; i++ {
				sc := ablationScenario()
				sc.RouteAlternatives = k
				res = runSweep(b, sc)[0]
			}
			b.ReportMetric(res.EnergyPerPacket, "uJ_per_pkt")
			b.ReportMetric(res.DeliveryRate, "delivery_rate")
		})
	}
}

// BenchmarkAblationServeFromCache evaluates the paper's future-work idea:
// relays answering REQs from their cache instead of forwarding upstream.
func BenchmarkAblationServeFromCache(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run("cache="+name, func(b *testing.B) {
			var res experiment.Result
			for i := 0; i < b.N; i++ {
				sc := ablationScenario()
				cfg := core.DefaultConfig()
				cfg.ServeFromCache = on
				sc.SPMSConfig = cfg
				res = runSweep(b, sc)[0]
			}
			b.ReportMetric(res.EnergyPerPacket, "uJ_per_pkt")
			b.ReportMetric(float64(res.MeanDelay)/1e6, "ms_delay")
		})
	}
}

// BenchmarkAblationCarrierSense turns on shared-channel serialization
// (DESIGN.md: the simulation default models contention as per-transmission
// delay; carrier sense shows what saturation does to SPIN-style max-power
// traffic). Uses a deliberately small workload — a serializing channel
// saturates under the paper's full traffic.
func BenchmarkAblationCarrierSense(b *testing.B) {
	for _, cs := range []bool{false, true} {
		name := "off"
		if cs {
			name = "on"
		}
		b.Run("carrier="+name, func(b *testing.B) {
			var spmsDelay, spinDelay float64
			for i := 0; i < b.N; i++ {
				spmsSC := experiment.Scenario{
					Protocol:       experiment.SPMS,
					Workload:       experiment.AllToAll,
					Nodes:          25,
					ZoneRadius:     20,
					PacketsPerNode: 1,
					CarrierSense:   cs,
					Seed:           1,
					Drain:          20 * time.Second,
				}
				spinSC := spmsSC
				spinSC.Protocol = experiment.SPIN
				res := runSweep(b, spmsSC, spinSC)
				spmsDelay = float64(res[0].MeanDelay) / 1e6
				spinDelay = float64(res[1].MeanDelay) / 1e6
			}
			b.ReportMetric(spmsDelay, "spms_ms")
			b.ReportMetric(spinDelay, "spin_ms")
		})
	}
}

// BenchmarkInterZoneQuery measures the §6 extension: a cross-zone
// bordercast pull on a 12-node strip where plain SPMS starves the sink.
func BenchmarkInterZoneQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := radio.ScaledMICA2(12)
		if err != nil {
			b.Fatal(err)
		}
		f, err := topo.NewChainField(12, 5, m)
		if err != nil {
			b.Fatal(err)
		}
		sched := sim.NewScheduler()
		nw, err := network.New(sched, f, sim.NewRNG(1), network.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		ledger := dissem.NewLedger()
		sink := packet.NodeID(11)
		interest := func(id packet.NodeID, d packet.DataID) bool { return id == sink }
		tables := routing.Compute(routing.BuildGraph(f), routing.DefaultAlternatives)
		sys, err := core.NewSystem(nw, ledger, interest, tables, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		d := packet.DataID{Origin: 0, Seq: 0}
		if err := sys.Originate(0, d); err != nil {
			b.Fatal(err)
		}
		if err := sched.Run(300 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
		if err := sys.Query(sink, d); err != nil {
			b.Fatal(err)
		}
		if err := sched.Run(3 * time.Second); err != nil {
			b.Fatal(err)
		}
		if !sys.Has(sink, d) {
			b.Fatal("query failed")
		}
	}
}

// BenchmarkDBFCompute measures one full Distributed Bellman-Ford
// convergence on the paper's 169-node, 20 m-zone field.
func BenchmarkDBFCompute(b *testing.B) {
	m, err := radio.ScaledMICA2(20)
	if err != nil {
		b.Fatal(err)
	}
	f, err := topo.NewGridField(169, 5, m)
	if err != nil {
		b.Fatal(err)
	}
	g := routing.BuildGraph(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := routing.Compute(g, 2)
		if tbl.Rounds() == 0 {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkSchedulerThroughput measures raw event dispatch.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := sim.NewScheduler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		if i%1024 == 1023 {
			if err := s.RunUntilIdle(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.RunUntilIdle(0); err != nil {
		b.Fatal(err)
	}
}

// benchField builds the benchmark topology: an n-node grid at the paper's
// 5 m spacing with a 20 m zone radius — 169 is the paper's standard field,
// 1024 the stress-campaign grid.
func benchField(b *testing.B, n int) *topo.Field {
	b.Helper()
	m, err := radio.ScaledMICA2(20)
	if err != nil {
		b.Fatal(err)
	}
	f, err := topo.NewGridField(n, 5, m)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// benchSink keeps query results observable so the compiler cannot elide the
// benchmark body.
var benchSink int

// assertQueryAllocFree fails the benchmark if the steady-state query path
// allocates: the spatial-index contract is 0 allocs/op once caches are warm.
func assertQueryAllocFree(b *testing.B, query func()) {
	b.Helper()
	query() // warm every cache the query touches
	if allocs := testing.AllocsPerRun(100, query); allocs != 0 {
		b.Fatalf("steady-state query allocates %v per run, want 0", allocs)
	}
}

// BenchmarkReachedBy measures the broadcast recipient-list query across all
// power levels on a warm cache: O(1) slice handout, asserted 0 allocs/op.
func BenchmarkReachedBy(b *testing.B) {
	for _, n := range []int{169, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := benchField(b, n)
			center := packet.NodeID(f.N() / 2)
			levels := f.Model().MinPower()
			query := func() {
				for l := radio.MaxPower; l <= levels; l++ {
					benchSink += len(f.ReachedBy(center, l))
				}
			}
			assertQueryAllocFree(b, query)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				query()
			}
		})
	}
}

// BenchmarkContenders measures the MAC contention-count lookup across all
// power levels on a warm cache: a cached length, asserted 0 allocs/op.
func BenchmarkContenders(b *testing.B) {
	for _, n := range []int{169, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := benchField(b, n)
			center := packet.NodeID(f.N() / 2)
			levels := f.Model().MinPower()
			query := func() {
				for l := radio.MaxPower; l <= levels; l++ {
					benchSink += f.Contenders(center, l)
				}
			}
			assertQueryAllocFree(b, query)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				query()
			}
		})
	}
}

// BenchmarkZoneNeighborsRebuild measures the topology cache rebuild after a
// mobility event, comparing incremental invalidation (the production path:
// only the neighborhoods a mover leaves and enters are stamped dirty)
// against forcing the pre-index full-discard behavior (InvalidateAll).
// Each iteration performs one mobility event and then a full-field query
// wave, so deferred lazy rebuilds are paid inside the measurement. Two
// event shapes: a single Move (incrementality's best case — one zone's
// worth of rebuilds vs the whole field) and the paper's 5% relocation wave
// (whose scattered movers dirty most of a dense field either way; the win
// there is the O(neighbors) grid rebuild itself, not the stamping).
func BenchmarkZoneNeighborsRebuild(b *testing.B) {
	queryAll := func(f *topo.Field) {
		for i := 0; i < f.N(); i++ {
			benchSink += len(f.ZoneNeighbors(packet.NodeID(i)))
		}
	}
	for _, n := range []int{169, 1024} {
		events := []struct {
			name string
			do   func(f *topo.Field, rng *sim.RNG)
		}{
			{"move1", func(f *topo.Field, rng *sim.RNG) {
				id := packet.NodeID(rng.Intn(f.N()))
				f.Move(id, geom.Point{
					X: f.Bounds().Width() * rng.Float64(),
					Y: f.Bounds().Height() * rng.Float64(),
				})
			}},
			{"relocate5pct", func(f *topo.Field, rng *sim.RNG) {
				f.RelocateFraction(0.05, rng)
			}},
		}
		for _, ev := range events {
			b.Run(fmt.Sprintf("n=%d/%s/incremental", n, ev.name), func(b *testing.B) {
				f := benchField(b, n)
				rng := sim.NewRNG(1)
				queryAll(f) // start from a fully warm cache
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.do(f, rng)
					queryAll(f)
				}
			})
			b.Run(fmt.Sprintf("n=%d/%s/full", n, ev.name), func(b *testing.B) {
				f := benchField(b, n)
				rng := sim.NewRNG(1)
				queryAll(f)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.do(f, rng)
					f.InvalidateAll()
					queryAll(f)
				}
			})
		}
	}
}
