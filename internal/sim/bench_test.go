package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduler measures the steady-state schedule→dispatch hot path.
// The arena kernel recycles event slots through a free list, so allocs/op
// must stay at zero once warm; the seed container/heap kernel paid 2
// allocs/op (the boxed *event plus heap.Interface growth) at ~705 ns/op.
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	// Warm the arena so growth is not billed to the measured loop.
	for i := 0; i < 2048; i++ {
		s.After(time.Microsecond, fn)
	}
	if err := s.RunUntilIdle(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		if i%1024 == 1023 {
			if err := s.RunUntilIdle(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.RunUntilIdle(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerCancel measures the schedule→cancel path: eager
// sift-out plus slot recycling, also allocation-free in steady state.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(time.Duration(i%64)*time.Microsecond+time.Microsecond, fn)
		if !t.Cancel() {
			b.Fatal("cancel failed")
		}
	}
	if s.Len() != 0 {
		b.Fatalf("Len()=%d after canceling everything", s.Len())
	}
}
