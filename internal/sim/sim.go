// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for every experiment in this repository: nodes
// are passive state machines whose handlers run only when the scheduler
// dispatches an event. Virtual time is a time.Duration measured from the
// start of the simulation. Two events scheduled for the same instant fire in
// the order they were scheduled, which — combined with a seeded RNG — makes
// every run bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly via Stop before the run condition was met.
var ErrStopped = errors.New("sim: stopped")

// Handler is a scheduled callback. It runs with the clock set to the
// event's timestamp.
type Handler func()

// event is a scheduled handler. seq breaks ties between events at the same
// virtual instant so dispatch order is deterministic.
type event struct {
	at       time.Duration
	seq      uint64
	fn       Handler
	canceled bool
	index    int // heap index, maintained by eventQueue
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("sim: eventQueue.Push: unexpected type %T", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event. The zero value is an inert timer:
// Cancel and Active are safe to call and do nothing.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's handler from running. Canceling an already
// fired or already canceled timer is a no-op. It reports whether the call
// actually canceled a pending event.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Active reports whether the timer is still pending: scheduled, not yet
// fired, and not canceled.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Scheduler owns the virtual clock and the pending event set. The zero value
// is ready to use. Scheduler is not safe for concurrent use: the simulation
// model is single-threaded by design (see DESIGN.md §5.1).
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool

	// dispatched counts events that have fired, for observability and as a
	// runaway guard in tests.
	dispatched uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending (non-canceled) events. Canceled events
// still occupy queue slots until popped, so this walks the queue; it is
// intended for tests and diagnostics, not hot paths.
func (s *Scheduler) Len() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Dispatched returns the total number of events that have fired.
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it is always a model bug, and silently clamping
// would mask causality violations.
func (s *Scheduler) At(at time.Duration, fn Handler) *Timer {
	if fn == nil {
		panic("sim: Scheduler.At: nil handler")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: Scheduler.At: scheduling at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time. A negative d
// panics, matching At's past-scheduling rule.
func (s *Scheduler) After(d time.Duration, fn Handler) *Timer {
	return s.At(s.now+d, fn)
}

// Stop makes the current or next Run call return ErrStopped after the
// in-flight handler (if any) completes.
func (s *Scheduler) Stop() { s.stopped = true }

// step pops and dispatches the earliest pending event. It reports whether an
// event fired.
func (s *Scheduler) step() bool {
	for len(s.queue) > 0 {
		ev, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			panic("sim: corrupt event queue")
		}
		if ev.canceled {
			continue
		}
		s.now = ev.at
		s.dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until do fire. On normal completion the
// clock is advanced to until if the queue drained early, so repeated Run
// calls see monotonic time. Returns ErrStopped if Stop was called.
func (s *Scheduler) Run(until time.Duration) error {
	if until < s.now {
		return fmt.Errorf("sim: Run until %v is before now %v", until, s.now)
	}
	for {
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
		next, ok := s.peek()
		if !ok || next > until {
			s.now = until
			return nil
		}
		s.step()
	}
}

// RunUntilIdle dispatches events until no pending events remain. Returns
// ErrStopped if Stop was called. The maxEvents guard converts an accidental
// self-perpetuating event loop into a diagnosable error instead of a hang.
func (s *Scheduler) RunUntilIdle(maxEvents uint64) error {
	start := s.dispatched
	for {
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
		if maxEvents > 0 && s.dispatched-start >= maxEvents {
			return fmt.Errorf("sim: RunUntilIdle exceeded %d events at t=%v", maxEvents, s.now)
		}
		if !s.step() {
			return nil
		}
	}
}

// peek returns the timestamp of the earliest pending event.
func (s *Scheduler) peek() (time.Duration, bool) {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if !ev.canceled {
			return ev.at, true
		}
		heap.Pop(&s.queue)
	}
	return 0, false
}
