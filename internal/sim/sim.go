// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for every experiment in this repository: nodes
// are passive state machines whose handlers run only when the scheduler
// dispatches an event. Virtual time is a time.Duration measured from the
// start of the simulation. Two events scheduled for the same instant fire in
// the order they were scheduled, which — combined with a seeded RNG — makes
// every run bit-for-bit reproducible.
//
// Internally the pending set is a 4-ary min-heap of indices into a pooled
// event arena: scheduling reuses arena slots through a free list, so the
// steady-state hot path (schedule → dispatch → recycle) performs no heap
// allocation. A Scheduler is single-threaded by design (see DESIGN.md §5.1);
// parallelism lives above the kernel, one Scheduler per goroutine.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly via Stop before the run condition was met.
var ErrStopped = errors.New("sim: stopped")

// Handler is a scheduled callback. It runs with the clock set to the
// event's timestamp.
type Handler func()

// ArgHandler is a scheduled callback that receives the argument it was
// scheduled with (AtArg/AfterArg). Carrying the argument through the event
// arena lets hot paths schedule a method value plus an index instead of
// allocating a fresh closure per event — the network layer's transmission
// and delivery-batch events use this to keep the steady-state schedule →
// dispatch → recycle cycle allocation-free.
type ArgHandler func(arg uint64)

// event is one arena slot. seq breaks ties between events at the same
// virtual instant so dispatch order is deterministic; it is also the
// event's identity — unique over the scheduler's whole lifetime — so a
// Timer holding the seq it was issued under can never alias the slot's
// next occupant, even after arbitrarily many reuses. pos is the slot's
// current position in the heap, -1 while free. Exactly one of fn/afn is
// set; afn events carry arg.
type event struct {
	at  time.Duration
	seq uint64
	fn  Handler
	afn ArgHandler
	arg uint64
	pos int32
}

// Timer is a handle to a scheduled event. The zero value is an inert timer:
// Cancel and Active are safe to call and do nothing. Timers are small value
// handles (they do not pin the event's memory) and may be copied freely.
type Timer struct {
	s   *Scheduler
	idx int32
	seq uint64
	at  time.Duration
}

// live reports whether the handle still names a pending event: the slot is
// occupied and holds the exact event this handle was issued for.
func (t Timer) live() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.arena[t.idx]
	return ev.pos >= 0 && ev.seq == t.seq
}

// Cancel prevents the timer's handler from running and removes the event
// from the pending set immediately. Canceling an already fired or already
// canceled timer is a no-op. It reports whether the call actually canceled
// a pending event.
func (t Timer) Cancel() bool {
	if !t.live() {
		return false
	}
	t.s.heapRemove(t.s.arena[t.idx].pos)
	t.s.release(t.idx)
	return true
}

// Active reports whether the timer is still pending: scheduled, not yet
// fired, and not canceled.
func (t Timer) Active() bool { return t.live() }

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t Timer) At() time.Duration { return t.at }

// heapEntry is one pending-heap element. It carries the full sort key
// (at, seq) inline next to the arena index, so sift comparisons read the
// contiguous heap slice instead of dereferencing scattered arena slots —
// the approach of cache-friendly priority queues. The order is identical
// to comparing through the arena, so dispatch order (and therefore all
// simulation output) is unchanged.
type heapEntry struct {
	at  time.Duration
	seq uint64
	idx int32
}

// Scheduler owns the virtual clock and the pending event set. The zero value
// is ready to use. Scheduler is not safe for concurrent use: the simulation
// model is single-threaded by design (see DESIGN.md §5.1).
type Scheduler struct {
	now     time.Duration
	seq     uint64
	arena   []event     // pooled event storage; slots are recycled via free
	free    []int32     // free-list of arena slots
	heap    []heapEntry // 4-ary min-heap ordered by (at, seq)
	stopped bool

	// dispatched counts events that have fired, for observability and as a
	// runaway guard in tests.
	dispatched uint64
	// maxHeap is the largest pending-set size seen, for observability
	// (obs.RunStats.PeakHeapDepth). One compare per push; never read on the
	// hot path.
	maxHeap int
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events in O(1). Canceled events are
// removed from the heap eagerly, so the heap length is the live count.
func (s *Scheduler) Len() int { return len(s.heap) }

// Dispatched returns the total number of events that have fired.
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// PeakHeapDepth returns the largest number of simultaneously pending
// events over the scheduler's lifetime.
func (s *Scheduler) PeakHeapDepth() int { return s.maxHeap }

// ArenaSize returns the number of event arena slots ever allocated — the
// pool's high-water mark, since slots are recycled and the arena only
// grows when every slot is in use.
func (s *Scheduler) ArenaSize() int { return len(s.arena) }

// alloc takes a slot from the free list, growing the arena only when the
// pool is exhausted.
func (s *Scheduler) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.arena = append(s.arena, event{pos: -1})
	return int32(len(s.arena) - 1)
}

// release recycles a slot: clearing pos invalidates outstanding Timers
// (their seq check closes the reuse race), and dropping fn releases the
// handler closure to the GC.
func (s *Scheduler) release(idx int32) {
	ev := &s.arena[idx]
	ev.fn = nil
	ev.afn = nil
	ev.arg = 0
	ev.pos = -1
	s.free = append(s.free, idx)
}

// entryLess orders heap entries by (at, seq); seq is unique, so the order
// is total and dispatch is deterministic.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends the slot and sifts it up.
func (s *Scheduler) heapPush(idx int32) {
	ev := &s.arena[idx]
	ev.pos = int32(len(s.heap))
	s.heap = append(s.heap, heapEntry{at: ev.at, seq: ev.seq, idx: idx})
	if len(s.heap) > s.maxHeap {
		s.maxHeap = len(s.heap)
	}
	s.siftUp(len(s.heap) - 1)
}

// heapRemove deletes the entry at heap position i (eager cancel and pop
// share this): the last entry fills the hole and is sifted to its place.
func (s *Scheduler) heapRemove(i int32) {
	last := len(s.heap) - 1
	moved := s.heap[last]
	s.heap = s.heap[:last]
	if int(i) == last {
		return
	}
	s.heap[i] = moved
	s.arena[moved.idx].pos = i
	s.siftDown(int(i))
	s.siftUp(int(i))
}

// siftUp restores heap order from position i toward the root.
func (s *Scheduler) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.arena[s.heap[i].idx].pos = int32(i)
		i = parent
	}
	s.heap[i] = e
	s.arena[e.idx].pos = int32(i)
}

// siftDown restores heap order from position i toward the leaves.
func (s *Scheduler) siftDown(i int) {
	e := s.heap[i]
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !entryLess(s.heap[min], e) {
			break
		}
		s.heap[i] = s.heap[min]
		s.arena[s.heap[i].idx].pos = int32(i)
		i = min
	}
	s.heap[i] = e
	s.arena[e.idx].pos = int32(i)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it is always a model bug, and silently clamping
// would mask causality violations.
func (s *Scheduler) At(at time.Duration, fn Handler) Timer {
	if fn == nil {
		panic("sim: Scheduler.At: nil handler")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: Scheduler.At: scheduling at %v before now %v", at, s.now))
	}
	idx := s.alloc()
	ev := &s.arena[idx]
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.heapPush(idx)
	return Timer{s: s, idx: idx, seq: ev.seq, at: at}
}

// After schedules fn to run d after the current virtual time. A negative d
// panics, matching At's past-scheduling rule.
func (s *Scheduler) After(d time.Duration, fn Handler) Timer {
	return s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) to run at the absolute virtual time at. It is the
// allocation-free sibling of At: fn is typically a method value created once
// and reused, and arg an index into caller-owned pooled state, so the hot
// path schedules without materializing a closure. Ordering, Timer semantics,
// and the past-scheduling panic are identical to At.
func (s *Scheduler) AtArg(at time.Duration, fn ArgHandler, arg uint64) Timer {
	if fn == nil {
		panic("sim: Scheduler.AtArg: nil handler")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: Scheduler.AtArg: scheduling at %v before now %v", at, s.now))
	}
	idx := s.alloc()
	ev := &s.arena[idx]
	ev.at = at
	ev.seq = s.seq
	ev.afn = fn
	ev.arg = arg
	s.seq++
	s.heapPush(idx)
	return Timer{s: s, idx: idx, seq: ev.seq, at: at}
}

// AfterArg schedules fn(arg) to run d after the current virtual time.
func (s *Scheduler) AfterArg(d time.Duration, fn ArgHandler, arg uint64) Timer {
	return s.AtArg(s.now+d, fn, arg)
}

// Stop makes the current or next Run call return ErrStopped after the
// in-flight handler (if any) completes.
func (s *Scheduler) Stop() { s.stopped = true }

// step pops and dispatches the earliest pending event. It reports whether an
// event fired. The slot is recycled before the handler runs, so a handler
// that schedules may reuse it; the Timer seq check keeps old handles inert.
func (s *Scheduler) step() bool {
	if len(s.heap) == 0 {
		return false
	}
	idx := s.heap[0].idx
	s.heapRemove(0)
	ev := &s.arena[idx]
	at, fn, afn, arg := ev.at, ev.fn, ev.afn, ev.arg
	s.release(idx)
	s.now = at
	s.dispatched++
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run dispatches events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until do fire. On normal completion the
// clock is advanced to until if the queue drained early, so repeated Run
// calls see monotonic time. Returns ErrStopped if Stop was called.
func (s *Scheduler) Run(until time.Duration) error {
	if until < s.now {
		return fmt.Errorf("sim: Run until %v is before now %v", until, s.now)
	}
	for {
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
		next, ok := s.peek()
		if !ok || next > until {
			s.now = until
			return nil
		}
		s.step()
	}
}

// RunUntilIdle dispatches events until no pending events remain. Returns
// ErrStopped if Stop was called. The maxEvents guard converts an accidental
// self-perpetuating event loop into a diagnosable error instead of a hang.
func (s *Scheduler) RunUntilIdle(maxEvents uint64) error {
	start := s.dispatched
	for {
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
		if maxEvents > 0 && s.dispatched-start >= maxEvents {
			return fmt.Errorf("sim: RunUntilIdle exceeded %d events at t=%v", maxEvents, s.now)
		}
		if !s.step() {
			return nil
		}
	}
}

// peek returns the timestamp of the earliest pending event. Cancellation is
// eager, so the root is always live.
func (s *Scheduler) peek() (time.Duration, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}
