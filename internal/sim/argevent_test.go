package sim

// Tests for the argument-carrying event path (AtArg/AfterArg): ordering
// against closure events, argument fidelity, Timer cancellation, and the
// allocation-free guarantee that motivates the whole mechanism.

import (
	"testing"
	"time"
)

func TestAtArgDispatchesWithArgument(t *testing.T) {
	s := NewScheduler()
	var got []uint64
	h := func(arg uint64) { got = append(got, arg) }
	s.AtArg(2*time.Millisecond, h, 42)
	s.AtArg(time.Millisecond, h, 7)
	s.AfterArg(3*time.Millisecond, h, 99)
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []uint64{7, 42, 99}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
}

func TestAtArgFIFOWithClosureEvents(t *testing.T) {
	// Arg events and closure events scheduled at the same instant dispatch
	// in scheduling order: the (at, seq) total order is shared, not
	// per-mechanism.
	s := NewScheduler()
	var order []int
	s.At(time.Millisecond, func() { order = append(order, 0) })
	s.AtArg(time.Millisecond, func(uint64) { order = append(order, 1) }, 0)
	s.At(time.Millisecond, func() { order = append(order, 2) })
	s.AtArg(time.Millisecond, func(uint64) { order = append(order, 3) }, 0)
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed dispatch order %v, want ascending", order)
		}
	}
}

func TestAtArgTimerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.AtArg(time.Millisecond, func(uint64) { fired = true }, 5)
	if !tm.Active() {
		t.Fatal("pending arg timer not active")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel on pending arg timer returned false")
	}
	if tm.Active() {
		t.Fatal("stopped arg timer still active")
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if fired {
		t.Fatal("cancelled arg event fired")
	}
}

func TestAtArgSlotReuseClearsHandler(t *testing.T) {
	// An arg event's slot, once recycled for a closure event, must dispatch
	// the closure — not the stale ArgHandler.
	s := NewScheduler()
	argFired, fnFired := 0, 0
	s.AtArg(time.Millisecond, func(uint64) { argFired++ }, 1)
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	s.After(time.Millisecond, func() { fnFired++ })
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if argFired != 1 || fnFired != 1 {
		t.Fatalf("argFired=%d fnFired=%d, want 1/1", argFired, fnFired)
	}
}

// TestAtArgSteadyStateAllocFree is the arg-event counterpart of
// TestSchedulerSteadyStateAllocFree: a pre-bound handler plus a uint64
// argument must schedule and dispatch with zero heap allocations, because
// that pair is exactly what the network layer uses to avoid per-packet
// closures.
func TestAtArgSteadyStateAllocFree(t *testing.T) {
	s := NewScheduler()
	var sink uint64
	h := ArgHandler(func(arg uint64) { sink += arg })
	for i := 0; i < 1024; i++ {
		s.AfterArg(time.Microsecond, h, uint64(i))
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			s.AfterArg(time.Microsecond, h, uint64(i))
		}
		if err := s.RunUntilIdle(0); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state arg-event cycle allocated %.1f times, want 0", allocs)
	}
	_ = sink
}
