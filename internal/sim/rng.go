package sim

import (
	"math"
	"math/rand"
	"time"
)

// RNG is a seeded source of the random variates the simulation needs.
// It wraps math/rand.Rand so that a single seed fully determines a run.
// RNG is not safe for concurrent use, matching the single-threaded kernel.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform variate in [lo, hi). If hi <= lo it returns lo.
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// UniformDuration returns a uniform duration in [lo, hi). If hi <= lo it
// returns lo.
func (g *RNG) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)))
}

// Exp returns an exponential variate with the given mean. This is the
// inter-arrival time of a Poisson process with rate 1/mean. A non-positive
// mean returns 0.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// ExpDuration returns an exponential variate with the given mean duration.
func (g *RNG) ExpDuration(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := g.r.ExpFloat64() * float64(mean)
	if d > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Fork derives an independent deterministic stream from this one. Use a fork
// per subsystem (workload, failures, mobility) so adding draws in one
// subsystem does not perturb the others.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}
