package sim

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerDispatchOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events fired out of scheduling order: %v", got)
	}
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(7*time.Millisecond, func() { at = s.Now() })
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if at != 7*time.Millisecond {
		t.Fatalf("handler observed Now()=%v, want 7ms", at)
	}
	if s.Now() != 7*time.Millisecond {
		t.Fatalf("final Now()=%v, want 7ms", s.Now())
	}
}

func TestSchedulerAfterIsRelative(t *testing.T) {
	s := NewScheduler()
	var second time.Duration
	s.At(4*time.Millisecond, func() {
		s.After(6*time.Millisecond, func() { second = s.Now() })
	})
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if second != 10*time.Millisecond {
		t.Fatalf("chained event fired at %v, want 10ms", second)
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*time.Millisecond, func() {})
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5*time.Millisecond, func() {})
}

func TestSchedulerNilHandlerPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	s.At(time.Millisecond, nil)
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	timer := s.At(time.Millisecond, func() { fired = true })
	if !timer.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !timer.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if timer.Active() {
		t.Fatal("canceled timer should not be active")
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestTimerCancelAfterFireIsNoop(t *testing.T) {
	s := NewScheduler()
	timer := s.At(time.Millisecond, func() {})
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if timer.Active() {
		t.Fatal("fired timer should not be active")
	}
	if timer.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var timer Timer
	if timer.Active() {
		t.Fatal("zero timer should be inactive")
	}
	if timer.Cancel() {
		t.Fatal("zero timer Cancel should report false")
	}
	if timer.At() != 0 {
		t.Fatal("zero timer At should be 0")
	}
	// Copies of a timer handle are interchangeable with the original.
	s := NewScheduler()
	orig := s.At(time.Millisecond, func() {})
	copied := orig
	if !copied.Cancel() {
		t.Fatal("copied handle should cancel the original's event")
	}
	if orig.Active() || orig.Cancel() {
		t.Fatal("original handle should observe the copy's cancel")
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	for _, at := range []time.Duration{1, 2, 3, 4, 5} {
		at := at * time.Millisecond
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.Run(3 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events by 3ms, want 3 (events at boundary must fire)", len(fired))
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now()=%v after Run(3ms)", s.Now())
	}
	if err := s.Run(10 * time.Millisecond); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunIntoPastFails(t *testing.T) {
	s := NewScheduler()
	s.At(5*time.Millisecond, func() {})
	if err := s.Run(5 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(time.Millisecond); err == nil {
		t.Fatal("Run into the past should fail")
	}
}

func TestStopInterruptsRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count == 5 {
			s.Stop()
		}
		s.After(time.Millisecond, reschedule)
	}
	s.After(time.Millisecond, reschedule)
	err := s.RunUntilIdle(0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunUntilIdle err=%v, want ErrStopped", err)
	}
	if count != 5 {
		t.Fatalf("dispatched %d events before stop, want 5", count)
	}
	// The scheduler is reusable after a stop.
	if err := s.Run(s.Now() + 2*time.Millisecond); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
}

func TestRunUntilIdleGuard(t *testing.T) {
	s := NewScheduler()
	var loop func()
	loop = func() { s.After(time.Microsecond, loop) }
	s.After(time.Microsecond, loop)
	if err := s.RunUntilIdle(100); err == nil {
		t.Fatal("runaway loop should trip the maxEvents guard")
	}
}

func TestLenCountsPending(t *testing.T) {
	s := NewScheduler()
	a := s.At(time.Millisecond, func() {})
	s.At(2*time.Millisecond, func() {})
	if got := s.Len(); got != 2 {
		t.Fatalf("Len()=%d, want 2", got)
	}
	a.Cancel()
	if got := s.Len(); got != 1 {
		t.Fatalf("Len()=%d after cancel, want 1", got)
	}
}

func TestDispatchedCounter(t *testing.T) {
	s := NewScheduler()
	for i := 1; i <= 4; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	canceled := s.At(5*time.Millisecond, func() {})
	canceled.Cancel()
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if s.Dispatched() != 4 {
		t.Fatalf("Dispatched()=%d, want 4 (canceled events do not count)", s.Dispatched())
	}
}

// TestSchedulerOrderProperty checks, for arbitrary schedules, that handlers
// observe a non-decreasing clock and that every non-canceled event fires
// exactly once.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		if len(offsets) > 256 {
			offsets = offsets[:256]
		}
		s := NewScheduler()
		var last time.Duration
		ordered := true
		fired := 0
		for _, off := range offsets {
			s.At(time.Duration(off)*time.Microsecond, func() {
				if s.Now() < last {
					ordered = false
				}
				last = s.Now()
				fired++
			})
		}
		if err := s.RunUntilIdle(0); err != nil {
			return false
		}
		return ordered && fired == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerCancelIsEager checks that Cancel removes the event from the
// pending set immediately and that the heap stays consistent under random
// interleaved schedules and cancels.
func TestSchedulerCancelIsEager(t *testing.T) {
	prop := func(offsets []uint16, cancelMask []bool) bool {
		if len(offsets) > 256 {
			offsets = offsets[:256]
		}
		s := NewScheduler()
		timers := make([]Timer, len(offsets))
		for i, off := range offsets {
			timers[i] = s.At(time.Duration(off)*time.Microsecond, func() {})
		}
		want := len(offsets)
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				if !timers[i].Cancel() {
					return false
				}
				want--
				if s.Len() != want {
					return false // cancel must shrink Len immediately
				}
			}
		}
		fired := 0
		prev := time.Duration(-1)
		for {
			at, ok := s.peek()
			if !ok {
				break
			}
			if at < prev {
				return false // heap order violated after removals
			}
			prev = at
			if !s.step() {
				return false
			}
			fired++
		}
		return fired == want && s.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerSteadyStateAllocFree asserts the schedule→dispatch hot path
// performs no heap allocation once the arena is warm — the regression guard
// behind the kernel's pooled-arena design (CI runs it explicitly).
func TestSchedulerSteadyStateAllocFree(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the arena, free list, and heap slice past the working set.
	for i := 0; i < 1024; i++ {
		s.After(time.Microsecond, fn)
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			s.After(time.Microsecond, fn)
		}
		if err := s.RunUntilIdle(0); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule→dispatch cycle allocated %.1f times, want 0", allocs)
	}
}

// TestTimerStaleAfterSlotReuse checks that a fired timer's handle stays
// inert even after its arena slot is recycled for a new event.
func TestTimerStaleAfterSlotReuse(t *testing.T) {
	s := NewScheduler()
	old := s.At(time.Millisecond, func() {})
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	// The freed slot is reused by the next schedule.
	fresh := s.At(2*time.Millisecond, func() {})
	if old.Active() {
		t.Fatal("stale handle reports active after slot reuse")
	}
	if old.Cancel() {
		t.Fatal("stale handle canceled the slot's new occupant")
	}
	if !fresh.Active() {
		t.Fatal("fresh timer should be active")
	}
	if old.At() != time.Millisecond {
		t.Fatalf("stale handle At()=%v, want its original 1ms", old.At())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
	if got := g.Uniform(5, 2); got != 5 {
		t.Fatalf("degenerate Uniform returned %v, want lo", got)
	}
}

func TestRNGUniformDurationBounds(t *testing.T) {
	g := NewRNG(2)
	lo, hi := 5*time.Millisecond, 15*time.Millisecond
	for i := 0; i < 10000; i++ {
		v := g.UniformDuration(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("UniformDuration out of range: %v", v)
		}
	}
	if got := g.UniformDuration(hi, lo); got != hi {
		t.Fatalf("degenerate UniformDuration returned %v, want lo arg", got)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.Exp(50)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Fatalf("Exp(50) sample mean %v, want ≈50", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Fatal("non-positive mean should return 0")
	}
}

func TestRNGExpDurationMean(t *testing.T) {
	g := NewRNG(4)
	const n = 100000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += g.ExpDuration(10 * time.Millisecond)
	}
	mean := sum / n
	if mean < 9500*time.Microsecond || mean > 10500*time.Microsecond {
		t.Fatalf("ExpDuration(10ms) sample mean %v, want ≈10ms", mean)
	}
	if g.ExpDuration(0) != 0 {
		t.Fatal("zero mean should return 0")
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.05) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.045 || p > 0.055 {
		t.Fatalf("Bool(0.05) hit rate %v, want ≈0.05", p)
	}
	if g.Bool(0) || g.Bool(-1) {
		t.Fatal("Bool(<=0) must be false")
	}
	if !g.Bool(1) || !g.Bool(2) {
		t.Fatal("Bool(>=1) must be true")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent1 := NewRNG(7)
	fork1 := parent1.Fork()
	seq1 := []float64{fork1.Float64(), fork1.Float64(), fork1.Float64()}

	parent2 := NewRNG(7)
	fork2 := parent2.Fork()
	// Draw extra values from parent2 after forking; the fork stream must not
	// be perturbed.
	parent2.Float64()
	parent2.Float64()
	seq2 := []float64{fork2.Float64(), fork2.Float64(), fork2.Float64()}

	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatal("fork stream depends on parent draws after forking")
		}
	}
}

func TestRNGPerm(t *testing.T) {
	g := NewRNG(8)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestSchedulerKernelStats covers the observability accessors: peak heap
// depth tracks the maximum simultaneously pending events and the arena
// high-water mark never shrinks below it.
func TestSchedulerKernelStats(t *testing.T) {
	s := NewScheduler()
	if s.PeakHeapDepth() != 0 || s.ArenaSize() != 0 {
		t.Fatalf("fresh scheduler: peak=%d arena=%d, want 0,0", s.PeakHeapDepth(), s.ArenaSize())
	}
	// Schedule 10 events at distinct times before running: all ten are
	// pending at once, so the peak must be exactly 10.
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if got := s.PeakHeapDepth(); got != 10 {
		t.Fatalf("PeakHeapDepth = %d, want 10", got)
	}
	if got := s.ArenaSize(); got < 10 {
		t.Fatalf("ArenaSize = %d, want >= 10 (arena never shrinks)", got)
	}

	// A chain of one-at-a-time events must not raise the peak: the heap
	// never holds more than one pending event.
	s2 := NewScheduler()
	var hops int
	var hop func()
	hop = func() {
		hops++
		if hops < 100 {
			s2.After(time.Millisecond, hop)
		}
	}
	s2.After(time.Millisecond, hop)
	if err := s2.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if got := s2.PeakHeapDepth(); got != 1 {
		t.Fatalf("chained PeakHeapDepth = %d, want 1", got)
	}
	if got := s2.Dispatched(); got != 100 {
		t.Fatalf("Dispatched = %d, want 100", got)
	}
}
