// job.go is the job lifecycle: one submitted campaign (or shard of one)
// running on the sweep pool, its finished points buffered as JSONL lines
// for streaming, its progress tracked by an obs.CampaignProgress
// registered in the process-wide registry, and — when the manager has a
// checkpoint root — its completions journaled write-ahead so a daemon
// restart resumes it byte-identically.
package service

import (
	"errors"
	"sync"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// JobState is a job's lifecycle position. Jobs start running (submission
// is execution) and end in exactly one of done, failed, or cancelled.
type JobState string

// Job states.
const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s != JobRunning }

// Job is one submitted campaign run. All exported methods are safe for
// concurrent use.
type Job struct {
	id   string
	spec JobSpec
	raw  []byte // submitted spec document, verbatim (persisted in the manifest)
	camp *campaign.Campaign
	rng  campaign.PointRange

	dir    string // per-job checkpoint directory; "" = memory-only
	resume bool   // journal may hold completions from a previous process

	progress   *obs.CampaignProgress
	unregister func()

	cancel     chan struct{}
	cancelOnce sync.Once

	mu     sync.Mutex
	state  JobState
	errMsg string
	lines  [][]byte      // one JSONL record per finished point, index order
	wake   chan struct{} // closed and replaced on every append/state change
}

// newJob builds a registered, not-yet-started job.
func newJob(id string, js JobSpec, raw []byte, c *campaign.Campaign, rng campaign.PointRange) *Job {
	rawCopy := make([]byte, len(raw))
	copy(rawCopy, raw)
	j := &Job{
		id:       id,
		spec:     js,
		raw:      rawCopy,
		camp:     c,
		rng:      rng,
		progress: obs.NewCampaignProgress(c.Spec.Name, rng.Hi-rng.Lo),
		cancel:   make(chan struct{}),
		state:    JobRunning,
		wake:     make(chan struct{}),
	}
	j.unregister = obs.DefaultRegistry.Register(j.progress)
	return j
}

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Range returns the contiguous point-index range this job owns.
func (j *Job) Range() campaign.PointRange { return j.rng }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure message of a failed job, "" otherwise.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// requestCancel closes the job's cancel channel (once): workers finish
// what is in flight, claim nothing new, and the job transitions to
// cancelled when the drain completes.
func (j *Job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// appendLine buffers one finished point's JSONL record and wakes every
// streaming reader.
func (j *Job) appendLine(p []byte) {
	line := make([]byte, len(p))
	copy(line, p)
	j.mu.Lock()
	j.lines = append(j.lines, line)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// setState moves the job to a terminal state and wakes readers.
func (j *Job) setState(s JobState, errMsg string) {
	j.mu.Lock()
	j.state = s
	j.errMsg = errMsg
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
	j.unregister()
}

// next returns the buffered records from offset on (aliasing the
// internal buffer — records are append-only and never mutated), the
// job's state, and a channel closed at the next append or state change.
// A streaming reader loops: drain records, and when the state is
// terminal stop, else wait on the channel.
func (j *Job) next(offset int) (recs [][]byte, state JobState, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.lines) {
		recs = j.lines[offset:]
	}
	return recs, j.state, j.wake
}

// lineWriter feeds a campaign.JSONLSink's output into the job's stream
// buffer; the sink writes exactly one full record per Write call.
type lineWriter struct{ j *Job }

func (w lineWriter) Write(p []byte) (int, error) {
	w.j.appendLine(p)
	return len(p), nil
}

// run executes the job to a terminal state. It is the goroutine body the
// manager starts; everything it does reuses the CLI path: the same
// campaign.Run, the same journal/cache/cancel wiring, the same JSONL
// serialization (so service streams are byte-identical to `campaign run`
// output for the same range).
func (j *Job) run(cfg Config) {
	sink := campaign.NewJSONLSink(lineWriter{j})
	opts := campaign.RunOptions{
		Workers:    cfg.Workers,
		SimWorkers: cfg.SimWorkers,
		Sinks:      []campaign.Sink{sink},
		Progress:   j.progress,
		Retry:      cfg.Retry,
		Run:        cfg.Run,
		Cache:      cfg.Cache,
		Cancel:     j.cancel,
		Range:      &j.rng,
	}
	if j.dir != "" {
		if j.resume {
			completed, err := j.camp.LoadCheckpoint(j.dir)
			if err != nil {
				j.setState(JobFailed, err.Error())
				return
			}
			opts.Completed = completed
		}
		journal, err := checkpoint.OpenJournal(j.dir, j.resume)
		if err != nil {
			j.setState(JobFailed, err.Error())
			return
		}
		defer journal.Close()
		opts.Journal = journal
	}
	_, err := j.camp.Run(opts)
	switch {
	case err == nil:
		j.setState(JobDone, "")
	case errors.Is(err, experiment.ErrCancelled):
		j.setState(JobCancelled, "")
	default:
		j.setState(JobFailed, err.Error())
	}
}

// JobStatus is the wire form of GET /v1/jobs/{id}: identity, lifecycle,
// shard geometry, and the live progress snapshot.
type JobStatus struct {
	ID       string   `json:"id"`
	Campaign string   `json:"campaign"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	// Shard is the submitted assignment, absent for whole-grid jobs.
	Shard *Shard `json:"shard,omitempty"`
	// Lo and Hi are the job's contiguous point-index range [Lo, Hi) in
	// the expanded grid; Points = Hi - Lo is what this job owns, Grid the
	// full campaign size.
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
	Points int `json:"points"`
	Grid   int `json:"grid"`
	// Streamed counts the result records buffered so far — the stream
	// offset a reconnecting client can resume from.
	Streamed int                  `json:"streamed"`
	Progress obs.ProgressSnapshot `json:"progress"`
}

// Status returns the job's current status snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	state, errMsg, streamed := j.state, j.errMsg, len(j.lines)
	j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		Campaign: j.camp.Spec.Name,
		State:    state,
		Error:    errMsg,
		Shard:    j.spec.Shard,
		Lo:       j.rng.Lo,
		Hi:       j.rng.Hi,
		Points:   j.rng.Hi - j.rng.Lo,
		Grid:     len(j.camp.Points),
		Streamed: streamed,
		Progress: j.progress.Snapshot(),
	}
}
