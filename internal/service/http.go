// http.go is the daemon's API surface (DESIGN.md §14):
//
//	POST   /v1/jobs              submit a campaign spec (+optional shard) → job status
//	GET    /v1/jobs              list jobs, submission order
//	GET    /v1/jobs/{id}         job status (state, range, progress)
//	GET    /v1/jobs/{id}/results JSONL result stream; SSE-framed when the
//	                             client sends Accept: text/event-stream,
//	                             resumable via Last-Event-ID (point index)
//	DELETE /v1/jobs/{id}         graceful cancel (drain in-flight points)
//	/debug/…                     obs debug endpoints (progress, vars, pprof)
//
// Streams follow the job: records buffered so far are sent immediately,
// then the connection stays open until the job reaches a terminal state.
// SSE event ids are absolute point indices in the expanded grid, so a
// reconnecting client resumes exactly where it dropped — across daemon
// restarts too, because the stream buffer is rebuilt from the write-ahead
// journal before the job continues.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// maxSpecBytes bounds a job submission body; campaign specs are small
// JSON documents, so anything beyond this is a client error.
const maxSpecBytes = 4 << 20

// NewHandler returns the daemon's HTTP handler over m: the /v1 job API
// plus the obs debug endpoints.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		j, err := m.Submit(body)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusCreated, j.Status())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		statuses := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			statuses[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{statuses})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		serveResults(w, r, j)
	})
	mux.Handle("/debug/", obs.DebugMux(nil))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "repro campaign service\n\nPOST   /v1/jobs\nGET    /v1/jobs\nGET    /v1/jobs/{id}\nGET    /v1/jobs/{id}/results\nDELETE /v1/jobs/{id}\n/debug/progress\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// serveResults streams the job's JSONL records: everything buffered, then
// live completions, until the job is terminal or the client disconnects.
// With Accept: text/event-stream the records are SSE-framed (event id =
// absolute point index, a terminal "end" event carrying the final state);
// otherwise the body is plain application/x-ndjson. Both modes accept
// ?from=<pointIndex> to skip records below that absolute index; SSE
// additionally honors Last-Event-ID (the standard reconnect header),
// which names the last index received, so streaming resumes after it.
func serveResults(w http.ResponseWriter, r *http.Request, j *Job) {
	offset := 0
	if from := r.URL.Query().Get("from"); from != "" {
		n, err := strconv.Atoi(from)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q: %w", from, err))
			return
		}
		offset = clampOffset(n, j.rng.Lo, j.rng.Hi)
	}
	sse := false
	for _, accept := range r.Header.Values("Accept") {
		if strings.Contains(accept, "text/event-stream") {
			sse = true
		}
	}
	if sse {
		if last := r.Header.Get("Last-Event-ID"); last != "" {
			n, err := strconv.Atoi(last)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad Last-Event-ID %q: %w", last, err))
				return
			}
			offset = clampOffset(n+1, j.rng.Lo, j.rng.Hi)
		}
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	ctx := r.Context()
	for {
		recs, state, changed := j.next(offset)
		for k, rec := range recs {
			if sse {
				if err := writeSSE(w, j.rng.Lo+offset+k, rec); err != nil {
					return
				}
			} else if _, err := w.Write(rec); err != nil {
				return
			}
		}
		offset += len(recs)
		flush()
		if state.Terminal() {
			if sse {
				writeSSEControl(w, "end", string(state))
				flush()
			}
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-changed:
		}
	}
}

// clampOffset converts an absolute point index into a stream offset
// inside the job's [lo, hi) range, clamped to [0, range size].
func clampOffset(pointIndex, lo, hi int) int {
	off := pointIndex - lo
	if off < 0 {
		return 0
	}
	if off > hi-lo {
		return hi - lo
	}
	return off
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
