package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/experiment"
)

// stubRun tags each result with its scenario, no simulation — the same
// stub the campaign runner tests use, so byte-identity assertions hold
// across packages.
func stubRun(sc experiment.Scenario) (experiment.Result, error) {
	return experiment.Result{Items: sc.Nodes, EnergyPerPacket: float64(sc.Seed)}, nil
}

// waitTerminal blocks (on the job's wake channel, no polling) until the
// job reaches a terminal state and returns it.
func waitTerminal(t *testing.T, j *Job) JobState {
	t.Helper()
	for {
		_, state, changed := j.next(0)
		if state.Terminal() {
			return state
		}
		<-changed
	}
}

// streamBytes concatenates the job's buffered JSONL records.
func streamBytes(j *Job) []byte {
	recs, _, _ := j.next(0)
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(r)
	}
	return buf.Bytes()
}

// referenceBytes runs the whole test grid in one memory-only job and
// returns its JSONL stream — the byte-identity reference.
func referenceBytes(t *testing.T) []byte {
	t.Helper()
	m := NewManager(Config{Run: stubRun})
	j, err := m.Submit([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if state := waitTerminal(t, j); state != JobDone {
		t.Fatalf("reference job state = %s, err %q", state, j.Err())
	}
	return streamBytes(j)
}

func TestSubmitRunsToDone(t *testing.T) {
	m := NewManager(Config{Run: stubRun})
	j, err := m.Submit([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if state := waitTerminal(t, j); state != JobDone {
		t.Fatalf("state = %s, err %q", state, j.Err())
	}
	st := j.Status()
	if st.Grid != 12 || st.Points != 12 || st.Streamed != 12 || st.Lo != 0 || st.Hi != 12 {
		t.Fatalf("status = %+v, want 12-point whole grid fully streamed", st)
	}
	lines := bytes.Count(streamBytes(j), []byte("\n"))
	if lines != 12 {
		t.Fatalf("%d JSONL lines, want 12", lines)
	}
	if got := m.Jobs(); len(got) != 1 || got[0] != j {
		t.Fatalf("Jobs() = %v", got)
	}
}

// TestShardedByteIdentical is the shard determinism contract end to end:
// two shard jobs of the same spec, sharing one content-addressed cache,
// concatenate — in shard order — to exactly the bytes of a single
// whole-grid run.
func TestShardedByteIdentical(t *testing.T) {
	want := referenceBytes(t)

	cache, err := checkpoint.OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	m := NewManager(Config{Run: stubRun, Cache: cache, Workers: 3})
	var parts [][]byte
	for i := 0; i < 2; i++ {
		raw := strings.Replace(testSpecJSON,
			`"name":`, fmt.Sprintf(`"shard": {"index": %d, "count": 2}, "name":`, i), 1)
		j, err := m.Submit([]byte(raw))
		if err != nil {
			t.Fatalf("Submit shard %d: %v", i, err)
		}
		if state := waitTerminal(t, j); state != JobDone {
			t.Fatalf("shard %d state = %s, err %q", i, state, j.Err())
		}
		st := j.Status()
		if st.Points != 6 || st.Streamed != 6 {
			t.Fatalf("shard %d status = %+v, want 6 of 12 points", i, st)
		}
		parts = append(parts, streamBytes(j))
	}
	got := bytes.Join(parts, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("concatenated shard output diverges from single-run output:\nshards:\n%s\nsingle:\n%s", got, want)
	}
}

// TestRecoverResumesKilledJob is the daemon-restart contract: a job is
// cancelled mid-flight (standing in for a killed daemon — the journal
// state is identical), a second manager over the same checkpoint root
// recovers it, executes only the missing points, and the recovered stream
// is byte-identical to an uninterrupted run.
func TestRecoverResumesKilledJob(t *testing.T) {
	want := referenceBytes(t)
	root := t.TempDir()

	// First daemon: the executor completes four points, then blocks —
	// freezing the job mid-flight with a partial journal.
	gate := make(chan struct{})
	var calls atomic.Int32
	blockingRun := func(sc experiment.Scenario) (experiment.Result, error) {
		if calls.Add(1) > 4 {
			<-gate
		}
		return stubRun(sc)
	}
	m1 := NewManager(Config{CheckpointRoot: root, Run: blockingRun, Workers: 2})
	j1, err := m1.Submit([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for { // wait until the first four points are streamed (and journaled)
		recs, state, changed := j1.next(0)
		if state.Terminal() {
			t.Fatalf("job finished before it could be interrupted (state %s)", state)
		}
		if len(recs) >= 4 {
			break
		}
		<-changed
	}
	if _, err := m1.Cancel(j1.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(gate) // release the blocked in-flight points so the drain finishes
	m1.Drain()
	if state := j1.State(); state != JobCancelled {
		t.Fatalf("interrupted job state = %s, want %s", state, JobCancelled)
	}
	if got := len(streamBytes(j1)); got == 0 || got >= len(want) {
		t.Fatalf("interrupted job streamed %d bytes, want partial (0 < n < %d)", got, len(want))
	}

	// Rejected while draining.
	if _, err := m1.Submit([]byte(testSpecJSON)); err != ErrDraining {
		t.Fatalf("Submit while draining: err = %v, want ErrDraining", err)
	}

	// Second daemon over the same root: Recover restarts the job from its
	// journal and runs it to done.
	m2 := NewManager(Config{CheckpointRoot: root, Run: stubRun, Workers: 2})
	recovered, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recovered) != 1 || recovered[0].ID() != j1.ID() {
		t.Fatalf("recovered %v, want exactly job %s", recovered, j1.ID())
	}
	j2 := recovered[0]
	if state := waitTerminal(t, j2); state != JobDone {
		t.Fatalf("recovered job state = %s, err %q", state, j2.Err())
	}
	if got := streamBytes(j2); !bytes.Equal(got, want) {
		t.Fatalf("recovered stream diverges from uninterrupted run:\nrecovered:\n%s\nreference:\n%s", got, want)
	}

	// A fresh submission on the recovered manager must not collide with
	// the recovered id's sequence number.
	j3, err := m2.Submit([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("Submit after recover: %v", err)
	}
	if j3.ID() == j2.ID() {
		t.Fatalf("fresh submission reused recovered job id %s", j3.ID())
	}
	waitTerminal(t, j3)
	m2.Drain()
}

// sseEvent is one parsed SSE event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// parseSSE splits an event-stream body into events.
func parseSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseEvent{}) {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return events
}

func TestHTTPJobLifecycle(t *testing.T) {
	want := referenceBytes(t)

	m := NewManager(Config{Run: stubRun})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	defer m.Drain()

	// Submit.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d, want 201", resp.StatusCode)
	}
	if st.ID == "" || st.Grid != 12 {
		t.Fatalf("submitted status = %+v", st)
	}

	j, ok := m.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not in manager", st.ID)
	}
	waitTerminal(t, j)

	// Status.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if st.State != JobDone || st.Streamed != 12 {
		t.Fatalf("status = %+v, want done with 12 streamed", st)
	}

	// Plain JSONL stream: byte-identical to the CLI-path reference.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("streamed body diverges from reference:\ngot:\n%s\nwant:\n%s", body, want)
	}

	// SSE stream: same records framed as events, ids are point indices,
	// terminated by an "end" control event carrying the state.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/results", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET SSE: %v", err)
	}
	events := parseSSE(t, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	if len(events) != 13 {
		t.Fatalf("%d SSE events, want 12 records + end", len(events))
	}
	var rebuilt bytes.Buffer
	for i, ev := range events[:12] {
		if ev.id != fmt.Sprint(i) {
			t.Fatalf("event %d has id %q", i, ev.id)
		}
		rebuilt.WriteString(ev.data)
		rebuilt.WriteByte('\n')
	}
	if !bytes.Equal(rebuilt.Bytes(), want) {
		t.Fatalf("SSE data diverges from reference")
	}
	if end := events[12]; end.event != "end" || end.data != string(JobDone) {
		t.Fatalf("terminal event = %+v, want end/done", end)
	}

	// Reconnect with Last-Event-ID resumes after the named point.
	req, _ = http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/results", nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET SSE resume: %v", err)
	}
	events = parseSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) != 5 { // points 8..11 + end
		t.Fatalf("%d resumed events, want 5", len(events))
	}
	if events[0].id != "8" {
		t.Fatalf("resumed stream starts at id %q, want 8", events[0].id)
	}

	// List.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	// Error paths.
	resp, _ = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHTTPCancelDrains exercises DELETE: the response is 202, in-flight
// points finish, and the job lands in cancelled with a partial stream.
func TestHTTPCancelDrains(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int32
	blockingRun := func(sc experiment.Scenario) (experiment.Result, error) {
		if calls.Add(1) > 2 {
			<-gate
		}
		return stubRun(sc)
	}
	m := NewManager(Config{Run: blockingRun, Workers: 2})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	j, _ := m.Get(st.ID)
	for { // let it make some progress first
		recs, _, changed := j.next(0)
		if len(recs) >= 2 {
			break
		}
		<-changed
	}

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d, want 202", resp.StatusCode)
	}
	close(gate)
	if state := waitTerminal(t, j); state != JobCancelled {
		t.Fatalf("state after DELETE = %s, want %s", state, JobCancelled)
	}
	if st := j.Status(); st.Streamed == 0 || st.Streamed >= 12 {
		t.Fatalf("cancelled job streamed %d, want a partial prefix", st.Streamed)
	}
	m.Drain()

	// A draining manager refuses new submissions over HTTP with 503.
	resp, _ = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(testSpecJSON))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit-while-draining status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestLiveSSEFollowsJob verifies the stream stays open on a running job
// and delivers records as they complete, not just after the fact.
func TestLiveSSEFollowsJob(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int32
	gatedRun := func(sc experiment.Scenario) (experiment.Result, error) {
		if calls.Add(1) > 3 {
			<-gate
		}
		return stubRun(sc)
	}
	m := NewManager(Config{Run: gatedRun, Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	defer m.Drain()

	j, err := m.Submit([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+j.ID()+"/results", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET SSE: %v", err)
	}
	defer resp.Body.Close()

	// The first three records arrive while the job is still running.
	br := bufio.NewReader(resp.Body)
	seen := 0
	for seen < 3 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			seen++
		}
	}
	if state := j.State(); state != JobRunning {
		t.Fatalf("job already %s after 3 records — stream did not follow a live job", state)
	}
	close(gate) // let the job finish; the stream must end with "end"
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("drain SSE: %v", err)
	}
	if !strings.Contains(string(rest), "event: end") {
		t.Fatalf("stream did not terminate with an end event:\n%s", rest)
	}
}
