// spec.go parses job submissions: a campaign spec document optionally
// carrying a shard assignment. The shard key is peeled off and the rest
// of the document goes through campaign.ParseSpec's strict decoding, so a
// typoed axis in a service submission fails exactly like it would in a
// spec file handed to the CLI.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
)

// Shard is a job's slice of its campaign grid: this process runs shard
// Index of Count. The mapping to point indices is
// campaign.ShardRange(points, Index, Count) — balanced contiguous ranges
// covering the grid exactly, so concatenating the n shards' JSONL in
// index order reproduces the single-process byte stream.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// String renders "i/n".
func (s *Shard) String() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// validate rejects impossible assignments; a nil shard (the whole grid)
// is valid.
func (s *Shard) validate() error {
	if s == nil {
		return nil
	}
	if s.Count < 1 {
		return fmt.Errorf("service: shard count %d, want >= 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("service: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// pointRange maps the shard onto an n-point grid; a nil shard owns the
// whole grid.
func (s *Shard) pointRange(points int) campaign.PointRange {
	if s == nil {
		return campaign.PointRange{Lo: 0, Hi: points}
	}
	return campaign.ShardRange(points, s.Index, s.Count)
}

// JobSpec is one parsed job submission: the campaign spec plus the
// optional shard assignment.
type JobSpec struct {
	Spec  campaign.Spec
	Shard *Shard
}

// ParseJobSpec decodes a job submission: a campaign spec document, plus
// an optional top-level "shard" object. Everything except the shard key
// is parsed by campaign.ParseSpec, strict unknown-field rejection
// included.
func ParseJobSpec(raw []byte) (JobSpec, error) {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return JobSpec{}, fmt.Errorf("service: parse job spec: %w", err)
	}
	var shard *Shard
	if sh, ok := fields["shard"]; ok {
		dec := json.NewDecoder(bytes.NewReader(sh))
		dec.DisallowUnknownFields()
		shard = new(Shard)
		if err := dec.Decode(shard); err != nil {
			return JobSpec{}, fmt.Errorf("service: parse shard: %w", err)
		}
		if err := shard.validate(); err != nil {
			return JobSpec{}, err
		}
		delete(fields, "shard")
	}
	// Re-marshaling the field map (minus the shard) loses key order but
	// nothing else; campaign.ParseSpec still sees every unknown key.
	specData, err := json.Marshal(fields)
	if err != nil {
		return JobSpec{}, fmt.Errorf("service: job spec: %w", err)
	}
	spec, err := campaign.ParseSpec(bytes.NewReader(specData))
	if err != nil {
		return JobSpec{}, err
	}
	return JobSpec{Spec: spec, Shard: shard}, nil
}
