// sse.go frames the result stream as Server-Sent Events. The framing is
// deliberately minimal — one "id:" line carrying the absolute point index
// and one "data:" line carrying the JSONL record — because the records
// are single-line JSON by construction (campaign.JSONLSink marshals each
// one with encoding/json, which never emits raw newlines), so no
// multi-line data splitting is ever needed.
package service

import (
	"bytes"
	"fmt"
	"io"
)

// writeSSE emits one result record as an SSE event: the event id is the
// absolute point index in the expanded grid (what a reconnecting client
// echoes back as Last-Event-ID), the data the JSONL record without its
// trailing newline.
func writeSSE(w io.Writer, pointIndex int, rec []byte) error {
	_, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", pointIndex, bytes.TrimRight(rec, "\n"))
	return err
}

// writeSSEControl emits a named control event (e.g. "end" carrying the
// job's terminal state), distinguishable from result records because
// those are sent with the default event type.
func writeSSEControl(w io.Writer, event, data string) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
