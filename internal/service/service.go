// Package service is the campaign service shell (DESIGN.md §14): the
// long-running daemon behind `campaign serve`. It accepts campaign specs
// over HTTP (POST /v1/jobs → job id), runs them on the existing sweep
// pool, and streams finished points back as JSONL — plain or SSE-framed —
// while every durability property of the CLI path carries over unchanged:
// per-job write-ahead journals make jobs resumable across daemon
// restarts, the content-addressed result cache is shared across jobs and
// campaigns, and a drain (DELETE, or process shutdown) finishes in-flight
// points instead of dropping them.
//
// Sharding rides the determinism contract: a job spec may carry
// {"shard": {"index": i, "count": n}}, which maps to the balanced
// contiguous point-index range campaign.ShardRange(points, i, n). Because
// grid expansion is deterministic and sinks observe points in index
// order, n daemon processes each running one shard of the same spec
// produce — concatenated in shard order — byte-identical JSONL to a
// single process running the whole grid.
//
// The package contains no wall-clock, environment, or random inputs of
// its own (it sits in the repolint deterministic set): all timing lives
// in the obs progress trackers and the http server owned by cmd/campaign,
// and all durability barriers live in internal/checkpoint.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/experiment"
)

// Config configures a Manager. The zero value is a memory-only manager:
// no durability, default pool sizes.
type Config struct {
	// CheckpointRoot, when non-empty, gives every job its own directory
	// under it — a job manifest (job.json, the submitted spec verbatim)
	// plus the write-ahead journal — making every job resumable across
	// daemon restarts via Recover. Empty means jobs live only in memory.
	CheckpointRoot string
	// Cache, when non-nil, is the content-addressed result cache shared
	// by every job (and by any CLI run pointed at the same directory).
	Cache *checkpoint.Cache
	// Workers bounds each job's sweep pool; zero means one per core.
	// Concurrent jobs each get their own pool.
	Workers int
	// SimWorkers bounds the data-parallel kernels inside each simulation.
	SimWorkers int
	// Retry re-executes failed trials, as in campaign.RunOptions.
	Retry campaign.RetryPolicy
	// Run overrides the per-trial executor (tests); nil means the real
	// simulation (experiment.RunWith with SimWorkers).
	Run func(experiment.Scenario) (experiment.Result, error)
}

// Manager owns the daemon's jobs: submission, lookup, cancellation,
// recovery, and drain. All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order
	seq      int      // next job sequence number
	draining bool
	wg       sync.WaitGroup
}

// NewManager returns a manager over cfg. Call Recover next if
// cfg.CheckpointRoot may hold jobs from a previous process.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg, jobs: make(map[string]*Job)}
}

// jobFile is the persisted job manifest: the id plus the submitted job
// spec verbatim, so recovery re-parses exactly what the client sent.
type jobFile struct {
	ID   string `json:"id"`
	Spec string `json:"spec"`
}

// manifestName is the job manifest file inside a job's checkpoint dir.
const manifestName = "job.json"

// Submit parses raw (a campaign spec, optionally carrying a shard
// assignment), registers it as a new job, and starts it. The returned
// job is already running; poll it via Status or stream its results.
func (m *Manager) Submit(raw []byte) (*Job, error) {
	js, err := ParseJobSpec(raw)
	if err != nil {
		return nil, err
	}
	c, err := campaign.Expand(js.Spec)
	if err != nil {
		return nil, err
	}
	rng := js.Shard.pointRange(len(c.Points))

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.seq++
	id := jobID(m.seq, js)
	j := newJob(id, js, raw, c, rng)
	if m.cfg.CheckpointRoot != "" {
		j.dir = filepath.Join(m.cfg.CheckpointRoot, id)
		if err := persistManifest(j); err != nil {
			m.seq--
			m.mu.Unlock()
			return nil, err
		}
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.start(j)
	m.mu.Unlock()
	return j, nil
}

// ErrDraining rejects submissions to a manager that is shutting down.
var ErrDraining = errors.New("service: draining, not accepting new jobs")

// jobID mints a stable, path-safe job id: a sequence number, the campaign
// name, and the shard assignment if any (e.g. "j0003-stress-quick-s0of2").
func jobID(seq int, js JobSpec) string {
	id := fmt.Sprintf("j%04d-%s", seq, sanitize(js.Spec.Name))
	if js.Shard != nil {
		id += fmt.Sprintf("-s%dof%d", js.Shard.Index, js.Shard.Count)
	}
	return id
}

// sanitize maps a campaign name onto the path-safe alphabet used in job
// ids and checkpoint directory names.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "campaign"
	}
	return b.String()
}

// persistManifest writes the job manifest into its (created) checkpoint
// directory, atomically, so a recovery scan never sees a torn manifest.
func persistManifest(j *Job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("service: create job dir: %w", err)
	}
	data, err := json.MarshalIndent(jobFile{ID: j.id, Spec: string(j.raw)}, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode manifest %s: %w", j.id, err)
	}
	if err := checkpoint.WriteFileAtomic(filepath.Join(j.dir, manifestName), data); err != nil {
		return fmt.Errorf("service: persist manifest %s: %w", j.id, err)
	}
	return nil
}

// start launches the job's runner goroutine. Caller holds m.mu.
func (m *Manager) start(j *Job) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		j.run(m.cfg)
	}()
}

// Recover scans CheckpointRoot for jobs persisted by a previous daemon
// process and restarts each one from its journal: fully-journaled jobs
// replay straight to done (their result stream becomes servable again),
// partial jobs execute only their missing points — the same byte-identical
// resume contract as `campaign run -resume` (DESIGN.md §13). It returns
// the recovered jobs in directory order. Call once, before serving.
func (m *Manager) Recover() ([]*Job, error) {
	if m.cfg.CheckpointRoot == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(m.cfg.CheckpointRoot)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: scan checkpoint root: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var recovered []*Job
	for _, name := range names {
		dir := filepath.Join(m.cfg.CheckpointRoot, name)
		data, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a job dir
			}
			return recovered, fmt.Errorf("service: read manifest in %s: %w", dir, err)
		}
		var mf jobFile
		if err := json.Unmarshal(data, &mf); err != nil {
			return recovered, fmt.Errorf("service: manifest in %s corrupt: %w", dir, err)
		}
		raw := []byte(mf.Spec)
		js, err := ParseJobSpec(raw)
		if err != nil {
			return recovered, fmt.Errorf("service: job %s spec: %w", mf.ID, err)
		}
		c, err := campaign.Expand(js.Spec)
		if err != nil {
			return recovered, fmt.Errorf("service: job %s: %w", mf.ID, err)
		}
		rng := js.Shard.pointRange(len(c.Points))

		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return recovered, ErrDraining
		}
		if _, exists := m.jobs[mf.ID]; exists {
			m.mu.Unlock()
			return recovered, fmt.Errorf("service: duplicate job id %s in checkpoint root", mf.ID)
		}
		j := newJob(mf.ID, js, raw, c, rng)
		j.dir = dir
		j.resume = true
		if seq := seqOf(mf.ID); seq > m.seq {
			m.seq = seq
		}
		m.jobs[mf.ID] = j
		m.order = append(m.order, mf.ID)
		m.start(j)
		m.mu.Unlock()
		recovered = append(recovered, j)
	}
	return recovered, nil
}

// seqOf extracts the sequence number from a job id ("j0042-…" → 42), so
// recovered ids and fresh submissions never collide. Unparseable ids
// contribute 0.
func seqOf(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n := 0
	for i := 1; i < len(id); i++ {
		ch := id[i]
		if ch == '-' {
			return n
		}
		if ch < '0' || ch > '9' {
			return 0
		}
		n = n*10 + int(ch-'0')
	}
	return n
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order (recovered jobs first, in
// directory order).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, len(m.order))
	for i, id := range m.order {
		out[i] = m.jobs[id]
	}
	return out
}

// Cancel requests a graceful stop of the job: its workers finish (and
// journal) the points already in flight, then the job transitions to
// cancelled. Idempotent; cancelling a finished job is a no-op. The
// returned job lets the caller observe the drain.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("service: no job %s", id)
	}
	j.requestCancel()
	return j, nil
}

// Drain gracefully stops every job — in-flight points finish and are
// journaled, nothing new is claimed — rejects further submissions, and
// waits for all job runners to exit. Safe to call more than once.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	for _, id := range m.order {
		m.jobs[id].requestCancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
}
