package service

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestShardRange is the shard contract: for any grid size and shard
// count, the ranges are contiguous, cover the grid exactly, and are
// balanced to within one point.
func TestShardRange(t *testing.T) {
	for _, points := range []int{0, 1, 2, 5, 12, 16, 97, 100} {
		for count := 1; count <= 6; count++ {
			prev := 0
			for i := 0; i < count; i++ {
				r := campaign.ShardRange(points, i, count)
				if r.Lo != prev {
					t.Fatalf("points=%d count=%d: shard %d starts at %d, want %d (gap or overlap)", points, count, i, r.Lo, prev)
				}
				if r.Hi < r.Lo {
					t.Fatalf("points=%d count=%d: shard %d inverted [%d,%d)", points, count, i, r.Lo, r.Hi)
				}
				size := r.Hi - r.Lo
				if min, max := points/count, (points+count-1)/count; size < min || size > max {
					t.Fatalf("points=%d count=%d: shard %d has %d points, want %d or %d", points, count, i, size, min, max)
				}
				prev = r.Hi
			}
			if prev != points {
				t.Fatalf("points=%d count=%d: shards end at %d, want %d", points, count, prev, points)
			}
		}
	}
}

func TestShardValidate(t *testing.T) {
	cases := []struct {
		shard *Shard
		ok    bool
	}{
		{nil, true},
		{&Shard{Index: 0, Count: 1}, true},
		{&Shard{Index: 2, Count: 3}, true},
		{&Shard{Index: 0, Count: 0}, false},
		{&Shard{Index: -1, Count: 2}, false},
		{&Shard{Index: 2, Count: 2}, false},
	}
	for _, c := range cases {
		err := c.shard.validate()
		if (err == nil) != c.ok {
			t.Errorf("validate(%s): err=%v, want ok=%v", c.shard, err, c.ok)
		}
	}
}

const testSpecJSON = `{
	"name": "svc-grid",
	"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
	"axes": {
		"protocol": ["spms", "spin"],
		"nodes": [25, 49, 100],
		"seed": {"count": 2}
	}
}`

func TestParseJobSpec(t *testing.T) {
	t.Run("no shard", func(t *testing.T) {
		js, err := ParseJobSpec([]byte(testSpecJSON))
		if err != nil {
			t.Fatalf("ParseJobSpec: %v", err)
		}
		if js.Shard != nil {
			t.Fatalf("shard = %s, want nil", js.Shard)
		}
		if js.Spec.Name != "svc-grid" {
			t.Fatalf("name = %q", js.Spec.Name)
		}
	})
	t.Run("with shard", func(t *testing.T) {
		raw := strings.Replace(testSpecJSON, `"name":`, `"shard": {"index": 1, "count": 2}, "name":`, 1)
		js, err := ParseJobSpec([]byte(raw))
		if err != nil {
			t.Fatalf("ParseJobSpec: %v", err)
		}
		if js.Shard == nil || js.Shard.Index != 1 || js.Shard.Count != 2 {
			t.Fatalf("shard = %s, want 1/2", js.Shard)
		}
		if js.Spec.Name != "svc-grid" {
			t.Fatalf("name = %q", js.Spec.Name)
		}
	})
	t.Run("unknown top-level field still rejected", func(t *testing.T) {
		raw := strings.Replace(testSpecJSON, `"name":`, `"sahrd": {"index": 0, "count": 2}, "name":`, 1)
		if _, err := ParseJobSpec([]byte(raw)); err == nil {
			t.Fatal("misspelled shard key accepted — strict spec parsing lost")
		}
	})
	t.Run("unknown shard field rejected", func(t *testing.T) {
		raw := strings.Replace(testSpecJSON, `"name":`, `"shard": {"index": 0, "count": 2, "of": 3}, "name":`, 1)
		if _, err := ParseJobSpec([]byte(raw)); err == nil {
			t.Fatal("unknown shard field accepted")
		}
	})
	t.Run("invalid shard rejected", func(t *testing.T) {
		raw := strings.Replace(testSpecJSON, `"name":`, `"shard": {"index": 5, "count": 2}, "name":`, 1)
		if _, err := ParseJobSpec([]byte(raw)); err == nil {
			t.Fatal("out-of-range shard accepted")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, err := ParseJobSpec([]byte("not json")); err == nil {
			t.Fatal("garbage accepted")
		}
	})
}

func TestJobID(t *testing.T) {
	js, err := ParseJobSpec([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("ParseJobSpec: %v", err)
	}
	if got := jobID(3, js); got != "j0003-svc-grid" {
		t.Errorf("jobID = %q", got)
	}
	js.Shard = &Shard{Index: 1, Count: 2}
	if got := jobID(12, js); got != "j0012-svc-grid-s1of2" {
		t.Errorf("sharded jobID = %q", got)
	}
}

func TestSanitize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"stress-quick", "stress-quick"},
		{"a b/c", "a-b-c"},
		{"", "campaign"},
		{"Ü.x_9", "-.x_9"},
	}
	for _, c := range cases {
		if got := sanitize(c.in); got != c.want {
			t.Errorf("sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeqOf(t *testing.T) {
	cases := []struct {
		id   string
		want int
	}{
		{"j0042-stress", 42},
		{"j0003-svc-grid-s1of2", 3},
		{"j7", 7},
		{"x0042-foo", 0},
		{"j00x2-foo", 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := seqOf(c.id); got != c.want {
			t.Errorf("seqOf(%q) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestClampOffset(t *testing.T) {
	cases := []struct {
		pointIndex, lo, hi, want int
	}{
		{0, 0, 12, 0},
		{5, 0, 12, 5},
		{12, 0, 12, 12},
		{99, 0, 12, 12},
		{-3, 0, 12, 0},
		{6, 6, 12, 0},
		{8, 6, 12, 2},
		{2, 6, 12, 0},
	}
	for _, c := range cases {
		if got := clampOffset(c.pointIndex, c.lo, c.hi); got != c.want {
			t.Errorf("clampOffset(%d, %d, %d) = %d, want %d", c.pointIndex, c.lo, c.hi, got, c.want)
		}
	}
}
