// Package flood implements classic flooding, the baseline protocol the
// paper's introduction describes: "each node retransmits the data it
// receives to all its neighbors, except the neighbor that it received the
// data from". It keeps no negotiation state and suffers the implosion
// problem SPIN and SPMS exist to fix; it is included as the reference point
// for the energy comparisons.
package flood

import (
	"fmt"
	"time"

	"repro/internal/dissem"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
)

// System is one flooding network.
type System struct {
	nw     *network.Network
	ledger *dissem.Ledger
	// interest only affects delivery accounting: flooding transmits to
	// everyone regardless of interest.
	interest dissem.Interest
	proc     time.Duration
	nodes    []node
}

var _ dissem.Protocol = (*System)(nil)

// NewSystem builds the flooding instances and binds them to the network.
// proc is the per-packet processing delay (Table 1: 0.02 ms).
func NewSystem(nw *network.Network, ledger *dissem.Ledger, interest dissem.Interest, proc time.Duration) (*System, error) {
	if nw == nil || ledger == nil || interest == nil {
		return nil, fmt.Errorf("flood: nil dependency (nw=%v ledger=%v interest=%v)",
			nw != nil, ledger != nil, interest != nil)
	}
	if proc < 0 {
		return nil, fmt.Errorf("flood: negative processing delay %v", proc)
	}
	s := &System{nw: nw, ledger: ledger, interest: interest, proc: proc}
	nw.DeferProcessing(proc)
	// Nodes live in one contiguous slice (allocated once, never grown), so
	// per-node state is a flat array walk rather than a pointer chase.
	s.nodes = make([]node, nw.N())
	for i := range s.nodes {
		n := &s.nodes[i]
		n.sys = s
		n.id = packet.NodeID(i)
		nw.Bind(n.id, n)
	}
	return s, nil
}

// Originate implements dissem.Protocol: the origin broadcasts the full DATA
// packet to its neighborhood at maximum power.
func (s *System) Originate(src packet.NodeID, d packet.DataID) error {
	if src != d.Origin {
		return fmt.Errorf("flood: originate %v at wrong node %d", d, src)
	}
	if src < 0 || int(src) >= len(s.nodes) {
		return fmt.Errorf("flood: origin node %d out of range", src)
	}
	if !s.nw.Alive(src) {
		return fmt.Errorf("flood: origin node %d is down", src)
	}
	if err := s.ledger.Originate(d, s.nw.Scheduler().Now()); err != nil {
		return err
	}
	n := &s.nodes[src]
	n.setSeen(s.ledger.Index(d))
	n.rebroadcast(d)
	return nil
}

// Has reports whether node id has seen d (test hook).
func (s *System) Has(id packet.NodeID, d packet.DataID) bool {
	if id < 0 || int(id) >= len(s.nodes) {
		panic(fmt.Sprintf("flood: node id %d out of range", id))
	}
	return s.nodes[id].seenItem(s.ledger.Index(d))
}

// node keeps its seen set as a flat slice indexed by the ledger's dense
// item index (dissem.Ledger.Index) — see the matching layout in
// internal/core.
type node struct {
	sys  *System
	id   packet.NodeID
	seen []bool
}

// seenItem reports whether this node already received item it.
func (n *node) seenItem(it int) bool { return it >= 0 && it < len(n.seen) && n.seen[it] }

// setSeen marks item it as received (no-op for unregistered items).
func (n *node) setSeen(it int) {
	if it < 0 {
		return
	}
	n.seen = dissem.GrowItems(n.seen, it, n.sys.ledger.Originated())
	n.seen[it] = true
}

var _ network.Receiver = (*node)(nil)

// HandlePacket runs the flooding reaction. The processing delay is applied
// by the network's batched deferred dispatch (DeferProcessing in NewSystem),
// which also re-checks liveness before calling here.
func (n *node) HandlePacket(p packet.Packet) {
	if p.Kind != packet.DATA {
		panic(fmt.Sprintf("flood: node %d received unexpected %v", n.id, p.Kind))
	}
	d := p.Meta
	it := n.sys.ledger.Index(d)
	if n.seenItem(it) {
		n.sys.nw.Counters().Duplicates++
		return // rebroadcast only the first copy
	}
	n.setSeen(it)
	if n.sys.interest(n.id, d) &&
		n.sys.ledger.RecordDelivery(n.id, d, n.sys.nw.Scheduler().Now()) {
		n.sys.nw.Counters().Delivered++
	}
	n.rebroadcast(d)
}

func (n *node) rebroadcast(d packet.DataID) {
	n.sys.nw.Send(packet.Packet{
		Kind:  packet.DATA,
		Meta:  d,
		Src:   n.id,
		Dst:   packet.Broadcast,
		Level: radio.MaxPower,
	})
}
