package flood

import (
	"testing"
	"time"

	"repro/internal/dissem"
	"repro/internal/mac"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topo"
)

type fixture struct {
	sched  *sim.Scheduler
	nw     *network.Network
	ledger *dissem.Ledger
	sys    *System
}

func newFixture(t *testing.T, n int, zoneRadius float64) *fixture {
	t.Helper()
	sched := sim.NewScheduler()
	m, err := radio.ScaledMICA2(zoneRadius)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewGridField(n, 5, m)
	if err != nil {
		t.Fatalf("NewGridField: %v", err)
	}
	nw, err := network.New(sched, f, sim.NewRNG(2), network.Config{
		Sizes: packet.DefaultSizes(),
		MAC:   mac.DefaultConfig(),
	})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	ledger := dissem.NewLedger()
	sys, err := NewSystem(nw, ledger, dissem.Everyone, 20*time.Microsecond)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return &fixture{sched: sched, nw: nw, ledger: ledger, sys: sys}
}

func TestNewSystemValidation(t *testing.T) {
	fx := newFixture(t, 4, 10)
	if _, err := NewSystem(nil, fx.ledger, dissem.Everyone, 0); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewSystem(fx.nw, nil, dissem.Everyone, 0); err == nil {
		t.Fatal("nil ledger accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, nil, 0); err == nil {
		t.Fatal("nil interest accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, dissem.Everyone, -time.Millisecond); err == nil {
		t.Fatal("negative proc accepted")
	}
}

func TestFloodReachesEveryone(t *testing.T) {
	fx := newFixture(t, 25, 10)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := fx.sched.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for id := 0; id < 25; id++ {
		if !fx.sys.Has(packet.NodeID(id), d) {
			t.Fatalf("node %d never flooded", id)
		}
	}
	if fx.ledger.Deliveries() != 24 {
		t.Fatalf("Deliveries=%d, want 24", fx.ledger.Deliveries())
	}
}

func TestFloodImplosion(t *testing.T) {
	// Duplicates are the hallmark of flooding: with 25 densely packed
	// nodes, duplicate receptions must dwarf deliveries.
	fx := newFixture(t, 25, 30)
	if err := fx.sys.Originate(12, packet.DataID{Origin: 12, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := fx.sched.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := fx.nw.Counters()
	if c.Duplicates <= uint64(fx.ledger.Deliveries()) {
		t.Fatalf("Duplicates=%d not > Deliveries=%d; implosion not modeled",
			c.Duplicates, fx.ledger.Deliveries())
	}
	// Every node transmits the data exactly once.
	if c.Sent[packet.DATA] != 25 {
		t.Fatalf("DATA sends=%d, want 25", c.Sent[packet.DATA])
	}
}

func TestFloodCostsMoreThanNegotiation(t *testing.T) {
	// Flooding sends full DATA packets everywhere; its total energy must
	// exceed an ADV-based scheme's metadata cost by construction. Simply
	// sanity-check the energy is substantial and every send is max power.
	fx := newFixture(t, 16, 20)
	fx.nw.SetTrace(func(ev network.TraceEvent) {
		if ev.Kind == network.TraceTx && ev.Packet.Level != radio.MaxPower {
			t.Fatalf("flood transmitted at level %v", ev.Packet.Level)
		}
	})
	if err := fx.sys.Originate(0, packet.DataID{Origin: 0, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := fx.sched.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fx.nw.Energy().Total() <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestOriginateValidation(t *testing.T) {
	fx := newFixture(t, 4, 10)
	if err := fx.sys.Originate(1, packet.DataID{Origin: 0, Seq: 0}); err == nil {
		t.Fatal("wrong origin accepted")
	}
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := fx.sys.Originate(0, d); err == nil {
		t.Fatal("duplicate origination accepted")
	}
	fx.nw.Fail(2)
	if err := fx.sys.Originate(2, packet.DataID{Origin: 2, Seq: 1}); err == nil {
		t.Fatal("dead origin accepted")
	}
}

func TestFloodStopsAtDeadNodes(t *testing.T) {
	// A 1-D chain at minimal radius: killing the middle node partitions
	// the flood.
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(5, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	// Restrict range so only adjacent nodes hear each other.
	m, err := radio.ScaledMICA2(6)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err = topo.NewChainField(5, 5, m)
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	nw, err := network.New(sched, f, sim.NewRNG(3), network.DefaultConfig())
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	ledger := dissem.NewLedger()
	sys, err := NewSystem(nw, ledger, dissem.Everyone, 20*time.Microsecond)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	nw.Fail(2)
	if err := sys.Originate(0, packet.DataID{Origin: 0, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := sched.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sys.Has(1, packet.DataID{Origin: 0, Seq: 0}) {
		t.Fatal("node 1 should have the data")
	}
	if sys.Has(3, packet.DataID{Origin: 0, Seq: 0}) || sys.Has(4, packet.DataID{Origin: 0, Seq: 0}) {
		t.Fatal("flood crossed a dead partition")
	}
}
