// Package lint is the repository's invariants-as-code layer: a suite of
// custom static analyzers, written on the standard library only (go/ast,
// go/types, go/parser, go/importer — no x/tools), that machine-check the
// three iron contracts the codebase rests on (DESIGN.md §12):
//
//   - determinism — byte-identical output at any worker count (§2, §10):
//     detsource, maporder, zonewrite
//   - allocation-free, nil-safe observability hot paths (§8, §11): hooknil
//   - zero-value wire-form compatibility (§9): wirezero, floatfmt
//
// The driver is cmd/repolint; `make lint` runs it over the whole module.
//
// # Waivers
//
// A legitimate exception is annotated in the source, with a reason:
//
//	//repolint:allow <analyzer> <reason>
//
// The directive suppresses that analyzer's diagnostics on its own line and
// on the line directly below (so it works both trailing a statement and on
// a line of its own above one). The reason is mandatory, unknown analyzer
// names are errors, and a directive that suppresses nothing is reported as
// stale — waivers are grep-able, reviewed, and cannot outlive the code
// they excuse.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run inspects the package behind
// pass and reports findings through pass.Reportf.
type Analyzer struct {
	Name string // short lower-case name, used in diagnostics and waivers
	Doc  string // one-line description of the enforced invariant
	Run  func(pass *Pass)
}

// All is the full analyzer suite, in reporting order.
var All = []*Analyzer{DetSource, MapOrder, HookNil, WireZero, ZoneWrite, FloatFmt}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Cfg  *Config
	Pkg  *Package
	name string
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FuncRef names a package-level function.
type FuncRef struct{ Path, Name string }

// TypeRef names a package-level type.
type TypeRef struct{ Path, Name string }

// WireStruct configures one wire-form struct for wirezero: exported
// fields must carry omitempty, be filled by the struct's defaults method,
// or be grandfathered (present before the zero-value contract was
// mechanized — their absence of omitempty is itself part of the frozen
// byte format).
type WireStruct struct {
	Path          string // declaring package import path
	Name          string // struct type name
	DefaultsFunc  string // value-or-pointer method filling zero fields; "" if none
	Grandfathered []string
}

// Config scopes the suite to the repository's contracts. The test harness
// substitutes testdata-sized configs; DefaultConfig is the repo's reality.
type Config struct {
	// Deterministic reports whether a package is under the byte-identical
	// output contract (DESIGN.md §2): detsource, maporder, and floatfmt
	// apply there.
	Deterministic func(pkgPath string) bool
	// ZoneFor lists the fork-join parallel-for entry points whose kernel
	// closures zonewrite holds to the disjoint-write contract (§10).
	ZoneFor []FuncRef
	// NilSafe lists the observability hook types whose exported
	// pointer-receiver methods must begin with a receiver nil check,
	// preserving the "nil hooks are free" contract (§11).
	NilSafe []TypeRef
	// Wire lists the wire-form structs wirezero guards (§9).
	Wire []WireStruct
}

// DefaultConfig returns the configuration for this repository.
func DefaultConfig() *Config {
	det := map[string]bool{}
	for _, name := range []string{
		"sim", "network", "core", "spin", "flood", "dissem", "routing",
		"topo", "geom", "fault", "workload", "zone", "experiment", "campaign",
		"checkpoint", "service",
	} {
		det["repro/internal/"+name] = true
	}
	return &Config{
		Deterministic: func(path string) bool {
			return det[strings.TrimSuffix(path, "_test")]
		},
		ZoneFor: []FuncRef{{Path: "repro/internal/zone", Name: "For"}},
		NilSafe: []TypeRef{
			{Path: "repro/internal/obs", Name: "RunObserver"},
			{Path: "repro/internal/obs", Name: "Timeline"},
			{Path: "repro/internal/obs", Name: "TraceSink"},
			{Path: "repro/internal/obs", Name: "CampaignProgress"},
		},
		Wire: []WireStruct{
			{Path: "repro/internal/experiment", Name: "Scenario", DefaultsFunc: "WithDefaults"},
			{Path: "repro/internal/experiment", Name: "Result", Grandfathered: []string{
				"TotalEnergy", "EnergyPerPacket", "CtrlEnergy",
				"MeanDelay", "P95Delay", "MaxDelay",
				"Items", "Deliveries", "Expected", "DeliveryRate",
				"Timeouts", "Failovers", "Drops", "Duplicates",
				"SentADV", "SentREQ", "SentDATA",
				"DBFRounds", "DBFBroadcasts", "MobilityEvents", "FailuresInjected",
			}},
			{Path: "repro/internal/experiment", Name: "faultConfigJSON"},
			{Path: "repro/internal/experiment", Name: "coreConfigJSON"},
			{Path: "repro/internal/campaign", Name: "Spec", Grandfathered: []string{"Name", "Base", "Axes"}},
			{Path: "repro/internal/campaign", Name: "Axes"},
		},
	}
}

// allowDirective is one parsed //repolint:allow comment.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//repolint:allow"

// collectDirectives parses every //repolint: directive in the package.
// Malformed directives (unknown analyzer, missing reason) are reported
// immediately and do not suppress anything.
func collectDirectives(pkg *Package, known map[string]bool, out *[]Diagnostic) []*allowDirective {
	report := func(pos token.Pos, format string, args ...any) {
		*out = append(*out, Diagnostic{
			Analyzer: "repolint",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	var dirs []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//repolint:") {
					continue
				}
				if !strings.HasPrefix(c.Text, allowPrefix) {
					report(c.Pos(), "unknown repolint directive %q (only //repolint:allow is defined)", firstField(c.Text))
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" {
					report(c.Pos(), "//repolint:allow needs an analyzer name and a reason")
					continue
				}
				if !known[name] {
					report(c.Pos(), "//repolint:allow names unknown analyzer %q", name)
					continue
				}
				if reason == "" {
					report(c.Pos(), "//repolint:allow %s is missing the mandatory reason", name)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				dirs = append(dirs, &allowDirective{
					pos: c.Pos(), file: pos.Filename, line: pos.Line,
					analyzer: name, reason: reason,
				})
			}
		}
	}
	return dirs
}

func firstField(s string) string {
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return s
}

// Run executes the analyzers over every package, applies //repolint:allow
// suppression, validates the annotations themselves, and returns the
// surviving diagnostics sorted by position.
func Run(cfg *Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Cfg: cfg, Pkg: pkg, name: a.Name, out: &raw})
		}
		dirs := collectDirectives(pkg, known, &out)
	diags:
		for _, d := range raw {
			for _, dir := range dirs {
				if dir.analyzer == d.Analyzer && dir.file == d.Pos.Filename &&
					(dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
					dir.used = true
					continue diags
				}
			}
			out = append(out, d)
		}
		for _, dir := range dirs {
			if !dir.used {
				out = append(out, Diagnostic{
					Analyzer: "repolint",
					Pos:      pkg.Fset.Position(dir.pos),
					Message:  fmt.Sprintf("stale //repolint:allow %s: no diagnostic suppressed", dir.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inspectWithStack walks every file of the package calling fn with each
// node and the stack of its ancestors (outermost first, not including n).
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false // children skipped: Inspect sends no nil pop
			}
			stack = append(stack, n)
			return true
		})
	}
}
