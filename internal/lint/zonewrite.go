package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ZoneWrite holds zone.For kernel closures to the disjoint-write contract
// (DESIGN §10): a kernel fn(worker, lo, hi) may write captured state only
// at slots its own [lo, hi) range owns, or per-worker scratch indexed by
// the worker parameter — that structural property is the whole determinism
// argument for intra-sim parallelism.
//
// The check is a conservative escape analysis over the closure literal:
//
//   - assignments to a captured scalar (x = …, x += …, x++) are shared
//     writes — flagged;
//   - stores into a captured map are flagged regardless of key (Go maps
//     are not safe for concurrent writers even at distinct keys);
//   - indexed stores (s[i] = …, t.rows[i][j] = …) are allowed only when
//     the first index is the induction variable of a `for i := lo; i < hi;
//     i++` loop over the closure's own range, or the worker parameter
//     (per-worker scratch);
//   - variables declared inside the closure are its own — never flagged.
//
// Mutation through method calls or passed pointers is beyond a local
// analysis and intentionally not flagged; the annotation mechanism
// (//repolint:allow zonewrite <reason>) covers kernels whose safety
// argument lives outside these shapes.
var ZoneWrite = &Analyzer{
	Name: "zonewrite",
	Doc:  "zone.For kernels must write captured state only inside their [lo,hi) range",
	Run:  runZoneWrite,
}

func runZoneWrite(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !isZoneFor(pass.Cfg, fn) || len(call.Args) != 3 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
			if !ok {
				return true // a named kernel func is opaque here; annotate it
			}
			checkKernel(pass, lit)
			return true
		})
	}
}

func isZoneFor(cfg *Config, fn *types.Func) bool {
	for _, ref := range cfg.ZoneFor {
		if fn.Pkg().Path() == ref.Path && fn.Name() == ref.Name {
			return true
		}
	}
	return false
}

func checkKernel(pass *Pass, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	params := lit.Type.Params
	if params == nil || params.NumFields() == 0 {
		return
	}
	var names []*ast.Ident
	for _, field := range params.List {
		names = append(names, field.Names...)
	}
	if len(names) != 3 {
		return
	}
	workerObj := info.Defs[names[0]]
	loObj := info.Defs[names[1]]
	hiObj := info.Defs[names[2]]

	// Induction variables of `for i := lo; i < hi; i++` loops (and the
	// same shape with <=, or swapped comparison) own the range.
	bounded := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Init == nil || fs.Cond == nil {
			return true
		}
		init, ok := fs.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return true
		}
		iv, ok := init.Lhs[0].(*ast.Ident)
		if !ok || identObj(info, init.Rhs[0]) == nil || identObj(info, init.Rhs[0]) != loObj {
			return true
		}
		cond, ok := fs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return true
		}
		cl, ok := ast.Unparen(cond.X).(*ast.Ident)
		if !ok || info.Uses[cl] != info.Defs[iv] || identObj(info, cond.Y) != hiObj {
			return true
		}
		bounded[info.Defs[iv]] = true
		return true
	})

	captured := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	okIndex := func(e ast.Expr) bool {
		obj := identObj(info, e)
		if obj == nil {
			return false
		}
		return bounded[obj] || (workerObj != nil && obj == workerObj) || obj == loObj
	}

	checkWrite := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		base := baseIdent(lhs)
		if base == nil || base.Name == "_" || !captured(base) {
			return
		}
		switch x := lhs.(type) {
		case *ast.Ident:
			pass.Reportf(lhs.Pos(), "zone.For kernel writes captured variable %s: a shared write breaks the disjoint-write contract (DESIGN §10); use per-worker scratch or reduce after the barrier", x.Name)
			return
		case *ast.StarExpr:
			pass.Reportf(lhs.Pos(), "zone.For kernel writes through captured pointer %s; ownership of the target cannot be verified (DESIGN §10)", types.ExprString(x.X))
			return
		case *ast.SelectorExpr:
			pass.Reportf(lhs.Pos(), "zone.For kernel writes captured field %s: a shared write breaks the disjoint-write contract (DESIGN §10)", types.ExprString(lhs))
			return
		case *ast.IndexExpr:
			// Map store? Concurrent map writes are unsafe at any key.
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(lhs.Pos(), "zone.For kernel stores into captured map %s; maps are unsafe under concurrent writers at any key (DESIGN §10)", types.ExprString(x.X))
					return
				}
			}
			// Indexed store: the first (deepest) index selects the owned
			// slot and must be range-bound or the worker parameter.
			idx := firstIndex(lhs)
			if idx != nil && okIndex(idx) {
				return
			}
			pass.Reportf(lhs.Pos(), "zone.For kernel writes %s outside its [lo,hi) range: the first index must be the range induction variable or the worker parameter (DESIGN §10)", types.ExprString(lhs))
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // new locals are the kernel's own
			}
			for _, l := range s.Lhs {
				checkWrite(l)
			}
		case *ast.IncDecStmt:
			checkWrite(s.X)
		case *ast.FuncLit:
			if s != lit {
				return false // nested closures are their own scope; zone.For inside them re-checks
			}
		}
		return true
	})
}

// firstIndex returns the index expression of the deepest IndexExpr in the
// selector/index chain — the first subscript applied to the base.
func firstIndex(e ast.Expr) ast.Expr {
	var idx ast.Expr
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			idx = x.Index
			e = x.X
		default:
			return idx
		}
	}
}
