package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HookNil preserves the "nil hooks are free" contract (DESIGN §11) two
// ways:
//
//  1. Call-site domination. A call through a nillable function-typed
//     struct field — one the package itself ever compares against nil or
//     assigns nil to, like network.Network.trace behind SetTrace, or the
//     sweep pool's OnStart/OnPoint — must be dominated by a nil check:
//     inside `if x.f != nil { ... }` (possibly as one conjunct of &&), in
//     the else of `if x.f == nil`, or after an early `if x.f == nil {
//     return }` bail in an enclosing block. Fields never compared to nil
//     are treated as always-set and exempt — the analyzer keys off the
//     package's own declaration that a hook is optional.
//
//  2. Receiver guards. Exported pointer-receiver methods of the
//     configured nil-safe hook types (obs.RunObserver, obs.Timeline,
//     obs.TraceSink, obs.CampaignProgress) must begin with a receiver nil
//     check (`if o == nil { ... }`, possibly `o == nil || ...`), so the
//     zero-value-disabled contract survives new methods.
//
// Test files are exempt: tests construct hooks they know are set.
var HookNil = &Analyzer{
	Name: "hooknil",
	Doc:  "require nil-check domination for optional hook calls and nil guards on nil-safe hook methods",
	Run:  runHookNil,
}

func runHookNil(pass *Pass) {
	checkHookCallSites(pass)
	checkNilSafeReceivers(pass)
}

func checkHookCallSites(pass *Pass) {
	info := pass.Pkg.Info
	// Pass 1: which function-typed fields does this package treat as
	// nillable? (compared against nil anywhere, or assigned nil)
	nillable := make(map[types.Object]bool)
	note := func(e ast.Expr) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if obj := fieldFuncObj(info, sel); obj != nil {
			nillable[obj] = true
		}
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTest(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op == token.EQL || x.Op == token.NEQ {
					if isNilIdent(info, x.X) {
						note(x.Y)
					}
					if isNilIdent(info, x.Y) {
						note(x.X)
					}
				}
			case *ast.AssignStmt:
				for i, r := range x.Rhs {
					if isNilIdent(info, r) && i < len(x.Lhs) {
						note(x.Lhs[i])
					}
				}
			}
			return true
		})
	}
	if len(nillable) == 0 {
		return
	}
	// Pass 2: every call through a nillable field must be dominated by a
	// nil check on that same selector.
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTest(f) {
			continue
		}
		inspectWithStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldFuncObj(info, sel)
			if obj == nil || !nillable[obj] {
				return true
			}
			if nilCheckDominates(info, sel, call, stack) {
				return true
			}
			pass.Reportf(call.Pos(), "call to hook %s is not dominated by a nil check; nil hooks must be free (DESIGN §11)", types.ExprString(sel))
			return true
		})
	}
}

// fieldFuncObj returns the struct-field object sel names when that field
// has function type (a hook slot), else nil. Methods resolve to MethodVal
// selections and are excluded.
func fieldFuncObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	if _, ok := s.Obj().Type().Underlying().(*types.Signature); !ok {
		return nil
	}
	return s.Obj()
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// sameHookSel reports whether a and b name the same field of the same
// textual base expression ("nw.trace" twice, not one per receiver copy).
func sameHookSel(info *types.Info, a, b *ast.SelectorExpr) bool {
	ao, bo := fieldFuncObj(info, a), fieldFuncObj(info, b)
	return ao != nil && ao == bo && types.ExprString(a.X) == types.ExprString(b.X)
}

// condHasNilTest reports whether cond, decomposed through op (token.LAND
// for guards, token.LOR for bails), contains a `sel <cmp> nil` leaf.
func condHasNilTest(info *types.Info, cond ast.Expr, sel *ast.SelectorExpr, cmp, op token.Token) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok {
		if b.Op == op {
			return condHasNilTest(info, b.X, sel, cmp, op) || condHasNilTest(info, b.Y, sel, cmp, op)
		}
		if b.Op == cmp {
			other := ast.Expr(nil)
			if isNilIdent(info, b.X) {
				other = b.Y
			} else if isNilIdent(info, b.Y) {
				other = b.X
			}
			if other != nil {
				if os, ok := ast.Unparen(other).(*ast.SelectorExpr); ok && sameHookSel(info, os, sel) {
					return true
				}
			}
		}
	}
	return false
}

// nilCheckDominates reports whether the call through sel is protected by
// one of the recognized guard shapes.
func nilCheckDominates(info *types.Info, sel *ast.SelectorExpr, call *ast.CallExpr, stack []ast.Node) bool {
	within := func(n ast.Node) bool {
		return n != nil && n.Pos() <= call.Pos() && call.End() <= n.End()
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if within(anc.Body) && condHasNilTest(info, anc.Cond, sel, token.NEQ, token.LAND) {
				return true
			}
			if anc.Else != nil && within(anc.Else) && condHasNilTest(info, anc.Cond, sel, token.EQL, token.LOR) {
				return true
			}
		case *ast.BlockStmt:
			// Early bail: a preceding `if sel == nil { return/continue/... }`.
			for _, st := range anc.List {
				if st.End() >= call.Pos() {
					break
				}
				ifst, ok := st.(*ast.IfStmt)
				if !ok || ifst.Else != nil || !terminates(ifst.Body) {
					continue
				}
				if condHasNilTest(info, ifst.Cond, sel, token.EQL, token.LOR) {
					return true
				}
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// Guards outside the enclosing function do not dominate: the
			// closure may run later, after the hook was reassigned.
			return false
		}
	}
	return false
}

// terminates reports whether the block always transfers control away.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func checkNilSafeReceivers(pass *Pass) {
	want := make(map[string]bool)
	for _, t := range pass.Cfg.NilSafe {
		if t.Path == pass.Pkg.Path {
			want[t.Name] = true
		}
	}
	if len(want) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTest(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue // value receivers cannot observe their own nilness
			}
			tn, ok := star.X.(*ast.Ident)
			if !ok || !want[tn.Name] {
				continue
			}
			if len(fd.Recv.List[0].Names) == 1 && receiverGuarded(info, fd) {
				continue
			}
			pass.Reportf(fd.Pos(), "method (*%s).%s must begin with a receiver nil check: nil hooks no-op for free (DESIGN §11)", tn.Name, fd.Name.Name)
		}
	}
}

// receiverGuarded reports whether the method body starts with
// `if recv == nil { ... }` (the nil test may be one || disjunct).
func receiverGuarded(info *types.Info, fd *ast.FuncDecl) bool {
	recv := fd.Recv.List[0].Names[0]
	if recv.Name == "_" || len(fd.Body.List) == 0 {
		return false
	}
	ifst, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifst.Init != nil {
		return false
	}
	recvObj := info.Defs[recv]
	var found func(e ast.Expr) bool
	found = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		b, ok := e.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if b.Op == token.LOR {
			return found(b.X) || found(b.Y)
		}
		if b.Op != token.EQL {
			return false
		}
		other := ast.Expr(nil)
		if isNilIdent(info, b.X) {
			other = b.Y
		} else if isNilIdent(info, b.Y) {
			other = b.X
		}
		if other == nil {
			return false
		}
		id, ok := ast.Unparen(other).(*ast.Ident)
		return ok && recvObj != nil && info.Uses[id] == recvObj
	}
	return found(ifst.Cond)
}
