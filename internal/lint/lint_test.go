package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// loadTestdata loads the lintdata corpus module once per test binary: the
// go list round trip dominates, and every test reads the same packages.
var loadTestdata = sync.OnceValues(func() ([]*Package, error) {
	return Load(filepath.Join("testdata", "lint"))
})

// testdataConfig mirrors DefaultConfig's shape over the corpus module.
func testdataConfig() *Config {
	det := map[string]bool{
		"lintdata/det":    true,
		"lintdata/maps":   true,
		"lintdata/output": true,
		"lintdata/annot":  true,
	}
	return &Config{
		Deterministic: func(p string) bool { return det[strings.TrimSuffix(p, "_test")] },
		ZoneFor:       []FuncRef{{Path: "lintdata/zone", Name: "For"}},
		NilSafe:       []TypeRef{{Path: "lintdata/obs", Name: "Observer"}},
		Wire: []WireStruct{
			{Path: "lintdata/wire", Name: "Scenario", DefaultsFunc: "WithDefaults", Grandfathered: []string{"Name"}},
			{Path: "lintdata/wire", Name: "Wrapper"},
			{Path: "lintdata/wire", Name: "Missing"},
		},
	}
}

func corpusPackage(t *testing.T, path string) *Package {
	t.Helper()
	pkgs, err := loadTestdata()
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	for _, p := range pkgs {
		if p.Path != path {
			continue
		}
		for _, e := range p.Errors {
			t.Errorf("corpus package %s has a type error: %v", path, e)
		}
		return p
	}
	t.Fatalf("corpus package %s not loaded", path)
	return nil
}

// expectation is one parsed `// want` comment: a diagnostic whose message
// matches re must be reported on exactly that line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// parseWants extracts the backquoted regexps of every `// want` comment.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const prefix = "// want "
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				parsed := 0
				for rest != "" {
					if rest[0] != '`' {
						t.Fatalf("%s:%d: malformed want comment (expectations are backquoted): %q", pos.Filename, pos.Line, c.Text)
					}
					end := strings.IndexByte(rest[1:], '`')
					if end < 0 {
						t.Fatalf("%s:%d: unterminated expectation in %q", pos.Filename, pos.Line, c.Text)
					}
					re, err := regexp.Compile(rest[1 : 1+end])
					if err != nil {
						t.Fatalf("%s:%d: bad expectation regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[2+end:])
					parsed++
				}
				if parsed == 0 {
					t.Fatalf("%s:%d: want comment with no expectations", pos.Filename, pos.Line)
				}
			}
		}
	}
	return wants
}

// matchWants checks diagnostics against expectations one-to-one: every
// diagnostic must meet a want on its line, every want must be met.
func matchWants(t *testing.T, diags []Diagnostic, wants []*expectation) {
	t.Helper()
diags:
	for _, d := range diags {
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				continue diags
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestAnalyzerCorpus runs each analyzer over its corpus packages and
// checks the findings against the inline `// want` expectations.
func TestAnalyzerCorpus(t *testing.T) {
	corpus := map[string][]string{
		"detsource": {"lintdata/det"},
		"maporder":  {"lintdata/maps"},
		"hooknil":   {"lintdata/hooks", "lintdata/obs"},
		"wirezero":  {"lintdata/wire"},
		"zonewrite": {"lintdata/kernels", "lintdata/zone"},
		"floatfmt":  {"lintdata/output"},
	}
	for _, a := range All {
		paths, ok := corpus[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no corpus packages; add them to testdata/lint", a.Name)
			continue
		}
		t.Run(a.Name, func(t *testing.T) {
			var pkgs []*Package
			var wants []*expectation
			for _, path := range paths {
				p := corpusPackage(t, path)
				pkgs = append(pkgs, p)
				wants = append(wants, parseWants(t, p)...)
			}
			matchWants(t, Run(testdataConfig(), pkgs, []*Analyzer{a}), wants)
		})
	}
}

// TestAnnotationMechanism pins the //repolint:allow machinery: reasoned
// waivers suppress (own-line and trailing), unknown analyzer names and
// missing reasons are reported and suppress nothing, and waivers that
// suppress nothing are stale. Directive lines cannot carry want comments,
// so the outcomes are asserted in source order here.
func TestAnnotationMechanism(t *testing.T) {
	annot := corpusPackage(t, "lintdata/annot")
	diags := Run(testdataConfig(), []*Package{annot}, All)
	want := []struct {
		analyzer string
		re       string
	}{
		// Suppressed() and Trailing() produce nothing: their waivers work.
		{"repolint", `unknown analyzer "typosource"`},
		{"detsource", `reads the wall clock`}, // Unknown()'s finding survives
		{"repolint", `missing the mandatory reason`},
		{"detsource", `reads the wall clock`}, // Missing()'s finding survives
		{"repolint", `stale //repolint:allow detsource`},
		{"repolint", `stale //repolint:allow maporder`},
		{"detsource", `reads the wall clock`}, // WrongAnalyzer()'s finding survives
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Analyzer != w.analyzer || !regexp.MustCompile(w.re).MatchString(d.Message) {
			t.Errorf("diagnostic %d = %s, want analyzer %s matching %q", i, d, w.analyzer, w.re)
		}
	}
}

// TestDefaultConfigMatchesTree pins the deterministic-package predicate:
// in-package test compilation units share the production package's fate,
// and infrastructure packages stay out.
func TestDefaultConfigMatchesTree(t *testing.T) {
	cfg := DefaultConfig()
	for _, path := range []string{
		"repro/internal/sim", "repro/internal/network", "repro/internal/campaign",
		"repro/internal/zone", "repro/internal/experiment", "repro/internal/sim_test",
		"repro/internal/checkpoint",
	} {
		if !cfg.Deterministic(path) {
			t.Errorf("Deterministic(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"repro/internal/obs", "repro/internal/lint", "repro/cmd/repolint", "repro/internal/analysis",
	} {
		if cfg.Deterministic(path) {
			t.Errorf("Deterministic(%q) = true, want false", path)
		}
	}
}
