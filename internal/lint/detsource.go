package lint

import (
	"go/ast"
	"go/types"
)

// DetSource forbids nondeterministic inputs inside the deterministic
// packages: wall-clock reads (time.Now/Since/Until), draws from the
// global math/rand stream (the package-level convenience functions share
// unseeded process state; rand.New/NewSource construct seeded instances
// and stay legal — sim.RNG is built on them), and environment reads
// (os.Getenv and friends), which make output machine-dependent. Test
// files are exempt: tests legitimately measure wall time; the contract
// governs what simulations compute, not how long tests take.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "forbid wall clock, global math/rand, and environment reads in deterministic packages",
	Run:  runDetSource,
}

// detForbidden maps package path -> function name -> explanation.
var detForbidden = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the environment",
		"LookupEnv": "reads the environment",
		"Environ":   "reads the environment",
	},
}

// globalRandExempt lists the math/rand functions that do not draw from the
// shared global source.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runDetSource(pass *Pass) {
	if !pass.Cfg.Deterministic(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTest(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods are fine; the contract names package funcs
			}
			path, name := fn.Pkg().Path(), fn.Name()
			if why, ok := detForbidden[path][name]; ok {
				pass.Reportf(call.Pos(), "call to %s.%s %s, breaking the byte-identical output contract (DESIGN §2); use sim time or thread the value in", path, name, why)
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && !globalRandExempt[name] {
				pass.Reportf(call.Pos(), "call to %s.%s draws from the global, unseeded random stream; use a seeded sim.RNG (fork per subsystem)", path, name)
			}
			return true
		})
	}
}

// calleeFunc resolves the function a call statically invokes, or nil for
// dynamic calls (func values, interface methods without a resolved obj).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
