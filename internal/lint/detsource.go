package lint

import (
	"go/ast"
	"go/types"
)

// DetSource forbids nondeterministic inputs inside the deterministic
// packages: wall-clock reads (time.Now/Since/Until) and stalls
// (time.Sleep), draws from the global math/rand stream (the
// package-level convenience functions share unseeded process state;
// rand.New/NewSource construct seeded instances and stay legal —
// sim.RNG is built on them), environment reads (os.Getenv and friends),
// which make output machine-dependent, and fsync barriers
// ((*os.File).Sync), whose timing couples output to disk state. The
// crash-safety layer legitimately sleeps (retry backoff) and fsyncs
// (write-ahead journal durability) — those sites carry
// //repolint:allow detsource annotations with reasons, so every
// deliberate wall-clock or disk dependency is visible and reviewed
// rather than silently exempt. Test files are exempt: tests
// legitimately measure wall time; the contract governs what simulations
// compute, not how long tests take.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "forbid wall clock, sleeps, fsync, global math/rand, and environment reads in deterministic packages",
	Run:  runDetSource,
}

// detForbidden maps package path -> function name -> explanation.
var detForbidden = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
		"Sleep": "stalls on the wall clock",
	},
	"os": {
		"Getenv":    "reads the environment",
		"LookupEnv": "reads the environment",
		"Environ":   "reads the environment",
	},
}

// detForbiddenMethods maps receiver type -> method name -> explanation.
// Methods are otherwise exempt (the contract names package funcs), but a
// handful of receivers carry machine-state effects worth surfacing.
var detForbiddenMethods = map[string]map[string]string{
	"*os.File": {
		"Sync": "forces an fsync, a durability barrier whose latency depends on the disk",
	},
}

// globalRandExempt lists the math/rand functions that do not draw from the
// shared global source.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runDetSource(pass *Pass) {
	if !pass.Cfg.Deterministic(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTest(f) {
			continue
		}
		// Both CALLS and bare REFERENCES are flagged: assigning time.Sleep
		// to a func-typed variable smuggles the wall clock past a call-site
		// check, so the forbidden set is matched wherever the identifier
		// resolves. handled marks idents already covered by an enclosing
		// node (a call's callee, a selector's Sel) so each use reports once.
		handled := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			verb := "reference to"
			switch n := n.(type) {
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					handled[fun] = true
					id = fun.Sel
				default:
					return true
				}
				verb = "call to"
			case *ast.SelectorExpr:
				if handled[n] {
					return true
				}
				id = n.Sel
			case *ast.Ident:
				if handled[n] {
					return true
				}
				id = n
			default:
				return true
			}
			handled[id] = true
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() != nil {
				// Methods are fine — the contract names package funcs —
				// except the few receivers whose methods touch machine state.
				recv := sig.Recv().Type().String()
				if why, bad := detForbiddenMethods[recv][fn.Name()]; bad {
					pass.Reportf(id.Pos(), "%s (%s).%s %s; annotate the durability barrier with //repolint:allow detsource <reason> or move it out of the deterministic core", verb, recv, fn.Name(), why)
				}
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			if why, ok := detForbidden[path][name]; ok {
				pass.Reportf(id.Pos(), "%s %s.%s %s, breaking the byte-identical output contract (DESIGN §2); use sim time or thread the value in", verb, path, name, why)
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && !globalRandExempt[name] {
				pass.Reportf(id.Pos(), "%s %s.%s draws from the global, unseeded random stream; use a seeded sim.RNG (fork per subsystem)", verb, path, name)
			}
			return true
		})
	}
}

// calleeFunc resolves the function a call statically invokes, or nil for
// dynamic calls (func values, interface methods without a resolved obj).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
