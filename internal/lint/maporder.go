package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map in deterministic packages unless
// the loop body is provably order-insensitive. Go randomizes map iteration
// order per run, so any observable effect of the visit order — appending
// to a slice, float accumulation, first-match returns, subtest scheduling —
// breaks the byte-identical output contract (DESIGN §2).
//
// The proof is deliberately conservative. A body is order-insensitive when
// every statement is one of:
//
//   - a commutative integer accumulation (x++, x--, x += e, x |= e,
//     x &= e, x ^= e on integer types) — integer addition is associative
//     and commutative, float addition is not;
//   - a write keyed by the loop key (m2[k] = e, delete(m2, k)): distinct
//     iterations touch distinct keys;
//   - an if statement (no else-less restrictions) whose branches recurse;
//   - a bare continue or an empty statement,
//
// and no expression in the body reads a variable the body itself writes
// (an accumulator feeding a keyed write reintroduces order dependence).
//
// The canonical determinization idiom is also accepted: a body that only
// appends to slices (keys = append(keys, k)) is fine when every such
// slice is sorted — sort.Strings/sort.Slice/slices.Sort and friends —
// before any later statement in the same block reads it. Everything else
// needs that sort — or a //repolint:allow maporder <reason> waiver
// stating why the order cannot be observed.
//
// Unlike detsource, maporder covers _test.go files too: ranging a map of
// subtests randomizes test order and cache behavior across runs.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over maps in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !pass.Cfg.Deterministic(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Walk statement lists rather than bare RangeStmts: the
		// collect-then-sort proof needs to see the statements that follow
		// the loop in its enclosing block.
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				if ls, ok := st.(*ast.LabeledStmt); ok {
					st = ls.Stmt
				}
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if orderInsensitive(info, rs) || collectThenSorted(info, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map %s has an order-dependent body; iterate a sorted slice of keys (map order is randomized per run, DESIGN §2)", types.ExprString(rs.X))
			}
			return true
		})
	}
}

// collectThenSorted recognizes the canonical determinization idiom: the
// range body only appends to slices (s = append(s, …)), none of the
// appended elements reads an accumulating slice, and each slice is sorted
// — sort.X(s, …) or slices.SortX(s, …) — before any later statement in
// the enclosing block reads it. The sort erases the visit order, so the
// loop is harmless even though append order is randomized.
func collectThenSorted(info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	targets := make(map[types.Object]bool)
	var calls []*ast.CallExpr
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		obj := identObj(info, as.Lhs[0])
		if obj == nil {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if bi, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin || bi.Name() != "append" {
			return false
		}
		if identObj(info, call.Args[0]) != obj {
			return false
		}
		targets[obj] = true
		calls = append(calls, call)
	}
	if len(targets) == 0 {
		return false
	}
	// Appended elements must not read an accumulating slice (append(s,
	// len(s)) smuggles the visit order into the values; no sort fixes
	// that).
	for _, call := range calls {
		for _, arg := range call.Args[1:] {
			bad := false
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && targets[info.Uses[id]] {
					bad = true
				}
				return !bad
			})
			if bad {
				return false
			}
		}
	}
	for obj := range targets {
		if !sortedBeforeRead(info, obj, rest) {
			return false
		}
	}
	return true
}

// sortedBeforeRead scans the statements following the loop for a sort of
// obj, failing if anything else mentions obj first.
func sortedBeforeRead(info *types.Info, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		if isSortCall(info, st, obj) {
			return true
		}
		mentions := false
		ast.Inspect(st, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			return false
		}
	}
	return false
}

// isSortCall reports whether st is a statement-level call to an in-place
// sorting function from package sort or slices with obj among its
// arguments.
func isSortCall(info *types.Info, st ast.Stmt, obj types.Object) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return false
	}
	switch name := fn.Name(); {
	case strings.HasPrefix(name, "Sort"), name == "Slice", name == "SliceStable",
		name == "Stable", name == "Strings", name == "Ints", name == "Float64s":
	default:
		return false
	}
	for _, arg := range call.Args {
		if identObj(info, arg) == obj {
			return true
		}
	}
	return false
}

// orderInsensitive reports whether the range body provably produces the
// same state for every visit order.
func orderInsensitive(info *types.Info, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(info, rs.Key)
	// Pass 1: validate statement forms and collect every object the body
	// writes.
	written := make(map[types.Object]bool)
	if !insensitiveStmts(info, rs.Body.List, keyObj, written) {
		return false
	}
	// Pass 2: no expression read may touch a written object; an iteration
	// observing another iteration's accumulation is order-dependent.
	ok := true
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || !ok {
			return ok
		}
		if obj := info.Uses[id]; obj != nil && written[obj] && !writeTarget(rs.Body, id) {
			ok = false
		}
		return ok
	})
	return ok
}

// insensitiveStmts validates the allowed statement forms, recording
// written objects.
func insensitiveStmts(info *types.Info, stmts []ast.Stmt, keyObj types.Object, written map[types.Object]bool) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.IncDecStmt:
			obj := baseIdentObj(info, s.X)
			if obj == nil || !isInteger(info.TypeOf(s.X)) {
				return false
			}
			written[obj] = true
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				obj := baseIdentObj(info, s.Lhs[0])
				if obj == nil || !isInteger(info.TypeOf(s.Lhs[0])) {
					return false
				}
				written[obj] = true
			case token.ASSIGN:
				// Only writes keyed by the loop key: m2[k] = expr.
				idx, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr)
				if !ok || keyObj == nil || identObj(info, idx.Index) != keyObj {
					return false
				}
				obj := baseIdentObj(info, idx.X)
				if obj == nil {
					return false
				}
				written[obj] = true
			default:
				return false
			}
		case *ast.ExprStmt:
			// delete(m2, k)
			call, ok := s.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return false
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "delete" || info.Uses[id] != nil && info.Uses[id].Pkg() != nil {
				return false
			}
			if keyObj == nil || identObj(info, call.Args[1]) != keyObj {
				return false
			}
			obj := baseIdentObj(info, call.Args[0])
			if obj == nil {
				return false
			}
			written[obj] = true
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !insensitiveStmts(info, s.Body.List, keyObj, written) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !insensitiveStmts(info, e.List, keyObj, written) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE || s.Label != nil {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// writeTarget reports whether id is itself the target of one of the
// allowed writes (the LHS base), as opposed to a read.
func writeTarget(body *ast.BlockStmt, id *ast.Ident) bool {
	target := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if baseIdent(s.X) == id {
				target = true
			}
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if baseIdent(l) == id {
					target = true
				}
				if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok && baseIdent(idx.X) == id {
					target = true
				}
			}
		case *ast.CallExpr:
			if f, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && f.Name == "delete" && len(s.Args) == 2 && baseIdent(s.Args[0]) == id {
				target = true
			}
		}
		return !target
	})
	return target
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// baseIdent peels selectors, indexes, parens, and stars down to the
// leftmost identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	id := baseIdent(e)
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
