package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// WireZero guards the zero-value wire-form contract (DESIGN §9): a
// scenario written before a field existed must decode, default, run, and
// re-serialize byte-identically. For each configured wire struct, every
// exported field must either
//
//   - carry `omitempty` in its json tag (absent on old wires, absent when
//     re-encoded at its zero value), or
//   - be filled by the struct's defaults method (WithDefaults), making
//     the zero value an alias for explicit paper behavior, or
//   - be grandfathered: present before this analyzer existed, where the
//     always-emitted field is itself part of the frozen byte format.
//
// Unexported and json:"-" fields never reach the wire and are exempt.
var WireZero = &Analyzer{
	Name: "wirezero",
	Doc:  "new wire-form fields must be omitempty or covered by the defaults method",
	Run:  runWireZero,
}

func runWireZero(pass *Pass) {
	var wire []WireStruct
	for _, w := range pass.Cfg.Wire {
		if w.Path == pass.Pkg.Path {
			wire = append(wire, w)
		}
	}
	if len(wire) == 0 {
		return
	}
	for _, w := range wire {
		st := findStruct(pass.Pkg, w.Name)
		if st == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "configured wire struct %s.%s not found; update the wirezero config in internal/lint", w.Path, w.Name)
			continue
		}
		covered := defaultsCovered(pass.Pkg, w)
		grand := make(map[string]bool, len(w.Grandfathered))
		for _, g := range w.Grandfathered {
			grand[g] = true
		}
		for _, field := range st.Fields.List {
			tag := fieldJSONTag(field)
			if tag == "-" || tagHasOmitempty(tag) {
				continue
			}
			for _, name := range field.Names {
				if !name.IsExported() || grand[name.Name] || covered[name.Name] {
					continue
				}
				pass.Reportf(name.Pos(), "wire field %s.%s has no omitempty and is not filled by %s; a pre-existing wire document would re-serialize differently (DESIGN §9)", w.Name, name.Name, defaultsName(w))
			}
			if len(field.Names) == 0 {
				// Embedded field: its own struct must be configured
				// separately; flag so the config cannot silently rot.
				pass.Reportf(field.Pos(), "wire struct %s embeds %s; configure the embedded struct in the wirezero config", w.Name, types.ExprString(field.Type))
			}
		}
	}
}

func defaultsName(w WireStruct) string {
	if w.DefaultsFunc == "" {
		return "a defaults method (none configured)"
	}
	return w.DefaultsFunc
}

// findStruct locates the named struct type declaration in non-test files.
func findStruct(pkg *Package, name string) *ast.StructType {
	for _, f := range pkg.Files {
		if pkg.IsTest(f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// defaultsCovered returns the set of field names the struct's defaults
// method assigns (s.Field = ..., s.Field.Sub = ..., including multi-assign
// tuples), i.e. fields whose zero value is replaced before use.
func defaultsCovered(pkg *Package, w WireStruct) map[string]bool {
	covered := make(map[string]bool)
	if w.DefaultsFunc == "" {
		return covered
	}
	for _, f := range pkg.Files {
		if pkg.IsTest(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != w.DefaultsFunc || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			rt := fd.Recv.List[0].Type
			if star, ok := rt.(*ast.StarExpr); ok {
				rt = star.X
			}
			if id, ok := rt.(*ast.Ident); !ok || id.Name != w.Name {
				continue
			}
			if len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			recvObj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					// Peel trailing selectors/indexes down to the
					// `recv.Field` root.
					e := ast.Unparen(lhs)
					for {
						sel, ok := e.(*ast.SelectorExpr)
						if !ok {
							if idx, ok := e.(*ast.IndexExpr); ok {
								e = idx.X
								continue
							}
							break
						}
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == recvObj && recvObj != nil {
							covered[sel.Sel.Name] = true
							break
						}
						e = sel.X
					}
				}
				return true
			})
		}
	}
	return covered
}

func fieldJSONTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw := strings.Trim(field.Tag.Value, "`")
	return reflect.StructTag(raw).Get("json")
}

func tagHasOmitempty(tag string) bool {
	parts := strings.Split(tag, ",")
	for _, p := range parts[1:] {
		if p == "omitempty" {
			return true
		}
	}
	return false
}
