// load.go loads every package in the module for analysis using only the
// standard library: file lists come from `go list` (the toolchain, not a
// module dependency), syntax from go/parser, and types from go/types with
// export data served to importer.ForCompiler's gc reader straight out of
// the build cache. No golang.org/x/tools import — offline builds keep
// working (ISSUE 8's hard constraint).
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module, ready for analysis.
// Files holds every compiled file, including in-package _test.go files;
// analyzers that only govern production code skip test files via IsTest.
type Package struct {
	Path  string // import path ("repro/internal/sim")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds type-check problems. A package with errors is still
	// analyzed (the Info maps are filled best-effort), but the driver
	// reports the errors and fails the run: analyzers cannot vouch for
	// code they could not fully resolve.
	Errors []error
}

// IsTest reports whether f is a _test.go file.
func (p *Package) IsTest(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.File(f.Pos()).Name(), "_test.go")
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	ForTest      string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// stdExports maps import paths of out-of-module dependencies (in practice:
// the standard library) to their build-cache export files, lazily filling
// misses with individual `go list -export` calls.
type stdExports struct {
	dir   string // module root: where go list runs
	mu    sync.Mutex
	paths map[string]string
}

func (s *stdExports) lookup(path string) (io.ReadCloser, error) {
	s.mu.Lock()
	file, ok := s.paths[path]
	s.mu.Unlock()
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("lint: no export data for %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		s.mu.Lock()
		s.paths[path] = file
		s.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("lint: empty export data path for %q", path)
	}
	return os.Open(file)
}

// moduleImporter resolves imports during type-checking: module packages
// from the already-checked set (Load checks in dependency order), and
// everything else through gc export data.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// Load type-checks every package of the module rooted at dir (production
// and test files) and returns them in a deterministic order. It shells out
// to the go command once for metadata; everything else is stdlib parsing
// and type-checking.
func Load(dir string) ([]*Package, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-json", "-deps", "-test", "-export", "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := &stdExports{dir: root, paths: make(map[string]string)}
	var mod []*listedPackage
	seen := make(map[string]bool)
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		// Variant compilations ("p [p.test]") and synthetic test mains
		// ("p.test") duplicate the plain package; skip them, keeping the
		// plain entry whose TestGoFiles/XTestGoFiles fields carry the
		// test sources.
		if lp.ForTest != "" || strings.HasSuffix(lp.ImportPath, ".test") ||
			strings.Contains(lp.ImportPath, " ") || seen[lp.ImportPath] {
			continue
		}
		seen[lp.ImportPath] = true
		if lp.Export != "" {
			exports.paths[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && isUnder(lp.Dir, root) {
			mod = append(mod, lp)
		}
	}
	sort.Slice(mod, func(i, j int) bool { return mod[i].ImportPath < mod[j].ImportPath })

	fset := token.NewFileSet()
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "gc", exports.lookup),
		pkgs: make(map[string]*types.Package),
	}

	// Units: one per package (GoFiles + in-package TestGoFiles), plus one
	// per external test package (XTestGoFiles), checked after its subject.
	type unit struct {
		path, dir string
		files     []string
		deps      []string
	}
	var units []*unit
	byPath := make(map[string]*unit)
	for _, lp := range mod {
		u := &unit{
			path:  lp.ImportPath,
			dir:   lp.Dir,
			files: append(append([]string(nil), lp.GoFiles...), lp.TestGoFiles...),
			deps:  append(append([]string(nil), lp.Imports...), lp.TestImports...),
		}
		units = append(units, u)
		byPath[u.path] = u
		if len(lp.XTestGoFiles) > 0 {
			units = append(units, &unit{
				path:  lp.ImportPath + "_test",
				dir:   lp.Dir,
				files: append([]string(nil), lp.XTestGoFiles...),
				deps:  append([]string{lp.ImportPath}, lp.XTestImports...),
			})
		}
	}

	// Topological order over module-internal imports so every dependency
	// is checked before its importers.
	var ordered []*unit
	state := make(map[*unit]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(u *unit) error
	visit = func(u *unit) error {
		switch state[u] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", u.path)
		case 2:
			return nil
		}
		state[u] = 1
		for _, d := range u.deps {
			if du, ok := byPath[d]; ok && du != u {
				if err := visit(du); err != nil {
					return err
				}
			}
		}
		state[u] = 2
		ordered = append(ordered, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u); err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, u := range ordered {
		p, err := checkUnit(fset, imp, u.path, u.dir, u.files)
		if err != nil {
			return nil, err
		}
		imp.pkgs[u.path] = p.Types
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkUnit parses and type-checks one compilation unit.
func checkUnit(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	p := &Package{Path: path, Dir: dir, Fset: fset}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { p.Errors = append(p.Errors, err) },
	}
	// Check returns the package even when errors were collected; analysis
	// proceeds best-effort and the driver surfaces p.Errors.
	p.Types, _ = cfg.Check(path, fset, p.Files, p.Info)
	return p, nil
}

func isUnder(dir, root string) bool {
	rel, err := filepath.Rel(root, dir)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}
