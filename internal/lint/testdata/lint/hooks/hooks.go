// Package hooks exercises the hooknil call-site corpus: calls through
// function-typed fields the package itself treats as nillable must be
// dominated by a nil check.
package hooks

type Event struct{ ID int }

// Bus carries two optional hooks (trace, onDrop — both compared to nil
// below) and one that is never nil-compared (always), which the analyzer
// treats as always-set.
type Bus struct {
	trace  func(Event)
	onDrop func(Event)
	always func(Event)
}

func (b *Bus) SetTrace(fn func(Event)) { b.trace = fn }

func (b *Bus) emitGuarded(ev Event) {
	if b.trace != nil {
		b.trace(ev)
	}
}

func (b *Bus) emitConjunct(ev Event) {
	if ev.ID > 0 && b.trace != nil {
		b.trace(ev)
	}
}

func (b *Bus) emitElseBranch(ev Event) {
	if b.trace == nil {
		b.always(ev)
	} else {
		b.trace(ev)
	}
}

func (b *Bus) emitEarlyBail(ev Event) {
	if b.trace == nil {
		return
	}
	b.trace(ev)
}

func (b *Bus) emitUnguarded(ev Event) {
	b.trace(ev) // want `not dominated by a nil check`
}

// emitClosure guards outside the closure: the deferred call may run after
// the hook was reassigned, so the guard does not dominate.
func (b *Bus) emitClosure(ev Event) {
	if b.onDrop != nil {
		defer func() {
			b.onDrop(ev) // want `not dominated by a nil check`
		}()
	}
}

// emitAlways calls a field never compared against nil anywhere in the
// package: treated as always-set, no guard required.
func (b *Bus) emitAlways(ev Event) {
	b.always(ev)
}

// Use keeps the unexported emit helpers referenced.
func (b *Bus) Use(ev Event) {
	b.emitGuarded(ev)
	b.emitConjunct(ev)
	b.emitElseBranch(ev)
	b.emitEarlyBail(ev)
	b.emitUnguarded(ev)
	b.emitClosure(ev)
	b.emitAlways(ev)
}
