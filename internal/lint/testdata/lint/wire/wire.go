// Package wire exercises the wirezero corpus: exported fields of a
// configured wire struct must be omitempty, filled by the defaults
// method, or grandfathered. The test Config also registers a struct that
// does not exist, which must be reported rather than silently skipped.
package wire // want `configured wire struct lintdata/wire\.Missing not found`

// Scenario is registered with DefaultsFunc "WithDefaults" and
// Grandfathered ["Name"].
type Scenario struct {
	Name    string  `json:"name"`
	Seed    int64   `json:"seed,omitempty"`
	Radius  float64 `json:"radius"`
	Workers int     `json:"workers"` // want `no omitempty`
	hidden  int
	Skip    int `json:"-"`
}

// WithDefaults fills Radius, making its zero value an alias for the
// explicit default.
func (s Scenario) WithDefaults() Scenario {
	if s.Radius == 0 {
		s.Radius = 10
	}
	s.hidden = 1
	_ = s.Skip
	return s
}

// Wrapper is registered with no defaults method; its embedded field must
// be called out so the config cannot silently rot.
type Wrapper struct {
	Scenario `json:"scenario"` // want `embeds`
	Tag      string            `json:"tag,omitempty"`
}
