// Package output exercises the floatfmt corpus: float bytes in
// deterministic packages must come from the canonical helper, not fmt's
// unpinned default verb rendering.
package output

import (
	"fmt"
	"strconv"
)

// Row uses the canonical shortest-round-trip form.
func Row(x, y float64) string {
	return fmt.Sprintf("%s,%s",
		strconv.FormatFloat(x, 'g', -1, 64), strconv.FormatFloat(y, 'g', -1, 64))
}

func BareG(x float64) string {
	return fmt.Sprintf("x=%g", x) // want `bare %g`
}

func BareV(x float64) string {
	return fmt.Sprintf("x=%v", x) // want `bare %v`
}

// Pinned precision is a deliberate formatting choice.
func Pinned(x float64) string {
	return fmt.Sprintf("x=%.4g", x)
}

func Sprinted(x float64) string {
	return fmt.Sprint(x) // want `unpinned default rendering`
}

// Non-float arguments are out of scope.
func Ints(n int) string {
	return fmt.Sprintf("%v", n)
}

// Errorf is diagnostics, not sink bytes.
func Oops(x float64) error {
	return fmt.Errorf("bad radius %v", x)
}
