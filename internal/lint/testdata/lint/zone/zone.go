// Package zone is a miniature stand-in for the repository's fork-join
// helper, giving the zonewrite corpus a resolvable kernel entry point
// (the test Config points ZoneFor at lintdata/zone.For).
package zone

// For invokes fn over [0, n) as a single chunk; the corpus only needs the
// call shape, not real parallelism.
func For(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	fn(0, 0, n)
}
