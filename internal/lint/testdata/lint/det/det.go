// Package det exercises the detsource corpus: wall-clock reads and
// sleeps, draws from the global math/rand stream, environment reads,
// and fsync barriers are forbidden in deterministic packages.
package det

import (
	"math/rand"
	"os"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want `reads the wall clock`
}

func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock`
}

func Roll() int {
	return rand.Intn(6) // want `global, unseeded random stream`
}

// Seeded constructs its own source: the constructors are exempt.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(7))
}

func Home() string {
	return os.Getenv("HOME") // want `reads the environment`
}

// Methods are fine; the contract names package-level functions.
func Rounded(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}

func Backoff() {
	time.Sleep(time.Millisecond) // want `stalls on the wall clock`
}

// A bare reference smuggles the function past a call-site-only check:
// references are flagged like calls.
var sleeper = time.Sleep // want `stalls on the wall clock`

func Flush(f *os.File) error {
	return f.Sync() // want `forces an fsync`
}

// Annotated fsyncs and sleeps are the sanctioned escape hatch: the
// waiver names the analyzer and carries a reason.
func FlushAllowed(f *os.File) error {
	//repolint:allow detsource durability barrier exercised by the corpus
	return f.Sync()
}
