// Package det exercises the detsource corpus: wall-clock reads, draws
// from the global math/rand stream, and environment reads are forbidden
// in deterministic packages.
package det

import (
	"math/rand"
	"os"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want `reads the wall clock`
}

func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock`
}

func Roll() int {
	return rand.Intn(6) // want `global, unseeded random stream`
}

// Seeded constructs its own source: the constructors are exempt.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(7))
}

func Home() string {
	return os.Getenv("HOME") // want `reads the environment`
}

// Methods are fine; the contract names package-level functions.
func Rounded(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}
