package det

import (
	"testing"
	"time"
)

// Test files are exempt: tests legitimately measure wall time.
func TestWallClockAllowed(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("impossible")
	}
}
