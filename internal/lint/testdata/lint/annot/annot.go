// Package annot exercises the //repolint:allow directive machinery: a
// valid waiver suppressing a finding (own-line and trailing), an unknown
// analyzer name, a missing reason, and a stale waiver. Directive lines
// cannot also carry want comments, so lint_test.go asserts the exact
// outcomes for this package directly instead of through the corpus
// harness.
package annot

import "time"

// Suppressed: the waiver names a real analyzer and gives a reason.
func Suppressed() time.Time {
	//repolint:allow detsource corpus proof that a reasoned waiver suppresses the finding
	return time.Now()
}

// Trailing: a same-line waiver also suppresses.
func Trailing() time.Time {
	return time.Now() //repolint:allow detsource trailing waivers cover their own line
}

// Unknown: the analyzer name does not exist — reported, and the finding
// below survives.
func Unknown() time.Time {
	//repolint:allow typosource the analyzer name is wrong
	return time.Now()
}

// Missing: no reason given — reported, and the finding below survives.
func Missing() time.Time {
	//repolint:allow detsource
	return time.Now()
}

// Stale: the waiver suppresses nothing.
func Stale() int {
	//repolint:allow detsource nothing on the next line actually trips the analyzer
	return 42
}

// WrongAnalyzer: a waiver for a different analyzer does not suppress —
// the finding survives and the waiver is stale.
func WrongAnalyzer() time.Time {
	//repolint:allow maporder the wrong analyzer name leaves the finding live
	return time.Now()
}
