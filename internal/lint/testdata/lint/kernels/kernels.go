// Package kernels exercises the zonewrite corpus: zone.For kernels may
// write captured state only at slots their own [lo, hi) range owns, or
// per-worker scratch indexed by the worker parameter.
package kernels

import "lintdata/zone"

// Scale writes xs[i] under its own induction variable: owned slots.
func Scale(xs []float64, f float64) {
	zone.For(4, len(xs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] *= f
		}
	})
}

// PerWorker accumulates into worker-indexed scratch.
func PerWorker(scratch []int, n int) {
	zone.For(len(scratch), n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			scratch[w]++
		}
	})
}

// Local state declared inside the kernel is the kernel's own.
func Local(n int) int {
	var last int
	zone.For(1, n, func(_, lo, hi int) {
		count := 0
		for i := lo; i < hi; i++ {
			count++
		}
		last = count // want `writes captured variable last`
	})
	return last
}

// SharedSum races every worker on one captured scalar.
func SharedSum(xs []float64) float64 {
	var sum float64
	zone.For(4, len(xs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `writes captured variable sum`
		}
	})
	return sum
}

// MapStore writes a captured map: unsafe at any key.
func MapStore(m map[int]int, n int) {
	zone.For(4, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m[i] = i // want `captured map`
		}
	})
}

// WrongIndex writes a fixed slot from every worker.
func WrongIndex(xs []int, n int) {
	zone.For(4, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[0] = i // want `outside its \[lo,hi\) range`
		}
	})
}
