module lintdata

go 1.24
