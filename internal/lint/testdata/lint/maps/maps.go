// Package maps exercises the maporder corpus: ranging over a map is fine
// only when the body is provably order-insensitive or follows the
// collect-then-sort idiom.
package maps

import "sort"

// Keys is the canonical determinization idiom: append-only body, sorted
// before any read.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum is a commutative integer accumulation.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Mirror writes only under the loop key: distinct iterations touch
// distinct keys.
func Mirror(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// Prune deletes under the loop key.
func Prune(m map[string]bool) {
	for k, ok := range m {
		if !ok {
			delete(m, k)
		}
	}
}

// FloatSum is order-dependent: float addition does not commute in
// rounding.
func FloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `order-dependent body`
		total += v
	}
	return total
}

// FirstOver returns whichever qualifying key the runtime visits first.
func FirstOver(m map[string]int, limit int) string {
	for k, v := range m { // want `order-dependent body`
		if v > limit {
			return k
		}
	}
	return ""
}

// Collect appends but never sorts: the slice order is the visit order.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order-dependent body`
		keys = append(keys, k)
	}
	return keys
}

// CollectReadFirst sorts too late: the length read observes nothing, but
// any statement touching the slice before the sort voids the proof.
func CollectReadFirst(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order-dependent body`
		keys = append(keys, k)
	}
	first := ""
	if len(keys) > 0 {
		first = keys[0]
	}
	sort.Strings(keys)
	_ = first
	return keys
}

// Waived shows a reasoned suppression.
func Waived(m map[string]int) string {
	s := ""
	//repolint:allow maporder the result feeds a debug log whose line order is not part of any golden output
	for k := range m {
		s += k
	}
	return s
}
