// Package obs exercises the hooknil receiver-guard corpus: exported
// pointer-receiver methods of a configured nil-safe type must begin with
// a receiver nil check.
package obs

// Observer is registered in the test Config's NilSafe list.
type Observer struct {
	N int
}

// Guarded begins with the required nil check.
func (o *Observer) Guarded() {
	if o == nil {
		return
	}
	o.N++
}

// GuardedDisjunct may fold the nil test into an || chain.
func (o *Observer) GuardedDisjunct(x int) bool {
	if o == nil || x < 0 {
		return false
	}
	o.N += x
	return true
}

func (o *Observer) Bare() { // want `must begin with a receiver nil check`
	o.N++
}

// Value receivers cannot observe their own nilness and are exempt.
func (o Observer) Count() int { return o.N }

// Unexported methods are internal plumbing, not contract surface.
func (o *Observer) bump() { o.N++ }
