package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// FloatFmt keeps float bytes canonical in output-producing code: sinks,
// figure tables, and trace streams must format floats through the
// canonical shortest-round-trip form (strconv.FormatFloat(v, 'g', -1, 64),
// as campaign's gf helper does), never a bare %v/%g fmt verb or fmt.Sprint
// catch-all. The canonical helper and the bare verb agree today, but the
// contract must not hang on fmt's default verb choice staying put — golden
// corpus bytes are load-bearing (DESIGN §9).
//
// Flagged in deterministic packages, non-test files:
//
//   - %v or %g without width or precision applied to a float-typed
//     argument in a Printf-family call;
//   - any float-typed argument to the Sprint/Fprint/Sprintln family,
//     whose rendering is the same unpinned default.
//
// Explicit-precision verbs (%.2f, %.6g) are deliberate formatting choices
// and pass. fmt.Errorf is exempt: error text is diagnostics, not sink
// bytes.
var FloatFmt = &Analyzer{
	Name: "floatfmt",
	Doc:  "output-producing code must format floats via the canonical helpers, not bare %v/%g",
	Run:  runFloatFmt,
}

// printfFamily maps fmt function name to the index of its format-string
// argument; -1 marks the Print family (no format string).
var printfFamily = map[string]int{
	"Sprintf": 0, "Printf": 0, "Fprintf": 1, "Appendf": 1,
	"Sprint": -1, "Print": -1, "Fprint": -1, "Sprintln": -1,
	"Println": -1, "Fprintln": -1, "Append": -1, "Appendln": -1,
}

// printArgStart is where the value arguments begin for the Print family.
var printArgStart = map[string]int{
	"Sprint": 0, "Print": 0, "Sprintln": 0, "Println": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

func runFloatFmt(pass *Pass) {
	if !pass.Cfg.Deterministic(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTest(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
				return true
			}
			fmtIdx, ok := printfFamily[fn.Name()]
			if !ok {
				return true
			}
			if fmtIdx < 0 {
				for _, arg := range call.Args[min(printArgStart[fn.Name()], len(call.Args)):] {
					if isFloat(info.TypeOf(arg)) {
						pass.Reportf(arg.Pos(), "float argument to fmt.%s uses fmt's unpinned default rendering; format via the canonical helper (strconv.FormatFloat(v, 'g', -1, 64))", fn.Name())
					}
				}
				return true
			}
			if fmtIdx >= len(call.Args) {
				return true
			}
			format, ok := constantString(info, call.Args[fmtIdx])
			if !ok {
				return true // dynamic format string: nothing to prove
			}
			for _, v := range parseVerbs(format) {
				if v.verb != 'v' && v.verb != 'g' && v.verb != 'G' {
					continue
				}
				if v.hasWidthOrPrec {
					continue
				}
				argIdx := fmtIdx + 1 + v.arg
				if argIdx >= len(call.Args) {
					continue
				}
				if isFloat(info.TypeOf(call.Args[argIdx])) {
					pass.Reportf(call.Args[argIdx].Pos(), "float formatted with bare %%%c; sink bytes must come from the canonical helper (strconv.FormatFloat(v, 'g', -1, 64)), not fmt's default float rendering", v.verb)
				}
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbSpec is one conversion in a format string: the verb rune, whether an
// explicit width or precision pins the rendering, and the index of the
// argument it consumes (counting * width/precision arguments).
type verbSpec struct {
	verb           byte
	hasWidthOrPrec bool
	arg            int
}

// parseVerbs scans a Printf format string. Explicit argument indexes
// (%[n]v) abort the scan — the call is skipped rather than mis-mapped.
func parseVerbs(format string) []verbSpec {
	var specs []verbSpec
	arg := 0
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		spec := verbSpec{}
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return nil // explicit argument index: bail
		}
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				arg++
			}
			spec.hasWidthOrPrec = true
			i++
		}
		if i < len(format) && format[i] == '.' {
			spec.hasWidthOrPrec = true
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					arg++
				}
				i++
			}
		}
		if i >= len(format) {
			break
		}
		spec.verb = format[i]
		spec.arg = arg
		arg++
		i++
		specs = append(specs, spec)
	}
	return specs
}
