// crashresume_test.go proves the tentpole's acceptance contract: a
// campaign interrupted after ANY number of completed points and resumed
// from its journal produces sink output byte-identical to the
// uninterrupted run, re-executing only the missing points; cached points
// replay without re-execution; retried trials rerun the identical seed.
package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// straightRun executes the campaign uninterrupted with stubRun and returns
// its JSONL and CSV bytes — the reference every resumed run must match.
func straightRun(t *testing.T, c *Campaign) (string, string) {
	t.Helper()
	var jsonl, csvBuf bytes.Buffer
	if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}, Run: stubRun}); err != nil {
		t.Fatalf("straight run: %v", err)
	}
	return jsonl.String(), csvBuf.String()
}

// TestCrashResumeEquivalence is the property test at the heart of the PR:
// for EVERY prefix length k, kill a journaling run after k completed
// points, resume from the journal, and byte-compare the resumed run's
// JSONL and CSV against the uninterrupted run.
func TestCrashResumeEquivalence(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	refJ, refC := straightRun(t, c)
	n := len(c.Points)

	for k := 0; k < n; k++ {
		dir := t.TempDir()

		// Interrupted run: the executor closes Cancel as it finishes the
		// k-th point, so exactly k points are journaled (workers=1 — the
		// in-flight point drains, nothing new is claimed).
		cancel := make(chan struct{})
		var ran atomic.Int64
		killing := func(sc experiment.Scenario) (experiment.Result, error) {
			if int(ran.Add(1)) == k {
				close(cancel)
			}
			return stubRun(sc)
		}
		if k == 0 {
			close(cancel) // killed before any point
		}
		j, err := checkpoint.OpenJournal(dir, false)
		if err != nil {
			t.Fatalf("k=%d: OpenJournal: %v", k, err)
		}
		mem := &MemorySink{}
		_, err = c.Run(RunOptions{Workers: 1, Sinks: []Sink{mem}, Run: killing, Journal: j, Cancel: cancel})
		j.Close()
		if !errors.Is(err, experiment.ErrCancelled) {
			t.Fatalf("k=%d: interrupted run err = %v, want ErrCancelled", k, err)
		}
		if !mem.Aborted || mem.Closed {
			t.Fatalf("k=%d: interrupted run aborted=%v closed=%v, want aborted only", k, mem.Aborted, mem.Closed)
		}

		// Resume: replay the journal, execute only the missing points.
		completed, err := c.LoadCheckpoint(dir)
		if err != nil {
			t.Fatalf("k=%d: LoadCheckpoint: %v", k, err)
		}
		if len(completed) != k {
			t.Fatalf("k=%d: journal holds %d points, want exactly %d", k, len(completed), k)
		}
		j2, err := checkpoint.OpenJournal(dir, true)
		if err != nil {
			t.Fatalf("k=%d: reopen journal: %v", k, err)
		}
		var jsonl, csvBuf bytes.Buffer
		var reran atomic.Int64
		counting := func(sc experiment.Scenario) (experiment.Result, error) {
			reran.Add(1)
			return stubRun(sc)
		}
		_, err = c.Run(RunOptions{
			Workers:   3,
			Sinks:     []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)},
			Run:       counting,
			Journal:   j2,
			Completed: completed,
		})
		j2.Close()
		if err != nil {
			t.Fatalf("k=%d: resumed run: %v", k, err)
		}
		if got := int(reran.Load()); got != n-k {
			t.Fatalf("k=%d: resumed run executed %d points, want %d — resumed points re-simulated", k, got, n-k)
		}
		if jsonl.String() != refJ {
			t.Fatalf("k=%d: resumed JSONL diverged from uninterrupted run:\n--- resumed\n%s\n--- straight\n%s", k, jsonl.String(), refJ)
		}
		if csvBuf.String() != refC {
			t.Fatalf("k=%d: resumed CSV diverged from uninterrupted run:\n--- resumed\n%s\n--- straight\n%s", k, csvBuf.String(), refC)
		}

		// The journal now holds the complete grid: a second resume is a
		// pure replay executing nothing.
		complete, err := c.LoadCheckpoint(dir)
		if err != nil || len(complete) != n {
			t.Fatalf("k=%d: post-resume journal holds %d points (err %v), want %d", k, len(complete), err, n)
		}
	}
}

// TestCrashResumeReplicated spot-checks the replicated path: an
// interrupted replications:3 campaign resumes to byte-identical aggregate
// output, counting executions in trials.
func TestCrashResumeReplicated(t *testing.T) {
	c, err := Expand(replicatedSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var refJ, refC bytes.Buffer
	if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&refJ), NewCSVSink(&refC)}, Run: stubRun}); err != nil {
		t.Fatalf("straight run: %v", err)
	}
	reps := c.Replications()

	dir := t.TempDir()
	cancel := make(chan struct{})
	var trials atomic.Int64
	killing := func(sc experiment.Scenario) (experiment.Result, error) {
		if int(trials.Add(1)) == 2*reps { // two full points done
			close(cancel)
		}
		return stubRun(sc)
	}
	j, _ := checkpoint.OpenJournal(dir, false)
	_, err = c.Run(RunOptions{Workers: 1, Sinks: []Sink{&MemorySink{}}, Run: killing, Journal: j, Cancel: cancel})
	j.Close()
	if !errors.Is(err, experiment.ErrCancelled) {
		t.Fatalf("interrupted run err = %v, want ErrCancelled", err)
	}

	completed, err := c.LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if len(completed) != 2 {
		t.Fatalf("journal holds %d points, want 2", len(completed))
	}
	for i := range c.Points {
		if rs, ok := completed[i]; ok && len(rs) != reps {
			t.Fatalf("point %d journaled with %d replicates, want %d", i, len(rs), reps)
		}
	}

	j2, _ := checkpoint.OpenJournal(dir, true)
	var jsonl, csvBuf bytes.Buffer
	var reran atomic.Int64
	counting := func(sc experiment.Scenario) (experiment.Result, error) {
		reran.Add(1)
		return stubRun(sc)
	}
	_, err = c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}, Run: counting, Journal: j2, Completed: completed})
	j2.Close()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if want := (len(c.Points) - 2) * reps; int(reran.Load()) != want {
		t.Fatalf("resumed run executed %d trials, want %d", reran.Load(), want)
	}
	if jsonl.String() != refJ.String() || csvBuf.String() != refC.String() {
		t.Fatal("resumed replicated output diverged from uninterrupted run")
	}
}

// TestCacheHitDeterminism: a second campaign sharing a cache directory
// re-executes nothing and still produces byte-identical output; an
// overlapping campaign executes only its new points.
func TestCacheHitDeterminism(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	refJ, refC := straightRun(t, c)
	cache, err := checkpoint.OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}

	var ran atomic.Int64
	counting := func(sc experiment.Scenario) (experiment.Result, error) {
		ran.Add(1)
		return stubRun(sc)
	}
	var j1, c1 bytes.Buffer
	if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&j1), NewCSVSink(&c1)}, Run: counting, Cache: cache}); err != nil {
		t.Fatalf("first cached run: %v", err)
	}
	if int(ran.Load()) != len(c.Points) {
		t.Fatalf("first run executed %d points, want %d", ran.Load(), len(c.Points))
	}
	if j1.String() != refJ || c1.String() != refC {
		t.Fatal("cache-writing run diverged from plain run")
	}

	// Same campaign again: every point is a cache hit, zero executions,
	// identical bytes.
	progress := obs.NewCampaignProgress("grid", len(c.Points))
	ran.Store(0)
	var j2, c2 bytes.Buffer
	if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&j2), NewCSVSink(&c2)}, Run: counting, Cache: cache, Progress: progress}); err != nil {
		t.Fatalf("second cached run: %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("fully-cached run executed %d points, want 0", ran.Load())
	}
	if j2.String() != refJ || c2.String() != refC {
		t.Fatal("fully-cached run diverged from plain run")
	}
	if s := progress.Snapshot(); s.CacheHits != len(c.Points) || s.Done != len(c.Points) {
		t.Fatalf("progress after cached run: %+v, want all points cache hits", s)
	}

	// An overlapping campaign — same base, fewer nodes values plus a new
	// one — reuses the shared points and executes only the new column.
	overlap, err := Expand(specFromJSON(t, `{
		"name": "grid",
		"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
		"axes": {
			"protocol": ["spms", "spin"],
			"nodes": [25, 81],
			"seed": {"count": 2}
		}
	}`))
	if err != nil {
		t.Fatalf("Expand overlap: %v", err)
	}
	ran.Store(0)
	if _, err := overlap.Run(RunOptions{Workers: 4, Sinks: []Sink{&MemorySink{}}, Run: counting, Cache: cache}); err != nil {
		t.Fatalf("overlapping run: %v", err)
	}
	// nodes 25 points (2 protocols × 2 seeds = 4) are cached; nodes 81
	// points (4) are new.
	if ran.Load() != 4 {
		t.Fatalf("overlapping run executed %d points, want 4 (only the new nodes column)", ran.Load())
	}
}

// TestRetrySeedStability: a transiently failing trial re-executes with the
// IDENTICAL scenario and seed, backoff follows the exponential schedule
// through the Sleep seam, and the healed run's output is byte-identical to
// a never-failing run. A panicking first attempt exercises the same path
// (panic → recovered PanicError → retry).
func TestRetrySeedStability(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	refJ, refC := straightRun(t, c)

	var mu sync.Mutex
	attempts := make(map[string][]experiment.Scenario) // trial identity → scenarios per attempt
	var waits []time.Duration
	flaky := func(sc experiment.Scenario) (experiment.Result, error) {
		key := fmt.Sprintf("%v/%d/%d", sc.Protocol, sc.Nodes, sc.Seed)
		mu.Lock()
		attempts[key] = append(attempts[key], sc)
		n := len(attempts[key])
		mu.Unlock()
		if n == 1 && sc.Nodes == 49 {
			return experiment.Result{}, fmt.Errorf("transient fault")
		}
		if n <= 2 && sc.Nodes == 100 {
			panic("simulated trial crash") // recovered, then retried twice
		}
		return stubRun(sc)
	}
	sleep := func(d time.Duration) {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
	}
	progress := obs.NewCampaignProgress("grid", len(c.Points))
	var jsonl, csvBuf bytes.Buffer
	_, err = c.Run(RunOptions{
		Workers:  1,
		Sinks:    []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)},
		Run:      flaky,
		Retry:    RetryPolicy{Max: 2, Backoff: time.Millisecond},
		Sleep:    sleep,
		Progress: progress,
	})
	if err != nil {
		t.Fatalf("flaky run with retry: %v", err)
	}
	if jsonl.String() != refJ || csvBuf.String() != refC {
		t.Fatal("retried run diverged from never-failing run — retry changed results")
	}
	keys := make([]string, 0, len(attempts))
	for key := range attempts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		scs := attempts[key]
		for i := 1; i < len(scs); i++ {
			if scs[i] != scs[0] {
				t.Fatalf("trial %s attempt %d ran a different scenario:\nfirst %+v\nretry %+v", key, i, scs[0], scs[i])
			}
		}
	}
	// 4 single-retry points (nodes=49: 2 protocols × 2 seeds) wait 1ms;
	// 4 double-retry points (nodes=100) wait 1ms then 2ms.
	var ones, twos int
	for _, d := range waits {
		switch d {
		case time.Millisecond:
			ones++
		case 2 * time.Millisecond:
			twos++
		default:
			t.Fatalf("unexpected backoff %v", d)
		}
	}
	if ones != 8 || twos != 4 {
		t.Fatalf("backoff schedule: %d×1ms %d×2ms, want 8×1ms 4×2ms", ones, twos)
	}
	if s := progress.Snapshot(); s.Retries != 12 {
		t.Fatalf("progress retries = %d, want 12", s.Retries)
	}
}

// TestRetryExhaustion: a permanently failing point surfaces its last error
// tagged with the attempt count, and the sinks are aborted, not closed.
func TestRetryExhaustion(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	dead := func(sc experiment.Scenario) (experiment.Result, error) {
		if sc.Nodes == 49 {
			return experiment.Result{}, fmt.Errorf("hard fault")
		}
		return stubRun(sc)
	}
	mem := &MemorySink{}
	_, err = c.Run(RunOptions{Workers: 1, Sinks: []Sink{mem}, Run: dead, Retry: RetryPolicy{Max: 2}})
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") || !strings.Contains(err.Error(), "hard fault") {
		t.Fatalf("err = %v, want the last error tagged with 3 attempts", err)
	}
	if !mem.Aborted || mem.Closed {
		t.Fatalf("failed run aborted=%v closed=%v, want aborted only", mem.Aborted, mem.Closed)
	}
}

// TestLoadCheckpointValidation: a journal is only replayable into the
// campaign it came from — wrong index, wrong hash, or wrong replicate
// count all fail loudly instead of corrupting the resumed run.
func TestLoadCheckpointValidation(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	goodHash := func(i int) string {
		h, err := experiment.ScenarioHash(c.Points[i].Scenario)
		if err != nil {
			t.Fatalf("hash: %v", err)
		}
		return h
	}
	res := []experiment.Result{{Items: 1}}

	cases := []struct {
		name string
		rec  checkpoint.Record
		want string
	}{
		{"index out of range", checkpoint.Record{Index: len(c.Points), Hash: goodHash(0), Results: res}, "outside"},
		{"negative index", checkpoint.Record{Index: -1, Hash: goodHash(0), Results: res}, "outside"},
		{"hash mismatch", checkpoint.Record{Index: 0, Hash: goodHash(1), Results: res}, "different campaign"},
		{"replicate count", checkpoint.Record{Index: 0, Hash: goodHash(0), Results: []experiment.Result{{}, {}}}, "replicates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := checkpoint.OpenJournal(dir, false)
			if err := j.Append(tc.rec); err != nil {
				t.Fatalf("Append: %v", err)
			}
			j.Close()
			if _, err := c.LoadCheckpoint(dir); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("LoadCheckpoint err = %v, want %q", err, tc.want)
			}
		})
	}

	// A valid journal replays; a later duplicate record wins.
	dir := t.TempDir()
	j, _ := checkpoint.OpenJournal(dir, false)
	j.Append(checkpoint.Record{Index: 0, Hash: goodHash(0), Results: []experiment.Result{{Items: 1}}})
	j.Append(checkpoint.Record{Index: 0, Hash: goodHash(0), Results: []experiment.Result{{Items: 2}}})
	j.Close()
	completed, err := c.LoadCheckpoint(dir)
	if err != nil || len(completed) != 1 || completed[0][0].Items != 2 {
		t.Fatalf("duplicate-record journal: completed=%v err=%v, want the later record", completed, err)
	}
}

// TestFileSinkLifecycle: a FileSink streams to <path>.partial, publishes
// <path> only on clean Close, and leaves the .partial behind on Abort.
func TestFileSinkLifecycle(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	refJ, _ := straightRun(t, c)

	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	fs, err := NewFileSink(path, func(w io.Writer) Sink { return NewJSONLSink(w) })
	if err != nil {
		t.Fatalf("NewFileSink: %v", err)
	}
	if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{fs}, Run: stubRun}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("published file: %v", err)
	}
	if string(data) != refJ {
		t.Fatal("published file diverged from reference output")
	}
	if _, err := os.Stat(path + PartialSuffix); !os.IsNotExist(err) {
		t.Fatalf(".partial still present after clean Close (stat err %v)", err)
	}

	// Interrupted: the .partial stays, the final name never appears.
	path2 := filepath.Join(dir, "dead.jsonl")
	fs2, err := NewFileSink(path2, func(w io.Writer) Sink { return NewJSONLSink(w) })
	if err != nil {
		t.Fatalf("NewFileSink: %v", err)
	}
	cancel := make(chan struct{})
	close(cancel)
	if _, err := c.Run(RunOptions{Workers: 1, Sinks: []Sink{fs2}, Run: stubRun, Cancel: cancel}); !errors.Is(err, experiment.ErrCancelled) {
		t.Fatalf("cancelled run err = %v, want ErrCancelled", err)
	}
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatalf("aborted run published its output (stat err %v)", err)
	}
	if _, err := os.Stat(path2 + PartialSuffix); err != nil {
		t.Fatalf("aborted run left no .partial: %v", err)
	}
}
