// fuzz_test.go fuzzes the strict campaign-spec decoder: ParseSpec must
// never panic, and any accepted spec must expand (under a point-count
// guard) and re-encode its base scenario stably — the same
// decode→encode→decode contract the Scenario fuzzer enforces, applied
// through the campaign document.
//
// CI runs a short `-fuzz` smoke on top of the seed corpus; locally:
//
//	go test -run=^$ -fuzz=FuzzDecodeSpec -fuzztime=30s ./internal/campaign/
package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

// fuzzMaxPoints bounds Expand during fuzzing: a fuzzer-built range can
// legally expand to hundreds of thousands of points, which is correctness
// we already test elsewhere but far too slow per fuzz iteration.
const fuzzMaxPoints = 4096

func FuzzDecodeSpec(f *testing.F) {
	// Seed with every committed spec: the examples and the golden corpus.
	for _, dir := range []string{
		filepath.Join("..", "..", "examples", "campaigns"),
		filepath.Join("..", "..", "testdata", "golden", "campaigns"),
	} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			f.Fatalf("glob %s: %v", dir, err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				f.Fatalf("read %s: %v", p, err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"n","base":{},"axes":{"nodes":{"from":1,"to":5,"step":2},"seed":{"count":3}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}

		// Expansion must not panic on any accepted spec. Skip expansion
		// for grids the fuzzer made huge: bindings() is cheap, so size the
		// grid first.
		bs, err := spec.bindings()
		if err == nil {
			total := 1
			for _, b := range bs {
				total *= len(b.values)
				if total > fuzzMaxPoints {
					total = -1
					break
				}
			}
			if total > 0 {
				_, _ = Expand(spec)
			}
		}

		// The base scenario is the re-encodable part of a spec: its wire
		// form must round-trip stably.
		enc, err := json.Marshal(spec.Base)
		if err != nil {
			return // unnamable numeric enum values; see the scenario fuzzer
		}
		var sc experiment.Scenario
		if err := json.Unmarshal(enc, &sc); err != nil {
			t.Fatalf("re-decode of own base encoding failed: %v\nencoding: %s", err, enc)
		}
		enc2, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("base encoding unstable:\n first %s\nsecond %s", enc, enc2)
		}
	})
}
