// expand.go turns a Spec into its deterministic point grid: the cartesian
// product of every non-empty axis, enumerated row-major with the last
// (canonical-order) axis varying fastest. Every point's scenario is fully
// defaulted and validated at expansion time, so a bad spec fails before
// any simulation runs.
package campaign

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
)

// MaxPoints bounds grid expansion: a spec whose axes multiply out beyond
// this is almost certainly a typo, and failing fast beats allocating the
// grid.
const MaxPoints = 1_000_000

// Param is one axis assignment of a point, in display form.
type Param struct {
	Name  string
	Value string
}

// Point is one expanded grid point: its stable index, the axis assignments
// that produced it (canonical order), and the fully-defaulted scenario.
type Point struct {
	Index    int
	Params   []Param
	Scenario experiment.Scenario
}

// ParamsString renders the assignments as "name=value name=value".
func (p Point) ParamsString() string {
	parts := make([]string, len(p.Params))
	for i, pr := range p.Params {
		parts[i] = pr.Name + "=" + pr.Value
	}
	return strings.Join(parts, " ")
}

// Campaign is an expanded spec, ready to run.
type Campaign struct {
	Spec      Spec
	AxisNames []string // non-empty axes, canonical order
	Points    []Point
}

// Replications returns the per-point trial count, at least 1. It is
// uniform across the grid: the spec-level field (or the base scenario's)
// applies to every point at expansion.
func (c *Campaign) Replications() int {
	if len(c.Points) == 0 {
		return 1
	}
	return experiment.Replications(c.Points[0].Scenario)
}

// axisValue is one value of one axis: its display label and the scenario
// mutation it represents.
type axisValue struct {
	label string
	apply func(*experiment.Scenario)
}

// binding is a non-empty axis with its expanded values.
type binding struct {
	name   string
	values []axisValue
}

// rejectZero fails axes over fields where a zero value means "use the
// package default" (Scenario.WithDefaults): the default would silently
// replace the value after the parameter label is minted, so every emitted
// record would attribute its result to a parameter that never ran.
func rejectZero[T comparable](axis string, vs []T) error {
	var zero T
	for _, v := range vs {
		if v == zero {
			return fmt.Errorf("campaign: axis %s: zero means %q in a Scenario and would be replaced by the default; write the intended value explicitly", axis, "use the default")
		}
	}
	return nil
}

// bindings expands the spec's axes into canonical order, resolving the
// seed axis's count form against the base seed.
func (s Spec) bindings() ([]binding, error) {
	zeroChecks := []error{
		rejectZero("placementClusters", s.Axes.PlacementClusters.Values),
		rejectZero("placementSpread", s.Axes.PlacementSpread.Values),
		rejectZero("burstRadius", s.Axes.BurstRadius.Values),
		rejectZero("gridSpacing", s.Axes.GridSpacing.Values),
		rejectZero("packetsPerNode", s.Axes.PacketsPerNode.Values),
		rejectZero("meanArrival", s.Axes.MeanArrival.Values),
		rejectZero("clusterInterestProb", s.Axes.ClusterInterestProb.Values),
		rejectZero("mobilityPeriod", s.Axes.MobilityPeriod.Values),
		rejectZero("mobilityFraction", s.Axes.MobilityFraction.Values),
		rejectZero("routeAlternatives", s.Axes.RouteAlternatives.Values),
		rejectZero("drain", s.Axes.Drain.Values),
	}
	for _, err := range zeroChecks {
		if err != nil {
			return nil, err
		}
	}

	var bs []binding
	add := func(name string, values []axisValue) {
		if len(values) > 0 {
			bs = append(bs, binding{name, values})
		}
	}

	var protos []axisValue
	for _, p := range s.Axes.Protocol {
		p := p
		protos = append(protos, axisValue{strings.ToLower(p.String()), func(sc *experiment.Scenario) { sc.Protocol = p }})
	}
	add("protocol", protos)

	var wls []axisValue
	for _, w := range s.Axes.Workload {
		w := w
		wls = append(wls, axisValue{w.String(), func(sc *experiment.Scenario) { sc.Workload = w }})
	}
	add("workload", wls)

	// Model axes list the zero-valued default model ("grid", "transient",
	// "relocate") as a legitimate sweep value: unlike the zero-rejected
	// numeric axes, the zero model is never replaced by WithDefaults — it
	// IS the default model — so the emitted label always names what ran.
	var places []axisValue
	for _, p := range s.Axes.Placement {
		p := p
		places = append(places, axisValue{p.String(), func(sc *experiment.Scenario) { sc.Placement = p }})
	}
	add("placement", places)

	add("placementClusters", intValues(s.Axes.PlacementClusters.Values, func(sc *experiment.Scenario, v int) { sc.PlacementClusters = v }))
	add("placementSpread", floatValues(s.Axes.PlacementSpread.Values, func(sc *experiment.Scenario, v float64) { sc.PlacementSpread = v }))

	add("nodes", intValues(s.Axes.Nodes.Values, func(sc *experiment.Scenario, v int) { sc.Nodes = v }))
	add("gridSpacing", floatValues(s.Axes.GridSpacing.Values, func(sc *experiment.Scenario, v float64) { sc.GridSpacing = v }))
	add("zoneRadius", floatValues(s.Axes.ZoneRadius.Values, func(sc *experiment.Scenario, v float64) { sc.ZoneRadius = v }))
	add("packetsPerNode", intValues(s.Axes.PacketsPerNode.Values, func(sc *experiment.Scenario, v int) { sc.PacketsPerNode = v }))
	add("meanArrival", durationValues(s.Axes.MeanArrival.Values, func(sc *experiment.Scenario, v time.Duration) { sc.MeanArrival = v }))
	add("clusterInterestProb", floatValues(s.Axes.ClusterInterestProb.Values, func(sc *experiment.Scenario, v float64) { sc.ClusterInterestProb = v }))
	add("failures", boolValues(s.Axes.Failures, func(sc *experiment.Scenario, v bool) { sc.Failures = v }))

	var fms []axisValue
	for _, m := range s.Axes.FailureModel {
		m := m
		fms = append(fms, axisValue{m.String(), func(sc *experiment.Scenario) { sc.FailureCfg.Model = m }})
	}
	add("failureModel", fms)

	add("burstRadius", floatValues(s.Axes.BurstRadius.Values, func(sc *experiment.Scenario, v float64) { sc.FailureCfg.BurstRadius = v }))

	add("mobility", boolValues(s.Axes.Mobility, func(sc *experiment.Scenario, v bool) { sc.Mobility = v }))

	var mms []axisValue
	for _, m := range s.Axes.MobilityModel {
		m := m
		mms = append(mms, axisValue{m.String(), func(sc *experiment.Scenario) { sc.MobilityModel = m }})
	}
	add("mobilityModel", mms)

	add("mobilityPeriod", durationValues(s.Axes.MobilityPeriod.Values, func(sc *experiment.Scenario, v time.Duration) { sc.MobilityPeriod = v }))
	add("mobilityFraction", floatValues(s.Axes.MobilityFraction.Values, func(sc *experiment.Scenario, v float64) { sc.MobilityFraction = v }))
	add("routeAlternatives", intValues(s.Axes.RouteAlternatives.Values, func(sc *experiment.Scenario, v int) { sc.RouteAlternatives = v }))
	add("carrierSense", boolValues(s.Axes.CarrierSense, func(sc *experiment.Scenario, v bool) { sc.CarrierSense = v }))
	add("drain", durationValues(s.Axes.Drain.Values, func(sc *experiment.Scenario, v time.Duration) { sc.Drain = v }))

	seeds := s.Axes.Seed.Values
	if s.Axes.Seed.Count > 0 {
		seeds = make([]int64, s.Axes.Seed.Count)
		for i := range seeds {
			seeds[i] = s.Base.Seed + int64(i)
		}
	}
	var seedVals []axisValue
	for _, v := range seeds {
		v := v
		seedVals = append(seedVals, axisValue{strconv.FormatInt(v, 10), func(sc *experiment.Scenario) { sc.Seed = v }})
	}
	add("seed", seedVals)

	return bs, nil
}

func intValues(vs []int, set func(*experiment.Scenario, int)) []axisValue {
	out := make([]axisValue, len(vs))
	for i, v := range vs {
		v := v
		out[i] = axisValue{strconv.Itoa(v), func(sc *experiment.Scenario) { set(sc, v) }}
	}
	return out
}

func floatValues(vs []float64, set func(*experiment.Scenario, float64)) []axisValue {
	out := make([]axisValue, len(vs))
	for i, v := range vs {
		v := v
		out[i] = axisValue{strconv.FormatFloat(v, 'g', -1, 64), func(sc *experiment.Scenario) { set(sc, v) }}
	}
	return out
}

func boolValues(vs []bool, set func(*experiment.Scenario, bool)) []axisValue {
	out := make([]axisValue, len(vs))
	for i, v := range vs {
		v := v
		out[i] = axisValue{strconv.FormatBool(v), func(sc *experiment.Scenario) { set(sc, v) }}
	}
	return out
}

func durationValues(vs []time.Duration, set func(*experiment.Scenario, time.Duration)) []axisValue {
	out := make([]axisValue, len(vs))
	for i, v := range vs {
		v := v
		out[i] = axisValue{v.String(), func(sc *experiment.Scenario) { set(sc, v) }}
	}
	return out
}

// Expand materializes the spec's grid. Every returned point is fully
// defaulted (experiment.Scenario.WithDefaults) and validated.
func Expand(spec Spec) (*Campaign, error) {
	if spec.Replications < 0 {
		return nil, fmt.Errorf("campaign %q: negative replications %d", spec.Name, spec.Replications)
	}
	bs, err := spec.bindings()
	if err != nil {
		return nil, err
	}
	total := 1
	for _, b := range bs {
		total *= len(b.values)
		if total > MaxPoints {
			return nil, fmt.Errorf("campaign %q: grid exceeds %d points", spec.Name, MaxPoints)
		}
	}
	reps := spec.Replications
	if reps == 0 {
		reps = spec.Base.Replications
	}
	if reps > 1 && total > MaxPoints/reps {
		return nil, fmt.Errorf("campaign %q: grid of %d points × %d replications exceeds %d trials",
			spec.Name, total, reps, MaxPoints)
	}

	c := &Campaign{Spec: spec, Points: make([]Point, 0, total)}
	for _, b := range bs {
		c.AxisNames = append(c.AxisNames, b.name)
	}

	idx := make([]int, len(bs))
	for i := 0; i < total; i++ {
		sc := spec.Base
		params := make([]Param, len(bs))
		for j, b := range bs {
			v := b.values[idx[j]]
			v.apply(&sc)
			params[j] = Param{b.name, v.label}
		}
		sc = sc.WithDefaults()
		if spec.Replications != 0 {
			sc.Replications = spec.Replications
		}
		p := Point{Index: i, Params: params, Scenario: sc}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("campaign %q: point %d (%s): %w", spec.Name, i, p.ParamsString(), err)
		}
		c.Points = append(c.Points, p)

		// Odometer step: last axis fastest.
		for j := len(bs) - 1; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(bs[j].values) {
				break
			}
			idx[j] = 0
		}
	}
	return c, nil
}
