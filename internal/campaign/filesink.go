// filesink.go publishes sink output atomically: a FileSink streams into
// <path>.partial and renames it to <path> only when the campaign completes
// cleanly (Close). A crashed or cancelled run leaves the .partial file in
// place — inspectable, obviously unfinished, and never mistaken by
// downstream tooling (plotters, diffing, the golden corpus) for a
// completed result file.
package campaign

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/experiment"
)

// FileSink wraps an inner sink, directing its output to path+".partial"
// and renaming to path on successful Close.
type FileSink struct {
	inner Sink
	f     *os.File
	path  string
}

// PartialSuffix is appended to a FileSink's path while the run is in
// flight; Close removes it by renaming.
const PartialSuffix = ".partial"

// NewFileSink creates path+".partial" (truncating any previous attempt)
// and wraps the sink that build constructs over it.
func NewFileSink(path string, build func(io.Writer) Sink) (*FileSink, error) {
	f, err := os.OpenFile(path+PartialSuffix, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: create %s%s: %w", path, PartialSuffix, err)
	}
	return &FileSink{inner: build(f), f: f, path: path}, nil
}

// Begin delegates to the inner sink.
func (s *FileSink) Begin(c *Campaign) error { return s.inner.Begin(c) }

// Point delegates to the inner sink.
func (s *FileSink) Point(p Point, res experiment.Result) error { return s.inner.Point(p, res) }

// Aggregate delegates to the inner sink.
func (s *FileSink) Aggregate(p Point, agg Aggregate) error { return s.inner.Aggregate(p, agg) }

// Close finalizes: flush the inner sink, make the bytes durable, and
// publish the finished file under its real name. Only a clean completion
// reaches the rename, so the existence of <path> certifies a full run.
func (s *FileSink) Close() error {
	if err := s.inner.Close(); err != nil {
		s.f.Close()
		return err
	}
	//repolint:allow detsource publishing the output is a durability barrier: the rename must not make bytes visible that are not yet on stable storage
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("campaign: sync %s%s: %w", s.path, PartialSuffix, err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("campaign: close %s%s: %w", s.path, PartialSuffix, err)
	}
	if err := os.Rename(s.path+PartialSuffix, s.path); err != nil {
		return fmt.Errorf("campaign: publish %s: %w", s.path, err)
	}
	return nil
}

// Abort flushes the inner sink and closes the file but does NOT rename:
// the .partial file stays behind as the interrupted run's residue.
func (s *FileSink) Abort() error {
	err := s.inner.Abort()
	if cerr := s.f.Close(); cerr != nil {
		err = errors.Join(err, fmt.Errorf("campaign: close %s%s: %w", s.path, PartialSuffix, cerr))
	}
	return err
}
