// models_test.go covers the model-enum campaign axes: spec parsing,
// canonical expansion order, label/scenario agreement, and the zero-reject
// rules on the new parameter axes.
package campaign

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/fault"
)

func TestModelAxesExpand(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
		"name": "model-axes",
		"base": {
			"protocol": "spms",
			"workload": "all-to-all",
			"nodes": 25,
			"zoneRadius": 15,
			"failures": true,
			"mobility": true,
			"seed": 1
		},
		"axes": {
			"placement": ["grid", "clustered"],
			"failureModel": ["transient", "burst"],
			"mobilityModel": ["relocate", "waypoint"]
		}
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(c.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(c.Points))
	}
	wantAxes := []string{"placement", "failureModel", "mobilityModel"}
	if len(c.AxisNames) != len(wantAxes) {
		t.Fatalf("axis names %v, want %v", c.AxisNames, wantAxes)
	}
	for i, n := range wantAxes {
		if c.AxisNames[i] != n {
			t.Fatalf("axis %d = %q, want %q (canonical order)", i, c.AxisNames[i], n)
		}
	}
	// Last axis varies fastest; every label must agree with the scenario
	// it produced.
	for i, p := range c.Points {
		wantPlacement := []experiment.PlacementKind{experiment.PlaceGrid, experiment.PlaceClustered}[i/4]
		wantFailure := []fault.Model{fault.Transient, fault.Burst}[(i/2)%2]
		wantMobility := []experiment.MobilityKind{experiment.MobRelocate, experiment.MobWaypoint}[i%2]
		if p.Scenario.Placement != wantPlacement || p.Scenario.FailureCfg.Model != wantFailure || p.Scenario.MobilityModel != wantMobility {
			t.Fatalf("point %d scenario (%v, %v, %v), want (%v, %v, %v)", i,
				p.Scenario.Placement, p.Scenario.FailureCfg.Model, p.Scenario.MobilityModel,
				wantPlacement, wantFailure, wantMobility)
		}
		if got := p.Params[0].Value; got != wantPlacement.String() {
			t.Fatalf("point %d placement label %q, want %q", i, got, wantPlacement.String())
		}
		if got := p.Params[1].Value; got != wantFailure.String() {
			t.Fatalf("point %d failure label %q, want %q", i, got, wantFailure.String())
		}
		if got := p.Params[2].Value; got != wantMobility.String() {
			t.Fatalf("point %d mobility label %q, want %q", i, got, wantMobility.String())
		}
		// Burst points inherit the zone radius as default burst radius;
		// expansion must produce fully defaulted, valid scenarios.
		if wantFailure == fault.Burst && p.Scenario.FailureCfg.BurstRadius != p.Scenario.ZoneRadius {
			t.Fatalf("point %d burst radius %v, want zone radius %v", i, p.Scenario.FailureCfg.BurstRadius, p.Scenario.ZoneRadius)
		}
		if wantMobility == experiment.MobWaypoint && p.Scenario.WaypointSpeedMax == 0 {
			t.Fatalf("point %d waypoint scenario missing speed defaults", i)
		}
	}
}

func TestModelParamAxes(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
		"name": "burst-sweep",
		"base": {
			"protocol": "spms", "workload": "all-to-all",
			"nodes": 25, "zoneRadius": 15, "failures": true,
			"failureConfig": {"model": "burst"},
			"seed": 1
		},
		"axes": {"burstRadius": [10, 20, 30]}
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(c.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(c.Points))
	}
	for i, want := range []float64{10, 20, 30} {
		if got := c.Points[i].Scenario.FailureCfg.BurstRadius; got != want {
			t.Fatalf("point %d burst radius %v, want %v", i, got, want)
		}
	}
}

// TestFailureModelBurstRadiusCrossSweep: the radius parameter is ignored
// by non-burst models (like any unselected model's knobs), so the cross
// product of the model axis and the radius axis must expand.
func TestFailureModelBurstRadiusCrossSweep(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
		"name": "cross",
		"base": {"protocol": "spms", "workload": "all-to-all", "nodes": 25, "zoneRadius": 15, "failures": true, "seed": 1},
		"axes": {"failureModel": ["transient", "burst"], "burstRadius": [10, 20]}
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(c.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(c.Points))
	}
}

func TestModelAxesRejectZero(t *testing.T) {
	for _, axes := range []string{
		`{"placementClusters": [0, 4]}`,
		`{"placementSpread": [0, 2.5]}`,
		`{"burstRadius": [0, 10]}`,
	} {
		spec, err := ParseSpec(strings.NewReader(`{
			"name": "zeroes",
			"base": {"protocol": "spms", "workload": "all-to-all", "nodes": 25, "zoneRadius": 15, "seed": 1},
			"axes": ` + axes + `}`))
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", axes, err)
		}
		if _, err := Expand(spec); err == nil {
			t.Fatalf("zero value in %s accepted", axes)
		}
	}
}

func TestUnknownModelNameRejected(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{
		"name": "typo",
		"base": {"protocol": "spms", "workload": "all-to-all", "nodes": 25, "zoneRadius": 15, "seed": 1},
		"axes": {"placement": ["hexgrid"]}
	}`))
	if err == nil {
		t.Fatal("unknown placement name accepted")
	}
	_, err = ParseSpec(strings.NewReader(`{
		"name": "typo2",
		"base": {"protocol": "spms", "workload": "all-to-all", "nodes": 25, "zoneRadius": 15, "seed": 1},
		"axes": {"failureModel": ["meteor"]}
	}`))
	if err == nil {
		t.Fatal("unknown failure model name accepted")
	}
}
