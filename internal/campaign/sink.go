// sink.go defines the streaming result sinks. The runner (run.go)
// guarantees sinks observe points strictly in index order — out-of-order
// sweep completions are buffered and flushed as an ordered prefix — so a
// sink is a plain sequential writer and its output is byte-identical at
// every worker-pool size.
package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/experiment"
	"repro/internal/stats"
)

// Sink consumes finished campaign points in index order. Begin is called
// once before any point. Exactly one of Point and Aggregate fires per
// point: Point for unreplicated campaigns (replications <= 1, the
// pre-replication record formats byte for byte), Aggregate when the
// campaign replicates (replications > 1). The stream ends with exactly one
// of Close or Abort: Close after the last point of a completed run
// (finalize — flush, and for file-backed sinks publish the output); Abort
// when the run failed or was cancelled (flush what was written, but do NOT
// finalize — a file-backed sink leaves its .partial file in place so an
// interrupted run can never be mistaken for a finished one).
type Sink interface {
	Begin(c *Campaign) error
	Point(p Point, res experiment.Result) error
	Aggregate(p Point, agg Aggregate) error
	Close() error
	Abort() error
}

// Aggregate is the statistics record of one replicated point: the raw
// replicate vector (replicate order) and the per-metric summaries, both
// deterministic at any pool size.
type Aggregate struct {
	Replications int
	Results      []experiment.Result // one per replicate, replicate order
	Metrics      []stats.Summary     // aligned with experiment.ResultMetricNames()
}

// NewAggregate summarizes a replicate vector.
func NewAggregate(rs []experiment.Result) Aggregate {
	return Aggregate{
		Replications: len(rs),
		Results:      rs,
		Metrics:      experiment.AggregateResults(rs),
	}
}

// JSONLSink writes one JSON object per point: the campaign name, point
// index, its parameter tuple (axis order preserved), the fully-defaulted
// scenario, and the result. Replicated points instead produce an
// aggregate record — replication count plus per-metric statistics in
// ResultMetricNames order — optionally preceded by one record per
// replicate (PerReplicate).
type JSONLSink struct {
	w        io.Writer
	campaign string

	// PerReplicate additionally emits each replicate of a replicated
	// point as its own record (tagged with the replicate index and the
	// trial scenario with its derived seed) before the aggregate record.
	PerReplicate bool
}

// NewJSONLSink builds a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Begin records the campaign name for per-line tagging.
func (s *JSONLSink) Begin(c *Campaign) error {
	s.campaign = c.Spec.Name
	return nil
}

// Point writes one record line.
func (s *JSONLSink) Point(p Point, res experiment.Result) error {
	rec := struct {
		Campaign string              `json:"campaign,omitempty"`
		Index    int                 `json:"index"`
		Params   json.RawMessage     `json:"params"`
		Scenario experiment.Scenario `json:"scenario"`
		Result   experiment.Result   `json:"result"`
	}{s.campaign, p.Index, paramsJSON(p.Params), p.Scenario, res}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("campaign: jsonl point %d: %w", p.Index, err)
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: jsonl write: %w", err)
	}
	return nil
}

// Aggregate writes the statistics record of one replicated point — and,
// with PerReplicate, one record per replicate before it.
func (s *JSONLSink) Aggregate(p Point, agg Aggregate) error {
	if s.PerReplicate {
		for r, res := range agg.Results {
			rec := struct {
				Campaign  string              `json:"campaign,omitempty"`
				Index     int                 `json:"index"`
				Replicate int                 `json:"replicate"`
				Params    json.RawMessage     `json:"params"`
				Scenario  experiment.Scenario `json:"scenario"`
				Result    experiment.Result   `json:"result"`
			}{s.campaign, p.Index, r, paramsJSON(p.Params), experiment.Replicate(p.Scenario, r), res}
			data, err := json.Marshal(&rec)
			if err != nil {
				return fmt.Errorf("campaign: jsonl point %d replicate %d: %w", p.Index, r, err)
			}
			if _, err := s.w.Write(append(data, '\n')); err != nil {
				return fmt.Errorf("campaign: jsonl write: %w", err)
			}
		}
	}
	rec := struct {
		Campaign     string              `json:"campaign,omitempty"`
		Index        int                 `json:"index"`
		Params       json.RawMessage     `json:"params"`
		Scenario     experiment.Scenario `json:"scenario"`
		Replications int                 `json:"replications"`
		Metrics      json.RawMessage     `json:"metrics"`
	}{s.campaign, p.Index, paramsJSON(p.Params), p.Scenario, agg.Replications, metricsJSON(agg.Metrics)}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("campaign: jsonl aggregate %d: %w", p.Index, err)
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: jsonl write: %w", err)
	}
	return nil
}

// Close is a no-op; the caller owns the writer.
func (s *JSONLSink) Close() error { return nil }

// Abort is a no-op: every record was written unbuffered, and the caller
// owns the writer.
func (s *JSONLSink) Abort() error { return nil }

// metricsJSON renders per-metric summaries as a JSON object in canonical
// metric order (json.Marshal of a map would sort keys alphabetically).
func metricsJSON(sums []stats.Summary) json.RawMessage {
	names := experiment.ResultMetricNames()
	var b bytes.Buffer
	b.WriteByte('{')
	for i, s := range sums {
		if i > 0 {
			b.WriteByte(',')
		}
		k, _ := json.Marshal(names[i])
		v, _ := json.Marshal(s)
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes()
}

// paramsJSON renders the tuple as a JSON object preserving axis order
// (json.Marshal of a map would sort keys alphabetically).
func paramsJSON(ps []Param) json.RawMessage {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		k, _ := json.Marshal(p.Name)
		v, _ := json.Marshal(p.Value)
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes()
}

// csvResultColumns is the fixed result half of the CSV header: the
// canonical metric order (delays milliseconds, energies microjoules),
// shared with the aggregate records.
var csvResultColumns = experiment.ResultMetricNames()

// CSVSink writes a header of "index", one column per axis, then the fixed
// result columns, followed by one row per point. For a replicated
// campaign the result half becomes "replications" plus mean/std/ci95
// triples per metric (min/max stay in the JSONL aggregate records).
type CSVSink struct {
	w *csv.Writer
}

// NewCSVSink builds a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: csv.NewWriter(w)} }

// Begin writes the header row; the campaign's replication count decides
// the per-point or aggregate column set.
func (s *CSVSink) Begin(c *Campaign) error {
	header := append([]string{"index"}, c.AxisNames...)
	if c.Replications() > 1 {
		header = append(header, "replications")
		for _, name := range csvResultColumns {
			header = append(header, name+"_mean", name+"_std", name+"_ci95")
		}
	} else {
		header = append(header, csvResultColumns...)
	}
	if err := s.w.Write(header); err != nil {
		return fmt.Errorf("campaign: csv header: %w", err)
	}
	return nil
}

// Point writes one row.
func (s *CSVSink) Point(p Point, res experiment.Result) error {
	row := make([]string, 0, 1+len(p.Params)+len(csvResultColumns))
	row = append(row, strconv.Itoa(p.Index))
	for _, pr := range p.Params {
		row = append(row, pr.Value)
	}
	row = append(row,
		gf(res.TotalEnergy), gf(res.EnergyPerPacket), gf(res.CtrlEnergy),
		gf(ms(res.MeanDelay)), gf(ms(res.P95Delay)), gf(ms(res.MaxDelay)),
		strconv.Itoa(res.Items), strconv.Itoa(res.Deliveries), strconv.Itoa(res.Expected), gf(res.DeliveryRate),
		u64(res.Timeouts), u64(res.Failovers), u64(res.Drops), u64(res.Duplicates),
		u64(res.SentADV), u64(res.SentREQ), u64(res.SentDATA),
		strconv.Itoa(res.DBFRounds), strconv.Itoa(res.DBFBroadcasts), strconv.Itoa(res.MobilityEvents), strconv.Itoa(res.FailuresInjected),
	)
	if err := s.w.Write(row); err != nil {
		return fmt.Errorf("campaign: csv point %d: %w", p.Index, err)
	}
	return nil
}

// Aggregate writes one row of per-metric mean/std/ci95 triples.
func (s *CSVSink) Aggregate(p Point, agg Aggregate) error {
	row := make([]string, 0, 2+len(p.Params)+3*len(agg.Metrics))
	row = append(row, strconv.Itoa(p.Index))
	for _, pr := range p.Params {
		row = append(row, pr.Value)
	}
	row = append(row, strconv.Itoa(agg.Replications))
	for _, m := range agg.Metrics {
		row = append(row, gf(m.Mean), gf(m.Std), gf(m.CI95))
	}
	if err := s.w.Write(row); err != nil {
		return fmt.Errorf("campaign: csv aggregate %d: %w", p.Index, err)
	}
	return nil
}

// Close flushes buffered rows.
func (s *CSVSink) Close() error {
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		return fmt.Errorf("campaign: csv flush: %w", err)
	}
	return nil
}

// Abort flushes buffered rows, same as Close — the csv.Writer buffers, and
// an interrupted run's flushed prefix is what makes its partial output
// inspectable. Finalization (if any) is the wrapping FileSink's job.
func (s *CSVSink) Abort() error { return s.Close() }

func gf(v float64) string        { return strconv.FormatFloat(v, 'g', -1, 64) }
func u64(v uint64) string        { return strconv.FormatUint(v, 10) }
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PointResult is one recorded (point, result) pair.
type PointResult struct {
	Point  Point
	Result experiment.Result
}

// PointAggregate is one recorded (point, aggregate) pair.
type PointAggregate struct {
	Point     Point
	Aggregate Aggregate
}

// MemorySink records everything it sees; the in-process sink for tests
// and for callers that want the tagged stream without serialization.
type MemorySink struct {
	Campaign   *Campaign
	Points     []PointResult
	Aggregates []PointAggregate
	Closed     bool
	Aborted    bool
}

// Begin records the campaign.
func (s *MemorySink) Begin(c *Campaign) error {
	s.Campaign = c
	return nil
}

// Point records the pair.
func (s *MemorySink) Point(p Point, res experiment.Result) error {
	s.Points = append(s.Points, PointResult{p, res})
	return nil
}

// Aggregate records the pair.
func (s *MemorySink) Aggregate(p Point, agg Aggregate) error {
	s.Aggregates = append(s.Aggregates, PointAggregate{p, agg})
	return nil
}

// Close marks the stream complete.
func (s *MemorySink) Close() error {
	s.Closed = true
	return nil
}

// Abort marks the stream interrupted.
func (s *MemorySink) Abort() error {
	s.Aborted = true
	return nil
}
