// sink.go defines the streaming result sinks. The runner (run.go)
// guarantees sinks observe points strictly in index order — out-of-order
// sweep completions are buffered and flushed as an ordered prefix — so a
// sink is a plain sequential writer and its output is byte-identical at
// every worker-pool size.
package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/experiment"
)

// Sink consumes finished campaign points in index order. Begin is called
// once before any point, Close once after the last (also on failure, to
// flush what was written).
type Sink interface {
	Begin(c *Campaign) error
	Point(p Point, res experiment.Result) error
	Close() error
}

// JSONLSink writes one JSON object per point: the campaign name, point
// index, its parameter tuple (axis order preserved), the fully-defaulted
// scenario, and the result.
type JSONLSink struct {
	w        io.Writer
	campaign string
}

// NewJSONLSink builds a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Begin records the campaign name for per-line tagging.
func (s *JSONLSink) Begin(c *Campaign) error {
	s.campaign = c.Spec.Name
	return nil
}

// Point writes one record line.
func (s *JSONLSink) Point(p Point, res experiment.Result) error {
	rec := struct {
		Campaign string              `json:"campaign,omitempty"`
		Index    int                 `json:"index"`
		Params   json.RawMessage     `json:"params"`
		Scenario experiment.Scenario `json:"scenario"`
		Result   experiment.Result   `json:"result"`
	}{s.campaign, p.Index, paramsJSON(p.Params), p.Scenario, res}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("campaign: jsonl point %d: %w", p.Index, err)
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: jsonl write: %w", err)
	}
	return nil
}

// Close is a no-op; the caller owns the writer.
func (s *JSONLSink) Close() error { return nil }

// paramsJSON renders the tuple as a JSON object preserving axis order
// (json.Marshal of a map would sort keys alphabetically).
func paramsJSON(ps []Param) json.RawMessage {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		k, _ := json.Marshal(p.Name)
		v, _ := json.Marshal(p.Value)
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes()
}

// csvResultColumns is the fixed result half of the CSV header. Delays are
// milliseconds, energies microjoules.
var csvResultColumns = []string{
	"totalEnergy_uJ", "energyPerPacket_uJ", "ctrlEnergy_uJ",
	"meanDelay_ms", "p95Delay_ms", "maxDelay_ms",
	"items", "deliveries", "expected", "deliveryRate",
	"timeouts", "failovers", "drops", "duplicates",
	"sentADV", "sentREQ", "sentDATA",
	"dbfRounds", "dbfBroadcasts", "mobilityEvents", "failuresInjected",
}

// CSVSink writes a header of "index", one column per axis, then the fixed
// result columns, followed by one row per point.
type CSVSink struct {
	w *csv.Writer
}

// NewCSVSink builds a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: csv.NewWriter(w)} }

// Begin writes the header row.
func (s *CSVSink) Begin(c *Campaign) error {
	header := append([]string{"index"}, c.AxisNames...)
	header = append(header, csvResultColumns...)
	if err := s.w.Write(header); err != nil {
		return fmt.Errorf("campaign: csv header: %w", err)
	}
	return nil
}

// Point writes one row.
func (s *CSVSink) Point(p Point, res experiment.Result) error {
	row := make([]string, 0, 1+len(p.Params)+len(csvResultColumns))
	row = append(row, strconv.Itoa(p.Index))
	for _, pr := range p.Params {
		row = append(row, pr.Value)
	}
	row = append(row,
		gf(res.TotalEnergy), gf(res.EnergyPerPacket), gf(res.CtrlEnergy),
		gf(ms(res.MeanDelay)), gf(ms(res.P95Delay)), gf(ms(res.MaxDelay)),
		strconv.Itoa(res.Items), strconv.Itoa(res.Deliveries), strconv.Itoa(res.Expected), gf(res.DeliveryRate),
		u64(res.Timeouts), u64(res.Failovers), u64(res.Drops), u64(res.Duplicates),
		u64(res.SentADV), u64(res.SentREQ), u64(res.SentDATA),
		strconv.Itoa(res.DBFRounds), strconv.Itoa(res.DBFBroadcasts), strconv.Itoa(res.MobilityEvents), strconv.Itoa(res.FailuresInjected),
	)
	if err := s.w.Write(row); err != nil {
		return fmt.Errorf("campaign: csv point %d: %w", p.Index, err)
	}
	return nil
}

// Close flushes buffered rows.
func (s *CSVSink) Close() error {
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		return fmt.Errorf("campaign: csv flush: %w", err)
	}
	return nil
}

func gf(v float64) string        { return strconv.FormatFloat(v, 'g', -1, 64) }
func u64(v uint64) string        { return strconv.FormatUint(v, 10) }
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PointResult is one recorded (point, result) pair.
type PointResult struct {
	Point  Point
	Result experiment.Result
}

// MemorySink records everything it sees; the in-process sink for tests
// and for callers that want the tagged stream without serialization.
type MemorySink struct {
	Campaign *Campaign
	Points   []PointResult
	Closed   bool
}

// Begin records the campaign.
func (s *MemorySink) Begin(c *Campaign) error {
	s.Campaign = c
	return nil
}

// Point records the pair.
func (s *MemorySink) Point(p Point, res experiment.Result) error {
	s.Points = append(s.Points, PointResult{p, res})
	return nil
}

// Close marks the stream complete.
func (s *MemorySink) Close() error {
	s.Closed = true
	return nil
}
