package campaign

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseSpecAxisForms(t *testing.T) {
	in := `{
		"name": "forms",
		"base": {"protocol": "spms", "workload": "all-to-all", "zoneRadius": 20, "seed": 7},
		"axes": {
			"protocol": ["spms", "spin", "flood"],
			"nodes": {"from": 25, "to": 100, "step": 25},
			"zoneRadius": {"from": 5, "to": 15, "step": 5},
			"packetsPerNode": [1, 2],
			"meanArrival": ["1ms", 2000000],
			"mobilityPeriod": {"from": "50ms", "to": "150ms", "step": "50ms"},
			"seed": {"count": 3}
		}
	}`
	spec, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := spec.Axes.Nodes.Values; len(got) != 4 || got[0] != 25 || got[3] != 100 {
		t.Fatalf("nodes range: %v", got)
	}
	if got := spec.Axes.ZoneRadius.Values; len(got) != 3 || got[2] != 15 {
		t.Fatalf("radius range: %v", got)
	}
	if got := spec.Axes.MeanArrival.Values; len(got) != 2 || got[0] != time.Millisecond || got[1] != 2*time.Millisecond {
		t.Fatalf("meanArrival mixed forms: %v", got)
	}
	if got := spec.Axes.MobilityPeriod.Values; len(got) != 3 || got[0] != 50*time.Millisecond || got[2] != 150*time.Millisecond {
		t.Fatalf("mobilityPeriod range: %v", got)
	}
	if spec.Axes.Seed.Count != 3 {
		t.Fatalf("seed count: %+v", spec.Axes.Seed)
	}
	if len(spec.Axes.Workload) != 0 {
		t.Fatalf("workload axis should be empty: %v", spec.Axes.Workload)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"no name", `{"base":{}}`, "no name"},
		{"unknown top-level field", `{"name":"x","axess":{}}`, "axess"},
		{"unknown axis", `{"name":"x","axes":{"warpFactor":[9]}}`, "warpFactor"},
		{"typoed range key", `{"name":"x","axes":{"nodes":{"from":1,"to":5,"setp":2}}}`, "setp"},
		{"descending int range", `{"name":"x","axes":{"nodes":{"from":10,"to":5}}}`, "empty"},
		{"zero float step", `{"name":"x","axes":{"zoneRadius":{"from":5,"to":10,"step":0}}}`, "positive"},
		{"bad duration", `{"name":"x","axes":{"drain":["eleventy"]}}`, "bad duration"},
		{"seed count plus range", `{"name":"x","axes":{"seed":{"count":2,"from":1,"to":3}}}`, "excludes"},
		{"huge int range", `{"name":"x","axes":{"nodes":{"from":1,"to":200000000}}}`, "max 1000000"},
		{"huge float range", `{"name":"x","axes":{"zoneRadius":{"from":0,"to":1e12,"step":0.5}}}`, "max 1000000"},
		{"huge duration range", `{"name":"x","axes":{"drain":{"from":"0s","to":"2540400h","step":"1ns"}}}`, "max 1000000"},
		{"huge seed range", `{"name":"x","axes":{"seed":{"from":0,"to":9223372036854775807}}}`, "max 1000000"},
		{"huge seed count", `{"name":"x","axes":{"seed":{"count":200000000}}}`, "exceeds"},
		{"int range missing from", `{"name":"x","axes":{"nodes":{"to":8}}}`, "needs both from and to"},
		{"int range empty object", `{"name":"x","axes":{"packetsPerNode":{}}}`, "needs both from and to"},
		{"float range missing to", `{"name":"x","axes":{"zoneRadius":{"from":5,"step":5}}}`, "needs both from and to"},
		{"duration range missing from", `{"name":"x","axes":{"drain":{"to":"3s","step":"1s"}}}`, "needs both from and to"},
		{"seed missing bounds", `{"name":"x","axes":{"seed":{"step":2}}}`, "count or from/to"},
		{"unknown scenario field", `{"name":"x","base":{"nodez":25}}`, "nodez"},
		{"unknown protocol in axis", `{"name":"x","axes":{"protocol":["smps"]}}`, "unknown protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseSpecNullAxis checks JSON null leaves an axis empty (the
// encoding/json convention) rather than erroring or expanding from zero.
func TestParseSpecNullAxis(t *testing.T) {
	in := `{"name":"x","axes":{"nodes":null,"zoneRadius":null,"drain":null,"seed":null}}`
	spec, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(spec.Axes.Nodes.Values) != 0 || len(spec.Axes.ZoneRadius.Values) != 0 ||
		len(spec.Axes.Drain.Values) != 0 || len(spec.Axes.Seed.Values) != 0 || spec.Axes.Seed.Count != 0 {
		t.Fatalf("null axes not empty: %+v", spec.Axes)
	}
}

func TestFloatRangeIncludesUpperBound(t *testing.T) {
	in := `{"name":"x","axes":{"zoneRadius":{"from":0.1,"to":0.3,"step":0.1}}}`
	spec, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	got := spec.Axes.ZoneRadius.Values
	if len(got) != 3 {
		t.Fatalf("0.1..0.3 step 0.1 expanded to %v, want 3 values (upper bound kept despite float rounding)", got)
	}
}

// TestFloatRangeEndpointEpsilon is the regression suite for the range
// epsilon: it must be relative to the endpoint magnitudes (ulp(to) can
// rival the step on large-magnitude grids, where the old absolute 1e-9
// silently dropped `to`) while neither dropping nor inventing values on
// from-zero and 0.1-step grids.
func TestFloatRangeEndpointEpsilon(t *testing.T) {
	cases := []struct {
		name           string
		from, to, step float64
		want           int     // value count
		last           float64 // expected last value
		lastTol        float64 // absolute tolerance on the last value
	}{
		// ulp(1e9) ≈ 1.2e-7, so (to-from)/step lands at 2.99999952…: far
		// below the old absolute epsilon's reach, and `to` was dropped.
		{"large magnitude 0.1-step", 1e9, 1e9 + 0.3, 0.1, 4, 1e9 + 0.3, 1e-6},
		{"large magnitude mid-scale", 12345678.9, 12345679.2, 0.1, 4, 12345679.2, 1e-6},
		{"from zero 0.1-step", 0, 0.7, 0.1, 8, 0.7, 1e-12},
		{"from zero exact", 0, 30, 5, 7, 30, 0},
		{"non-multiple span keeps floor", 0, 0.65, 0.1, 7, 0.6, 1e-12},
		{"large magnitude non-multiple", 1e9, 1e9 + 0.35, 0.1, 4, 1e9 + 0.3, 1e-6},
		// At 1e12 the magnitude-scaled tolerance is ~0.008 steps; a genuine
		// 0.8-step remainder must still floor, not round up past `to`.
		{"huge magnitude keeps floor", 1e12, 1e12 + 0.38, 0.1, 4, 1e12 + 0.3, 1e-3},
		{"huge magnitude endpoint kept", 1e12, 1e12 + 0.3, 0.1, 4, 1e12 + 0.3, 1e-3},
		{"single value", 2.5, 2.5, 1, 1, 2.5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a FloatAxis
			in := fmt.Sprintf(`{"from":%.17g,"to":%.17g,"step":%.17g}`, tc.from, tc.to, tc.step)
			if err := a.UnmarshalJSON([]byte(in)); err != nil {
				t.Fatalf("UnmarshalJSON(%s): %v", in, err)
			}
			if len(a.Values) != tc.want {
				t.Fatalf("%s expanded to %d values %v, want %d", in, len(a.Values), a.Values, tc.want)
			}
			last := a.Values[len(a.Values)-1]
			if math.Abs(last-tc.last) > tc.lastTol {
				t.Fatalf("%s last value %v, want %v (±%g)", in, last, tc.last, tc.lastTol)
			}
		})
	}
}
