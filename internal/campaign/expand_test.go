package campaign

import (
	"strings"
	"testing"

	"repro/internal/experiment"
)

// specFromJSON is the test helper: parse or fail.
func specFromJSON(t *testing.T, in string) Spec {
	t.Helper()
	spec, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return spec
}

// TestExpandOrderContract pins the grid-expansion order: canonical axis
// order (protocol before nodes before seed), last axis varying fastest.
func TestExpandOrderContract(t *testing.T) {
	spec := specFromJSON(t, `{
		"name": "order",
		"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
		"axes": {
			"nodes": [25, 49],
			"protocol": ["spms", "spin"],
			"seed": {"count": 2}
		}
	}`)
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if got := strings.Join(c.AxisNames, ","); got != "protocol,nodes,seed" {
		t.Fatalf("axis order = %s, want canonical protocol,nodes,seed", got)
	}
	if len(c.Points) != 8 {
		t.Fatalf("%d points, want 8", len(c.Points))
	}
	want := []string{
		"protocol=spms nodes=25 seed=1",
		"protocol=spms nodes=25 seed=2",
		"protocol=spms nodes=49 seed=1",
		"protocol=spms nodes=49 seed=2",
		"protocol=spin nodes=25 seed=1",
		"protocol=spin nodes=25 seed=2",
		"protocol=spin nodes=49 seed=1",
		"protocol=spin nodes=49 seed=2",
	}
	for i, p := range c.Points {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
		if got := p.ParamsString(); got != want[i] {
			t.Fatalf("point %d = %q, want %q", i, got, want[i])
		}
	}
	// Axis assignments reached the scenarios, on top of the shared base.
	if sc := c.Points[5].Scenario; sc.Protocol != experiment.SPIN || sc.Nodes != 25 || sc.Seed != 2 || sc.ZoneRadius != 20 {
		t.Fatalf("point 5 scenario: %+v", sc)
	}
}

// TestExpandAppliesDefaults checks every expanded scenario is fully
// defaulted — what Run would execute — so sink tuples are explicit.
func TestExpandAppliesDefaults(t *testing.T) {
	spec := specFromJSON(t, `{
		"name": "defaults",
		"base": {"protocol": "spms", "workload": "all-to-all", "zoneRadius": 15},
		"axes": {"nodes": [16]}
	}`)
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	sc := c.Points[0].Scenario
	if sc.PacketsPerNode == 0 || sc.GridSpacing == 0 || sc.Drain == 0 || sc.RouteAlternatives == 0 {
		t.Fatalf("defaults not applied: %+v", sc)
	}
	if sc != sc.WithDefaults() {
		t.Fatalf("expanded scenario not fixed under WithDefaults: %+v", sc)
	}
}

// TestExpandNoAxes checks an axis-free spec is the single base point.
func TestExpandNoAxes(t *testing.T) {
	spec := specFromJSON(t, `{
		"name": "single",
		"base": {"protocol": "flood", "workload": "all-to-all", "nodes": 25, "zoneRadius": 10}
	}`)
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(c.Points) != 1 || len(c.AxisNames) != 0 {
		t.Fatalf("axis-free spec: %d points, axes %v", len(c.Points), c.AxisNames)
	}
	if c.Points[0].Scenario.Protocol != experiment.Flooding {
		t.Fatalf("base not preserved: %+v", c.Points[0].Scenario)
	}
}

// TestExpandValidatesPoints checks a grid containing an invalid point
// fails at expansion, naming the point.
func TestExpandValidatesPoints(t *testing.T) {
	spec := specFromJSON(t, `{
		"name": "invalid",
		"base": {"protocol": "spms", "workload": "all-to-all", "zoneRadius": 20},
		"axes": {"nodes": [25, -1]}
	}`)
	_, err := Expand(spec)
	if err == nil {
		t.Fatal("expanded a grid with a negative node count")
	}
	if !strings.Contains(err.Error(), "nodes=-1") || !strings.Contains(err.Error(), "node count") {
		t.Fatalf("err = %v, want the offending point named", err)
	}
}

// TestExpandSeedCountStartsAtBase checks {"count":N} replication anchors
// at the base seed.
func TestExpandSeedCountStartsAtBase(t *testing.T) {
	spec := specFromJSON(t, `{
		"name": "seeds",
		"base": {"protocol": "spms", "workload": "all-to-all", "nodes": 16, "zoneRadius": 15, "seed": 10},
		"axes": {"seed": {"count": 3}}
	}`)
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var seeds []int64
	for _, p := range c.Points {
		seeds = append(seeds, p.Scenario.Seed)
	}
	if len(seeds) != 3 || seeds[0] != 10 || seeds[1] != 11 || seeds[2] != 12 {
		t.Fatalf("seeds = %v, want [10 11 12]", seeds)
	}
}

// TestExpandRejectsZeroDefaultedAxisValues checks a zero axis value for a
// field WithDefaults fills is refused: the default would replace it after
// the parameter label was minted, so sink records would attribute results
// to a parameter that never ran (e.g. labeled drain=0s, simulated 3s).
func TestExpandRejectsZeroDefaultedAxisValues(t *testing.T) {
	cases := []struct{ name, axes string }{
		{"drain", `"drain": ["0s", "1s"]`},
		{"packetsPerNode", `"packetsPerNode": [0, 2]`},
		{"meanArrival", `"meanArrival": [0]`},
		{"gridSpacing", `"gridSpacing": [0, 5]`},
		{"clusterInterestProb", `"clusterInterestProb": [0, 0.1]`},
		{"mobilityPeriod", `"mobilityPeriod": ["0s"]`},
		{"mobilityFraction", `"mobilityFraction": [0]`},
		{"routeAlternatives", `"routeAlternatives": [0, 2]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := specFromJSON(t, `{
				"name": "zeros",
				"base": {"protocol": "spms", "workload": "all-to-all", "nodes": 16, "zoneRadius": 15},
				"axes": {`+tc.axes+`}
			}`)
			_, err := Expand(spec)
			if err == nil || !strings.Contains(err.Error(), tc.name) || !strings.Contains(err.Error(), "default") {
				t.Fatalf("Expand accepted zero %s axis value; err = %v", tc.name, err)
			}
		})
	}
}

// TestExpandGridCap checks runaway products fail fast.
func TestExpandGridCap(t *testing.T) {
	spec := specFromJSON(t, `{
		"name": "huge",
		"base": {"protocol": "spms", "workload": "all-to-all", "zoneRadius": 20},
		"axes": {
			"nodes": {"from": 1, "to": 2000},
			"packetsPerNode": {"from": 1, "to": 2000}
		}
	}`)
	if _, err := Expand(spec); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want grid-cap error", err)
	}
}
