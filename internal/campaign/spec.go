// Package campaign is the declarative experiment layer on top of the
// parallel sweep engine: a campaign spec (a JSON file) names a base
// experiment.Scenario plus axes — lists or ranges per parameter — and the
// package expands the cartesian grid into a deterministic, stably-ordered
// point set, executes it via experiment.Sweep, and streams every finished
// point to pluggable result sinks tagged with its full parameter tuple.
//
// The grid-expansion order contract (DESIGN.md §6): axes are taken in the
// canonical parameter order of the Axes struct below, values in spec order
// (ranges ascending), and the product is enumerated row-major with the
// last axis varying fastest. Expansion is pure, so the same spec always
// yields the same point sequence — the property that makes campaign
// output byte-identical at every worker-pool size.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
)

// Spec is a campaign file: a named base scenario plus the axes to sweep.
type Spec struct {
	Name        string              `json:"name"`
	Description string              `json:"description,omitempty"`
	Base        experiment.Scenario `json:"base"`
	Axes        Axes                `json:"axes"`

	// Replications replicates every grid point over N seed-derived trials
	// (experiment.ReplicateSeed) and switches the sinks to aggregate
	// records (DESIGN.md §6.1). 0 and 1 both mean single trials with the
	// pre-replication record format. Overrides the base scenario's
	// replications field when set.
	Replications int `json:"replications,omitempty"`
}

// Axes lists every sweepable parameter. Field order here IS the canonical
// expansion order; empty axes are skipped. Enum axes are plain JSON lists
// of names; numeric and duration axes accept either a list or a range
// object (see IntAxis).
type Axes struct {
	Protocol            []experiment.Protocol      `json:"protocol,omitempty"`
	Workload            []experiment.WorkloadKind  `json:"workload,omitempty"`
	Placement           []experiment.PlacementKind `json:"placement,omitempty"`
	PlacementClusters   IntAxis                    `json:"placementClusters,omitempty"`
	PlacementSpread     FloatAxis                  `json:"placementSpread,omitempty"`
	Nodes               IntAxis                    `json:"nodes,omitempty"`
	GridSpacing         FloatAxis                  `json:"gridSpacing,omitempty"`
	ZoneRadius          FloatAxis                  `json:"zoneRadius,omitempty"`
	PacketsPerNode      IntAxis                    `json:"packetsPerNode,omitempty"`
	MeanArrival         DurationAxis               `json:"meanArrival,omitempty"`
	ClusterInterestProb FloatAxis                  `json:"clusterInterestProb,omitempty"`
	Failures            []bool                     `json:"failures,omitempty"`
	FailureModel        []fault.Model              `json:"failureModel,omitempty"`
	BurstRadius         FloatAxis                  `json:"burstRadius,omitempty"`
	Mobility            []bool                     `json:"mobility,omitempty"`
	MobilityModel       []experiment.MobilityKind  `json:"mobilityModel,omitempty"`
	MobilityPeriod      DurationAxis               `json:"mobilityPeriod,omitempty"`
	MobilityFraction    FloatAxis                  `json:"mobilityFraction,omitempty"`
	RouteAlternatives   IntAxis                    `json:"routeAlternatives,omitempty"`
	CarrierSense        []bool                     `json:"carrierSense,omitempty"`
	Drain               DurationAxis               `json:"drain,omitempty"`
	Seed                SeedAxis                   `json:"seed,omitempty"`
}

// IntAxis is either an explicit list ([25, 49, 100]) or an inclusive
// ascending range ({"from": 5, "to": 30, "step": 5}; step defaults to 1,
// from and to are required). JSON null leaves the axis empty.
type IntAxis struct{ Values []int }

// UnmarshalJSON accepts the list or range form.
func (a *IntAxis) UnmarshalJSON(data []byte) error {
	if isJSONNull(data) {
		return nil
	}
	if isJSONArray(data) {
		return json.Unmarshal(data, &a.Values)
	}
	var r struct {
		From *int `json:"from"`
		To   *int `json:"to"`
		Step int  `json:"step"`
	}
	if err := strictUnmarshal(data, &r); err != nil {
		return fmt.Errorf("campaign: int axis: %w", err)
	}
	if r.From == nil || r.To == nil {
		return fmt.Errorf("campaign: int axis range needs both from and to")
	}
	if r.Step == 0 {
		r.Step = 1
	}
	if r.Step < 0 {
		return fmt.Errorf("campaign: int axis step %d must be positive", r.Step)
	}
	if *r.To < *r.From {
		return fmt.Errorf("campaign: int axis range [%d, %d] is empty", *r.From, *r.To)
	}
	steps := uint64(*r.To-*r.From) / uint64(r.Step)
	if err := checkRangeCount(steps); err != nil {
		return fmt.Errorf("campaign: int axis: %w", err)
	}
	// Count-based iteration: from + i*step never exceeds to, so bounds
	// near the integer limits cannot wrap the loop variable.
	for i := 0; uint64(i) <= steps; i++ {
		a.Values = append(a.Values, *r.From+i*r.Step)
	}
	return nil
}

// checkRangeCount fails a range whose expansion alone would exceed the
// grid cap, so a typoed bound errors at parse time instead of allocating
// gigabytes before Expand's product check runs. steps is the value count
// minus one; the unsigned division its callers do is wrap-correct even
// when to-from overflows signed arithmetic.
func checkRangeCount(steps uint64) error {
	if steps >= MaxPoints {
		return fmt.Errorf("range expands to %d values (max %d)", steps+1, MaxPoints)
	}
	return nil
}

// FloatAxis is either an explicit list or an inclusive ascending range
// with required from/to and a required positive step. Range expansion
// computes each value as from + i*step (no accumulation), so the grid is
// reproducible. JSON null leaves the axis empty.
type FloatAxis struct{ Values []float64 }

// UnmarshalJSON accepts the list or range form.
func (a *FloatAxis) UnmarshalJSON(data []byte) error {
	if isJSONNull(data) {
		return nil
	}
	if isJSONArray(data) {
		return json.Unmarshal(data, &a.Values)
	}
	var r struct {
		From *float64 `json:"from"`
		To   *float64 `json:"to"`
		Step float64  `json:"step"`
	}
	if err := strictUnmarshal(data, &r); err != nil {
		return fmt.Errorf("campaign: float axis: %w", err)
	}
	if r.From == nil || r.To == nil {
		return fmt.Errorf("campaign: float axis range needs both from and to")
	}
	if r.Step <= 0 {
		return fmt.Errorf("campaign: float axis step %g must be positive", r.Step)
	}
	if *r.To < *r.From {
		return fmt.Errorf("campaign: float axis range [%g, %g] is empty", *r.From, *r.To)
	}
	ratio := (*r.To - *r.From) / r.Step
	if ratio >= MaxPoints {
		return fmt.Errorf("campaign: float axis: range expands to over %d values (max %d)", MaxPoints, MaxPoints)
	}
	// A relative epsilon keeps `to` itself in the grid despite rounding.
	// The representation error of the endpoints scales with their
	// magnitude — ulp(to) can rival the step for large-magnitude ranges —
	// so the tolerance is relative to both the step ratio (division
	// rounding, generous 1e-12 factor) and the endpoints measured in
	// steps (a few ulps: 4e-16 ≈ 2 machine epsilons per endpoint). Both
	// factors sit orders of magnitude above the true rounding error yet
	// orders of magnitude below any genuine sub-step remainder, so `to`
	// survives rounding without ever minting a value beyond it; the cap
	// is a backstop for astronomically ill-conditioned grids.
	tol := 1e-12*ratio + 4e-16*(math.Abs(*r.From)+math.Abs(*r.To))/r.Step
	if tol > 0.25 {
		tol = 0.25
	}
	n := int(ratio + tol)
	for i := 0; i <= n; i++ {
		a.Values = append(a.Values, *r.From+float64(i)*r.Step)
	}
	return nil
}

// DurationAxis is either a list of durations (each a Go duration string
// like "100ms" or integer nanoseconds) or a range object of the same with
// required from/to/step. JSON null leaves the axis empty.
type DurationAxis struct{ Values []time.Duration }

// UnmarshalJSON accepts the list or range form.
func (a *DurationAxis) UnmarshalJSON(data []byte) error {
	if isJSONNull(data) {
		return nil
	}
	if isJSONArray(data) {
		var vs []experiment.FlexDuration
		if err := json.Unmarshal(data, &vs); err != nil {
			return err
		}
		for _, v := range vs {
			a.Values = append(a.Values, time.Duration(v))
		}
		return nil
	}
	var r struct {
		From *experiment.FlexDuration `json:"from"`
		To   *experiment.FlexDuration `json:"to"`
		Step experiment.FlexDuration  `json:"step"`
	}
	if err := strictUnmarshal(data, &r); err != nil {
		return fmt.Errorf("campaign: duration axis: %w", err)
	}
	if r.From == nil || r.To == nil {
		return fmt.Errorf("campaign: duration axis range needs both from and to")
	}
	if r.Step <= 0 {
		return fmt.Errorf("campaign: duration axis step %v must be positive", time.Duration(r.Step))
	}
	if *r.To < *r.From {
		return fmt.Errorf("campaign: duration axis range [%v, %v] is empty", time.Duration(*r.From), time.Duration(*r.To))
	}
	steps := uint64(*r.To-*r.From) / uint64(r.Step)
	if err := checkRangeCount(steps); err != nil {
		return fmt.Errorf("campaign: duration axis: %w", err)
	}
	for i := int64(0); uint64(i) <= steps; i++ {
		a.Values = append(a.Values, time.Duration(*r.From)+time.Duration(i)*time.Duration(r.Step))
	}
	return nil
}

// SeedAxis replicates points across seeds: an explicit list/range like
// IntAxis, or {"count": N} for N consecutive seeds starting at the base
// scenario's seed.
type SeedAxis struct {
	Values []int64
	Count  int
}

// UnmarshalJSON accepts the list, range, or count form.
func (a *SeedAxis) UnmarshalJSON(data []byte) error {
	if isJSONNull(data) {
		return nil
	}
	if isJSONArray(data) {
		return json.Unmarshal(data, &a.Values)
	}
	var r struct {
		From  *int64 `json:"from"`
		To    *int64 `json:"to"`
		Step  int64  `json:"step"`
		Count int    `json:"count"`
	}
	if err := strictUnmarshal(data, &r); err != nil {
		return fmt.Errorf("campaign: seed axis: %w", err)
	}
	if r.Count != 0 {
		if r.From != nil || r.To != nil || r.Step != 0 {
			return fmt.Errorf("campaign: seed axis: count excludes from/to/step")
		}
		if r.Count < 0 {
			return fmt.Errorf("campaign: seed axis count %d must be positive", r.Count)
		}
		if r.Count > MaxPoints {
			return fmt.Errorf("campaign: seed axis count %d exceeds %d", r.Count, MaxPoints)
		}
		a.Count = r.Count
		return nil
	}
	if r.From == nil || r.To == nil {
		return fmt.Errorf("campaign: seed axis needs either count or from/to")
	}
	if r.Step == 0 {
		r.Step = 1
	}
	if r.Step < 0 {
		return fmt.Errorf("campaign: seed axis step %d must be positive", r.Step)
	}
	if *r.To < *r.From {
		return fmt.Errorf("campaign: seed axis range [%d, %d] is empty", *r.From, *r.To)
	}
	steps := uint64(*r.To-*r.From) / uint64(r.Step)
	if err := checkRangeCount(steps); err != nil {
		return fmt.Errorf("campaign: seed axis: %w", err)
	}
	for i := int64(0); uint64(i) <= steps; i++ {
		a.Values = append(a.Values, *r.From+i*r.Step)
	}
	return nil
}

// isJSONArray reports whether the raw value is a JSON array.
func isJSONArray(data []byte) bool {
	trimmed := bytes.TrimSpace(data)
	return len(trimmed) > 0 && trimmed[0] == '['
}

// isJSONNull reports whether the raw value is JSON null (which leaves an
// axis empty, matching encoding/json's convention for null).
func isJSONNull(data []byte) bool {
	return bytes.Equal(bytes.TrimSpace(data), []byte("null"))
}

// strictUnmarshal decodes rejecting unknown fields, so a typoed axis key
// ("setp") fails instead of silently defaulting.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// ParseSpec decodes a campaign spec, rejecting unknown fields anywhere in
// the document.
func ParseSpec(r io.Reader) (Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: read spec: %w", err)
	}
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if s.Name == "" {
		return Spec{}, fmt.Errorf("campaign: spec has no name")
	}
	return s, nil
}

// LoadSpec reads and parses a campaign spec file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}
