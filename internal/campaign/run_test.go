package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/stats"
)

// stubRun tags each result with its scenario's node count; no simulation.
func stubRun(sc experiment.Scenario) (experiment.Result, error) {
	return experiment.Result{Items: sc.Nodes, EnergyPerPacket: float64(sc.Seed)}, nil
}

// gridSpec is a 2×3×2 grid used by the runner tests.
func gridSpec(t *testing.T) Spec {
	return specFromJSON(t, `{
		"name": "grid",
		"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
		"axes": {
			"protocol": ["spms", "spin"],
			"nodes": [25, 49, 100],
			"seed": {"count": 2}
		}
	}`)
}

// TestRunStreamsInOrder is the ordered-streaming contract: even with a
// full worker pool completing points out of order, every sink observes
// points strictly in index order.
func TestRunStreamsInOrder(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for _, workers := range []int{1, 8} {
		mem := &MemorySink{}
		results, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{mem}, Run: stubRun})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(c.Points) || len(mem.Points) != len(c.Points) {
			t.Fatalf("workers=%d: %d results, %d streamed, want %d", workers, len(results), len(mem.Points), len(c.Points))
		}
		if !mem.Closed {
			t.Fatalf("workers=%d: sink not closed", workers)
		}
		for i, pr := range mem.Points {
			if pr.Point.Index != i {
				t.Fatalf("workers=%d: streamed point %d has index %d — sink saw out-of-order delivery", workers, i, pr.Point.Index)
			}
			if len(results[i]) != 1 || pr.Result != results[i][0] {
				t.Fatalf("workers=%d: streamed result %d diverges from Execute's", workers, i)
			}
		}
	}
}

// TestRunSinkFormats golden-checks the first JSONL record and CSV rows of
// a stub campaign.
func TestRunSinkFormats(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var jsonl, csvBuf bytes.Buffer
	_, err = c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}, Run: stubRun})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	lines := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	if len(lines) != len(c.Points) {
		t.Fatalf("%d JSONL lines, want %d", len(lines), len(c.Points))
	}
	var rec struct {
		Campaign string            `json:"campaign"`
		Index    int               `json:"index"`
		Params   map[string]string `json:"params"`
		Scenario json.RawMessage   `json:"scenario"`
		Result   experiment.Result `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("JSONL line 0: %v\n%s", err, lines[0])
	}
	if rec.Campaign != "grid" || rec.Index != 0 {
		t.Fatalf("JSONL tagging: %+v", rec)
	}
	if rec.Params["protocol"] != "spms" || rec.Params["nodes"] != "25" || rec.Params["seed"] != "1" {
		t.Fatalf("JSONL params: %v", rec.Params)
	}
	if rec.Result.Items != 25 {
		t.Fatalf("JSONL result: %+v", rec.Result)
	}
	// Params preserve axis order on the wire (maps would sort).
	if !strings.Contains(lines[0], `"params":{"protocol":"spms","nodes":"25","seed":"1"}`) {
		t.Fatalf("JSONL param order lost: %s", lines[0])
	}

	csvLines := strings.Split(strings.TrimRight(csvBuf.String(), "\n"), "\n")
	if len(csvLines) != 1+len(c.Points) {
		t.Fatalf("%d CSV lines, want header + %d", len(csvLines), len(c.Points))
	}
	if !strings.HasPrefix(csvLines[0], "index,protocol,nodes,seed,totalEnergy_uJ,") {
		t.Fatalf("CSV header: %s", csvLines[0])
	}
	if !strings.HasPrefix(csvLines[1], "0,spms,25,1,") {
		t.Fatalf("CSV row 0: %s", csvLines[1])
	}
}

// TestRunSinkErrorAborts checks a failing sink surfaces its error AND
// stops the sweep: with a serial pool, no point beyond the failing
// delivery may simulate (a dead sink must not burn hours of grid).
func TestRunSinkErrorAborts(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var runs int
	counting := func(sc experiment.Scenario) (experiment.Result, error) {
		runs++
		return stubRun(sc)
	}
	boom := &failingSink{failAt: 3}
	_, err = c.Run(RunOptions{Workers: 1, Sinks: []Sink{boom}, Run: counting})
	if err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Fatalf("err = %v, want sink error", err)
	}
	if runs != 4 {
		t.Fatalf("%d points simulated after the sink died at delivery 4, want exactly 4", runs)
	}

	// Parallel pools still surface the error.
	_, err = c.Run(RunOptions{Workers: 4, Sinks: []Sink{&failingSink{failAt: 3}}, Run: stubRun})
	if err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Fatalf("workers=4: err = %v, want sink error", err)
	}
}

// TestRunBeginFailureAbortsBegunSinks checks the failure-path contract:
// when sink i's Begin fails, Abort — flush, never finalize — is called on
// every begun-or-failed sink (the earlier sinks AND the failing one,
// whose Begin may have buffered a partial CSV header), Close on none, and
// unreached sinks are untouched.
func TestRunBeginFailureAbortsBegunSinks(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	mem := &MemorySink{}
	failing := &beginFailingSink{}
	after := &MemorySink{}
	_, err = c.Run(RunOptions{Sinks: []Sink{mem, failing, after}, Run: stubRun})
	if err == nil || !strings.Contains(err.Error(), "begin boom") {
		t.Fatalf("err = %v, want begin error", err)
	}
	if !mem.Aborted || mem.Closed {
		t.Fatalf("first sink aborted=%v closed=%v after second sink's Begin failed, want aborted only", mem.Aborted, mem.Closed)
	}
	if !failing.aborted {
		t.Fatal("failing sink not aborted — its buffered Begin output is never flushed")
	}
	if after.Aborted || after.Closed {
		t.Fatal("unreached sink touched despite its Begin never running")
	}
	if len(mem.Points) != 0 {
		t.Fatalf("points streamed despite Begin failure: %d", len(mem.Points))
	}
}

// TestRunCSVBeginFailureFlushesHeader is the end-to-end shape of the sink
// leak: a CSV sink whose Begin succeeds buffers its header; if a later
// sink's Begin fails, the header must still reach the writer.
func TestRunCSVBeginFailureFlushesHeader(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var buf bytes.Buffer
	_, err = c.Run(RunOptions{Sinks: []Sink{NewCSVSink(&buf), &beginFailingSink{}}, Run: stubRun})
	if err == nil || !strings.Contains(err.Error(), "begin boom") {
		t.Fatalf("err = %v, want begin error", err)
	}
	if !strings.HasPrefix(buf.String(), "index,protocol,nodes,seed,") {
		t.Fatalf("CSV header not flushed on Begin failure; got %q", buf.String())
	}
}

type beginFailingSink struct{ aborted bool }

func (s *beginFailingSink) Begin(*Campaign) error                { return fmt.Errorf("begin boom") }
func (s *beginFailingSink) Point(Point, experiment.Result) error { return nil }
func (s *beginFailingSink) Aggregate(Point, Aggregate) error     { return nil }
func (s *beginFailingSink) Close() error                         { return nil }
func (s *beginFailingSink) Abort() error                         { s.aborted = true; return nil }

type failingSink struct {
	failAt int
	seen   int
}

func (s *failingSink) Begin(*Campaign) error { return nil }
func (s *failingSink) Point(Point, experiment.Result) error {
	s.seen++
	if s.seen > s.failAt {
		return fmt.Errorf("sink boom")
	}
	return nil
}
func (s *failingSink) Aggregate(p Point, agg Aggregate) error { return s.Point(p, experiment.Result{}) }
func (s *failingSink) Close() error                           { return nil }
func (s *failingSink) Abort() error                           { return nil }

// replicatedSpec is gridSpec plus three seed-derived replications per
// point.
func replicatedSpec(t *testing.T) Spec {
	return specFromJSON(t, `{
		"name": "replicated",
		"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
		"replications": 3,
		"axes": {
			"protocol": ["spms", "spin"],
			"nodes": [25, 49]
		}
	}`)
}

// TestRunReplicationsAggregates checks the aggregate streaming path: a
// replicated campaign delivers one Aggregate per point (never Point),
// with per-metric statistics over the seed-derived replicate vector.
func TestRunReplicationsAggregates(t *testing.T) {
	c, err := Expand(replicatedSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if c.Replications() != 3 {
		t.Fatalf("Replications() = %d, want 3", c.Replications())
	}
	for _, workers := range []int{1, 8} {
		mem := &MemorySink{}
		results, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{mem}, Run: stubRun})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(mem.Points) != 0 {
			t.Fatalf("workers=%d: %d per-point records on a replicated campaign", workers, len(mem.Points))
		}
		if len(mem.Aggregates) != len(c.Points) {
			t.Fatalf("workers=%d: %d aggregates, want %d", workers, len(mem.Aggregates), len(c.Points))
		}
		names := experiment.ResultMetricNames()
		for i, pa := range mem.Aggregates {
			if pa.Point.Index != i {
				t.Fatalf("workers=%d: aggregate %d has index %d — out-of-order delivery", workers, i, pa.Point.Index)
			}
			agg := pa.Aggregate
			if agg.Replications != 3 || len(agg.Results) != 3 || len(agg.Metrics) != len(names) {
				t.Fatalf("workers=%d: aggregate shape: %+v", workers, agg)
			}
			// stubRun tags EnergyPerPacket with the trial seed, so the mean
			// must equal the mean of the three derived seeds.
			base := pa.Point.Scenario.Seed
			want := (float64(experiment.ReplicateSeed(base, 0)) +
				float64(experiment.ReplicateSeed(base, 1)) +
				float64(experiment.ReplicateSeed(base, 2))) / 3
			if got := agg.Metrics[1].Mean; got != want {
				t.Fatalf("workers=%d: point %d energyPerPacket mean = %v, want %v", workers, i, got, want)
			}
			if agg.Metrics[1].N != 3 || agg.Metrics[1].Std == 0 || agg.Metrics[1].CI95 == 0 {
				t.Fatalf("workers=%d: point %d summary not populated: %+v", workers, i, agg.Metrics[1])
			}
			if agg.Results[0] != results[i][0] || agg.Results[2] != results[i][2] {
				t.Fatalf("workers=%d: aggregate replicate vector diverges from Run's results", workers)
			}
		}
	}
}

// TestRunReplicatedSinkDeterminism checks the acceptance contract on the
// serialized formats with a deterministic stub: JSONL and CSV aggregate
// output is byte-identical at workers 1 and 8, the CSV header carries the
// mean/std/ci95 triples, and per-replicate records appear only behind the
// flag.
func TestRunReplicatedSinkDeterminism(t *testing.T) {
	run := func(workers int, perReplicate bool) (string, string) {
		c, err := Expand(replicatedSpec(t))
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		var jsonl, csvBuf bytes.Buffer
		js := NewJSONLSink(&jsonl)
		js.PerReplicate = perReplicate
		if _, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{js, NewCSVSink(&csvBuf)}, Run: stubRun}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return jsonl.String(), csvBuf.String()
	}
	j1, c1 := run(1, false)
	j8, c8 := run(8, false)
	if j1 != j8 || c1 != c8 {
		t.Fatalf("replicated output diverged between workers=1 and workers=8:\n--- jsonl serial\n%s\n--- jsonl parallel\n%s\n--- csv serial\n%s\n--- csv parallel\n%s", j1, j8, c1, c8)
	}

	csvLines := strings.Split(strings.TrimRight(c1, "\n"), "\n")
	if !strings.HasPrefix(csvLines[0], "index,protocol,nodes,replications,totalEnergy_uJ_mean,totalEnergy_uJ_std,totalEnergy_uJ_ci95,") {
		t.Fatalf("aggregate CSV header: %s", csvLines[0])
	}
	if len(csvLines) != 5 { // header + 4 points
		t.Fatalf("%d aggregate CSV lines, want 5:\n%s", len(csvLines), c1)
	}

	var rec struct {
		Index        int                      `json:"index"`
		Replications int                      `json:"replications"`
		Metrics      map[string]stats.Summary `json:"metrics"`
	}
	lines := strings.Split(strings.TrimRight(j1, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d aggregate JSONL lines, want 4:\n%s", len(lines), j1)
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("aggregate JSONL: %v\n%s", err, lines[0])
	}
	m := rec.Metrics["energyPerPacket_uJ"]
	if rec.Replications != 3 || m.N != 3 || m.Std == 0 || m.CI95 == 0 || m.Min >= m.Max {
		t.Fatalf("aggregate JSONL record not populated: %+v", rec)
	}
	// Metric keys stream in canonical order, not alphabetical.
	if !strings.Contains(lines[0], `"metrics":{"totalEnergy_uJ":`) {
		t.Fatalf("metric order lost: %s", lines[0])
	}

	jr, _ := run(1, true)
	rlines := strings.Split(strings.TrimRight(jr, "\n"), "\n")
	if len(rlines) != 4*4 { // 3 replicate records + 1 aggregate, per point
		t.Fatalf("%d per-replicate JSONL lines, want 16:\n%s", len(rlines), jr)
	}
	var rep struct {
		Replicate int             `json:"replicate"`
		Scenario  json.RawMessage `json:"scenario"`
		Result    json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(rlines[1]), &rep); err != nil || rep.Replicate != 1 {
		t.Fatalf("per-replicate record: err=%v rec=%+v\n%s", err, rep, rlines[1])
	}
	wantSeed := fmt.Sprintf(`"seed":%d`, experiment.ReplicateSeed(1, 1))
	if !strings.Contains(string(rep.Scenario), wantSeed) {
		t.Fatalf("per-replicate scenario lacks derived seed %s: %s", wantSeed, rep.Scenario)
	}
}

// TestRunReplicationsOneByteIdentical pins the compatibility half of the
// acceptance criteria: an explicit replications: 1 produces byte-identical
// JSONL and CSV to the same spec with replications omitted (the pre-PR
// record format).
func TestRunReplicationsOneByteIdentical(t *testing.T) {
	specJSON := func(reps string) string {
		return `{
			"name": "grid",
			"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
			` + reps + `
			"axes": {"protocol": ["spms", "spin"], "nodes": [25, 49, 100], "seed": {"count": 2}}
		}`
	}
	run := func(doc string) (string, string) {
		c, err := Expand(specFromJSON(t, doc))
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		var jsonl, csvBuf bytes.Buffer
		if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}, Run: stubRun}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return jsonl.String(), csvBuf.String()
	}
	jNone, cNone := run(specJSON(""))
	jOne, cOne := run(specJSON(`"replications": 1,`))
	if jNone != jOne {
		t.Fatalf("replications:1 JSONL diverged from the unreplicated form:\n--- omitted\n%s\n--- replications:1\n%s", jNone, jOne)
	}
	if cNone != cOne {
		t.Fatalf("replications:1 CSV diverged from the unreplicated form:\n--- omitted\n%s\n--- replications:1\n%s", cNone, cOne)
	}
	if strings.Contains(jOne, "replications") {
		t.Fatalf("replications:1 leaked into the wire form:\n%s", jOne)
	}
}

// TestCampaignParallelDeterminism is the subsystem's acceptance contract,
// mirroring TestSweepParallelDeterminism one layer up: running the same
// expanded spec through real simulations at workers=1 and workers=NumCPU
// yields byte-identical JSONL and CSV streams.
func TestCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	spec := specFromJSON(t, `{
		"name": "determinism",
		"base": {"workload": "all-to-all", "packetsPerNode": 1, "zoneRadius": 15, "drain": "1500ms", "seed": 1},
		"axes": {
			"protocol": ["spms", "spin"],
			"nodes": [16, 25],
			"failures": [false, true]
		}
	}`)
	run := func(workers int) (string, string) {
		c, err := Expand(spec)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		var jsonl, csvBuf bytes.Buffer
		if _, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return jsonl.String(), csvBuf.String()
	}
	j1, c1 := run(1)
	jn, cn := run(runtime.NumCPU())
	if j1 != jn {
		t.Fatalf("JSONL diverged between workers=1 and workers=%d:\n--- serial\n%s\n--- parallel\n%s", runtime.NumCPU(), j1, jn)
	}
	if c1 != cn {
		t.Fatalf("CSV diverged between workers=1 and workers=%d:\n--- serial\n%s\n--- parallel\n%s", runtime.NumCPU(), c1, cn)
	}
	if len(strings.Split(strings.TrimRight(j1, "\n"), "\n")) != 8 {
		t.Fatalf("unexpected JSONL line count:\n%s", j1)
	}
}

// TestCampaignReplicatedParallelDeterminism is the replicated acceptance
// contract end to end with real simulations: a replications: 5 spec
// produces byte-identical JSONL and CSV aggregate streams at workers=1
// and workers=8, with the statistics fields populated.
func TestCampaignReplicatedParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	spec := specFromJSON(t, `{
		"name": "replicated-determinism",
		"base": {"workload": "all-to-all", "packetsPerNode": 1, "zoneRadius": 15, "drain": "1500ms", "seed": 1},
		"replications": 5,
		"axes": {"protocol": ["spms", "spin"], "nodes": [16]}
	}`)
	run := func(workers int) (string, string) {
		c, err := Expand(spec)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		var jsonl, csvBuf bytes.Buffer
		if _, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return jsonl.String(), csvBuf.String()
	}
	j1, c1 := run(1)
	j8, c8 := run(8)
	if j1 != j8 {
		t.Fatalf("replicated JSONL diverged between workers=1 and workers=8:\n--- serial\n%s\n--- parallel\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Fatalf("replicated CSV diverged between workers=1 and workers=8:\n--- serial\n%s\n--- parallel\n%s", c1, c8)
	}
	var rec struct {
		Replications int                      `json:"replications"`
		Metrics      map[string]stats.Summary `json:"metrics"`
	}
	line := strings.Split(j1, "\n")[0]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("aggregate record: %v\n%s", err, line)
	}
	m := rec.Metrics["energyPerPacket_uJ"]
	if rec.Replications != 5 || m.N != 5 || m.Mean <= 0 || m.Std <= 0 || m.CI95 <= 0 {
		t.Fatalf("real-run statistics not populated: %+v", rec)
	}
}

// TestRunProgressTracking wires a CampaignProgress through RunOptions and
// checks the telemetry a finished campaign reports: every point done, none
// still running, and at least one trial started per point — while the sink
// stream stays byte-identical to an untracked run.
func TestRunProgressTracking(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var plain bytes.Buffer
	if _, err := c.Run(RunOptions{Workers: 4, Run: stubRun, Sinks: []Sink{NewJSONLSink(&plain)}}); err != nil {
		t.Fatalf("Run: %v", err)
	}

	progress := obs.NewCampaignProgress(c.Spec.Name, len(c.Points))
	var tracked bytes.Buffer
	if _, err := c.Run(RunOptions{
		Workers:  4,
		Run:      stubRun,
		Sinks:    []Sink{NewJSONLSink(&tracked)},
		Progress: progress,
	}); err != nil {
		t.Fatalf("Run with progress: %v", err)
	}

	s := progress.Snapshot()
	if s.Done != len(c.Points) {
		t.Fatalf("done = %d, want %d", s.Done, len(c.Points))
	}
	if len(s.Running) != 0 {
		t.Fatalf("running after completion: %v", s.Running)
	}
	if s.TrialsStarted < len(c.Points) {
		t.Fatalf("trialsStarted = %d, want >= %d", s.TrialsStarted, len(c.Points))
	}
	if s.Percent != 100 {
		t.Fatalf("percent = %v, want 100", s.Percent)
	}
	if !bytes.Equal(plain.Bytes(), tracked.Bytes()) {
		t.Fatal("progress tracking changed the sink stream")
	}
}

// TestRunProgressReplicated checks the replicated path: trials exceed
// points (one start per replicate) and completion still means every point.
func TestRunProgressReplicated(t *testing.T) {
	spec := gridSpec(t)
	spec.Replications = 3
	c, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	progress := obs.NewCampaignProgress(c.Spec.Name, len(c.Points))
	if _, err := c.Run(RunOptions{Workers: 4, Run: stubRun, Progress: progress}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := progress.Snapshot()
	if s.Done != len(c.Points) || len(s.Running) != 0 {
		t.Fatalf("after replicated run: %+v", s)
	}
	if want := 3 * len(c.Points); s.TrialsStarted != want {
		t.Fatalf("trialsStarted = %d, want %d (one per replicate)", s.TrialsStarted, want)
	}
}
