package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// stubRun tags each result with its scenario's node count; no simulation.
func stubRun(sc experiment.Scenario) (experiment.Result, error) {
	return experiment.Result{Items: sc.Nodes, EnergyPerPacket: float64(sc.Seed)}, nil
}

// gridSpec is a 2×3×2 grid used by the runner tests.
func gridSpec(t *testing.T) Spec {
	return specFromJSON(t, `{
		"name": "grid",
		"base": {"workload": "all-to-all", "zoneRadius": 20, "seed": 1},
		"axes": {
			"protocol": ["spms", "spin"],
			"nodes": [25, 49, 100],
			"seed": {"count": 2}
		}
	}`)
}

// TestRunStreamsInOrder is the ordered-streaming contract: even with a
// full worker pool completing points out of order, every sink observes
// points strictly in index order.
func TestRunStreamsInOrder(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for _, workers := range []int{1, 8} {
		mem := &MemorySink{}
		results, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{mem}, Run: stubRun})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(c.Points) || len(mem.Points) != len(c.Points) {
			t.Fatalf("workers=%d: %d results, %d streamed, want %d", workers, len(results), len(mem.Points), len(c.Points))
		}
		if !mem.Closed {
			t.Fatalf("workers=%d: sink not closed", workers)
		}
		for i, pr := range mem.Points {
			if pr.Point.Index != i {
				t.Fatalf("workers=%d: streamed point %d has index %d — sink saw out-of-order delivery", workers, i, pr.Point.Index)
			}
			if pr.Result != results[i] {
				t.Fatalf("workers=%d: streamed result %d diverges from Execute's", workers, i)
			}
		}
	}
}

// TestRunSinkFormats golden-checks the first JSONL record and CSV rows of
// a stub campaign.
func TestRunSinkFormats(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var jsonl, csvBuf bytes.Buffer
	_, err = c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}, Run: stubRun})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	lines := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	if len(lines) != len(c.Points) {
		t.Fatalf("%d JSONL lines, want %d", len(lines), len(c.Points))
	}
	var rec struct {
		Campaign string            `json:"campaign"`
		Index    int               `json:"index"`
		Params   map[string]string `json:"params"`
		Scenario json.RawMessage   `json:"scenario"`
		Result   experiment.Result `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("JSONL line 0: %v\n%s", err, lines[0])
	}
	if rec.Campaign != "grid" || rec.Index != 0 {
		t.Fatalf("JSONL tagging: %+v", rec)
	}
	if rec.Params["protocol"] != "spms" || rec.Params["nodes"] != "25" || rec.Params["seed"] != "1" {
		t.Fatalf("JSONL params: %v", rec.Params)
	}
	if rec.Result.Items != 25 {
		t.Fatalf("JSONL result: %+v", rec.Result)
	}
	// Params preserve axis order on the wire (maps would sort).
	if !strings.Contains(lines[0], `"params":{"protocol":"spms","nodes":"25","seed":"1"}`) {
		t.Fatalf("JSONL param order lost: %s", lines[0])
	}

	csvLines := strings.Split(strings.TrimRight(csvBuf.String(), "\n"), "\n")
	if len(csvLines) != 1+len(c.Points) {
		t.Fatalf("%d CSV lines, want header + %d", len(csvLines), len(c.Points))
	}
	if !strings.HasPrefix(csvLines[0], "index,protocol,nodes,seed,totalEnergy_uJ,") {
		t.Fatalf("CSV header: %s", csvLines[0])
	}
	if !strings.HasPrefix(csvLines[1], "0,spms,25,1,") {
		t.Fatalf("CSV row 0: %s", csvLines[1])
	}
}

// TestRunSinkErrorAborts checks a failing sink surfaces its error AND
// stops the sweep: with a serial pool, no point beyond the failing
// delivery may simulate (a dead sink must not burn hours of grid).
func TestRunSinkErrorAborts(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var runs int
	counting := func(sc experiment.Scenario) (experiment.Result, error) {
		runs++
		return stubRun(sc)
	}
	boom := &failingSink{failAt: 3}
	_, err = c.Run(RunOptions{Workers: 1, Sinks: []Sink{boom}, Run: counting})
	if err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Fatalf("err = %v, want sink error", err)
	}
	if runs != 4 {
		t.Fatalf("%d points simulated after the sink died at delivery 4, want exactly 4", runs)
	}

	// Parallel pools still surface the error.
	_, err = c.Run(RunOptions{Workers: 4, Sinks: []Sink{&failingSink{failAt: 3}}, Run: stubRun})
	if err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Fatalf("workers=4: err = %v, want sink error", err)
	}
}

// TestRunBeginFailureClosesBegunSinks checks that when a later sink's
// Begin fails, sinks already begun are still closed (flushing buffered
// output like CSV headers).
func TestRunBeginFailureClosesBegunSinks(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	mem := &MemorySink{}
	_, err = c.Run(RunOptions{Sinks: []Sink{mem, &beginFailingSink{}}, Run: stubRun})
	if err == nil || !strings.Contains(err.Error(), "begin boom") {
		t.Fatalf("err = %v, want begin error", err)
	}
	if !mem.Closed {
		t.Fatal("first sink not closed after second sink's Begin failed")
	}
	if len(mem.Points) != 0 {
		t.Fatalf("points streamed despite Begin failure: %d", len(mem.Points))
	}
}

type beginFailingSink struct{}

func (s *beginFailingSink) Begin(*Campaign) error                { return fmt.Errorf("begin boom") }
func (s *beginFailingSink) Point(Point, experiment.Result) error { return nil }
func (s *beginFailingSink) Close() error                         { return nil }

type failingSink struct {
	failAt int
	seen   int
}

func (s *failingSink) Begin(*Campaign) error { return nil }
func (s *failingSink) Point(Point, experiment.Result) error {
	s.seen++
	if s.seen > s.failAt {
		return fmt.Errorf("sink boom")
	}
	return nil
}
func (s *failingSink) Close() error { return nil }

// TestCampaignParallelDeterminism is the subsystem's acceptance contract,
// mirroring TestSweepParallelDeterminism one layer up: running the same
// expanded spec through real simulations at workers=1 and workers=NumCPU
// yields byte-identical JSONL and CSV streams.
func TestCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	spec := specFromJSON(t, `{
		"name": "determinism",
		"base": {"workload": "all-to-all", "packetsPerNode": 1, "zoneRadius": 15, "drain": "1500ms", "seed": 1},
		"axes": {
			"protocol": ["spms", "spin"],
			"nodes": [16, 25],
			"failures": [false, true]
		}
	}`)
	run := func(workers int) (string, string) {
		c, err := Expand(spec)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		var jsonl, csvBuf bytes.Buffer
		if _, err := c.Run(RunOptions{Workers: workers, Sinks: []Sink{NewJSONLSink(&jsonl), NewCSVSink(&csvBuf)}}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return jsonl.String(), csvBuf.String()
	}
	j1, c1 := run(1)
	jn, cn := run(runtime.NumCPU())
	if j1 != jn {
		t.Fatalf("JSONL diverged between workers=1 and workers=%d:\n--- serial\n%s\n--- parallel\n%s", runtime.NumCPU(), j1, jn)
	}
	if c1 != cn {
		t.Fatalf("CSV diverged between workers=1 and workers=%d:\n--- serial\n%s\n--- parallel\n%s", runtime.NumCPU(), c1, cn)
	}
	if len(strings.Split(strings.TrimRight(j1, "\n"), "\n")) != 8 {
		t.Fatalf("unexpected JSONL line count:\n%s", j1)
	}
}
