// run.go executes an expanded campaign through the replicated sweep
// engine and streams finished points to the sinks. The sweep's OnPoint
// callback delivers completions serialized but possibly out of point
// order; the runner buffers them and flushes the contiguous prefix, so
// sinks always observe index order and their output is byte-identical at
// every pool size — streaming without giving up the ordered-reassembly
// contract. Unreplicated points flow to Sink.Point exactly as before;
// replicated points (spec replications > 1) flow to Sink.Aggregate with
// their full replicate vector and per-metric statistics.
//
// The runner is also the crash-safety seam (DESIGN.md §13): points
// already finished by a previous run (Completed, from a checkpoint
// journal) or by any previous campaign (Cache) replay into the sinks
// without re-execution, every freshly finished point is journaled
// write-ahead of its sink delivery, failed trials re-execute under the
// retry policy, and a closed Cancel channel drains in-flight points and
// aborts the sinks instead of finalizing them.
package campaign

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// RetryPolicy re-executes transiently failed trials. A retried trial runs
// the identical scenario — same derived seed — so a retry that succeeds
// produces the exact bytes the first attempt would have; the retry count
// is an execution knob, never part of scenario identity.
type RetryPolicy struct {
	// Max is the number of re-executions after the first attempt; zero
	// disables retry.
	Max int
	// Backoff is the wait before the first retry, doubling per attempt
	// (attempt n waits Backoff·2ⁿ⁻¹). Zero retries immediately.
	Backoff time.Duration
}

// PointRange restricts a run to the contiguous point-index range
// [Lo, Hi) — the cross-process shard contract (DESIGN.md §14). Because
// grid expansion is deterministic and sinks observe points in index
// order, n processes each running one balanced contiguous range of the
// same campaign produce, concatenated in shard order, byte-identical
// JSONL to a single process running the whole grid.
type PointRange struct {
	Lo, Hi int
}

// ShardRange returns the contiguous range of an n-point grid owned by
// shard index of count: balanced ranges whose sizes differ by at most
// one point, covering the grid exactly.
func ShardRange(points, index, count int) PointRange {
	return PointRange{Lo: index * points / count, Hi: (index + 1) * points / count}
}

// RunOptions configures campaign execution.
type RunOptions struct {
	// Workers bounds the sweep pool; zero or negative means one per core.
	// Replicates are independent work units, so a replicated campaign
	// parallelizes across points × replications.
	Workers int
	// Sinks receive every finished point in index order. The runner calls
	// Begin before the first point, then exactly one of Close (clean
	// completion — finalize) or Abort (failure or cancellation — flush
	// but do not finalize) per sink.
	Sinks []Sink
	// Run overrides the per-trial executor (tests); nil means
	// experiment.Run.
	Run func(experiment.Scenario) (experiment.Result, error)
	// SimWorkers bounds the data-parallel kernel goroutines inside each
	// simulation (experiment.RunConfig.SimWorkers). It is an execution knob,
	// not a scenario parameter: sink output is byte-identical at every
	// value. Ignored when Run is set. Note the two axes multiply — Workers
	// simulations each running SimWorkers kernel goroutines.
	SimWorkers int
	// Progress, when non-nil, receives live point-level telemetry: a start
	// per claimed trial and a completion per finished point (completion
	// here means simulated, which can run ahead of the ordered sink
	// flush). It feeds the -progress heartbeat and the /debug/progress
	// endpoint; like SimWorkers it never affects sink output.
	Progress *obs.CampaignProgress

	// Retry re-executes failed trials (Max > 0 enables it). Deterministic:
	// a retried trial reruns the identical scenario and seed.
	Retry RetryPolicy
	// Sleep overrides the retry backoff sleeper (tests); nil means
	// time.Sleep.
	Sleep func(time.Duration)

	// Journal, when non-nil, durably records every finished point BEFORE
	// any sink observes it — the write-ahead contract that makes a killed
	// run resumable from its journal. Points replayed via Completed are
	// not re-journaled (their records are already in the journal being
	// resumed); cache-served points are.
	Journal *checkpoint.Journal
	// Completed maps point index → replicate vector finished by a previous
	// run of this campaign (from LoadCheckpoint). Completed points replay
	// into the sinks without re-execution, so a resumed run's sink output
	// is byte-identical to an uninterrupted one.
	Completed map[int][]experiment.Result
	// Cache, when non-nil, is consulted before executing each remaining
	// point and updated after each fresh completion — cross-campaign reuse
	// keyed by canonical scenario hash.
	Cache *checkpoint.Cache

	// Cancel, when non-nil, requests a graceful stop when closed: workers
	// finish (and journal) the points already in flight, claim nothing
	// new, sinks are aborted, and Run returns experiment.ErrCancelled.
	Cancel <-chan struct{}

	// Range, when non-nil, restricts the run to the points in [Lo, Hi):
	// only those points are hashed, executed (or replayed), and streamed
	// to the sinks, and the returned slice is populated only inside the
	// range. Nil means the whole grid. See PointRange for the shard
	// contract this implements.
	Range *PointRange
}

// Run executes every trial and returns the per-point replicate vectors in
// point order — results[i][r] is replicate r of point i, a single-element
// slice for unreplicated campaigns. Sinks have already received the full
// stream when it returns a nil error. With opts.Range set, "every trial"
// means the range's trials: entries outside [Lo, Hi) stay nil and the
// sinks observe exactly the range, in index order.
func (c *Campaign) Run(opts RunOptions) ([][]experiment.Result, error) {
	abortSinks := func() error {
		var err error
		for _, s := range opts.Sinks {
			err = errors.Join(err, s.Abort())
		}
		return err
	}
	lo, hi := 0, len(c.Points)
	if opts.Range != nil {
		lo, hi = opts.Range.Lo, opts.Range.Hi
		if lo < 0 || hi > len(c.Points) || lo > hi {
			return nil, errors.Join(
				fmt.Errorf("campaign %q: point range [%d,%d) outside the %d-point grid", c.Spec.Name, lo, hi, len(c.Points)),
				abortSinks())
		}
	}
	for i, s := range opts.Sinks {
		if err := s.Begin(c); err != nil {
			// Abort every sink through the failing one: its Begin may have
			// buffered partial output (e.g. a CSV header) that must be
			// flushed, but nothing may be finalized.
			for _, begun := range opts.Sinks[:i+1] {
				begun.Abort()
			}
			return nil, err
		}
	}

	scenarios := make([]experiment.Scenario, len(c.Points))
	for i, p := range c.Points {
		scenarios[i] = p.Scenario
	}
	replicated := c.Replications() > 1
	reps := c.Replications()

	// Canonical hashes are only needed when some durability layer is on,
	// and only for the points this run owns.
	var hashes []string
	if opts.Journal != nil || opts.Cache != nil {
		hashes = make([]string, len(c.Points))
		for i := lo; i < hi; i++ {
			h, err := experiment.ScenarioHash(scenarios[i])
			if err != nil {
				return nil, errors.Join(fmt.Errorf("campaign %q: hash point %d: %w", c.Spec.Name, i, err), abortSinks())
			}
			hashes[i] = h
		}
	}

	results := make([][]experiment.Result, len(c.Points))
	done := make([]bool, len(c.Points))

	// Replay the journaled prefix of a resumed run. LoadCheckpoint already
	// validated indices, hashes, and vector lengths; completions outside
	// this run's range belong to other shards and are ignored.
	for i := lo; i < hi; i++ {
		if rs, ok := opts.Completed[i]; ok {
			results[i] = rs
			done[i] = true
			opts.Progress.PointResumed(i)
		}
	}

	// Serve remaining points from the cross-campaign cache. Hits are
	// journaled up front, in index order, still write-ahead of the sinks.
	if opts.Cache != nil {
		for i := lo; i < hi; i++ {
			if done[i] {
				continue
			}
			rs, hit, err := opts.Cache.Get(hashes[i])
			if err != nil {
				return nil, errors.Join(fmt.Errorf("campaign %q: %w", c.Spec.Name, err), abortSinks())
			}
			if !hit || len(rs) != reps {
				// A vector of the wrong length under a hash that encodes
				// the replication count is a damaged entry: a miss.
				continue
			}
			if opts.Journal != nil {
				rec := checkpoint.Record{Index: i, Hash: hashes[i], Results: rs}
				if err := opts.Journal.Append(rec); err != nil {
					return nil, errors.Join(fmt.Errorf("campaign %q: %w", c.Spec.Name, err), abortSinks())
				}
			}
			results[i] = rs
			done[i] = true
			opts.Progress.PointCached(i)
		}
	}

	// Ordered streaming: OnPoint calls are serialized by the sweep, so
	// this state needs no lock of its own. A sink error propagates back
	// through OnPoint's return, aborting the sweep instead of letting the
	// remaining points simulate into a dead sink.
	pending := make(map[int][]experiment.Result)
	next := lo
	flush := func() error {
		for {
			rs, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			for _, s := range opts.Sinks {
				var err error
				if replicated {
					err = s.Aggregate(c.Points[next], NewAggregate(rs))
				} else {
					err = s.Point(c.Points[next], rs[0])
				}
				if err != nil {
					return err
				}
			}
			next++
		}
	}

	// Feed the sinks the already-done prefix (and any already-done islands
	// the sweep will flush as execution fills the gaps between them).
	for i := lo; i < hi; i++ {
		if done[i] {
			pending[i] = results[i]
		}
	}
	if err := flush(); err != nil {
		return nil, errors.Join(err, abortSinks())
	}

	// What remains executes through the sweep; todo[k] maps the sweep's
	// point index k back to the campaign's point index.
	var todo []int
	for i := lo; i < hi; i++ {
		if !done[i] {
			todo = append(todo, i)
		}
	}
	todoScenarios := make([]experiment.Scenario, len(todo))
	for k, i := range todo {
		todoScenarios[k] = scenarios[i]
	}

	onPoint := func(k int, _ experiment.Scenario, rs []experiment.Result) error {
		i := todo[k]
		opts.Progress.PointDone(i)
		// Write-ahead: the journal record must be durable before any sink
		// observes the point, so a crash after partial sink output always
		// finds the point in the journal on resume.
		if opts.Journal != nil {
			rec := checkpoint.Record{Index: i, Hash: hashes[i], Results: rs}
			if err := opts.Journal.Append(rec); err != nil {
				return err
			}
		}
		if opts.Cache != nil {
			if err := opts.Cache.Put(hashes[i], rs); err != nil {
				return err
			}
		}
		results[i] = rs
		pending[i] = rs
		return flush()
	}

	runFn := opts.Run
	if runFn == nil {
		cfg := experiment.RunConfig{SimWorkers: opts.SimWorkers}
		runFn = func(sc experiment.Scenario) (experiment.Result, error) {
			return experiment.RunWith(sc, cfg)
		}
	}
	if opts.Retry.Max > 0 {
		runFn = withRetry(runFn, opts.Retry, opts.Sleep, opts.Cancel, opts.Progress)
	}

	var onStart func(int)
	if opts.Progress != nil {
		onStart = func(k int) { opts.Progress.PointStarted(todo[k]) }
	}
	_, err := experiment.ReplicatedSweep{
		Points:  todoScenarios,
		Run:     runFn,
		Workers: opts.Workers,
		OnStart: onStart,
		OnPoint: onPoint,
		Cancel:  opts.Cancel,
	}.Execute()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("campaign %q: %w", c.Spec.Name, err), abortSinks())
	}

	var closeErr error
	for _, s := range opts.Sinks {
		closeErr = errors.Join(closeErr, s.Close())
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return results, nil
}

// withRetry wraps a trial executor with the retry policy: up to policy.Max
// re-executions of the identical scenario, exponential backoff between
// attempts, stopping early once cancel closes (a graceful shutdown should
// not sit out backoff waits re-running a doomed trial).
func withRetry(run func(experiment.Scenario) (experiment.Result, error), policy RetryPolicy, sleep func(time.Duration), cancel <-chan struct{}, progress *obs.CampaignProgress) func(experiment.Scenario) (experiment.Result, error) {
	if sleep == nil {
		//repolint:allow detsource backoff between retry attempts is a wall-clock wait by definition; it delays execution but never alters results
		sleep = time.Sleep
	}
	cancelled := func() bool {
		if cancel == nil {
			return false
		}
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	// Recover per ATTEMPT, not per point: a panicking first attempt
	// becomes an ordinary error the loop can retry.
	run = experiment.Recovered(run)
	return func(sc experiment.Scenario) (experiment.Result, error) {
		var lastErr error
		for attempt := 0; ; attempt++ {
			res, err := run(sc)
			if err == nil {
				return res, nil
			}
			lastErr = err
			if attempt >= policy.Max || cancelled() {
				return experiment.Result{}, fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
			}
			if policy.Backoff > 0 {
				sleep(policy.Backoff << attempt)
			}
			progress.TrialRetried()
		}
	}
}

// LoadCheckpoint replays the journal in dir and validates every record
// against this campaign's grid: the index must be inside the grid, the
// record's scenario hash must match the point at that index (a journal
// can never resume a campaign it does not belong to), and the replicate
// vector must be full. It returns the completed map for RunOptions; a
// missing journal is an empty history. Duplicate indices keep the later
// record — a cache-refresh overwrite, not an error.
func (c *Campaign) LoadCheckpoint(dir string) (map[int][]experiment.Result, error) {
	recs, err := checkpoint.LoadJournal(dir)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	reps := c.Replications()
	completed := make(map[int][]experiment.Result, len(recs))
	for _, r := range recs {
		if r.Index < 0 || r.Index >= len(c.Points) {
			return nil, fmt.Errorf("campaign %q: journal record index %d outside the %d-point grid — wrong campaign or edited spec", c.Spec.Name, r.Index, len(c.Points))
		}
		want, err := experiment.ScenarioHash(c.Points[r.Index].Scenario)
		if err != nil {
			return nil, fmt.Errorf("campaign %q: hash point %d: %w", c.Spec.Name, r.Index, err)
		}
		if r.Hash != want {
			return nil, fmt.Errorf("campaign %q: journal record for point %d carries scenario hash %s, grid expects %s — the journal belongs to a different campaign", c.Spec.Name, r.Index, r.Hash, want)
		}
		if len(r.Results) != reps {
			return nil, fmt.Errorf("campaign %q: journal record for point %d has %d replicates, grid expects %d", c.Spec.Name, r.Index, len(r.Results), reps)
		}
		completed[r.Index] = r.Results
	}
	return completed, nil
}
