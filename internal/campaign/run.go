// run.go executes an expanded campaign through the replicated sweep
// engine and streams finished points to the sinks. The sweep's OnPoint
// callback delivers completions serialized but possibly out of point
// order; the runner buffers them and flushes the contiguous prefix, so
// sinks always observe index order and their output is byte-identical at
// every pool size — streaming without giving up the ordered-reassembly
// contract. Unreplicated points flow to Sink.Point exactly as before;
// replicated points (spec replications > 1) flow to Sink.Aggregate with
// their full replicate vector and per-metric statistics.
package campaign

import (
	"errors"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// RunOptions configures campaign execution.
type RunOptions struct {
	// Workers bounds the sweep pool; zero or negative means one per core.
	// Replicates are independent work units, so a replicated campaign
	// parallelizes across points × replications.
	Workers int
	// Sinks receive every finished point in index order. The runner calls
	// Begin before the first point and Close after the last, including on
	// failure (to flush partial output).
	Sinks []Sink
	// Run overrides the per-trial executor (tests); nil means
	// experiment.Run.
	Run func(experiment.Scenario) (experiment.Result, error)
	// SimWorkers bounds the data-parallel kernel goroutines inside each
	// simulation (experiment.RunConfig.SimWorkers). It is an execution knob,
	// not a scenario parameter: sink output is byte-identical at every
	// value. Ignored when Run is set. Note the two axes multiply — Workers
	// simulations each running SimWorkers kernel goroutines.
	SimWorkers int
	// Progress, when non-nil, receives live point-level telemetry: a start
	// per claimed trial and a completion per finished point (completion
	// here means simulated, which can run ahead of the ordered sink
	// flush). It feeds the -progress heartbeat and the /debug/progress
	// endpoint; like SimWorkers it never affects sink output.
	Progress *obs.CampaignProgress
}

// Run executes every trial and returns the per-point replicate vectors in
// point order — results[i][r] is replicate r of point i, a single-element
// slice for unreplicated campaigns. Sinks have already received the full
// stream when it returns a nil error.
func (c *Campaign) Run(opts RunOptions) ([][]experiment.Result, error) {
	for i, s := range opts.Sinks {
		if err := s.Begin(c); err != nil {
			// Close every sink through the failing one: its Begin may have
			// buffered partial output (e.g. a CSV header) that must be
			// flushed — the documented "Close after the last, including on
			// failure" contract.
			for _, begun := range opts.Sinks[:i+1] {
				begun.Close()
			}
			return nil, err
		}
	}

	scenarios := make([]experiment.Scenario, len(c.Points))
	for i, p := range c.Points {
		scenarios[i] = p.Scenario
	}
	replicated := c.Replications() > 1

	// Ordered streaming: OnPoint calls are serialized by the sweep, so
	// this state needs no lock of its own. A sink error propagates back
	// through OnPoint's return, aborting the sweep instead of letting the
	// remaining points simulate into a dead sink.
	pending := make(map[int][]experiment.Result)
	next := 0
	onPoint := func(i int, _ experiment.Scenario, reps []experiment.Result) error {
		opts.Progress.PointDone(i)
		pending[i] = reps
		for {
			rs, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			for _, s := range opts.Sinks {
				var err error
				if replicated {
					err = s.Aggregate(c.Points[next], NewAggregate(rs))
				} else {
					err = s.Point(c.Points[next], rs[0])
				}
				if err != nil {
					return err
				}
			}
			next++
		}
	}

	runFn := opts.Run
	if runFn == nil && opts.SimWorkers > 1 {
		cfg := experiment.RunConfig{SimWorkers: opts.SimWorkers}
		runFn = func(sc experiment.Scenario) (experiment.Result, error) {
			return experiment.RunWith(sc, cfg)
		}
	}

	var onStart func(int)
	if opts.Progress != nil {
		onStart = opts.Progress.PointStarted
	}
	results, err := experiment.ReplicatedSweep{
		Points:  scenarios,
		Run:     runFn,
		Workers: opts.Workers,
		OnStart: onStart,
		OnPoint: onPoint,
	}.Execute()

	var closeErr error
	for _, s := range opts.Sinks {
		closeErr = errors.Join(closeErr, s.Close())
	}
	if err != nil {
		return nil, fmt.Errorf("campaign %q: %w", c.Spec.Name, err)
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return results, nil
}
