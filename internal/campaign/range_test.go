package campaign

import (
	"bytes"
	"testing"
)

// TestRunRange is the point-range contract behind cross-process sharding:
// runs restricted to contiguous ranges concatenate byte-identically to a
// whole-grid run, and invalid ranges fail before any sink sees a point.
func TestRunRange(t *testing.T) {
	c, err := Expand(gridSpec(t))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var whole bytes.Buffer
	if _, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&whole)}, Run: stubRun}); err != nil {
		t.Fatalf("whole run: %v", err)
	}

	var parts bytes.Buffer
	for _, r := range []PointRange{{0, 5}, {5, 6}, {6, 12}} {
		r := r
		results, err := c.Run(RunOptions{Workers: 4, Sinks: []Sink{NewJSONLSink(&parts)}, Run: stubRun, Range: &r})
		if err != nil {
			t.Fatalf("range %+v: %v", r, err)
		}
		for i, rs := range results {
			inRange := i >= r.Lo && i < r.Hi
			if (rs != nil) != inRange {
				t.Fatalf("range %+v: results[%d] populated=%v, want %v", r, i, rs != nil, inRange)
			}
		}
	}
	if !bytes.Equal(parts.Bytes(), whole.Bytes()) {
		t.Fatalf("concatenated range output diverges from whole-grid run:\nparts:\n%s\nwhole:\n%s", parts.Bytes(), whole.Bytes())
	}

	for _, r := range []PointRange{{-1, 4}, {0, 13}, {5, 4}} {
		r := r
		mem := &MemorySink{}
		if _, err := c.Run(RunOptions{Sinks: []Sink{mem}, Run: stubRun, Range: &r}); err == nil {
			t.Fatalf("invalid range %+v accepted", r)
		}
		if len(mem.Points) != 0 {
			t.Fatalf("invalid range %+v streamed %d points", r, len(mem.Points))
		}
	}
}

// TestShardRangeEmptyGrid: sharding a grid smaller than the shard count
// yields empty (but valid) ranges for the surplus shards.
func TestShardRangeEmptyGrid(t *testing.T) {
	r := ShardRange(2, 3, 4)
	if r.Lo != 1 || r.Hi != 2 {
		t.Fatalf("ShardRange(2,3,4) = %+v", r)
	}
	r = ShardRange(2, 2, 4)
	if r.Lo != r.Hi {
		t.Fatalf("surplus shard not empty: %+v", r)
	}
}
