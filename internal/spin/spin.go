// Package spin implements the SPIN baseline (Sensor Protocols for
// Information via Negotiation, Heinzelman/Kulik/Balakrishnan) as the paper
// describes it in §3.1: a three-stage ADV → REQ → DATA metadata negotiation
// in which every transmission happens at the single maximum power level.
//
// Each node that acquires a new data item advertises it once to its
// neighborhood (the SPIN-BC pattern), which is how data ripples across
// zones. SPIN keeps no routes and has no explicit failure handling; the
// liveness it retains under failures comes from re-requesting when a later
// advertisement for still-missing data is heard (§5.1.2's F-SPIN).
package spin

import (
	"fmt"
	"time"

	"repro/internal/dissem"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Config holds SPIN's (few) knobs.
type Config struct {
	// Proc is the per-packet processing delay (Table 1: 0.02 ms).
	Proc time.Duration
	// PendingTimeout is how long an outstanding REQ suppresses re-requesting
	// the same data. Zero derives it from the radio and MAC models: the
	// expected ADV→REQ→DATA exchange time at maximum power plus slack.
	PendingTimeout time.Duration
}

// DefaultProc is Table 1's processing time.
const DefaultProc = 20 * time.Microsecond

// DefaultConfig returns Table 1 parameters with a derived pending timeout.
func DefaultConfig() Config {
	return Config{Proc: DefaultProc}
}

// System is one SPIN network: all per-node protocol instances plus shared
// bookkeeping.
type System struct {
	nw       *network.Network
	ledger   *dissem.Ledger
	interest dissem.Interest
	cfg      Config
	nodes    []node
}

var _ dissem.Protocol = (*System)(nil)

// NewSystem builds the protocol instances and binds them to the network.
func NewSystem(nw *network.Network, ledger *dissem.Ledger, interest dissem.Interest, cfg Config) (*System, error) {
	if nw == nil || ledger == nil || interest == nil {
		return nil, fmt.Errorf("spin: nil dependency (nw=%v ledger=%v interest=%v)",
			nw != nil, ledger != nil, interest != nil)
	}
	if cfg.Proc < 0 {
		return nil, fmt.Errorf("spin: negative processing delay %v", cfg.Proc)
	}
	if cfg.PendingTimeout < 0 {
		return nil, fmt.Errorf("spin: negative pending timeout %v", cfg.PendingTimeout)
	}
	if cfg.PendingTimeout == 0 {
		cfg.PendingTimeout = derivePendingTimeout(nw, cfg.Proc)
	}
	s := &System{nw: nw, ledger: ledger, interest: interest, cfg: cfg}
	nw.DeferProcessing(cfg.Proc)
	// Nodes live in one contiguous slice (allocated once, never grown), so
	// per-node state is a flat array walk rather than a pointer chase.
	s.nodes = make([]node, nw.N())
	for i := range s.nodes {
		n := &s.nodes[i]
		n.sys = s
		n.id = packet.NodeID(i)
		nw.Bind(n.id, n)
	}
	return s, nil
}

// derivePendingTimeout estimates the worst-case REQ→DATA turnaround at
// maximum power: two channel accesses at the max-power contender count
// (with full backoff), the REQ and DATA airtimes, and two processing
// delays — doubled for slack.
func derivePendingTimeout(nw *network.Network, proc time.Duration) time.Duration {
	f := nw.Field()
	m := f.Model()
	maxContenders := 0
	for i := 0; i < f.N(); i++ {
		if c := f.Contenders(packet.NodeID(i), radio.MaxPower); c > maxContenders {
			maxContenders = c
		}
	}
	// Full-window backoff bound via the expected-delay helper is not
	// available here without the CSMA instance; approximate with the
	// quadratic term from the shared config by sending through the network
	// is overkill. Use a conservative closed form: the Table 1 MAC G=0.01 ms
	// term dominates; reconstructing it here keeps spin decoupled from mac.
	const gMS = 0.01
	access := time.Duration(gMS * float64(maxContenders) * float64(maxContenders) * float64(time.Millisecond))
	sz := nw.Sizes()
	rtt := 2*access + m.TxTime(sz.REQ) + m.TxTime(sz.DATA) + 2*proc
	return 2 * rtt
}

// Config returns the effective configuration (with derived defaults).
func (s *System) Config() Config { return s.cfg }

// Originate implements dissem.Protocol: node src has sensed new data d and
// advertises it to its neighborhood at maximum power.
func (s *System) Originate(src packet.NodeID, d packet.DataID) error {
	if src != d.Origin {
		return fmt.Errorf("spin: originate %v at wrong node %d", d, src)
	}
	if int(src) >= len(s.nodes) || src < 0 {
		return fmt.Errorf("spin: origin node %d out of range", src)
	}
	if !s.nw.Alive(src) {
		return fmt.Errorf("spin: origin node %d is down", src)
	}
	if err := s.ledger.Originate(d, s.nw.Scheduler().Now()); err != nil {
		return err
	}
	n := &s.nodes[src]
	it := s.ledger.Index(d)
	n.setHas(it)
	n.advertise(d, it)
	return nil
}

// node is one SPIN protocol instance. Per-item state lives in flat slices
// indexed by the ledger's dense item index (dissem.Ledger.Index), resolved
// once per packet — see the matching layout in internal/core. The zero
// sim.Timer is inert, so the pending slice needs no occupancy flag.
type node struct {
	sys        *System
	id         packet.NodeID
	has        []bool
	advertised []bool
	pending    []sim.Timer
}

// hasItem reports whether this node holds item it.
func (n *node) hasItem(it int) bool { return it >= 0 && it < len(n.has) && n.has[it] }

// grow extends the per-item slices to cover item it.
func (n *node) grow(it int) {
	if it < len(n.has) {
		return
	}
	c := n.sys.ledger.Originated()
	n.has = dissem.GrowItems(n.has, it, c)
	n.advertised = dissem.GrowItems(n.advertised, it, c)
	n.pending = dissem.GrowItems(n.pending, it, c)
}

// setHas marks item it as held (no-op for unregistered items, which can
// never be advertised or delivered).
func (n *node) setHas(it int) {
	if it < 0 {
		return
	}
	n.grow(it)
	n.has[it] = true
}

var _ network.Receiver = (*node)(nil)

// HandlePacket runs the protocol reaction to p. The paper's explicit Tproc
// term ("this eliminates the unrealistic simplification in the SPIN
// simulations where the data is taken to be processed instantaneously") is
// applied by the network's batched deferred dispatch (DeferProcessing in
// NewSystem), which also re-checks liveness before calling here.
func (n *node) HandlePacket(p packet.Packet) {
	it := n.sys.ledger.Index(p.Meta)
	switch p.Kind {
	case packet.ADV:
		n.onADV(p, it)
	case packet.REQ:
		n.onREQ(p, it)
	case packet.DATA:
		n.onDATA(p, it)
	default:
		// SPIN has no other traffic; CTRL packets would indicate a
		// miswired experiment.
		panic(fmt.Sprintf("spin: node %d received unexpected %v", n.id, p.Kind))
	}
}

// onADV requests advertised data the node needs and is not already waiting
// for.
func (n *node) onADV(p packet.Packet, it int) {
	d := p.Meta
	if n.hasItem(it) || !n.sys.interest(n.id, d) {
		return
	}
	if it >= 0 && it < len(n.pending) && n.pending[it].Active() {
		return // a request is already outstanding
	}
	n.sys.nw.Send(packet.Packet{
		Kind:      packet.REQ,
		Meta:      d,
		Src:       n.id,
		Dst:       p.Src,
		Requester: n.id,
		Provider:  p.Src,
		Level:     radio.MaxPower,
	})
	if it >= 0 {
		n.grow(it)
		n.pending[it] = n.sys.nw.Scheduler().After(n.sys.cfg.PendingTimeout, func() {
			// Expiry simply clears the suppression; a later ADV re-requests.
			n.pending[it] = sim.Timer{}
			n.sys.nw.Counters().Timeouts++
		})
	}
}

// onREQ serves data the node holds.
func (n *node) onREQ(p packet.Packet, it int) {
	d := p.Meta
	if !n.hasItem(it) {
		n.sys.nw.Counters().Drops++
		return
	}
	n.sys.nw.Send(packet.Packet{
		Kind:      packet.DATA,
		Meta:      d,
		Src:       n.id,
		Dst:       p.Requester,
		Requester: p.Requester,
		Provider:  n.id,
		Level:     radio.MaxPower,
	})
}

// onDATA stores and re-advertises newly received data.
func (n *node) onDATA(p packet.Packet, it int) {
	d := p.Meta
	if it >= 0 && it < len(n.pending) {
		n.pending[it].Cancel()
		n.pending[it] = sim.Timer{}
	}
	if n.hasItem(it) {
		n.sys.nw.Counters().Duplicates++
		return
	}
	n.setHas(it)
	if n.sys.ledger.RecordDelivery(n.id, d, n.sys.nw.Scheduler().Now()) {
		n.sys.nw.Counters().Delivered++
	}
	n.advertise(d, it)
}

// advertise broadcasts an ADV for d once per node, at maximum power.
func (n *node) advertise(d packet.DataID, it int) {
	if it < 0 || (it < len(n.advertised) && n.advertised[it]) {
		return
	}
	n.grow(it)
	n.advertised[it] = true
	n.sys.nw.Send(packet.Packet{
		Kind:  packet.ADV,
		Meta:  d,
		Src:   n.id,
		Dst:   packet.Broadcast,
		Level: radio.MaxPower,
	})
}

// Has reports whether node id currently holds d (test hook).
func (s *System) Has(id packet.NodeID, d packet.DataID) bool {
	if id < 0 || int(id) >= len(s.nodes) {
		panic(fmt.Sprintf("spin: node id %d out of range", id))
	}
	return s.nodes[id].hasItem(s.ledger.Index(d))
}
