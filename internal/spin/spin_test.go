package spin

import (
	"testing"
	"time"

	"repro/internal/dissem"
	"repro/internal/mac"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topo"
)

type fixture struct {
	sched  *sim.Scheduler
	nw     *network.Network
	ledger *dissem.Ledger
	sys    *System
}

// newFixture builds an n-node grid SPIN system, 5 m spacing, radius-scaled
// MICA2 radio.
func newFixture(t *testing.T, n int, zoneRadius float64, interest dissem.Interest) *fixture {
	t.Helper()
	sched := sim.NewScheduler()
	m, err := radio.ScaledMICA2(zoneRadius)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewGridField(n, 5, m)
	if err != nil {
		t.Fatalf("NewGridField: %v", err)
	}
	nw, err := network.New(sched, f, sim.NewRNG(7), network.Config{
		Sizes: packet.DefaultSizes(),
		MAC:   mac.DefaultConfig(),
	})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	ledger := dissem.NewLedger()
	sys, err := NewSystem(nw, ledger, interest, DefaultConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return &fixture{sched: sched, nw: nw, ledger: ledger, sys: sys}
}

func run(t *testing.T, fx *fixture, horizon time.Duration) {
	t.Helper()
	if err := fx.sched.Run(horizon); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNewSystemValidation(t *testing.T) {
	fx := newFixture(t, 4, 10, dissem.Everyone)
	if _, err := NewSystem(nil, fx.ledger, dissem.Everyone, DefaultConfig()); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewSystem(fx.nw, nil, dissem.Everyone, DefaultConfig()); err == nil {
		t.Fatal("nil ledger accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, nil, DefaultConfig()); err == nil {
		t.Fatal("nil interest accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, dissem.Everyone, Config{Proc: -1}); err == nil {
		t.Fatal("negative proc accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, dissem.Everyone, Config{PendingTimeout: -1}); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

func TestDerivedPendingTimeoutPositive(t *testing.T) {
	fx := newFixture(t, 9, 10, dissem.Everyone)
	if fx.sys.Config().PendingTimeout <= 0 {
		t.Fatalf("derived PendingTimeout=%v", fx.sys.Config().PendingTimeout)
	}
}

func TestOriginateValidation(t *testing.T) {
	fx := newFixture(t, 4, 10, dissem.Everyone)
	d := packet.DataID{Origin: 1, Seq: 0}
	if err := fx.sys.Originate(2, d); err == nil {
		t.Fatal("wrong origin node accepted")
	}
	if err := fx.sys.Originate(1, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := fx.sys.Originate(1, d); err == nil {
		t.Fatal("duplicate origination accepted")
	}
	fx.nw.Fail(0)
	if err := fx.sys.Originate(0, packet.DataID{Origin: 0, Seq: 0}); err == nil {
		t.Fatal("dead origin accepted")
	}
}

func TestThreeWayHandshakeDelivers(t *testing.T) {
	// 2×2 grid, everything within one zone: pure single-zone SPIN.
	fx := newFixture(t, 4, 20, dissem.Everyone)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 200*time.Millisecond)
	for id := packet.NodeID(1); id < 4; id++ {
		if !fx.sys.Has(id, d) {
			t.Fatalf("node %d never received data", id)
		}
	}
	if fx.ledger.Deliveries() != 3 {
		t.Fatalf("Deliveries=%d, want 3", fx.ledger.Deliveries())
	}
	c := fx.nw.Counters()
	if c.Sent[packet.REQ] < 3 || c.Sent[packet.DATA] < 3 {
		t.Fatalf("handshake counts REQ=%d DATA=%d, want ≥3 each", c.Sent[packet.REQ], c.Sent[packet.DATA])
	}
}

func TestAllTransmissionsAtMaxPower(t *testing.T) {
	fx := newFixture(t, 9, 20, dissem.Everyone)
	fx.nw.SetTrace(func(ev network.TraceEvent) {
		if ev.Kind == network.TraceTx && ev.Packet.Level != radio.MaxPower {
			t.Fatalf("SPIN transmitted at level %v: %v", ev.Packet.Level, ev.Packet)
		}
	})
	if err := fx.sys.Originate(4, packet.DataID{Origin: 4, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 500*time.Millisecond)
}

func TestDataRipplesAcrossZones(t *testing.T) {
	// 5×5 grid with a 7 m zone: corner-to-corner needs multiple SPIN
	// rounds of re-advertisement.
	fx := newFixture(t, 25, 7, dissem.Everyone)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 2*time.Second)
	if !fx.sys.Has(24, d) {
		t.Fatal("far corner never received data")
	}
	if fx.ledger.Deliveries() != 24 {
		t.Fatalf("Deliveries=%d, want 24", fx.ledger.Deliveries())
	}
}

func TestUninterestedNodesDoNotRequest(t *testing.T) {
	onlyNode3 := func(id packet.NodeID, d packet.DataID) bool { return id == 3 }
	fx := newFixture(t, 4, 20, onlyNode3)
	if err := fx.sys.Originate(0, packet.DataID{Origin: 0, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 200*time.Millisecond)
	if got := fx.nw.Counters().Sent[packet.REQ]; got != 1 {
		t.Fatalf("REQ count=%d, want 1 (only node 3 interested)", got)
	}
	if fx.sys.Has(1, packet.DataID{Origin: 0, Seq: 0}) {
		t.Fatal("uninterested node acquired data")
	}
	if !fx.sys.Has(3, packet.DataID{Origin: 0, Seq: 0}) {
		t.Fatal("interested node missed data")
	}
}

func TestNoDuplicateRequestsWhilePending(t *testing.T) {
	// Two advertisers of the same data: the second ADV must not trigger a
	// second REQ while the first is outstanding.
	fx := newFixture(t, 4, 20, dissem.Everyone)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, time.Second)
	// After full dissemination, every non-origin node received exactly one
	// DATA unless duplicates were served concurrently; allow small slack
	// for racing first requests but no unbounded blowup.
	c := fx.nw.Counters()
	if c.Sent[packet.DATA] > 9 {
		t.Fatalf("DATA sends=%d for 3 receivers; duplicate suppression broken", c.Sent[packet.DATA])
	}
}

func TestReRequestAfterProviderFailure(t *testing.T) {
	// Provider dies before serving; a later advertiser lets the node
	// re-request after the pending timeout (F-SPIN liveness).
	fx := newFixture(t, 9, 20, dissem.Everyone)
	d := packet.DataID{Origin: 4, Seq: 0}
	// Fail the origin immediately after its ADV goes out, then recover it
	// much later.
	if err := fx.sys.Originate(4, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	fx.sched.After(25*time.Millisecond, func() { fx.nw.Fail(4) })
	fx.sched.After(400*time.Millisecond, func() { fx.nw.Recover(4) })
	run(t, fx, 3*time.Second)
	// The origin's first ADV may or may not beat the failure; after
	// recovery nothing re-advertises in plain SPIN unless some node got the
	// data. Accept either complete dissemination or none, but the system
	// must not wedge with partial pending state preventing future runs.
	second := packet.DataID{Origin: 0, Seq: 1}
	if err := fx.sys.Originate(0, second); err != nil {
		t.Fatalf("second Originate: %v", err)
	}
	run(t, fx, 6*time.Second)
	if !fx.sys.Has(8, second) {
		t.Fatal("network wedged: fresh data no longer disseminates")
	}
}

func TestDelayMeasuredFromADV(t *testing.T) {
	fx := newFixture(t, 4, 20, dissem.Everyone)
	if err := fx.sys.Originate(0, packet.DataID{Origin: 0, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 200*time.Millisecond)
	if fx.ledger.Delays().Count() != 3 {
		t.Fatalf("delay samples=%d, want 3", fx.ledger.Delays().Count())
	}
	// Sanity: delay must exceed the DATA airtime (2 ms) since the handshake
	// includes ADV + REQ + DATA transmissions.
	if fx.ledger.Delays().Min() < 2*time.Millisecond {
		t.Fatalf("min delay %v implausibly small", fx.ledger.Delays().Min())
	}
}

func TestDeterministicRuns(t *testing.T) {
	results := make([]time.Duration, 2)
	for i := range results {
		fx := newFixture(t, 25, 15, dissem.Everyone)
		if err := fx.sys.Originate(12, packet.DataID{Origin: 12, Seq: 0}); err != nil {
			t.Fatalf("Originate: %v", err)
		}
		run(t, fx, 2*time.Second)
		results[i] = fx.ledger.Delays().Mean()
	}
	if results[0] != results[1] {
		t.Fatalf("same seed diverged: %v vs %v", results[0], results[1])
	}
}

func TestHasPanicsOutOfRange(t *testing.T) {
	fx := newFixture(t, 4, 10, dissem.Everyone)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fx.sys.Has(99, packet.DataID{})
}
