package dissem

import (
	"testing"
	"time"

	"repro/internal/packet"
)

func TestEveryoneExcludesOrigin(t *testing.T) {
	d := packet.DataID{Origin: 3, Seq: 0}
	if Everyone(3, d) {
		t.Fatal("origin must not be interested in its own data")
	}
	if !Everyone(0, d) || !Everyone(7, d) {
		t.Fatal("all other nodes must be interested")
	}
}

func TestLedgerOriginate(t *testing.T) {
	l := NewLedger()
	d := packet.DataID{Origin: 1, Seq: 0}
	if err := l.Originate(d, 5*time.Millisecond); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := l.Originate(d, 6*time.Millisecond); err == nil {
		t.Fatal("duplicate origination accepted")
	}
	at, ok := l.BornAt(d)
	if !ok || at != 5*time.Millisecond {
		t.Fatalf("BornAt=(%v,%v)", at, ok)
	}
	if l.Originated() != 1 {
		t.Fatalf("Originated=%d, want 1", l.Originated())
	}
	if _, ok := l.BornAt(packet.DataID{Origin: 9, Seq: 9}); ok {
		t.Fatal("BornAt for unknown data")
	}
}

func TestLedgerDeliveryRecordsDelay(t *testing.T) {
	l := NewLedger()
	d := packet.DataID{Origin: 1, Seq: 0}
	if err := l.Originate(d, 2*time.Millisecond); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if !l.RecordDelivery(5, d, 12*time.Millisecond) {
		t.Fatal("first delivery rejected")
	}
	if l.Deliveries() != 1 {
		t.Fatalf("Deliveries=%d, want 1", l.Deliveries())
	}
	if got := l.Delays().Mean(); got != 10*time.Millisecond {
		t.Fatalf("delay=%v, want 10ms", got)
	}
	if !l.WasDelivered(5, d) {
		t.Fatal("WasDelivered=false after delivery")
	}
	if l.WasDelivered(6, d) {
		t.Fatal("WasDelivered=true for wrong node")
	}
}

func TestLedgerDuplicateDeliveryIgnored(t *testing.T) {
	l := NewLedger()
	d := packet.DataID{Origin: 1, Seq: 0}
	if err := l.Originate(d, 0); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if !l.RecordDelivery(5, d, time.Millisecond) {
		t.Fatal("first delivery rejected")
	}
	if l.RecordDelivery(5, d, 2*time.Millisecond) {
		t.Fatal("duplicate delivery accepted")
	}
	if l.Deliveries() != 1 || l.Delays().Count() != 1 {
		t.Fatal("duplicate polluted stats")
	}
	// Same data to a different node is a new delivery.
	if !l.RecordDelivery(6, d, 2*time.Millisecond) {
		t.Fatal("delivery to second node rejected")
	}
}

func TestLedgerUnknownDataDelivery(t *testing.T) {
	l := NewLedger()
	if l.RecordDelivery(1, packet.DataID{Origin: 2, Seq: 0}, time.Millisecond) {
		t.Fatal("delivery of unoriginated data accepted")
	}
}

func TestLedgerMultipleItems(t *testing.T) {
	l := NewLedger()
	for seq := 0; seq < 5; seq++ {
		d := packet.DataID{Origin: 0, Seq: seq}
		if err := l.Originate(d, time.Duration(seq)*time.Millisecond); err != nil {
			t.Fatalf("Originate: %v", err)
		}
		l.RecordDelivery(1, d, time.Duration(seq+2)*time.Millisecond)
	}
	if l.Deliveries() != 5 {
		t.Fatalf("Deliveries=%d, want 5", l.Deliveries())
	}
	if got := l.Delays().Mean(); got != 2*time.Millisecond {
		t.Fatalf("mean delay=%v, want 2ms", got)
	}
}
