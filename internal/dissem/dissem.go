// Package dissem holds the scaffolding shared by the dissemination
// protocols (SPIN, SPMS, flooding): the interest predicate that models
// which nodes want which data, and the Ledger that records originations and
// deliveries to compute the paper's end-to-end delay metric ("from the time
// the ADV packet is sent out by the source to the time that the data packet
// is received at the destination").
package dissem

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
)

// Interest reports whether a node wants a given data item. All-to-all
// communication is Everyone; cluster-based hierarchical communication uses
// a predicate built by the workload package.
type Interest func(node packet.NodeID, d packet.DataID) bool

// Everyone is the all-to-all interest predicate: every node wants every
// data item it did not originate.
func Everyone(node packet.NodeID, d packet.DataID) bool { return node != d.Origin }

// Protocol is the surface the workload drives: injecting newly sensed data
// at its origin node.
type Protocol interface {
	// Originate introduces a new data item at node src, which begins
	// advertising it. src must equal d.Origin.
	Originate(src packet.NodeID, d packet.DataID) error
}

// itemInfo is one registered data item: its origination time and its dense
// index in registration order.
type itemInfo struct {
	at  time.Duration
	idx int32
}

// Ledger tracks data lifecycles across the network for one simulation run.
// It is shared by all node instances of a protocol system.
//
// Items are numbered densely in origination order (Index); protocols use
// that index to keep their per-item node state in flat slices instead of
// per-node maps — a delivery-path membership test is run for every DATA
// packet, and at campaign scale (10⁶ distinct deliveries per run) map
// probing dominates the profile. For the same reason the delivered set is
// one node-id bitset per item rather than a map of 24-byte composite keys:
// smaller by two orders of magnitude and a single indexed load to test.
type Ledger struct {
	items     map[uint64]itemInfo // DataID.Key() -> registration info
	delivered [][]uint64          // per item index: bitset over node ids
	count     int                 // distinct (node, item) deliveries
	delays    *metrics.DelayStats
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		items:  make(map[uint64]itemInfo),
		delays: metrics.NewDelayStats(),
	}
}

// Originate records that d was advertised by its origin at time now.
// Re-originating the same DataID is an error: metadata names must be unique.
func (l *Ledger) Originate(d packet.DataID, now time.Duration) error {
	if _, dup := l.items[d.Key()]; dup {
		return fmt.Errorf("dissem: data %v originated twice", d)
	}
	l.items[d.Key()] = itemInfo{at: now, idx: int32(len(l.delivered))}
	l.delivered = append(l.delivered, nil)
	return nil
}

// Index returns d's dense registration index (assigned in origination
// order, starting at 0), or -1 when d was never originated. Protocols key
// their per-item state slices on it.
func (l *Ledger) Index(d packet.DataID) int {
	info, ok := l.items[d.Key()]
	if !ok {
		return -1
	}
	return int(info.idx)
}

// BornAt returns when d was originated.
func (l *Ledger) BornAt(d packet.DataID) (time.Duration, bool) {
	info, ok := l.items[d.Key()]
	return info.at, ok
}

// Originated returns how many data items have been introduced.
func (l *Ledger) Originated() int { return len(l.items) }

// RecordDelivery marks d as delivered to node at time now, recording the
// end-to-end delay sample. It reports false (and records nothing) for a
// duplicate delivery or for data that was never originated.
func (l *Ledger) RecordDelivery(node packet.NodeID, d packet.DataID, now time.Duration) bool {
	info, ok := l.items[d.Key()]
	if !ok {
		return false
	}
	bs := l.delivered[info.idx]
	w, bit := int(node)>>6, uint64(1)<<(uint(node)&63)
	if w >= len(bs) {
		nbs := make([]uint64, w+1)
		copy(nbs, bs)
		bs = nbs
		l.delivered[info.idx] = bs
	}
	if bs[w]&bit != 0 {
		return false
	}
	bs[w] |= bit
	l.count++
	l.delays.Record(now - info.at)
	return true
}

// WasDelivered reports whether node already received d.
func (l *Ledger) WasDelivered(node packet.NodeID, d packet.DataID) bool {
	info, ok := l.items[d.Key()]
	if !ok {
		return false
	}
	bs := l.delivered[info.idx]
	w := int(node) >> 6
	return w < len(bs) && bs[w]&(1<<(uint(node)&63)) != 0
}

// Deliveries returns the number of distinct (node, data) deliveries.
func (l *Ledger) Deliveries() int { return l.count }

// GrowItems extends a per-item protocol state slice to cover item index it:
// at least to originated (the ledger's current item count — every valid
// index is below it), doubling so repeated growth over a run's originations
// stays amortized. The one growth policy shared by every protocol keeping
// ledger-indexed state.
func GrowItems[T any](s []T, it, originated int) []T {
	need := it + 1
	if need <= len(s) {
		return s
	}
	if need < originated {
		need = originated
	}
	if d := 2 * len(s); need < d {
		need = d
	}
	ns := make([]T, need)
	copy(ns, s)
	return ns
}

// Delays exposes the delay statistics.
func (l *Ledger) Delays() *metrics.DelayStats { return l.delays }
