// Package dissem holds the scaffolding shared by the dissemination
// protocols (SPIN, SPMS, flooding): the interest predicate that models
// which nodes want which data, and the Ledger that records originations and
// deliveries to compute the paper's end-to-end delay metric ("from the time
// the ADV packet is sent out by the source to the time that the data packet
// is received at the destination").
package dissem

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/packet"
)

// Interest reports whether a node wants a given data item. All-to-all
// communication is Everyone; cluster-based hierarchical communication uses
// a predicate built by the workload package.
type Interest func(node packet.NodeID, d packet.DataID) bool

// Everyone is the all-to-all interest predicate: every node wants every
// data item it did not originate.
func Everyone(node packet.NodeID, d packet.DataID) bool { return node != d.Origin }

// Protocol is the surface the workload drives: injecting newly sensed data
// at its origin node.
type Protocol interface {
	// Originate introduces a new data item at node src, which begins
	// advertising it. src must equal d.Origin.
	Originate(src packet.NodeID, d packet.DataID) error
}

type deliveryKey struct {
	node packet.NodeID
	data packet.DataID
}

// Ledger tracks data lifecycles across the network for one simulation run.
// It is shared by all node instances of a protocol system.
type Ledger struct {
	born      map[packet.DataID]time.Duration
	delivered map[deliveryKey]bool
	delays    *metrics.DelayStats
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		born:      make(map[packet.DataID]time.Duration),
		delivered: make(map[deliveryKey]bool),
		delays:    metrics.NewDelayStats(),
	}
}

// Originate records that d was advertised by its origin at time now.
// Re-originating the same DataID is an error: metadata names must be unique.
func (l *Ledger) Originate(d packet.DataID, now time.Duration) error {
	if _, dup := l.born[d]; dup {
		return fmt.Errorf("dissem: data %v originated twice", d)
	}
	l.born[d] = now
	return nil
}

// BornAt returns when d was originated.
func (l *Ledger) BornAt(d packet.DataID) (time.Duration, bool) {
	at, ok := l.born[d]
	return at, ok
}

// Originated returns how many data items have been introduced.
func (l *Ledger) Originated() int { return len(l.born) }

// RecordDelivery marks d as delivered to node at time now, recording the
// end-to-end delay sample. It reports false (and records nothing) for a
// duplicate delivery or for data that was never originated.
func (l *Ledger) RecordDelivery(node packet.NodeID, d packet.DataID, now time.Duration) bool {
	bornAt, ok := l.born[d]
	if !ok {
		return false
	}
	k := deliveryKey{node: node, data: d}
	if l.delivered[k] {
		return false
	}
	l.delivered[k] = true
	l.delays.Record(now - bornAt)
	return true
}

// WasDelivered reports whether node already received d.
func (l *Ledger) WasDelivered(node packet.NodeID, d packet.DataID) bool {
	return l.delivered[deliveryKey{node: node, data: d}]
}

// Deliveries returns the number of distinct (node, data) deliveries.
func (l *Ledger) Deliveries() int { return len(l.delivered) }

// Delays exposes the delay statistics.
func (l *Ledger) Delays() *metrics.DelayStats { return l.delays }
