// Package mac models the channel-access delay of a slotted CSMA/CA MAC.
//
// Following the paper's §4 model (after Kim & Lee and Khattab et al.), the
// expected contention delay for a transmission whose radio reaches n nodes
// is G·n²: contention grows quadratically with the number of stations
// sharing the channel. The simulation adds the slotted random backoff of
// Table 1 (slot time 0.1 ms, 20 slots) on top of the deterministic term.
//
// The model is deliberately pluggable (the Delayer interface): the paper
// notes that MAC models with higher powers of n, or exponential in n, would
// only favor SPMS further.
package mac

import (
	"fmt"
	"time"
)

// Config parameterizes the CSMA/CA model. The zero value is not valid; use
// DefaultConfig or AnalyticConfig.
type Config struct {
	// G is the proportionality constant of the deterministic G·n²
	// contention term, in milliseconds. The paper's §4 analysis uses 0.01;
	// the simulation (Table 1) models contention through slotted backoff
	// plus carrier-sense channel serialization instead, so the simulation
	// default is 0.
	G float64
	// SlotTime is the backoff slot duration (Table 1: 0.1 ms).
	SlotTime time.Duration
	// NumSlots is the size of the backoff window (Table 1: 20).
	NumSlots int
}

// DefaultConfig returns the Table 1 simulation parameters: slotted backoff
// only; contention emerges from carrier-sense serialization in the network
// layer (see internal/network).
func DefaultConfig() Config {
	return Config{
		G:        0,
		SlotTime: 100 * time.Microsecond,
		NumSlots: 20,
	}
}

// AnalyticConfig returns the §4 model parameters, where the expected access
// delay is the closed-form G·n² with G = 0.01 ms.
func AnalyticConfig() Config {
	return Config{
		G:        0.01,
		SlotTime: 100 * time.Microsecond,
		NumSlots: 20,
	}
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	if c.G < 0 {
		return fmt.Errorf("mac: negative contention constant G=%v", c.G)
	}
	if c.SlotTime < 0 {
		return fmt.Errorf("mac: negative slot time %v", c.SlotTime)
	}
	if c.NumSlots < 0 {
		return fmt.Errorf("mac: negative slot count %d", c.NumSlots)
	}
	return nil
}

// Delayer computes the channel-access delay for one transmission.
// contenders is the number of nodes within the transmitter's current radio
// range (including itself); backoffSlot must be a uniform variate in
// [0, NumSlots) supplied by the caller's RNG (or 0 for analytic use).
type Delayer interface {
	AccessDelay(contenders int, backoffSlot int) time.Duration
}

// CSMA is the paper's quadratic-contention slotted CSMA/CA model.
type CSMA struct {
	cfg Config
}

var _ Delayer = (*CSMA)(nil)

// NewCSMA builds the model, validating the configuration.
func NewCSMA(cfg Config) (*CSMA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CSMA{cfg: cfg}, nil
}

// Config returns the model's configuration.
func (c *CSMA) Config() Config { return c.cfg }

// NumSlots returns the backoff window size, for callers drawing slots.
func (c *CSMA) NumSlots() int { return c.cfg.NumSlots }

// AccessDelay returns G·n² milliseconds plus backoffSlot slots. Negative
// inputs are clamped to zero; a transmitter with no contenders still counts
// itself, so contenders < 1 is treated as 1.
func (c *CSMA) AccessDelay(contenders, backoffSlot int) time.Duration {
	if contenders < 1 {
		contenders = 1
	}
	if backoffSlot < 0 {
		backoffSlot = 0
	}
	n := float64(contenders)
	contention := time.Duration(c.cfg.G * n * n * float64(time.Millisecond))
	return contention + time.Duration(backoffSlot)*c.cfg.SlotTime
}

// ExpectedAccessDelay returns the mean access delay for n contenders:
// the deterministic G·n² term plus the mean backoff (NumSlots-1)/2 slots.
// The analytic model in internal/analysis uses only the G·n² term, matching
// the paper's equations.
func (c *CSMA) ExpectedAccessDelay(contenders int) time.Duration {
	if contenders < 1 {
		contenders = 1
	}
	n := float64(contenders)
	contention := time.Duration(c.cfg.G * n * n * float64(time.Millisecond))
	meanBackoff := time.Duration(0)
	if c.cfg.NumSlots > 1 {
		meanBackoff = time.Duration(c.cfg.NumSlots-1) * c.cfg.SlotTime / 2
	}
	return contention + meanBackoff
}
