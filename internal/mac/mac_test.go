package mac

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.G != 0 {
		t.Fatalf("G=%v, want 0 (simulation contention comes from carrier sense)", cfg.G)
	}
	if cfg.SlotTime != 100*time.Microsecond {
		t.Fatalf("SlotTime=%v, want 0.1ms", cfg.SlotTime)
	}
	if cfg.NumSlots != 20 {
		t.Fatalf("NumSlots=%d, want 20", cfg.NumSlots)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default ok", DefaultConfig(), false},
		{"zero ok (no contention model)", Config{}, false},
		{"negative G", Config{G: -1}, true},
		{"negative slot time", Config{SlotTime: -time.Millisecond}, true},
		{"negative slots", Config{NumSlots: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestNewCSMARejectsInvalid(t *testing.T) {
	if _, err := NewCSMA(Config{G: -1}); err == nil {
		t.Fatal("NewCSMA should reject invalid config")
	}
}

func TestAnalyticConfigMatchesSection4(t *testing.T) {
	cfg := AnalyticConfig()
	if cfg.G != 0.01 {
		t.Fatalf("G=%v, want 0.01 (§4 sample value)", cfg.G)
	}
	if cfg.SlotTime != 100*time.Microsecond || cfg.NumSlots != 20 {
		t.Fatalf("analytic slot params diverged from Table 1: %+v", cfg)
	}
}

func TestAccessDelayQuadratic(t *testing.T) {
	c, err := NewCSMA(AnalyticConfig())
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	// G·n² with G=0.01 ms: n=5 → 0.25 ms; n=45 → 20.25 ms.
	tests := []struct {
		n    int
		want time.Duration
	}{
		{1, 10 * time.Microsecond},
		{5, 250 * time.Microsecond},
		{45, 20250 * time.Microsecond},
	}
	for _, tt := range tests {
		if got := c.AccessDelay(tt.n, 0); got != tt.want {
			t.Fatalf("AccessDelay(%d,0)=%v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestAccessDelayBackoffSlots(t *testing.T) {
	c, err := NewCSMA(AnalyticConfig())
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	base := c.AccessDelay(10, 0)
	if got := c.AccessDelay(10, 3); got != base+300*time.Microsecond {
		t.Fatalf("3-slot backoff = %v, want base+0.3ms", got)
	}
}

func TestAccessDelayClampsPathologicalInputs(t *testing.T) {
	c, err := NewCSMA(AnalyticConfig())
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	if got, want := c.AccessDelay(0, 0), c.AccessDelay(1, 0); got != want {
		t.Fatalf("0 contenders should clamp to 1: %v vs %v", got, want)
	}
	if got, want := c.AccessDelay(-7, -3), c.AccessDelay(1, 0); got != want {
		t.Fatalf("negative inputs should clamp: %v vs %v", got, want)
	}
}

func TestAccessDelayMonotoneInContendersProperty(t *testing.T) {
	c, err := NewCSMA(AnalyticConfig())
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	prop := func(a, b uint8, slot uint8) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		s := int(slot) % c.NumSlots()
		return c.AccessDelay(lo, s) <= c.AccessDelay(hi, s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedAccessDelay(t *testing.T) {
	c, err := NewCSMA(AnalyticConfig())
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	// n=10: 0.01·100 = 1 ms contention + mean backoff 19/2 slots = 0.95 ms.
	want := time.Millisecond + 950*time.Microsecond
	if got := c.ExpectedAccessDelay(10); got != want {
		t.Fatalf("ExpectedAccessDelay(10)=%v, want %v", got, want)
	}
	// Single-slot window has no expected backoff.
	c1, err := NewCSMA(Config{G: 0.01, SlotTime: time.Millisecond, NumSlots: 1})
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	if got := c1.ExpectedAccessDelay(10); got != time.Millisecond {
		t.Fatalf("single-slot expected delay=%v, want 1ms", got)
	}
}

func TestSPMSContentionAdvantage(t *testing.T) {
	// The paper's core delay argument: transmitting at low power reaches
	// fewer contenders (ns=5) than max power (n1=45), so per-hop MAC delay
	// is dramatically lower. Verify the model reproduces the 81× gap.
	c, err := NewCSMA(AnalyticConfig())
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	spin := c.AccessDelay(45, 0)
	spms := c.AccessDelay(5, 0)
	if ratio := float64(spin) / float64(spms); ratio != 81 {
		t.Fatalf("contention ratio (45/5 nodes) = %v, want 81 (=9²)", ratio)
	}
}
