package fault

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// fakeTarget is a minimal Target recording liveness transitions.
type fakeTarget struct {
	alive     []bool
	fails     int
	recovers  int
	downSpans map[packet.NodeID]int
}

func newFakeTarget(n int) *fakeTarget {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	return &fakeTarget{alive: alive, downSpans: make(map[packet.NodeID]int)}
}

func (f *fakeTarget) N() int                      { return len(f.alive) }
func (f *fakeTarget) Alive(id packet.NodeID) bool { return f.alive[id] }
func (f *fakeTarget) Fail(id packet.NodeID) {
	f.alive[id] = false
	f.fails++
	f.downSpans[id]++
}
func (f *fakeTarget) Recover(id packet.NodeID) {
	f.alive[id] = true
	f.recovers++
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MeanInterArrival != 50*time.Millisecond {
		t.Fatalf("MeanInterArrival=%v, want 50ms", cfg.MeanInterArrival)
	}
	if cfg.MTTR() != 10*time.Millisecond {
		t.Fatalf("MTTR=%v, want 10ms", cfg.MTTR())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default", DefaultConfig(), false},
		{"zero inter-arrival", Config{RepairMin: 1, RepairMax: 2}, true},
		{"negative repair min", Config{MeanInterArrival: 1, RepairMin: -1, RepairMax: 2}, true},
		{"max below min", Config{MeanInterArrival: 1, RepairMin: 5, RepairMax: 2}, true},
		{"point repair window", Config{MeanInterArrival: 1, RepairMin: 5, RepairMax: 5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestNewInjectorValidation(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	target := newFakeTarget(5)
	if _, err := NewInjector(Config{}, sched, rng, target); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewInjector(DefaultConfig(), nil, rng, target); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewInjector(DefaultConfig(), sched, nil, target); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewInjector(DefaultConfig(), sched, rng, nil); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestInjectorFailsAndRepairs(t *testing.T) {
	sched := sim.NewScheduler()
	target := newFakeTarget(20)
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(42), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sched.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := in.Stats()
	// Per-node clocks: each of 20 nodes cycles every ≈60 ms (50 ms up +
	// 10 ms down) over 2 s → ≈660 failures; accept a broad band.
	if st.Injected < 400 || st.Injected > 900 {
		t.Fatalf("Injected=%d, want ≈660", st.Injected)
	}
	if target.fails != st.Injected {
		t.Fatalf("target saw %d fails, stats say %d", target.fails, st.Injected)
	}
	// Repairs lag failures by at most one in-flight repair per node.
	if st.Repairs < st.Injected-target.N() {
		t.Fatalf("Repairs=%d lag too far behind Injected=%d", st.Repairs, st.Injected)
	}
	// Mean downtime ≈ MTTR.
	if st.Injected > 0 {
		mttr := st.TotalDowntime / time.Duration(st.Injected)
		if mttr < 7*time.Millisecond || mttr > 13*time.Millisecond {
			t.Fatalf("observed MTTR %v, want ≈10ms", mttr)
		}
	}
}

func TestInjectorRespectsProtection(t *testing.T) {
	sched := sim.NewScheduler()
	target := newFakeTarget(3)
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(7), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	in.Protect(0)
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sched.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if target.downSpans[0] != 0 {
		t.Fatalf("protected node failed %d times", target.downSpans[0])
	}
	if in.Stats().Injected == 0 {
		t.Fatal("no failures injected at all")
	}
}

func TestInjectorNeverFailsDeadNode(t *testing.T) {
	// With a tiny population and long repairs, the injector must skip
	// already-dead nodes rather than double-failing them.
	sched := sim.NewScheduler()
	target := newFakeTarget(2)
	cfg := Config{
		MeanInterArrival: time.Millisecond,
		RepairMin:        500 * time.Millisecond,
		RepairMax:        time.Second,
	}
	in, err := NewInjector(cfg, sched, sim.NewRNG(3), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Intercept transitions: fail must only hit alive nodes. fakeTarget
	// would hide this, so check by construction: every Fail flips true→false.
	// We verify via invariant: fails - recovers ∈ {0,1,2} and never exceeds N.
	if err := sched.Run(200 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	down := target.fails - target.recovers
	if down < 0 || down > 2 {
		t.Fatalf("inconsistent down count %d", down)
	}
}

func TestInjectorUnavailabilityFraction(t *testing.T) {
	// Table 1 numbers give per-node availability λ/(λ+MTTR) = 50/60: the
	// total injected downtime across a long run should be ≈1/6 of
	// node-time.
	sched := sim.NewScheduler()
	target := newFakeTarget(10)
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(21), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	const horizon = 10 * time.Second
	if err := sched.Run(horizon); err != nil {
		t.Fatalf("Run: %v", err)
	}
	nodeTime := horizon * 10
	frac := float64(in.Stats().TotalDowntime) / float64(nodeTime)
	if frac < 0.13 || frac > 0.21 {
		t.Fatalf("downtime fraction %v, want ≈1/6", frac)
	}
}

func TestProtectAfterStartPanics(t *testing.T) {
	sched := sim.NewScheduler()
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(1), newFakeTarget(3))
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Protect after Start should panic")
		}
	}()
	in.Protect(0)
}

func TestInjectorDoubleStartFails(t *testing.T) {
	sched := sim.NewScheduler()
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(1), newFakeTarget(5))
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("first Start: %v", err)
	}
	if err := in.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() Stats {
		sched := sim.NewScheduler()
		target := newFakeTarget(10)
		in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(11), target)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		if err := in.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sched.Run(time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
}

func TestInjectorEmptyTarget(t *testing.T) {
	sched := sim.NewScheduler()
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(1), newFakeTarget(0))
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sched.Run(500 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if in.Stats().Injected != 0 {
		t.Fatal("injected failures into an empty network")
	}
}
