// Package fault injects node failures into a simulation. Three models are
// supported, selected by Config.Model:
//
//   - Transient (the zero value): the paper's §5.1.2 model. Each node runs
//     its own fail → repair → fail clock with exponential inter-arrival
//     times and uniform repair times; recovery is always successful.
//   - Crash: crash-stop. Each node draws one exponential time-to-failure
//     and, once failed, never recovers — the classic fail-stop stressor.
//   - Burst: spatially correlated failures. Burst events arrive as a
//     single Poisson process; each event picks a uniform random epicenter
//     in the field and fails every node within BurstRadius of it at once,
//     each repairing after its own uniform repair time. This is the
//     "region knocked out" scenario the paper's multipath failover is
//     designed to survive.
//
// While failed, a node drops every received message and cancels scheduled
// transmissions (the network layer implements Target).
package fault

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Model selects the failure process. The zero value is Transient, the
// paper's model, so pre-existing configurations are unchanged.
type Model int

// Failure models.
const (
	Transient Model = iota
	Crash
	Burst
)

// String names the model as spec files and flags do.
func (m Model) String() string {
	switch m {
	case Transient:
		return "transient"
	case Crash:
		return "crash"
	case Burst:
		return "burst"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel resolves a failure-model name as used in flags and spec files.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "transient":
		return Transient, nil
	case "crash":
		return Crash, nil
	case "burst":
		return Burst, nil
	default:
		return 0, fmt.Errorf("fault: unknown failure model %q (want transient | crash | burst)", s)
	}
}

// MarshalJSON writes the model name.
func (m Model) MarshalJSON() ([]byte, error) {
	switch m {
	case Transient, Crash, Burst:
		return json.Marshal(m.String())
	default:
		return nil, fmt.Errorf("fault: cannot marshal unknown model %d", int(m))
	}
}

// UnmarshalJSON accepts a model name (case-insensitive) or its numeric
// value.
func (m *Model) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := ParseModel(s)
		if err != nil {
			return err
		}
		*m = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*m = Model(n)
	return nil
}

// Config parameterizes the injector. Table 1: mean failure inter-arrival
// λ = 50 ms, MTTR = 10 ms (we center a uniform window on it).
type Config struct {
	// Model selects the failure process; the zero value is Transient.
	Model Model
	// MeanInterArrival is the mean of the exponential gap between
	// failures: per node from its previous recovery (Transient), per node
	// from simulation start to its one crash (Crash), or between burst
	// events globally (Burst). With Table 1's numbers a Transient node is
	// down MTTR/(MTTR+λ) ≈ 1/6 of the time.
	MeanInterArrival time.Duration
	// RepairMin and RepairMax bound the uniform repair duration
	// (Transient and Burst; Crash never repairs).
	RepairMin time.Duration
	RepairMax time.Duration
	// BurstRadius is the epicenter radius in meters of a Burst event:
	// every alive, unprotected node within it fails at once. Burst only.
	BurstRadius float64
}

// DefaultConfig returns Table 1's failure parameters: transient failures
// with exponential inter-arrival of mean 50 ms and uniform repair on
// (5 ms, 15 ms), giving the stated MTTR of 10 ms.
func DefaultConfig() Config {
	return Config{
		MeanInterArrival: 50 * time.Millisecond,
		RepairMin:        5 * time.Millisecond,
		RepairMax:        15 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Model < Transient || c.Model > Burst {
		return fmt.Errorf("fault: unknown failure model %d", int(c.Model))
	}
	if c.MeanInterArrival <= 0 {
		return fmt.Errorf("fault: non-positive mean inter-arrival %v", c.MeanInterArrival)
	}
	if c.RepairMin < 0 || c.RepairMax < c.RepairMin {
		return fmt.Errorf("fault: invalid repair window [%v, %v]", c.RepairMin, c.RepairMax)
	}
	if c.Model == Burst && c.BurstRadius <= 0 {
		return fmt.Errorf("fault: burst model needs a positive radius, got %v", c.BurstRadius)
	}
	if c.BurstRadius < 0 {
		return fmt.Errorf("fault: negative burst radius %v", c.BurstRadius)
	}
	// A positive BurstRadius under a non-burst model is allowed and
	// ignored, like any other unselected model's parameters — it keeps
	// failureModel × burstRadius campaign cross-sweeps expandable.
	return nil
}

// MTTR returns the mean repair time of the configuration.
func (c Config) MTTR() time.Duration { return (c.RepairMin + c.RepairMax) / 2 }

// Target is the interface the injector drives. The network layer implements
// it: Fail marks a node down (dropping traffic addressed to it), Recover
// brings it back.
type Target interface {
	// N returns the node population size.
	N() int
	// Alive reports whether a node is currently up.
	Alive(id packet.NodeID) bool
	// Fail marks the node down.
	Fail(id packet.NodeID)
	// Recover marks the node up.
	Recover(id packet.NodeID)
}

// Locator supplies node positions and the field rectangle — what the Burst
// model needs to pick epicenters and resolve their radius ball.
// topo.Field implements it.
type Locator interface {
	Pos(id packet.NodeID) geom.Point
	Bounds() geom.Rect
}

// Stats summarizes injector activity.
type Stats struct {
	Injected      int           // failures injected
	Repairs       int           // recoveries completed
	TotalDowntime time.Duration // sum of injected repair durations
	Bursts        int           // burst events fired (Burst model only)
}

// Injector schedules failures onto a simulation according to the
// configured model.
type Injector struct {
	cfg    Config
	sched  *sim.Scheduler
	rng    *sim.RNG
	target Target
	loc    Locator // required by Burst, set via SetLocator
	stats  Stats
	// protected optionally exempts nodes (e.g. a sink) from failures.
	protected map[packet.NodeID]bool
	running   bool

	// OnBurst, if set, observes each burst event: the epicenter and the
	// ids failed by it (ascending). A diagnostics/test hook; production
	// scenarios leave it nil.
	OnBurst func(epicenter geom.Point, failed []packet.NodeID)
}

// NewInjector builds an injector. All dependencies are required; a Burst
// configuration additionally needs SetLocator before Start.
func NewInjector(cfg Config, sched *sim.Scheduler, rng *sim.RNG, target Target) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || rng == nil || target == nil {
		return nil, fmt.Errorf("fault: nil dependency (sched=%v rng=%v target=%v)",
			sched != nil, rng != nil, target != nil)
	}
	return &Injector{
		cfg:       cfg,
		sched:     sched,
		rng:       rng,
		target:    target,
		protected: make(map[packet.NodeID]bool),
	}, nil
}

// SetLocator attaches the position source the Burst model requires. Must
// be called before Start.
func (in *Injector) SetLocator(loc Locator) {
	if in.running {
		panic("fault: SetLocator after Start")
	}
	in.loc = loc
}

// Protect exempts a node from failure injection (the paper never fails the
// original data source before any neighbor has the data; experiments use
// this to keep scenarios meaningful). Must be called before Start.
func (in *Injector) Protect(id packet.NodeID) {
	if in.running {
		panic("fault: Protect after Start")
	}
	in.protected[id] = true
}

// Stats returns a snapshot of injector activity.
func (in *Injector) Stats() Stats { return in.stats }

// Start begins injecting failures until the simulation ends. Calling Start
// twice is an error: doubled clocks would halve the effective inter-arrival
// time.
func (in *Injector) Start() error {
	if in.running {
		return fmt.Errorf("fault: injector already started")
	}
	if in.cfg.Model == Burst && in.loc == nil {
		return fmt.Errorf("fault: burst model needs a locator (SetLocator)")
	}
	in.running = true
	switch in.cfg.Model {
	case Burst:
		in.scheduleBurst()
	default: // Transient and Crash run one clock per node.
		for i := 0; i < in.target.N(); i++ {
			id := packet.NodeID(i)
			if in.protected[id] {
				continue
			}
			in.scheduleNodeFailure(id)
		}
	}
	return nil
}

// scheduleNodeFailure arms node id's next failure after an exponential
// up-time.
func (in *Injector) scheduleNodeFailure(id packet.NodeID) {
	gap := in.rng.ExpDuration(in.cfg.MeanInterArrival)
	in.sched.After(gap, func() { in.failNode(id) })
}

// failNode takes the node down per the model: Transient schedules the
// recovery that re-arms the next failure; Crash fails permanently.
func (in *Injector) failNode(id packet.NodeID) {
	if !in.target.Alive(id) {
		if in.cfg.Model == Crash {
			// Someone else already killed it; crash-stop has nothing to add.
			return
		}
		// Someone else (a test, another injector) already failed it; try
		// again after another up-time.
		in.scheduleNodeFailure(id)
		return
	}
	if in.cfg.Model == Crash {
		in.target.Fail(id)
		in.stats.Injected++
		return
	}
	repair := in.rng.UniformDuration(in.cfg.RepairMin, in.cfg.RepairMax)
	in.target.Fail(id)
	in.stats.Injected++
	in.stats.TotalDowntime += repair
	in.sched.After(repair, func() {
		in.target.Recover(id)
		in.stats.Repairs++
		in.scheduleNodeFailure(id)
	})
}

// scheduleBurst arms the next burst event after an exponential gap on the
// single global burst clock.
func (in *Injector) scheduleBurst() {
	gap := in.rng.ExpDuration(in.cfg.MeanInterArrival)
	in.sched.After(gap, in.fireBurst)
}

// fireBurst picks a uniform random epicenter and fails every alive,
// unprotected node within BurstRadius of it. Each victim repairs after its
// own uniform repair time (drawn in ascending id order, so a seed fully
// determines the event).
func (in *Injector) fireBurst() {
	epi := in.loc.Bounds().UniformPoint(in.rng.Float64)
	r2 := in.cfg.BurstRadius * in.cfg.BurstRadius
	var failed []packet.NodeID
	for i := 0; i < in.target.N(); i++ {
		id := packet.NodeID(i)
		if in.protected[id] || !in.target.Alive(id) {
			continue
		}
		if in.loc.Pos(id).Dist2(epi) > r2 {
			continue
		}
		repair := in.rng.UniformDuration(in.cfg.RepairMin, in.cfg.RepairMax)
		in.target.Fail(id)
		in.stats.Injected++
		in.stats.TotalDowntime += repair
		in.sched.After(repair, func() {
			in.target.Recover(id)
			in.stats.Repairs++
		})
		failed = append(failed, id)
	}
	in.stats.Bursts++
	if in.OnBurst != nil {
		in.OnBurst(epi, failed)
	}
	in.scheduleBurst()
}
