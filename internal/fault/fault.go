// Package fault injects the paper's failure model (§5.1.2): transient node
// failures whose inter-arrival times are exponential and whose repair times
// are uniform on (RepairMin, RepairMax). While failed, a node drops every
// received message and cancels scheduled transmissions; recovery is always
// successful.
package fault

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Config parameterizes the injector. Table 1: mean failure inter-arrival
// λ = 50 ms, MTTR = 10 ms (we center a uniform window on it).
type Config struct {
	// MeanInterArrival is the mean of the exponential gap between one
	// node's failures (measured from its previous recovery). Each node runs
	// its own failure clock, so with Table 1's numbers a node is down
	// MTTR/(MTTR+λ) ≈ 1/6 of the time.
	MeanInterArrival time.Duration
	// RepairMin and RepairMax bound the uniform repair duration.
	RepairMin time.Duration
	RepairMax time.Duration
}

// DefaultConfig returns Table 1's failure parameters: exponential
// inter-arrival with mean 50 ms and uniform repair on (5 ms, 15 ms),
// giving the stated MTTR of 10 ms.
func DefaultConfig() Config {
	return Config{
		MeanInterArrival: 50 * time.Millisecond,
		RepairMin:        5 * time.Millisecond,
		RepairMax:        15 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MeanInterArrival <= 0 {
		return fmt.Errorf("fault: non-positive mean inter-arrival %v", c.MeanInterArrival)
	}
	if c.RepairMin < 0 || c.RepairMax < c.RepairMin {
		return fmt.Errorf("fault: invalid repair window [%v, %v]", c.RepairMin, c.RepairMax)
	}
	return nil
}

// MTTR returns the mean repair time of the configuration.
func (c Config) MTTR() time.Duration { return (c.RepairMin + c.RepairMax) / 2 }

// Target is the interface the injector drives. The network layer implements
// it: Fail marks a node down (dropping traffic addressed to it), Recover
// brings it back.
type Target interface {
	// N returns the node population size.
	N() int
	// Alive reports whether a node is currently up.
	Alive(id packet.NodeID) bool
	// Fail marks the node down.
	Fail(id packet.NodeID)
	// Recover marks the node up.
	Recover(id packet.NodeID)
}

// Stats summarizes injector activity.
type Stats struct {
	Injected      int           // failures injected
	Repairs       int           // recoveries completed
	TotalDowntime time.Duration // sum of injected repair durations
}

// Injector schedules transient failures onto a simulation.
type Injector struct {
	cfg    Config
	sched  *sim.Scheduler
	rng    *sim.RNG
	target Target
	stats  Stats
	// protected optionally exempts nodes (e.g. a sink) from failures.
	protected map[packet.NodeID]bool
	running   bool
}

// NewInjector builds an injector. All dependencies are required.
func NewInjector(cfg Config, sched *sim.Scheduler, rng *sim.RNG, target Target) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || rng == nil || target == nil {
		return nil, fmt.Errorf("fault: nil dependency (sched=%v rng=%v target=%v)",
			sched != nil, rng != nil, target != nil)
	}
	return &Injector{
		cfg:       cfg,
		sched:     sched,
		rng:       rng,
		target:    target,
		protected: make(map[packet.NodeID]bool),
	}, nil
}

// Protect exempts a node from failure injection (the paper never fails the
// original data source before any neighbor has the data; experiments use
// this to keep scenarios meaningful). Must be called before Start.
func (in *Injector) Protect(id packet.NodeID) {
	if in.running {
		panic("fault: Protect after Start")
	}
	in.protected[id] = true
}

// Stats returns a snapshot of injector activity.
func (in *Injector) Stats() Stats { return in.stats }

// Start begins injecting failures until the simulation ends: every
// unprotected node gets its own fail → repair → fail cycle, with
// exponential up-times and uniform repair times. Calling Start twice is an
// error: doubled clocks would halve the effective inter-arrival time.
func (in *Injector) Start() error {
	if in.running {
		return fmt.Errorf("fault: injector already started")
	}
	in.running = true
	for i := 0; i < in.target.N(); i++ {
		id := packet.NodeID(i)
		if in.protected[id] {
			continue
		}
		in.scheduleNodeFailure(id)
	}
	return nil
}

// scheduleNodeFailure arms node id's next failure after an exponential
// up-time.
func (in *Injector) scheduleNodeFailure(id packet.NodeID) {
	gap := in.rng.ExpDuration(in.cfg.MeanInterArrival)
	in.sched.After(gap, func() { in.failNode(id) })
}

// failNode takes the node down and schedules its recovery, which in turn
// arms the next failure.
func (in *Injector) failNode(id packet.NodeID) {
	if !in.target.Alive(id) {
		// Someone else (a test, another injector) already failed it; try
		// again after another up-time.
		in.scheduleNodeFailure(id)
		return
	}
	repair := in.rng.UniformDuration(in.cfg.RepairMin, in.cfg.RepairMax)
	in.target.Fail(id)
	in.stats.Injected++
	in.stats.TotalDowntime += repair
	in.sched.After(repair, func() {
		in.target.Recover(id)
		in.stats.Repairs++
		in.scheduleNodeFailure(id)
	})
}
