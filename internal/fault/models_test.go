// models_test.go covers the failure-model registry: wire-form codecs,
// model-specific config validation, the crash and burst processes, and the
// distribution-level assertions on the transient injector (empirical
// downtime fraction against the MTTR/(MTTR+λ) steady state).
package fault

import (
	"encoding/json"
	"sort"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestModelStringAndParse(t *testing.T) {
	for _, m := range []Model{Transient, Crash, Burst} {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseModel(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseModel("meteor"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if Model(0) != Transient {
		t.Fatal("zero value must be Transient (the paper's model)")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	for _, m := range []Model{Transient, Crash, Burst} {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %v: %v", m, err)
		}
		var back Model
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != m {
			t.Fatalf("round trip %v -> %s -> %v", m, data, back)
		}
	}
	if _, err := json.Marshal(Model(42)); err == nil {
		t.Fatal("unknown model marshaled")
	}
	var m Model
	if err := json.Unmarshal([]byte(`"CRASH"`), &m); err != nil || m != Crash {
		t.Fatalf("case-insensitive name: m=%v err=%v", m, err)
	}
	if err := json.Unmarshal([]byte(`2`), &m); err != nil || m != Burst {
		t.Fatalf("numeric form: m=%v err=%v", m, err)
	}
}

func TestModelConfigValidate(t *testing.T) {
	base := DefaultConfig()
	crash := base
	crash.Model = Crash
	burst := base
	burst.Model = Burst
	burst.BurstRadius = 20
	burstNoRadius := base
	burstNoRadius.Model = Burst
	strayRadius := base
	strayRadius.BurstRadius = 10
	negRadius := base
	negRadius.BurstRadius = -1
	unknown := base
	unknown.Model = Model(9)

	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"crash with table-1 timing", crash, false},
		{"burst with radius", burst, false},
		{"burst without radius", burstNoRadius, true},
		// Ignored, like any unselected model's parameters: this is what
		// keeps failureModel × burstRadius cross-sweeps expandable.
		{"radius on non-burst model", strayRadius, false},
		{"negative radius", negRadius, true},
		{"unknown model", unknown, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

// timedTarget records exact down intervals against the scheduler clock so
// tests can measure the empirical downtime fraction, not just the
// injector's own bookkeeping.
type timedTarget struct {
	sched    *sim.Scheduler
	alive    []bool
	downAt   []time.Duration
	downTime []time.Duration
	fails    int
	recovers int
}

func newTimedTarget(n int, sched *sim.Scheduler) *timedTarget {
	tt := &timedTarget{
		sched:    sched,
		alive:    make([]bool, n),
		downAt:   make([]time.Duration, n),
		downTime: make([]time.Duration, n),
	}
	for i := range tt.alive {
		tt.alive[i] = true
	}
	return tt
}

func (t *timedTarget) N() int                      { return len(t.alive) }
func (t *timedTarget) Alive(id packet.NodeID) bool { return t.alive[id] }
func (t *timedTarget) Fail(id packet.NodeID) {
	t.alive[id] = false
	t.downAt[id] = t.sched.Now()
	t.fails++
}
func (t *timedTarget) Recover(id packet.NodeID) {
	t.alive[id] = true
	t.downTime[id] += t.sched.Now() - t.downAt[id]
	t.recovers++
}

// observedDownFraction sums measured downtime (closing any still-open
// interval at the horizon) over total node-time.
func (t *timedTarget) observedDownFraction(horizon time.Duration) float64 {
	total := time.Duration(0)
	for i := range t.alive {
		total += t.downTime[i]
		if !t.alive[i] {
			total += horizon - t.downAt[i]
		}
	}
	return float64(total) / float64(horizon*time.Duration(len(t.alive)))
}

// TestTransientDowntimeFraction is the distribution-level check on the
// paper's model: over a long run the measured per-node unavailability must
// approach MTTR/(MTTR+λ) — with Table 1's numbers 10/(10+50) = 1/6 — as
// the alternating-renewal steady state demands.
func TestTransientDowntimeFraction(t *testing.T) {
	sched := sim.NewScheduler()
	target := newTimedTarget(20, sched)
	in, err := NewInjector(DefaultConfig(), sched, sim.NewRNG(33), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	const horizon = 30 * time.Second
	if err := sched.Run(horizon); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := float64(10) / 60 // MTTR/(MTTR+λ)
	got := target.observedDownFraction(horizon)
	// 20 nodes × 30 s ≈ 10k cycles: the sample fraction should sit within
	// a few percent (relative) of the steady state.
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("observed downtime fraction %v, want %v ±10%%", got, want)
	}
}

// TestCrashNodesNeverRecover locks the crash-stop contract: every node
// fails exactly once, no recovery is ever scheduled, and by a horizon much
// longer than the mean time-to-failure the whole population is down.
func TestCrashNodesNeverRecover(t *testing.T) {
	sched := sim.NewScheduler()
	target := newTimedTarget(30, sched)
	cfg := DefaultConfig()
	cfg.Model = Crash
	in, err := NewInjector(cfg, sched, sim.NewRNG(44), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// 5 s >> the 50 ms mean time-to-failure: P(any survivor) ≈ 30·e^-100.
	if err := sched.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if target.recovers != 0 || in.Stats().Repairs != 0 {
		t.Fatalf("crash model recovered nodes: target %d, stats %d", target.recovers, in.Stats().Repairs)
	}
	for i, alive := range target.alive {
		if alive {
			t.Fatalf("node %d still alive after 100 mean lifetimes", i)
		}
	}
	if target.fails != 30 || in.Stats().Injected != 30 {
		t.Fatalf("fails=%d injected=%d, want exactly one crash per node (30)", target.fails, in.Stats().Injected)
	}
}

// lineLocator positions node i at (i·spacing, 0) on an unbounded-width
// field — burst ball membership is then trivially computable.
type lineLocator struct {
	n       int
	spacing float64
}

func (l lineLocator) Pos(id packet.NodeID) geom.Point {
	return geom.Point{X: float64(id) * l.spacing, Y: 0}
}
func (l lineLocator) Bounds() geom.Rect {
	return geom.Rect{Max: geom.Point{X: float64(l.n-1) * l.spacing, Y: 0}}
}

// TestBurstFailsExactlyTheBall fires real burst events and asserts, via
// the OnBurst hook, that each event fails exactly the set of alive,
// unprotected nodes within BurstRadius of the epicenter — no more, no
// less — and that every victim later recovers.
func TestBurstFailsExactlyTheBall(t *testing.T) {
	const n = 101
	loc := lineLocator{n: n, spacing: 1}
	sched := sim.NewScheduler()
	target := newTimedTarget(n, sched)
	cfg := DefaultConfig()
	cfg.Model = Burst
	cfg.BurstRadius = 7.5
	in, err := NewInjector(cfg, sched, sim.NewRNG(55), target)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	in.Protect(50)
	in.SetLocator(loc)
	events := 0
	in.OnBurst = func(epi geom.Point, failed []packet.NodeID) {
		events++
		want := map[packet.NodeID]bool{}
		for i := 0; i < n; i++ {
			id := packet.NodeID(i)
			if id == 50 || !target.alive[id] && !contains(failed, id) {
				// Protected nodes never fail; nodes already down from a
				// previous burst cannot fail again.
				continue
			}
			if loc.Pos(id).Dist2(epi) <= cfg.BurstRadius*cfg.BurstRadius {
				want[id] = true
			}
		}
		got := map[packet.NodeID]bool{}
		for _, id := range failed {
			got[id] = true
		}
		wantIDs := make([]packet.NodeID, 0, len(want))
		for id := range want {
			wantIDs = append(wantIDs, id)
		}
		sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
		for _, id := range wantIDs {
			if !got[id] {
				t.Fatalf("burst at %v missed node %d (dist %v <= r %v)", epi, id, loc.Pos(id).Dist(epi), cfg.BurstRadius)
			}
		}
		for _, id := range failed {
			if id == 50 {
				t.Fatalf("burst failed the protected node")
			}
			if loc.Pos(id).Dist2(epi) > cfg.BurstRadius*cfg.BurstRadius {
				t.Fatalf("burst at %v failed node %d outside the ball (dist %v > r %v)", epi, id, loc.Pos(id).Dist(epi), cfg.BurstRadius)
			}
		}
	}
	if err := in.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sched.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if events == 0 || in.Stats().Bursts != events {
		t.Fatalf("observed %d events, stats say %d", events, in.Stats().Bursts)
	}
	if in.Stats().Injected == 0 {
		t.Fatal("no burst ever failed a node")
	}
	// All repairs are shorter than the trailing inter-burst gap on
	// average; at the horizon the ledger must balance.
	if in.Stats().Repairs < in.Stats().Injected-n {
		t.Fatalf("repairs %d lag injected %d by more than one in-flight burst", in.Stats().Repairs, in.Stats().Injected)
	}
}

func contains(ids []packet.NodeID, id packet.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// TestBurstNeedsLocator: Start must refuse a burst injector that has no
// position source instead of panicking mid-simulation.
func TestBurstNeedsLocator(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = Burst
	cfg.BurstRadius = 10
	in, err := NewInjector(cfg, sim.NewScheduler(), sim.NewRNG(1), newTimedTarget(5, sim.NewScheduler()))
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Start(); err == nil {
		t.Fatal("burst Start without locator accepted")
	}
}

// TestBurstDeterminism: same seed, same burst history.
func TestBurstDeterminism(t *testing.T) {
	run := func() Stats {
		sched := sim.NewScheduler()
		target := newTimedTarget(50, sched)
		cfg := DefaultConfig()
		cfg.Model = Burst
		cfg.BurstRadius = 10
		in, err := NewInjector(cfg, sched, sim.NewRNG(77), target)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		in.SetLocator(lineLocator{n: 50, spacing: 2})
		if err := in.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sched.Run(2 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return in.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
}
