package packet

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{ADV, "ADV"},
		{REQ, "REQ"},
		{DATA, "DATA"},
		{CTRL, "CTRL"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("Kind(%d).String()=%q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestDefaultSizesMatchTable1(t *testing.T) {
	s := DefaultSizes()
	if s.ADV != 2 || s.REQ != 2 {
		t.Fatalf("ADV/REQ sizes = %d/%d, want 2/2 (Table 1)", s.ADV, s.REQ)
	}
	if s.DATA != 40 {
		t.Fatalf("DATA size = %d, want 40 (DATA:REQ = 20, Table 1)", s.DATA)
	}
	if s.DATA != 20*s.REQ {
		t.Fatalf("DATA:REQ ratio = %d, want 20", s.DATA/s.REQ)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("default sizes invalid: %v", err)
	}
}

func TestSizesOf(t *testing.T) {
	s := DefaultSizes()
	tests := []struct {
		k    Kind
		want int
	}{
		{ADV, 2},
		{REQ, 2},
		{DATA, 40},
		{CTRL, 2},
	}
	for _, tt := range tests {
		if got := s.Of(tt.k); got != tt.want {
			t.Fatalf("Of(%v)=%d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestSizesOfUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Of(unknown kind) should panic")
		}
	}()
	DefaultSizes().Of(Kind(42))
}

func TestSizesValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       Sizes
		wantErr bool
	}{
		{"default", DefaultSizes(), false},
		{"zero ADV", Sizes{ADV: 0, REQ: 2, DATA: 40}, true},
		{"negative DATA", Sizes{ADV: 2, REQ: 2, DATA: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestDataIDString(t *testing.T) {
	d := DataID{Origin: 7, Seq: 3}
	if got := d.String(); got != "d7.3" {
		t.Fatalf("String()=%q, want d7.3", got)
	}
}

func TestDataIDComparable(t *testing.T) {
	a := DataID{Origin: 1, Seq: 2}
	b := DataID{Origin: 1, Seq: 2}
	c := DataID{Origin: 1, Seq: 3}
	if a != b {
		t.Fatal("identical DataIDs must compare equal")
	}
	if a == c {
		t.Fatal("distinct DataIDs must compare unequal")
	}
	m := map[DataID]bool{a: true}
	if !m[b] {
		t.Fatal("DataID must be usable as a map key")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{
		Kind: REQ, Meta: DataID{Origin: 2, Seq: 1},
		Src: 3, Dst: 4, Requester: 3, Provider: 2, Level: 5, Bytes: 2,
	}
	s := p.String()
	for _, frag := range []string{"REQ", "d2.1", "3->4", "req=3", "prov=2"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Packet.String()=%q missing %q", s, frag)
		}
	}
}

func TestReservedIDs(t *testing.T) {
	if Broadcast != -1 || None != -2 {
		t.Fatal("reserved IDs changed; protocol code relies on these sentinels")
	}
	if Broadcast == None {
		t.Fatal("Broadcast and None must be distinct")
	}
}
