// Package packet defines the on-air messages of the dissemination
// protocols: the SPIN/SPMS three-way handshake packets (ADV, REQ, DATA) and
// the metadata naming scheme. Sizes default to Table 1 of the paper:
// ADV and REQ are 2 bytes; DATA is 20× a REQ, i.e. 40 bytes.
package packet

import (
	"fmt"

	"repro/internal/radio"
)

// NodeID identifies a sensor node. IDs are dense indices assigned by the
// field builder, starting at 0.
type NodeID int

// Broadcast is the destination address for zone-wide broadcasts.
const Broadcast NodeID = -1

// None marks an unset node reference (e.g. no SCONE yet).
const None NodeID = -2

// Kind enumerates the handshake packet types.
type Kind int

// Packet kinds. ADV advertises metadata, REQ requests the named data, DATA
// carries it. CTRL covers routing-protocol traffic (Bellman-Ford updates),
// which shares the radio but not the handshake state machines. QRY is the
// inter-zone query of the paper's §6 extension (zone-routing bordercast).
const (
	ADV Kind = iota + 1
	REQ
	DATA
	CTRL
	QRY
)

// NumKinds is one past the largest Kind value, sized for direct array
// indexing by kind (index 0 is unused since kinds start at 1).
const NumKinds = int(QRY) + 1

// String returns the conventional protocol name of the kind.
func (k Kind) String() string {
	switch k {
	case ADV:
		return "ADV"
	case REQ:
		return "REQ"
	case DATA:
		return "DATA"
	case CTRL:
		return "CTRL"
	case QRY:
		return "QRY"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sizes holds the byte sizes of the handshake packets.
type Sizes struct {
	ADV  int
	REQ  int
	DATA int
}

// DefaultSizes returns Table 1's packet sizes: 2-byte ADV/REQ and a DATA
// packet 20× the REQ size.
func DefaultSizes() Sizes {
	return Sizes{ADV: 2, REQ: 2, DATA: 40}
}

// Of returns the size in bytes for a packet kind. CTRL and QRY packets use
// the REQ size: distance-vector entries and query headers are comparably
// small (a QRY additionally carries its trail; callers size that
// explicitly).
func (s Sizes) Of(k Kind) int {
	switch k {
	case ADV:
		return s.ADV
	case REQ:
		return s.REQ
	case DATA:
		return s.DATA
	case CTRL, QRY:
		return s.REQ
	default:
		panic(fmt.Sprintf("packet: size of unknown kind %v", k))
	}
}

// Validate checks the sizes are usable.
func (s Sizes) Validate() error {
	if s.ADV <= 0 || s.REQ <= 0 || s.DATA <= 0 {
		return fmt.Errorf("packet: sizes must be positive: %+v", s)
	}
	return nil
}

// DataID names a data item: the node that sensed it plus a per-origin
// sequence number. This is the paper's "meta-data" — a descriptor that
// uniquely identifies the data so nodes can negotiate without transferring
// the payload.
type DataID struct {
	Origin NodeID
	Seq    int
}

// String formats the metadata descriptor.
func (d DataID) String() string { return fmt.Sprintf("d%d.%d", d.Origin, d.Seq) }

// Key packs the DataID into a single word for use as a map key. Go's map
// implementation has a fast path for 8-byte keys that the 16-byte struct
// key misses, and the protocols key their per-item state maps on every
// packet — worth a dedicated representation. Origin is a dense field index
// and Seq a per-origin counter, both non-negative and far below 2³², so
// the packing is collision-free.
func (d DataID) Key() uint64 { return uint64(uint32(d.Origin))<<32 | uint64(uint32(d.Seq)) }

// Packet is one on-air frame. Src and Dst are the immediate-hop addresses
// (Dst may be Broadcast). Requester and Provider carry the end-to-end
// addressing for multi-hop REQ/DATA relaying in SPMS:
//
//   - For a REQ, Requester is the node that wants the data and Provider is
//     the node the request is ultimately addressed to (PRONE or source).
//   - For a DATA, Provider is the node that served the request and Requester
//     the node the data is being delivered to.
type Packet struct {
	Kind      Kind
	Meta      DataID
	Src       NodeID // transmitting node of this hop
	Dst       NodeID // immediate destination (or Broadcast)
	Requester NodeID // end-to-end requesting node (REQ/DATA)
	Provider  NodeID // end-to-end providing node (REQ/DATA)
	Level     radio.Level
	Bytes     int

	// Trail is the forwarding path accumulated by an inter-zone QRY (§6
	// extension) and consumed, in reverse, by its source-routed DATA reply.
	// Forwarders must copy-on-extend: the slice is shared across hops.
	Trail []NodeID
	// QuerySeq distinguishes retries of the same inter-zone query so
	// forwarders' duplicate suppression does not swallow a re-query.
	QuerySeq int
}

// String formats the packet for traces and test failures.
func (p Packet) String() string {
	return fmt.Sprintf("%s(%s) %d->%d [req=%d prov=%d lvl=%d %dB]",
		p.Kind, p.Meta, p.Src, p.Dst, p.Requester, p.Provider, p.Level, p.Bytes)
}
