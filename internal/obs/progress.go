// progress.go is the live campaign telemetry: a concurrency-safe progress
// tracker fed by the sweep pool's start/done hooks, a stderr heartbeat for
// long-running campaigns, and a JSON snapshot the debug server serves.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// CampaignProgress tracks a campaign run's point-level progress. All
// methods are safe for concurrent use (sweep workers report starts and
// completions from their own goroutines) and safe on a nil receiver, so
// the campaign runner wires the hooks unconditionally.
type CampaignProgress struct {
	name  string
	total int

	mu        sync.Mutex
	started   time.Time
	done      int
	trials    int // finished trials (replicates), for replicated campaigns
	resumed   int // points replayed from a checkpoint journal, not executed
	cacheHits int // points satisfied from the result cache, not executed
	retries   int // trial re-executions under the retry policy
	inFlight  map[int]struct{}
}

// NewCampaignProgress returns a tracker for a campaign of total points.
// The wall clock starts immediately.
func NewCampaignProgress(name string, total int) *CampaignProgress {
	return &CampaignProgress{
		name:     name,
		total:    total,
		started:  time.Now(),
		inFlight: make(map[int]struct{}),
	}
}

// PointStarted records that some trial of point i was claimed by a
// worker. Idempotent: replicated campaigns report one start per trial.
func (p *CampaignProgress) PointStarted(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.trials++
	p.inFlight[i] = struct{}{}
	p.mu.Unlock()
}

// PointDone records that point i (all of its trials) completed.
func (p *CampaignProgress) PointDone(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	delete(p.inFlight, i)
	p.mu.Unlock()
}

// PointResumed records that point i was replayed from a checkpoint journal
// rather than executed. Resumed points count as done but are excluded from
// the throughput estimate — they complete instantly.
func (p *CampaignProgress) PointResumed(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.resumed++
	p.mu.Unlock()
}

// PointCached records that point i was satisfied from the result cache
// rather than executed. Like resumed points, cached points count as done
// but not toward throughput.
func (p *CampaignProgress) PointCached(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.cacheHits++
	p.mu.Unlock()
}

// TrialRetried records one trial re-execution under the retry policy.
func (p *CampaignProgress) TrialRetried() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.retries++
	p.mu.Unlock()
}

// ProgressSnapshot is one self-contained view of a campaign's progress,
// JSON-ready for the debug endpoint and expvar.
type ProgressSnapshot struct {
	Name    string  `json:"name"`
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Percent float64 `json:"percent"`
	// Running lists the point indices currently claimed by workers, in
	// ascending order — the live "shard" of the grid being computed.
	Running []int `json:"running,omitempty"`
	// TrialsStarted counts claimed work units; for replicated campaigns it
	// exceeds Done·replications while trials are in flight.
	TrialsStarted int `json:"trialsStarted"`
	// Resumed counts points replayed from a checkpoint journal; CacheHits
	// counts points served by the result cache. Both are included in Done
	// but excluded from the throughput estimate.
	Resumed   int `json:"resumed,omitempty"`
	CacheHits int `json:"cacheHits,omitempty"`
	// Retries counts trial re-executions under the retry policy.
	Retries      int     `json:"retries,omitempty"`
	ElapsedSec   float64 `json:"elapsedSec"`
	PointsPerSec float64 `json:"pointsPerSec,omitempty"`
	// ETASec extrapolates from the mean wall clock of completed points;
	// absent until the first point completes.
	ETASec float64 `json:"etaSec,omitempty"`
}

// Snapshot returns the current progress view.
func (p *CampaignProgress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Name:          p.name,
		Done:          p.done,
		Total:         p.total,
		TrialsStarted: p.trials,
		Resumed:       p.resumed,
		CacheHits:     p.cacheHits,
		Retries:       p.retries,
		ElapsedSec:    time.Since(p.started).Seconds(),
	}
	if p.total > 0 {
		s.Percent = 100 * float64(p.done) / float64(p.total)
	}
	if len(p.inFlight) > 0 {
		s.Running = make([]int, 0, len(p.inFlight))
		for i := range p.inFlight {
			s.Running = append(s.Running, i)
		}
		sort.Ints(s.Running)
	}
	// Points replayed from a journal or cache complete instantly; counting
	// them would inflate the rate and collapse the ETA, so the estimate
	// covers executed points only.
	executed := p.done - p.resumed - p.cacheHits
	if executed > 0 && s.ElapsedSec > 0 {
		s.PointsPerSec = float64(executed) / s.ElapsedSec
		s.ETASec = float64(p.total-p.done) / s.PointsPerSec
	}
	return s
}

// String renders the snapshot as one heartbeat line:
//
//	progress: stress-quick 12/16 points (75.0%) 1.79 pt/s elapsed 6.7s eta 2.2s running [12 13]
func (s ProgressSnapshot) String() string {
	line := fmt.Sprintf("progress: %s %d/%d points (%.1f%%)", s.Name, s.Done, s.Total, s.Percent)
	if s.Resumed > 0 {
		line += fmt.Sprintf(" resumed %d", s.Resumed)
	}
	if s.CacheHits > 0 {
		line += fmt.Sprintf(" cached %d", s.CacheHits)
	}
	if s.Retries > 0 {
		line += fmt.Sprintf(" retries %d", s.Retries)
	}
	if s.PointsPerSec > 0 {
		line += fmt.Sprintf(" %.2f pt/s", s.PointsPerSec)
	}
	line += fmt.Sprintf(" elapsed %s", time.Duration(s.ElapsedSec*float64(time.Second)).Round(100*time.Millisecond))
	if s.ETASec > 0 {
		line += fmt.Sprintf(" eta %s", time.Duration(s.ETASec*float64(time.Second)).Round(100*time.Millisecond))
	}
	if len(s.Running) > 0 {
		line += fmt.Sprintf(" running %v", s.Running)
	}
	return line
}

// MarshalJSON serializes the live snapshot, so a *CampaignProgress can be
// published directly as an expvar.
//
//repolint:allow hooknil encoding/json renders a nil *CampaignProgress as null without ever calling MarshalJSON
func (p *CampaignProgress) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.Snapshot())
}

// Heartbeat starts a goroutine printing one snapshot line to w every
// interval until the returned stop function is called. Stop prints a
// final line (so short campaigns still report once) and waits for the
// goroutine to exit.
func (p *CampaignProgress) Heartbeat(w io.Writer, every time.Duration) (stop func()) {
	if p == nil {
		return func() {}
	}
	if every <= 0 {
		every = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				fmt.Fprintln(w, p.Snapshot().String())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
			fmt.Fprintln(w, p.Snapshot().String())
		})
	}
}
