package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCampaignProgressSnapshot(t *testing.T) {
	p := NewCampaignProgress("grid", 10)
	for _, i := range []int{0, 1, 2, 3} {
		p.PointStarted(i)
	}
	p.PointDone(1)
	p.PointDone(3)

	s := p.Snapshot()
	if s.Name != "grid" || s.Done != 2 || s.Total != 10 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Percent != 20 {
		t.Fatalf("percent = %v, want 20", s.Percent)
	}
	if want := []int{0, 2}; fmt.Sprint(s.Running) != fmt.Sprint(want) {
		t.Fatalf("running = %v, want %v (sorted in-flight points)", s.Running, want)
	}
	if s.TrialsStarted != 4 {
		t.Fatalf("trialsStarted = %d, want 4", s.TrialsStarted)
	}
	if s.PointsPerSec <= 0 || s.ETASec <= 0 {
		t.Fatalf("rate/ETA absent after completions: %+v", s)
	}
	// ETA extrapolates linearly: remaining/rate.
	if got, want := s.ETASec*s.PointsPerSec, float64(s.Total-s.Done); got < want*0.99 || got > want*1.01 {
		t.Fatalf("ETA·rate = %v, want remaining points %v", got, want)
	}

	line := s.String()
	for _, frag := range []string{"progress: grid 2/10 points (20.0%)", "running [0 2]", "eta"} {
		if !strings.Contains(line, frag) {
			t.Fatalf("heartbeat line %q missing %q", line, frag)
		}
	}
}

// TestCampaignProgressDurability covers the crash-safety counters:
// resumed and cached points count as done but not toward throughput,
// retries surface in the snapshot and heartbeat, and everything is
// nil-receiver safe.
func TestCampaignProgressDurability(t *testing.T) {
	p := NewCampaignProgress("res", 10)
	p.PointResumed(0)
	p.PointResumed(1)
	p.PointCached(2)
	p.TrialRetried()
	p.TrialRetried()
	p.TrialRetried()
	p.PointStarted(3)
	p.PointDone(3)

	s := p.Snapshot()
	if s.Done != 4 || s.Resumed != 2 || s.CacheHits != 1 || s.Retries != 3 {
		t.Fatalf("snapshot: %+v", s)
	}
	// Only the one executed point feeds the rate; a rate computed over all
	// four would quadruple it.
	if s.PointsPerSec <= 0 {
		t.Fatalf("rate absent after an executed point: %+v", s)
	}
	if got, want := s.ETASec*s.PointsPerSec, float64(s.Total-s.Done); got < want*0.99 || got > want*1.01 {
		t.Fatalf("ETA·rate = %v, want remaining points %v (rate must exclude replayed points)", got, want)
	}

	line := s.String()
	for _, frag := range []string{"res 4/10 points", "resumed 2", "cached 1", "retries 3"} {
		if !strings.Contains(line, frag) {
			t.Fatalf("heartbeat line %q missing %q", line, frag)
		}
	}

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, frag := range []string{`"resumed":2`, `"cacheHits":1`, `"retries":3`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("snapshot JSON %s missing %s", data, frag)
		}
	}
	// Counters at zero stay off the wire and out of the heartbeat.
	clean := NewCampaignProgress("clean", 1)
	if data, _ := json.Marshal(clean); strings.Contains(string(data), "resumed") ||
		strings.Contains(string(data), "cacheHits") || strings.Contains(string(data), "retries") {
		t.Fatalf("zero counters leaked into JSON: %s", data)
	}

	var nilP *CampaignProgress
	nilP.PointResumed(0)
	nilP.PointCached(0)
	nilP.TrialRetried()
}

func TestCampaignProgressConcurrent(t *testing.T) {
	p := NewCampaignProgress("par", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 8; i < (w+1)*8; i++ {
				p.PointStarted(i)
				p.PointDone(i)
			}
		}(w)
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Done != 64 || len(s.Running) != 0 {
		t.Fatalf("after concurrent run: %+v", s)
	}
}

func TestHeartbeatFinalLine(t *testing.T) {
	p := NewCampaignProgress("hb", 2)
	var buf bytes.Buffer
	stop := p.Heartbeat(&buf, time.Hour) // ticker never fires; only the stop line
	p.PointDone(0)
	p.PointDone(1)
	stop()
	stop() // idempotent
	if got := buf.String(); !strings.Contains(got, "hb 2/2 points (100.0%)") {
		t.Fatalf("final heartbeat line: %q", got)
	}
}

func TestDebugServer(t *testing.T) {
	p := NewCampaignProgress("dbg", 4)
	p.PointStarted(2)
	p.PointDone(2)
	srv, err := StartDebugServer("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap ProgressSnapshot
	if err := json.Unmarshal(get("/debug/progress"), &snap); err != nil {
		t.Fatalf("/debug/progress not JSON: %v", err)
	}
	if snap.Name != "dbg" || snap.Done != 1 || snap.Total != 4 {
		t.Fatalf("/debug/progress: %+v", snap)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}
	campaignVar, ok := vars["campaign"]
	if !ok {
		t.Fatal("/debug/vars missing campaign progress")
	}
	var viaExpvar ProgressSnapshot
	if err := json.Unmarshal(campaignVar, &viaExpvar); err != nil {
		t.Fatalf("campaign expvar not a snapshot: %v", err)
	}
	if viaExpvar.Name != "dbg" {
		t.Fatalf("campaign expvar: %+v", viaExpvar)
	}

	if body := get("/debug/pprof/goroutine?debug=1"); !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("/debug/pprof/goroutine: %q", body[:min(len(body), 80)])
	}
}

// TestDebugServerRestart covers the expvar publish-once trap: a second
// server (a new campaign in the same process) must not panic and must
// serve the new tracker.
func TestDebugServerRestart(t *testing.T) {
	first, err := StartDebugServer("127.0.0.1:0", NewCampaignProgress("one", 1))
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	second, err := StartDebugServer("127.0.0.1:0", NewCampaignProgress("two", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	resp, err := http.Get("http://" + second.Addr() + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Name != "two" {
		t.Fatalf("restarted server serves %q, want \"two\"", snap.Name)
	}
}
