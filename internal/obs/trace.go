// trace.go is the structured trace exporter: the run-wide generalization
// of network.TraceEvent. The network layer's trace hook fires inside the
// single-threaded event loop, in dispatch order, so streaming each event
// as one JSONL line yields a byte-deterministic trace — identical across
// runs of the same scenario and at every -sim-workers count, since worker
// parallelism never touches the event loop (DESIGN.md §10, §11).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/packet"
)

// EventKind classifies trace events, mirroring network.TraceKind without
// importing the network package (obs sits below it).
type EventKind uint8

// Trace event kinds.
const (
	EventTx      EventKind = iota + 1 // a node started a transmission
	EventDeliver                      // a frame reached a live receiver
	EventDrop                         // a frame was lost (Reason says why)
)

// String names the kind as it appears on the wire.
func (k EventKind) String() string {
	switch k {
	case EventTx:
		return "tx"
	case EventDeliver:
		return "deliver"
	case EventDrop:
		return "drop"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observable network action with its simulation timestamp:
// what happened (Kind), when (T, virtual time), where (Node — the sender
// for EventTx, the delivering/dropping node otherwise), and the packet
// identity (kind, metadata key, hop and end-to-end addressing).
type Event struct {
	T          time.Duration
	Kind       EventKind
	Node       packet.NodeID
	PacketKind packet.Kind
	Meta       packet.DataID
	Src        packet.NodeID
	Dst        packet.NodeID
	Requester  packet.NodeID
	Provider   packet.NodeID
	Level      int
	Bytes      int
	Reason     string // drop reason, empty otherwise
}

// TraceSink streams events as JSONL. A nil *TraceSink is disabled: Emit,
// Flush, and Events all no-op, allocation-free, which is what keeps the
// network hot path untouched when tracing is off. Writes are buffered;
// call Flush (or check Err) when the run completes.
//
// One line per event, fixed field order, hand-rolled encoding — the bytes
// are a pure function of the event sequence:
//
//	{"t":2690000,"kind":"deliver","node":3,"pkt":"ADV","meta":"d1.0","src":1,"dst":-1,"req":-2,"prov":-2,"level":5,"bytes":2}
//
// with a trailing ,"reason":"..." on drops.
type TraceSink struct {
	w    *bufio.Writer
	n    uint64
	line []byte
	err  error
}

// NewTraceSink returns an enabled sink writing to w.
func NewTraceSink(w io.Writer) *TraceSink {
	return &TraceSink{w: bufio.NewWriter(w)}
}

// Emit writes one event line. Emission errors are sticky: the first one
// is retained for Flush/Err and later Emits become no-ops, so a mid-run
// disk failure cannot corrupt the stream silently.
func (s *TraceSink) Emit(ev Event) {
	if s == nil || s.err != nil {
		return
	}
	b := s.line[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(ev.Node), 10)
	b = append(b, `,"pkt":"`...)
	b = append(b, ev.PacketKind.String()...)
	b = append(b, `","meta":"d`...)
	b = strconv.AppendInt(b, int64(ev.Meta.Origin), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(ev.Meta.Seq), 10)
	b = append(b, `","src":`...)
	b = strconv.AppendInt(b, int64(ev.Src), 10)
	b = append(b, `,"dst":`...)
	b = strconv.AppendInt(b, int64(ev.Dst), 10)
	b = append(b, `,"req":`...)
	b = strconv.AppendInt(b, int64(ev.Requester), 10)
	b = append(b, `,"prov":`...)
	b = strconv.AppendInt(b, int64(ev.Provider), 10)
	b = append(b, `,"level":`...)
	b = strconv.AppendInt(b, int64(ev.Level), 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, int64(ev.Bytes), 10)
	if ev.Reason != "" {
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, ev.Reason)
	}
	b = append(b, '}', '\n')
	s.line = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Events returns the number of events written so far.
func (s *TraceSink) Events() uint64 {
	if s == nil {
		return 0
	}
	return s.n
}

// Err returns the first write error, if any.
func (s *TraceSink) Err() error {
	if s == nil {
		return nil
	}
	return s.err
}

// Flush drains the buffer and returns the sink's first error.
func (s *TraceSink) Flush() error {
	if s == nil {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// appendJSONString appends v as a JSON string. Drop reasons are plain
// ASCII today; the escape loop keeps the output valid JSON even if one
// ever is not.
func appendJSONString(b []byte, v string) []byte {
	b = append(b, '"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
