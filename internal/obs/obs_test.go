package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
)

// --- Timeline ---

func sampleAt(tick int, interval time.Duration) TimelineSample {
	return TimelineSample{
		T:           time.Duration(tick) * interval,
		Sent:        uint64(tick * 10),
		Delivered:   uint64(tick * 3),
		TotalEnergy: float64(tick) * 1.5,
	}
}

func TestTimelineRejectsBadInterval(t *testing.T) {
	if _, err := NewTimeline(0, 8); err == nil {
		t.Fatal("NewTimeline(0, 8): want error, got nil")
	}
	if _, err := NewTimeline(-time.Second, 8); err == nil {
		t.Fatal("NewTimeline(-1s, 8): want error, got nil")
	}
}

func TestTimelineUnbounded(t *testing.T) {
	tl, err := NewTimeline(time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		tl.Offer(sampleAt(i, time.Millisecond))
	}
	if got := len(tl.Samples()); got != 50 {
		t.Fatalf("samples under cap: got %d, want 50", got)
	}
	if tl.Stride() != 1 {
		t.Fatalf("stride before decimation: got %d, want 1", tl.Stride())
	}
}

// TestTimelineDecimation drives far past the cap and checks the three
// invariants: the bound holds, retained samples stay uniformly spaced at
// stride·interval, and they cover the whole run (first at stride, last at
// the final recorded tick) rather than a truncated prefix or tail.
func TestTimelineDecimation(t *testing.T) {
	const cap = 8
	interval := time.Millisecond
	tl, err := NewTimeline(interval, cap)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 1000
	for i := 1; i <= ticks; i++ {
		tl.Offer(sampleAt(i, interval))
	}
	got := tl.Samples()
	if len(got) > cap {
		t.Fatalf("decimation bound: %d samples, cap %d", len(got), cap)
	}
	if len(got) < cap/2 {
		t.Fatalf("decimation too aggressive: %d samples, cap %d", len(got), cap)
	}
	stride := tl.Stride()
	step := time.Duration(stride) * interval
	// Decimation keeps even indices, so the first sample ever recorded
	// (tick 1) survives every fold: the series anchors at the run start.
	if got[0].T != interval {
		t.Fatalf("first retained sample at %v, want the first tick (%v)", got[0].T, interval)
	}
	for i := 1; i < len(got); i++ {
		if d := got[i].T - got[i-1].T; d != step {
			t.Fatalf("sample %d: spacing %v, want uniform %v (stride %d)", i, d, step, stride)
		}
	}
	// Coverage: the last retained sample must be within one stride of the
	// last tick ever recorded (which is itself within a stride of ticks).
	if last := got[len(got)-1].T; last < time.Duration(ticks-2*stride)*interval {
		t.Fatalf("last retained sample at %v does not cover the run end (~%v)", last, time.Duration(ticks)*interval)
	}
}

func TestTimelineOddCapRoundsUp(t *testing.T) {
	tl, err := NewTimeline(time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 64; i++ {
		tl.Offer(sampleAt(i, time.Millisecond))
	}
	if got := len(tl.Samples()); got > 8 {
		t.Fatalf("odd cap 7 should round to 8: got %d samples", got)
	}
}

// TestTimelineJSONLMatchesEncodingJSON pins the hand-rolled encoder to the
// struct's JSON tags: every line must decode back into an identical sample.
func TestTimelineJSONLMatchesEncodingJSON(t *testing.T) {
	tl, err := NewTimeline(time.Millisecond, 16)
	if err != nil {
		t.Fatal(err)
	}
	tl.Offer(TimelineSample{T: time.Millisecond, Sent: 12, Delivered: 7, Drops: 1, Duplicates: 2, Timeouts: 3, TotalEnergy: 1234.5625, CtrlEnergy: 17.25})
	tl.Offer(TimelineSample{T: 2 * time.Millisecond, Sent: 120})
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		var got TimelineSample
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if got != tl.Samples()[i] {
			t.Fatalf("line %d round-trip:\n got %+v\nwant %+v", i, got, tl.Samples()[i])
		}
	}
	if !strings.HasPrefix(lines[0], `{"tNs":1000000,"sent":12,`) {
		t.Fatalf("field order changed: %s", lines[0])
	}
}

// --- TraceSink ---

func TestTraceSinkEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf)
	s.Emit(Event{
		T: 2690 * time.Microsecond, Kind: EventTx, Node: 3, PacketKind: packet.ADV,
		Meta: packet.DataID{Origin: 1, Seq: 0}, Src: 1, Dst: -1, Requester: -2, Provider: -2,
		Level: 5, Bytes: 2,
	})
	s.Emit(Event{
		T: 3 * time.Millisecond, Kind: EventDrop, Node: 9, PacketKind: packet.DATA,
		Meta: packet.DataID{Origin: 4, Seq: 2}, Src: 4, Dst: 9,
		Bytes: 500, Reason: `node "dead"`,
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Events(); got != 2 {
		t.Fatalf("Events() = %d, want 2", got)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want0 := `{"t":2690000,"kind":"tx","node":3,"pkt":"ADV","meta":"d1.0","src":1,"dst":-1,"req":-2,"prov":-2,"level":5,"bytes":2}`
	if lines[0] != want0 {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want0)
	}
	// Every line must be valid JSON, including the escaped drop reason.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
	}
	var drop struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &drop); err != nil {
		t.Fatal(err)
	}
	if drop.Reason != `node "dead"` {
		t.Fatalf("escaped reason round-trip: got %q", drop.Reason)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTraceSinkStickyError(t *testing.T) {
	s := NewTraceSink(&errWriter{n: 10})
	big := Event{Kind: EventTx, Reason: ""}
	for i := 0; i < 5000; i++ {
		s.Emit(big) // eventually overflows the bufio buffer into the failing writer
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush after writer failure: want error, got nil")
	}
	if s.Err() == nil {
		t.Fatal("Err after failure: want error, got nil")
	}
	n := s.Events()
	s.Emit(big)
	if s.Events() != n {
		t.Fatal("Emit after sticky error still counted an event")
	}
}

// --- RunObserver ---

func TestRunObserverPhasesAccumulate(t *testing.T) {
	o := &RunObserver{}
	o.BeginRun()
	for i := 0; i < 2; i++ {
		sp := o.StartPhase(PhaseRoutes)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	sp := o.StartPhase(PhaseEvents)
	time.Sleep(time.Millisecond)
	sp.End()
	o.RecordKernel(1234, 56, 78)
	o.EndRun()

	st := o.Stats()
	if st.RouteCompute < 2*time.Millisecond {
		t.Fatalf("RouteCompute = %v, want >= 2ms (two accumulated spans)", st.RouteCompute)
	}
	if st.EventLoop < time.Millisecond {
		t.Fatalf("EventLoop = %v, want >= 1ms", st.EventLoop)
	}
	if st.Wall < st.RouteCompute+st.EventLoop {
		t.Fatalf("Wall %v < RouteCompute+EventLoop %v", st.Wall, st.RouteCompute+st.EventLoop)
	}
	if st.EventsDispatched != 1234 || st.PeakHeapDepth != 56 || st.ArenaHighWater != 78 {
		t.Fatalf("kernel stats not recorded: %+v", st)
	}
}

func TestRunObserverStatsFoldSinks(t *testing.T) {
	tl, err := NewTimeline(time.Millisecond, 16)
	if err != nil {
		t.Fatal(err)
	}
	tl.Offer(sampleAt(1, time.Millisecond))
	var buf bytes.Buffer
	tr := NewTraceSink(&buf)
	tr.Emit(Event{Kind: EventTx})
	o := &RunObserver{Timeline: tl, Trace: tr}
	st := o.Stats()
	if st.TimelineSamples != 1 || st.TraceEvents != 1 {
		t.Fatalf("Stats() did not fold sink counters: %+v", st)
	}
}

// --- Zero-value / nil contract ---

// TestZeroValueObservabilityAllocFree is the CI allocation guard for the
// disabled layer: every nil-receiver hook on the hot path must cost zero
// allocations, so instrumented call sites are free when observability is
// off.
func TestZeroValueObservabilityAllocFree(t *testing.T) {
	var o *RunObserver
	var tl *Timeline
	var tr *TraceSink
	var p *CampaignProgress
	ev := Event{Kind: EventTx, Reason: "x"}
	s := TimelineSample{T: time.Millisecond}

	allocs := testing.AllocsPerRun(1000, func() {
		o.BeginRun()
		sp := o.StartPhase(PhaseEvents)
		sp.End()
		o.RecordKernel(1, 2, 3)
		o.EndRun()
		_ = o.Stats()
		tl.Offer(s)
		_ = tl.Interval()
		tr.Emit(ev)
		_ = tr.Events()
		p.PointStarted(1)
		p.PointDone(1)
	})
	if allocs != 0 {
		t.Fatalf("nil observability hooks allocated %.1f times per run, want 0", allocs)
	}

	// A zero-value (non-nil, not constructed) Timeline is also disabled.
	disabled := &Timeline{}
	allocs = testing.AllocsPerRun(1000, func() { disabled.Offer(s) })
	if allocs != 0 {
		t.Fatalf("zero-value Timeline.Offer allocated %.1f times per run, want 0", allocs)
	}
}

func TestNilSafeEverything(t *testing.T) {
	var o *RunObserver
	if st := o.Stats(); st != (RunStats{}) {
		t.Fatalf("nil observer Stats: %+v", st)
	}
	var tl *Timeline
	if tl.Samples() != nil || tl.Stride() != 0 || tl.Interval() != 0 {
		t.Fatal("nil timeline accessors not inert")
	}
	if err := tl.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var tr *TraceSink
	if tr.Err() != nil || tr.Flush() != nil || tr.Events() != 0 {
		t.Fatal("nil trace sink not inert")
	}
	var p *CampaignProgress
	if s := p.Snapshot(); s.Total != 0 || s.Done != 0 || s.Running != nil {
		t.Fatalf("nil progress Snapshot: %+v", s)
	}
	stop := p.Heartbeat(&bytes.Buffer{}, time.Millisecond)
	stop()
}
