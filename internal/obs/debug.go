// debug.go is the HTTP debug/ops surface: expvar live counters, campaign
// progress JSON, and net/http/pprof, on an explicit mux bound to an
// operator-chosen address. The campaign service daemon (internal/service,
// DESIGN.md §14) mounts the same mux next to its job API, so one process
// exposes one coherent ops surface whether it runs one campaign (the CLI)
// or many (the daemon).
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// ProgressRegistry tracks the progress of every live campaign in the
// process. The CLI registers its single campaign; the service daemon
// registers one tracker per running job. Registration order is preserved,
// so snapshot listings are deterministic. All methods are safe for
// concurrent use and safe on a nil receiver (a nil registry is empty).
type ProgressRegistry struct {
	mu    sync.Mutex
	seq   int
	order []int
	jobs  map[int]*CampaignProgress
}

// NewProgressRegistry returns an empty registry.
func NewProgressRegistry() *ProgressRegistry {
	return &ProgressRegistry{jobs: make(map[int]*CampaignProgress)}
}

// DefaultRegistry is the process-wide registry the "campaign" expvar and
// every debug mux read. expvar names are global and can be published only
// once, so the var indirects through this registry and each live campaign
// registers its own tracker.
var DefaultRegistry = NewProgressRegistry()

// Register adds p to the registry and returns its removal function
// (idempotent). A nil tracker or nil registry registers nothing.
func (r *ProgressRegistry) Register(p *CampaignProgress) (remove func()) {
	if r == nil || p == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.seq
	r.seq++
	r.order = append(r.order, id)
	r.jobs[id] = p
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.jobs, id)
			for i, o := range r.order {
				if o == id {
					r.order = append(r.order[:i], r.order[i+1:]...)
					break
				}
			}
			r.mu.Unlock()
		})
	}
}

// Snapshots returns one snapshot per registered tracker, in registration
// order.
func (r *ProgressRegistry) Snapshots() []ProgressSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	trackers := make([]*CampaignProgress, 0, len(r.order))
	for _, id := range r.order {
		trackers = append(trackers, r.jobs[id])
	}
	r.mu.Unlock()
	// Snapshot outside the registry lock: each tracker has its own mutex.
	out := make([]ProgressSnapshot, len(trackers))
	for i, p := range trackers {
		out[i] = p.Snapshot()
	}
	return out
}

// view renders the registry for the debug endpoints, preserving the
// pre-registry wire shape for the common cases: an empty registry is the
// zero snapshot object and a single campaign is its snapshot object (what
// the CLI's consumers always saw); only multiple concurrent campaigns —
// the daemon case — produce a JSON array.
func (r *ProgressRegistry) view() any {
	snaps := r.Snapshots()
	switch len(snaps) {
	case 0:
		return ProgressSnapshot{}
	case 1:
		return snaps[0]
	default:
		return snaps
	}
}

func init() {
	expvar.Publish("campaign", expvar.Func(func() any {
		return DefaultRegistry.view()
	}))
}

// DebugMux returns a mux serving the debug endpoints over reg (nil means
// DefaultRegistry):
//
//	/debug/progress  campaign progress (JSON: snapshot, or array when >1)
//	/debug/vars      expvar (memstats, cmdline, campaign progress)
//	/debug/pprof/    full net/http/pprof suite (profile, heap, trace, …)
func DebugMux(reg *ProgressRegistry) *http.ServeMux {
	if reg == nil {
		reg = DefaultRegistry
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.view())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof self-registers only on http.DefaultServeMux; an
	// explicit mux mounts the handlers by hand.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a live debug/ops HTTP endpoint. Endpoints:
//
//	/debug/progress  campaign progress snapshot (JSON)
//	/debug/vars      expvar (memstats, cmdline, campaign progress)
//	/debug/pprof/    full net/http/pprof suite (profile, heap, trace, …)
type DebugServer struct {
	ln         net.Listener
	srv        *http.Server
	unregister func()
}

// StartDebugServer binds addr (e.g. ":6060"; ":0" picks a free port) and
// serves the debug endpoints in a background goroutine until Close.
// progress may be nil: the endpoints still serve, reporting an empty
// campaign. A non-nil progress is registered in DefaultRegistry for the
// server's lifetime.
func StartDebugServer(addr string, progress *CampaignProgress) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	unregister := DefaultRegistry.Register(progress)

	mux := DebugMux(DefaultRegistry)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "repro debug endpoint\n\n/debug/progress\n/debug/vars\n/debug/pprof/\n")
	})

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv, unregister: unregister}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server, releases the listener, and unregisters the
// server's progress tracker.
func (d *DebugServer) Close() error {
	d.unregister()
	return d.srv.Close()
}
