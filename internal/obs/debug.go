// debug.go is the HTTP debug/ops surface: expvar live counters, campaign
// progress JSON, and net/http/pprof, on an explicit mux bound to an
// operator-chosen address. This is the first brick of the campaign
// service direction (ROADMAP item 1): the long-running daemon will mount
// its job API next to these endpoints.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// liveProgress is the tracker the process-wide "campaign" expvar reads.
// expvar names are global and can be published only once, so the var
// indirects through this pointer and each StartDebugServer call swaps in
// its campaign's tracker.
var liveProgress atomic.Pointer[CampaignProgress]

func init() {
	expvar.Publish("campaign", expvar.Func(func() any {
		if p := liveProgress.Load(); p != nil {
			return p.Snapshot()
		}
		return nil
	}))
}

// DebugServer is a live debug/ops HTTP endpoint. Endpoints:
//
//	/debug/progress  campaign progress snapshot (JSON)
//	/debug/vars      expvar (memstats, cmdline, campaign progress)
//	/debug/pprof/    full net/http/pprof suite (profile, heap, trace, …)
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer binds addr (e.g. ":6060"; ":0" picks a free port) and
// serves the debug endpoints in a background goroutine until Close.
// progress may be nil: the endpoints still serve, reporting an empty
// campaign.
func StartDebugServer(addr string, progress *CampaignProgress) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	liveProgress.Store(progress)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(progress.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof self-registers only on http.DefaultServeMux; an
	// explicit mux mounts the handlers by hand.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "repro debug endpoint\n\n/debug/progress\n/debug/vars\n/debug/pprof/\n")
	})

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
