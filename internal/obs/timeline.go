// timeline.go is the time-series sampler: a sim-time ticker (scheduled by
// the experiment harness) offers one metrics snapshot per interval, and
// the Timeline keeps them in a bounded buffer. When the buffer fills it
// decimates — drops every other retained sample and doubles its stride —
// so an arbitrarily long run always exports at most MaxSamples points,
// uniformly spaced, covering the whole run rather than just its tail.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// TimelineSample is one snapshot of the run's cumulative metrics at sim
// time T. All counters are cumulative since the start of the run, so a
// delivery- or energy-vs-time curve is the sample sequence itself and
// rates are first differences.
type TimelineSample struct {
	T           time.Duration `json:"tNs"`
	Sent        uint64        `json:"sent"`       // transmissions, all kinds
	Delivered   uint64        `json:"delivered"`  // DATA deliveries to requesters
	Drops       uint64        `json:"drops"`      // packets lost to dead/out-of-range nodes
	Duplicates  uint64        `json:"duplicates"` // redundant data receptions
	Timeouts    uint64        `json:"timeouts"`
	TotalEnergy float64       `json:"totalEnergyUJ"` // cumulative, µJ
	CtrlEnergy  float64       `json:"ctrlEnergyUJ"`  // routing-control share, µJ
}

// DefaultTimelineMaxSamples bounds a timeline that does not choose its own
// cap: ~4k points is dense enough for any plot and small enough to hold
// for the longest run.
const DefaultTimelineMaxSamples = 4096

// Timeline accumulates samples at a fixed tick interval under a hard
// sample-count bound. The zero value — and a nil *Timeline — is disabled:
// Offer no-ops. Construct with NewTimeline to enable.
type Timeline struct {
	interval time.Duration
	max      int

	samples []TimelineSample
	stride  int // record every stride-th offered tick; doubles on decimation
	tick    int // offered ticks since the last recorded sample
}

// NewTimeline returns a timeline sampling every interval of sim time,
// holding at most maxSamples points (<= 0 means
// DefaultTimelineMaxSamples). interval must be positive.
func NewTimeline(interval time.Duration, maxSamples int) (*Timeline, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("obs: non-positive timeline interval %v", interval)
	}
	if maxSamples <= 0 {
		maxSamples = DefaultTimelineMaxSamples
	}
	if maxSamples < 4 {
		// Below this, decimation degenerates; the bound is about memory,
		// not about plotting two points.
		maxSamples = 4
	}
	// An even cap keeps decimation exact: with stride s and an even cap the
	// sample that triggers decimation sits precisely one doubled stride past
	// the last retained one, so spacing stays uniform through the fold.
	maxSamples += maxSamples % 2
	return &Timeline{interval: interval, max: maxSamples, stride: 1}, nil
}

// Interval returns the base tick interval the harness should schedule at.
// Decimation is internal: the caller always ticks at this rate and the
// timeline decides which ticks to keep.
func (tl *Timeline) Interval() time.Duration {
	if tl == nil {
		return 0
	}
	return tl.interval
}

// Offer presents the sample taken at the current tick. Disabled (nil or
// zero-value) timelines ignore it. When the buffer is full the timeline
// first decimates: it keeps every other retained sample and doubles its
// stride, so retained samples stay uniformly stride·interval apart.
func (tl *Timeline) Offer(s TimelineSample) {
	if tl == nil || tl.stride == 0 {
		return
	}
	tl.tick++
	if tl.tick < tl.stride {
		return
	}
	tl.tick = 0
	if len(tl.samples) >= tl.max {
		// Fold: keep every other sample and double the stride. With stride s
		// the retained ticks are a, a+s, …, a+(max-1)·s (a = the first tick
		// ever recorded); keeping the even indices leaves a, a+2s, …,
		// a+(max-2)·s, and the tick being offered is a+max·s — exactly one
		// doubled stride past the last retained sample (max is even) — so
		// appending it below keeps the spacing uniform at 2s.
		half := tl.samples[:0]
		for i := 0; i < len(tl.samples); i += 2 {
			half = append(half, tl.samples[i])
		}
		tl.samples = half
		tl.stride *= 2
	}
	tl.samples = append(tl.samples, s)
}

// Samples returns the retained samples in time order. The slice is the
// timeline's own storage; callers must not mutate it.
func (tl *Timeline) Samples() []TimelineSample {
	if tl == nil {
		return nil
	}
	return tl.samples
}

// Stride returns the current decimation stride: retained samples are
// stride·Interval apart. 1 until the first decimation.
func (tl *Timeline) Stride() int {
	if tl == nil {
		return 0
	}
	return tl.stride
}

// WriteJSONL streams the retained samples, one JSON object per line, in
// time order. The encoding is hand-rolled with a fixed field order so the
// bytes are a pure function of the samples.
func (tl *Timeline) WriteJSONL(w io.Writer) error {
	if tl == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	for _, s := range tl.samples {
		line = line[:0]
		line = append(line, `{"tNs":`...)
		line = strconv.AppendInt(line, int64(s.T), 10)
		line = append(line, `,"sent":`...)
		line = strconv.AppendUint(line, s.Sent, 10)
		line = append(line, `,"delivered":`...)
		line = strconv.AppendUint(line, s.Delivered, 10)
		line = append(line, `,"drops":`...)
		line = strconv.AppendUint(line, s.Drops, 10)
		line = append(line, `,"duplicates":`...)
		line = strconv.AppendUint(line, s.Duplicates, 10)
		line = append(line, `,"timeouts":`...)
		line = strconv.AppendUint(line, s.Timeouts, 10)
		line = append(line, `,"totalEnergyUJ":`...)
		line = appendJSONFloat(line, s.TotalEnergy)
		line = append(line, `,"ctrlEnergyUJ":`...)
		line = appendJSONFloat(line, s.CtrlEnergy)
		line = append(line, '}', '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSONFloat formats a float the way encoding/json does ('g' with
// the shortest round-trip precision), keeping hand-rolled lines and
// encoding/json output interchangeable.
func appendJSONFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
