// Package obs is the run-wide observability layer: phase timing and
// kernel statistics for a single simulation run (RunStats, RunObserver),
// bounded time-series sampling of live metrics (Timeline), streaming
// structured trace export (TraceSink), and live campaign telemetry
// (CampaignProgress, StartDebugServer).
//
// Two contracts govern everything here:
//
//   - Zero-value disabled. Every hook is nil-checked: a nil *RunObserver,
//     *TraceSink, *Timeline, or *CampaignProgress no-ops on every method,
//     allocation-free, so instrumented call sites need no conditionals and
//     the hot paths stay exactly as fast as before the layer existed
//     (guarded by TestZeroValueObservabilityAllocFree and the CI
//     allocation-guard steps).
//
//   - Identity preserved. Observability never changes what a run computes:
//     RunStats lives outside experiment.Result, the timeline ticker only
//     reads collectors, and trace export mirrors events the single-threaded
//     event loop already emits in dispatch order — so golden output is
//     untouched and trace bytes are identical at any -sim-workers count
//     (see DESIGN.md §11).
package obs

import "time"

// Phase names one wall-clock span of a simulation run.
type Phase int

// Run phases. Topology covers field construction and neighbor-cache
// warmup; Routes covers DBF route computation, including mobility-driven
// recomputes; Events is the event-loop dispatch itself.
const (
	PhaseTopology Phase = iota
	PhaseRoutes
	PhaseEvents
	numPhases
)

// RunStats is the execution profile of one run: where the wall-clock time
// went plus event-kernel internals. It is deliberately not part of
// experiment.Result — it describes how fast the run computed, never what
// it computed — so result identity (golden corpus, campaign sinks) is
// untouched by collecting it.
type RunStats struct {
	TopologyBuild time.Duration `json:"topologyBuildNs"` // field construction + cache warmup
	RouteCompute  time.Duration `json:"routeComputeNs"`  // DBF computes, initial + mobility re-runs
	EventLoop     time.Duration `json:"eventLoopNs"`     // scheduler dispatch
	Wall          time.Duration `json:"wallNs"`          // whole run, BeginRun to EndRun

	EventsDispatched uint64 `json:"eventsDispatched"` // events fired by the kernel
	PeakHeapDepth    int    `json:"peakHeapDepth"`    // max simultaneously pending events
	ArenaHighWater   int    `json:"arenaHighWater"`   // event arena slots ever allocated

	TimelineSamples int    `json:"timelineSamples,omitempty"` // samples held after decimation
	TraceEvents     uint64 `json:"traceEvents,omitempty"`     // trace lines written
}

// RunObserver collects observability for one simulation run. The zero
// value observes nothing; attaching a Timeline or TraceSink opts into
// those streams independently. A nil *RunObserver is fully inert, so the
// experiment harness threads it unconditionally.
//
// A RunObserver is single-run, single-goroutine state: it is driven by
// the run that owns it (the event loop is single-threaded by design) and
// must not be shared across concurrent runs.
type RunObserver struct {
	// Timeline, when non-nil, receives periodic metric snapshots on a
	// sim-time ticker (the experiment harness schedules the ticks).
	Timeline *Timeline
	// Trace, when non-nil, receives every network trace event as one
	// JSONL line.
	Trace *TraceSink

	stats RunStats
	start time.Time
}

// Span is an in-progress phase measurement; End accumulates the elapsed
// wall clock into the observer. The zero Span (from a nil observer) is
// inert.
type Span struct {
	o  *RunObserver
	p  Phase
	t0 time.Time
}

// BeginRun marks the start of the whole-run wall clock.
func (o *RunObserver) BeginRun() {
	if o == nil {
		return
	}
	o.start = time.Now()
}

// EndRun closes the whole-run wall clock.
func (o *RunObserver) EndRun() {
	if o == nil {
		return
	}
	o.stats.Wall = time.Since(o.start)
}

// StartPhase opens a wall-clock span for p. Spans for the same phase
// accumulate: mobility-driven route recomputes add onto the initial
// convergence under PhaseRoutes.
func (o *RunObserver) StartPhase(p Phase) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o, p: p, t0: time.Now()}
}

// End accumulates the span into its observer's stats.
func (s Span) End() {
	if s.o == nil {
		return
	}
	d := time.Since(s.t0)
	switch s.p {
	case PhaseTopology:
		s.o.stats.TopologyBuild += d
	case PhaseRoutes:
		s.o.stats.RouteCompute += d
	case PhaseEvents:
		s.o.stats.EventLoop += d
	}
}

// RecordKernel stores the event-kernel internals read from the scheduler
// after the run.
func (o *RunObserver) RecordKernel(dispatched uint64, peakHeap, arena int) {
	if o == nil {
		return
	}
	o.stats.EventsDispatched = dispatched
	o.stats.PeakHeapDepth = peakHeap
	o.stats.ArenaHighWater = arena
}

// Stats returns the collected profile, folding in the attached sinks'
// own counters.
func (o *RunObserver) Stats() RunStats {
	if o == nil {
		return RunStats{}
	}
	st := o.stats
	if o.Timeline != nil {
		st.TimelineSamples = len(o.Timeline.Samples())
	}
	if o.Trace != nil {
		st.TraceEvents = o.Trace.Events()
	}
	return st
}
