package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// progressView fetches /debug/progress from a mux over reg and returns
// the raw JSON.
func progressView(t *testing.T, reg *ProgressRegistry) []byte {
	t.Helper()
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/progress")
	if err != nil {
		t.Fatalf("GET /debug/progress: %v", err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return raw
}

// TestRegistryViewShapes locks the /debug/progress wire shape: a single
// registered campaign serves its snapshot as a plain object (what every
// pre-registry consumer parsed), and only multiple concurrent campaigns —
// the service daemon case — switch the payload to an array.
func TestRegistryViewShapes(t *testing.T) {
	reg := NewProgressRegistry()

	// Empty: a zero snapshot object, not null, not an array.
	var snap ProgressSnapshot
	if err := json.Unmarshal(progressView(t, reg), &snap); err != nil {
		t.Fatalf("empty registry view is not a snapshot object: %v", err)
	}
	if snap.Name != "" || snap.Total != 0 {
		t.Fatalf("empty view = %+v", snap)
	}

	// One tracker: its snapshot, as a plain object.
	a := NewCampaignProgress("alpha", 4)
	removeA := reg.Register(a)
	if err := json.Unmarshal(progressView(t, reg), &snap); err != nil {
		t.Fatalf("single-campaign view is not a snapshot object: %v", err)
	}
	if snap.Name != "alpha" || snap.Total != 4 {
		t.Fatalf("single view = %+v, want alpha/4", snap)
	}

	// Two trackers: an array, registration order.
	b := NewCampaignProgress("beta", 7)
	removeB := reg.Register(b)
	var snaps []ProgressSnapshot
	if err := json.Unmarshal(progressView(t, reg), &snaps); err != nil {
		t.Fatalf("multi-campaign view is not an array: %v", err)
	}
	if len(snaps) != 2 || snaps[0].Name != "alpha" || snaps[1].Name != "beta" {
		t.Fatalf("multi view = %+v, want [alpha beta]", snaps)
	}

	// Unregistering drops back to the single-object shape; removal is
	// idempotent.
	removeA()
	removeA()
	if err := json.Unmarshal(progressView(t, reg), &snap); err != nil {
		t.Fatalf("view after unregister is not a snapshot object: %v", err)
	}
	if snap.Name != "beta" {
		t.Fatalf("view after unregister = %+v, want beta", snap)
	}
	removeB()
}

// TestRegistryNilSafety: nil registries and nil trackers register as
// no-ops, matching the package's nil-receiver conventions.
func TestRegistryNilSafety(t *testing.T) {
	var reg *ProgressRegistry
	remove := reg.Register(NewCampaignProgress("x", 1))
	remove() // must not panic
	if got := reg.Snapshots(); got != nil {
		t.Fatalf("nil registry Snapshots = %v", got)
	}
	live := NewProgressRegistry()
	remove = live.Register(nil)
	remove()
	if got := live.Snapshots(); len(got) != 0 {
		t.Fatalf("registering nil tracker added %v", got)
	}
}
