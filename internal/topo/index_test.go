// index_test.go checks the spatial-index query layer against brute-force
// references: exact membership equality on random fields across all power
// levels, epoch invalidation under interleaved mobility, the ceiling
// semantics of RelocateFraction, and the zero-allocation guarantee of the
// steady-state query path.
package topo

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

// bruteReachedBy is the pre-index O(N) reference: the same Euclidean
// predicate (math.Hypot distance <= level range) the full-scan
// implementation used, in the same ascending-id order.
func bruteReachedBy(f *Field, src packet.NodeID, l radio.Level) []packet.NodeID {
	r := f.Model().RangeM(l)
	var out []packet.NodeID
	for i := 0; i < f.N(); i++ {
		id := packet.NodeID(i)
		if id == src {
			continue
		}
		if f.Dist(src, id) <= r {
			out = append(out, id)
		}
	}
	return out
}

// bruteContenders mirrors the pre-index O(N) contender scan.
func bruteContenders(f *Field, id packet.NodeID, l radio.Level) int {
	r := f.Model().RangeM(l)
	n := 0
	for i := 0; i < f.N(); i++ {
		if f.Dist(id, packet.NodeID(i)) <= r {
			n++
		}
	}
	return n
}

func sameIDs(a, b []packet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstBrute asserts every query of every node at every level
// matches the brute-force reference exactly, including order.
func checkAgainstBrute(t *testing.T, f *Field, ctx string) {
	t.Helper()
	for i := 0; i < f.N(); i++ {
		id := packet.NodeID(i)
		for l := radio.Level(1); l <= f.Model().MinPower(); l++ {
			want := bruteReachedBy(f, id, l)
			got := f.ReachedBy(id, l)
			if !sameIDs(got, want) {
				t.Fatalf("%s: ReachedBy(%d, %d) = %v, brute force %v", ctx, id, l, got, want)
			}
			if wc := bruteContenders(f, id, l); f.Contenders(id, l) != wc {
				t.Fatalf("%s: Contenders(%d, %d) = %d, brute force %d", ctx, id, l, f.Contenders(id, l), wc)
			}
		}
		if !sameIDs(f.ZoneNeighbors(id), bruteReachedBy(f, id, radio.MaxPower)) {
			t.Fatalf("%s: ZoneNeighbors(%d) diverged from max-power brute force", ctx, id)
		}
	}
}

// TestIndexMatchesBruteForceUniform is the core property test: on random
// uniform fields of several sizes and radio scales, the indexed queries are
// bit-identical to the pre-index full scans, before and after interleaved
// Move/RelocateFraction sequences.
func TestIndexMatchesBruteForceUniform(t *testing.T) {
	cases := []struct {
		n      int
		side   float64
		radius float64
	}{
		{n: 1, side: 10, radius: 20},     // singleton: empty lists everywhere
		{n: 30, side: 40, radius: 20},    // fewer cells than 3x3
		{n: 120, side: 120, radius: 20},  // many cells
		{n: 120, side: 120, radius: 200}, // range dwarfs field: one cell
		{n: 80, side: 300, radius: 12},   // sparse, disconnected components
	}
	for ci, c := range cases {
		t.Run(fmt.Sprintf("case=%d_n=%d", ci, c.n), func(t *testing.T) {
			m, err := radio.ScaledMICA2(c.radius)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(int64(1000 + ci))
			bounds := geom.Rect{Max: geom.Point{X: c.side, Y: c.side}}
			f, err := NewUniformField(c.n, bounds, m, rng)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstBrute(t, f, "fresh field")

			// Interleave single moves, relocation waves, and queries so
			// caches are repeatedly validated and invalidated.
			for step := 0; step < 8; step++ {
				switch step % 3 {
				case 0:
					id := packet.NodeID(rng.Intn(f.N()))
					f.Move(id, geom.Point{
						X: bounds.Width() * rng.Float64(),
						Y: bounds.Height() * rng.Float64(),
					})
				case 1:
					f.RelocateFraction(0.1, rng)
				case 2:
					f.RelocateFraction(0.9, rng) // global invalidation path
				}
				checkAgainstBrute(t, f, fmt.Sprintf("after step %d", step))
			}
		})
	}
}

// TestIndexMatchesBruteForceGrid pins the grid topology the figure
// reproductions run on, including the chain field's degenerate geometry.
func TestIndexMatchesBruteForceGrid(t *testing.T) {
	m, err := radio.ScaledMICA2(20)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewGridField(169, 5, m)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, f, "169-node grid")

	chain, err := NewChainField(24, 5, m)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, chain, "24-node chain")
}

// TestEpochInvalidation asserts the counter's contract: queries never bump
// it, every mobility event bumps it exactly once, and a Move invalidates
// the neighborhoods it leaves and enters but not distant nodes' caches.
func TestEpochInvalidation(t *testing.T) {
	f := mustGrid(t, 169, 5, scaled(t, 20))
	e0 := f.Epoch()
	f.ZoneNeighbors(0)
	f.Contenders(80, 3)
	if f.Epoch() != e0 {
		t.Fatalf("queries changed the epoch: %d -> %d", e0, f.Epoch())
	}
	f.Move(0, geom.Point{X: 30, Y: 30})
	if f.Epoch() != e0+1 {
		t.Fatalf("Move bumped epoch to %d, want %d", f.Epoch(), e0+1)
	}
	f.RelocateFraction(0.05, sim.NewRNG(3))
	if f.Epoch() != e0+2 {
		t.Fatalf("RelocateFraction bumped epoch to %d, want %d", f.Epoch(), e0+2)
	}
	f.InvalidateAll()
	if f.Epoch() != e0+3 {
		t.Fatalf("InvalidateAll bumped epoch to %d, want %d", f.Epoch(), e0+3)
	}

	// A move across the field invalidates both neighborhoods: the destination
	// neighborhood gains the mover, the origin neighborhood loses it.
	far := packet.NodeID(168) // opposite corner from node 0
	before := len(f.ZoneNeighbors(far))
	f.Move(0, f.Pos(far).Add(geom.Point{X: -1, Y: 0}))
	if got := len(f.ZoneNeighbors(far)); got != before+1 {
		t.Fatalf("destination neighborhood size = %d, want %d", got, before+1)
	}
	origin := packet.NodeID(1)
	wasNeighbor := false
	for _, nb := range f.ZoneNeighbors(origin) {
		if nb == 0 {
			wasNeighbor = true
		}
	}
	if wasNeighbor {
		t.Fatal("origin neighborhood still lists the departed node")
	}
}

// TestRelocateFractionCeiling is the regression table for the doc/behavior
// mismatch: RelocateFraction moves ceil(frac·N) nodes, where the pre-fix
// code truncated and then bumped zero to one. Rows with fractional frac·N
// are the ones the truncation got wrong; the 0.1·100 row pins the
// float-rounding hazard (float64(0.1)*100 > 10) that the magnitude-relative
// tolerance absorbs.
func TestRelocateFractionCeiling(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{n: 100, frac: 0.1, want: 10},          // exact product, rounds in FP to 10.000000000000002
		{n: 169, frac: 0.05, want: 9},          // 8.45 -> 9 (pre-fix: 8)
		{n: 3, frac: 0.5, want: 2},             // 1.5  -> 2 (pre-fix: 1)
		{n: 10, frac: 0.33, want: 4},           // 3.3  -> 4 (pre-fix: 3)
		{n: 7, frac: 1.0 / 7, want: 1},         // FP product just below 1
		{n: 200, frac: 0.005, want: 1},         // exactly 1
		{n: 1, frac: 0.001, want: 1},           // floor of 1 node
		{n: 49, frac: 1, want: 49},             // everything moves
		{n: 49, frac: 2, want: 49},             // clamped above 1
		{n: 1024, frac: 0.0009765625, want: 1}, // exactly 1/1024 of the stress grid
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d_frac=%v", c.n, c.frac), func(t *testing.T) {
			f := mustGrid(t, c.n, 5, radio.MICA2())
			moved := f.RelocateFraction(c.frac, sim.NewRNG(11))
			if len(moved) != c.want {
				t.Fatalf("RelocateFraction(%v) on %d nodes moved %d, want ceil=%d",
					c.frac, c.n, len(moved), c.want)
			}
			frac := math.Min(c.frac, 1)
			if want := int(math.Ceil(frac * float64(c.n) * (1 - 1e-12))); want != c.want {
				t.Fatalf("test table inconsistent with ceiling for n=%d frac=%v", c.n, c.frac)
			}
		})
	}
}

// TestQuerySteadyStateAllocFree pins the hot-path guarantee: once a node's
// cache is warm, ReachedBy, Contenders, and ZoneNeighbors allocate nothing.
func TestQuerySteadyStateAllocFree(t *testing.T) {
	f := mustGrid(t, 169, 5, scaled(t, 20))
	center := packet.NodeID(6*13 + 6)
	for l := radio.Level(1); l <= f.Model().MinPower(); l++ {
		f.ReachedBy(center, l) // warm
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for l := radio.Level(1); l <= f.Model().MinPower(); l++ {
			_ = f.ReachedBy(center, l)
			_ = f.Contenders(center, l)
		}
		_ = f.ZoneNeighbors(center)
	})
	if allocs != 0 {
		t.Fatalf("steady-state queries allocate %v per run, want 0", allocs)
	}
}

// TestRebuildPreservesReturnedSlices pins the snapshot-safety half of the
// ownership contract: a slice returned before a mobility event keeps its
// contents after other rebuilds, because rebuilds swap in fresh backing
// instead of writing in place.
func TestRebuildPreservesReturnedSlices(t *testing.T) {
	f := mustGrid(t, 49, 5, scaled(t, 15))
	old := f.ZoneNeighbors(24)
	snapshot := append([]packet.NodeID(nil), old...)
	f.Move(0, geom.Point{X: 21, Y: 21}) // invalidates node 24's neighborhood
	f.ZoneNeighbors(24)                 // rebuild
	for i := range old {
		if old[i] != snapshot[i] {
			t.Fatal("rebuild mutated a previously returned slice")
		}
	}
}
