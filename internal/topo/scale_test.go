package topo

// Scale regression tests for the spatial index: neighbor-query cost must
// stay proportional to actual zone degree — not field size — from 10³ to
// 10⁵ nodes, and WarmAll's parallel cache rebuild must be observationally
// identical to the lazy path. Both are deterministic (fixed seeds, no
// timing): the cost test counts scanned bucket entries, not wall clock.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

// uniformAtDensity builds an n-node uniform field whose area scales with n,
// so the expected zone degree is the same at every n. maxRange fixes the
// radio; density is nodes per square meter.
func uniformAtDensity(t *testing.T, n int, maxRange, density float64, seed int64) *Field {
	t.Helper()
	side := math.Sqrt(float64(n) / density)
	f, err := NewUniformField(n, geom.Rect{Max: geom.Point{X: side, Y: side}}, scaled(t, maxRange), sim.NewRNG(seed))
	if err != nil {
		t.Fatalf("NewUniformField(n=%d): %v", n, err)
	}
	return f
}

// scanCost returns, for node id, how many bucket entries a neighbor-cache
// rebuild scans (the 3×3 cell neighborhood population) and how many nodes
// are actually within max radio range — the work done vs the work needed.
func scanCost(f *Field, id packet.NodeID) (scanned, reach int) {
	f.index.visitNeighborhood(f.pos[id], func(ids []packet.NodeID) { scanned += len(ids) })
	return scanned, len(f.ensure(id).byLevel[0])
}

// TestNeighborQueryCostStaysFlat is the regression test for the fixed
// 64-cells-per-axis cap: at constant node density the mean ratio of scanned
// candidates to true neighbors must stay bounded as the field grows from
// 10³ to 10⁵ nodes. Under the old cap, cells outgrow the radio range once
// the field side exceeds 64·maxRange and the ratio climbs with N (each
// query scans O(N/64²) nodes); with the density-derived cap it stays flat.
func TestNeighborQueryCostStaysFlat(t *testing.T) {
	const (
		maxRange = 10.0
		density  = 0.04 // ~12.6 expected nodes within max range
		samples  = 200
	)
	ratio := make(map[int]float64)
	for _, n := range []int{1_000, 10_000, 100_000} {
		f := uniformAtDensity(t, n, maxRange, density, 0xbeef)
		var scanned, reach int
		for s := 0; s < samples; s++ {
			id := packet.NodeID(s * (n / samples))
			sc, re := scanCost(f, id)
			scanned += sc
			reach += re
		}
		if reach == 0 {
			t.Fatalf("n=%d: no neighbors in any sample — density setup broken", n)
		}
		r := float64(scanned) / float64(reach)
		ratio[n] = r
		// 3×3 cells of side maxRange hold ~9·π⁻¹·... ≈ 900/π·density·r²
		// candidates for π·r²·density true neighbors: ratio ≈ 9/π ≈ 2.9 in
		// the ideal geometry. 8 allows cell-quantization and edge effects.
		if r > 8 {
			t.Errorf("n=%d: scanned/reach = %.1f, want <= 8 (query cost not O(degree))", n, r)
		}
	}
	// Flatness across two decades: 10⁵ may not cost more than 2× the 10³
	// ratio. The old 64-cap index fails this by an order of magnitude.
	if ratio[100_000] > 2*ratio[1_000] {
		t.Fatalf("query cost grows with N: ratio(1e3)=%.1f ratio(1e5)=%.1f",
			ratio[1_000], ratio[100_000])
	}
}

// TestIndexCapBoundsBucketMemory pins the other half of the cap's contract:
// total cell count stays O(N), not O(area/range²).
func TestIndexCapBoundsBucketMemory(t *testing.T) {
	for _, n := range []int{1_000, 100_000} {
		f := uniformAtDensity(t, n, 10, 0.04, 7)
		cells := f.index.grid.NumCells()
		if max := 4*n + 64*64; cells > max {
			t.Fatalf("n=%d: %d cells, want <= %d (bucket memory not O(N))", n, cells, max)
		}
	}
}

// TestWarmAllMatchesLazyRebuilds builds two identical fields, warms one
// with a parallel WarmAll and leaves the other to lazy per-query rebuilds,
// and requires every neighbor list at every power level to match — before
// and after the same mobility events. This is the observational-equality
// half of the §10 determinism contract: WarmAll changes when cache work
// happens, never what it produces.
func TestWarmAllMatchesLazyRebuilds(t *testing.T) {
	old := runtime.GOMAXPROCS(4) // single-core runners must still fork workers
	defer runtime.GOMAXPROCS(old)

	build := func() *Field { return uniformAtDensity(t, 500, 10, 0.04, 42) }
	warm, lazy := build(), build()

	compare := func(stage string) {
		t.Helper()
		nl := warm.model.NumLevels()
		for i := 0; i < warm.N(); i++ {
			id := packet.NodeID(i)
			for l := 1; l <= nl; l++ {
				a := warm.ReachedBy(id, radio.Level(l))
				b := lazy.ReachedBy(id, radio.Level(l))
				if len(a) != len(b) {
					t.Fatalf("%s: node %d level %d: warmed %d neighbors, lazy %d", stage, i, l, len(a), len(b))
				}
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("%s: node %d level %d: neighbor[%d] warmed=%d lazy=%d", stage, i, l, k, a[k], b[k])
					}
				}
			}
		}
	}

	warm.WarmAll(4)
	compare("initial")

	// Same mobility on both fields, then warm one side again.
	for i := 0; i < 50; i++ {
		id := packet.NodeID(i * 7 % warm.N())
		p := warm.Pos(id)
		p.X += 15 // guaranteed cross-cell hop (> maxRange)
		if p.X > warm.Bounds().Max.X {
			p.X = warm.Bounds().Min.X + 1
		}
		warm.Move(id, p)
		lazy.Move(id, p)
	}
	warm.WarmAll(4)
	compare("after mobility")

	// WarmAll must not disturb the mobility epoch: it rebuilds caches, it
	// is not itself a mobility event.
	before := warm.Epoch()
	warm.WarmAll(4)
	if warm.Epoch() != before {
		t.Fatalf("WarmAll bumped epoch %d -> %d", before, warm.Epoch())
	}
}
