// Package topo models the sensor field: node positions, zone neighborhoods,
// power-level selection between nodes, and the mobility model of §5.1.3
// (at discrete times a random fraction of nodes relocates, after which
// routing must re-converge).
//
// A zone, per the paper, is the region a node can reach transmitting at its
// maximum power level; the nodes inside it are the node's zone neighbors.
package topo

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Field is the set of node positions plus the shared radio model. It caches
// zone-neighbor lists and invalidates them when nodes move.
type Field struct {
	model  *radio.Model
	pos    []geom.Point
	bounds geom.Rect

	zoneCache [][]packet.NodeID
	dirty     bool
}

// DefaultGridSpacing is the default inter-node distance in meters. 5 m on a
// grid with the MICA2 lowest power range (5.48 m) gives ns = 5 reachable
// nodes at minimum power and n1 ≈ 45 at a 20 m zone radius — the values the
// paper takes from [9].
const DefaultGridSpacing = 5.0

// NewGridField places n nodes on a square grid with the given spacing.
func NewGridField(n int, spacing float64, m *radio.Model) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topo: non-positive spacing %v", spacing)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	pts := geom.GridPlacement(n, spacing)
	side := float64(geom.GridSide(n)-1) * spacing
	return &Field{
		model:  m,
		pos:    pts,
		bounds: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: side, Y: side}},
		dirty:  true,
	}, nil
}

// NewUniformField places n nodes uniformly at random in bounds.
func NewUniformField(n int, bounds geom.Rect, m *radio.Model, rng *sim.RNG) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	if rng == nil {
		return nil, fmt.Errorf("topo: nil rng")
	}
	if bounds.Area() <= 0 {
		return nil, fmt.Errorf("topo: empty bounds %+v", bounds)
	}
	return &Field{
		model:  m,
		pos:    geom.UniformPlacement(n, bounds, rng.Float64),
		bounds: bounds,
		dirty:  true,
	}, nil
}

// NewChainField places n nodes on a straight line, the §4 analytic topology.
func NewChainField(n int, spacing float64, m *radio.Model) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topo: non-positive spacing %v", spacing)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	pts := geom.ChainPlacement(n, spacing)
	return &Field{
		model:  m,
		pos:    pts,
		bounds: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: float64(n-1) * spacing, Y: 0}},
		dirty:  true,
	}, nil
}

// N returns the number of nodes.
func (f *Field) N() int { return len(f.pos) }

// Model returns the shared radio model.
func (f *Field) Model() *radio.Model { return f.model }

// Bounds returns the field rectangle used for random relocation.
func (f *Field) Bounds() geom.Rect { return f.bounds }

// Pos returns the position of node id.
func (f *Field) Pos(id packet.NodeID) geom.Point {
	f.check(id)
	return f.pos[id]
}

// Dist returns the distance in meters between two nodes.
func (f *Field) Dist(a, b packet.NodeID) float64 {
	f.check(a)
	f.check(b)
	return f.pos[a].Dist(f.pos[b])
}

// LevelTo returns the lowest-power level at which a reaches b, and whether
// b is reachable at all (i.e. a zone neighbor).
func (f *Field) LevelTo(a, b packet.NodeID) (radio.Level, bool) {
	return f.model.LevelFor(f.Dist(a, b))
}

// ZoneNeighbors returns the ids of the nodes within node id's zone
// (reachable at maximum power), excluding id itself. The returned slice is
// owned by the cache; callers must not modify it.
func (f *Field) ZoneNeighbors(id packet.NodeID) []packet.NodeID {
	f.check(id)
	f.rebuildZones()
	return f.zoneCache[id]
}

// InZone reports whether b lies within a's zone.
func (f *Field) InZone(a, b packet.NodeID) bool {
	if a == b {
		return false
	}
	return f.Dist(a, b) <= f.model.MaxRange()
}

// Contenders returns how many nodes (including the transmitter itself) lie
// within the transmitter's radio range at level l — the "n" of the MAC
// G·n² contention model.
func (f *Field) Contenders(id packet.NodeID, l radio.Level) int {
	f.check(id)
	r := f.model.RangeM(l)
	n := 0
	for i := range f.pos {
		if f.pos[id].Dist(f.pos[i]) <= r {
			n++
		}
	}
	return n
}

// ReachedBy returns the ids of all nodes (excluding src) within src's radio
// range at level l: the receivers of a broadcast at that level. The slice is
// freshly allocated.
func (f *Field) ReachedBy(src packet.NodeID, l radio.Level) []packet.NodeID {
	f.check(src)
	r := f.model.RangeM(l)
	var out []packet.NodeID
	for i := range f.pos {
		id := packet.NodeID(i)
		if id == src {
			continue
		}
		if f.pos[src].Dist(f.pos[i]) <= r {
			out = append(out, id)
		}
	}
	return out
}

// Move relocates node id, invalidating neighbor caches.
func (f *Field) Move(id packet.NodeID, p geom.Point) {
	f.check(id)
	f.pos[id] = f.bounds.Clamp(p)
	f.dirty = true
}

// RelocateFraction moves ceil(frac·N) randomly chosen nodes to uniform
// random positions in the field, returning the moved ids. This is the
// paper's mobility event: "a predefined fraction of nodes move; the nodes
// which are to move and their destination are chosen randomly."
func (f *Field) RelocateFraction(frac float64, rng *sim.RNG) []packet.NodeID {
	if frac <= 0 || rng == nil {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	k := int(frac * float64(len(f.pos)))
	if k == 0 {
		k = 1
	}
	perm := rng.Perm(len(f.pos))
	moved := make([]packet.NodeID, 0, k)
	for _, idx := range perm[:k] {
		id := packet.NodeID(idx)
		f.pos[id] = geom.Point{
			X: f.bounds.Min.X + f.bounds.Width()*rng.Float64(),
			Y: f.bounds.Min.Y + f.bounds.Height()*rng.Float64(),
		}
		moved = append(moved, id)
	}
	f.dirty = true
	return moved
}

// MeanZoneSize returns the average zone-neighbor count, a sanity metric the
// experiments report (the paper expects 5–50 nodes per zone).
func (f *Field) MeanZoneSize() float64 {
	f.rebuildZones()
	total := 0
	for _, z := range f.zoneCache {
		total += len(z)
	}
	return float64(total) / float64(len(f.pos))
}

func (f *Field) rebuildZones() {
	if !f.dirty && f.zoneCache != nil {
		return
	}
	r := f.model.MaxRange()
	cache := make([][]packet.NodeID, len(f.pos))
	for i := range f.pos {
		var zs []packet.NodeID
		for j := range f.pos {
			if i == j {
				continue
			}
			if f.pos[i].Dist(f.pos[j]) <= r {
				zs = append(zs, packet.NodeID(j))
			}
		}
		cache[i] = zs
	}
	f.zoneCache = cache
	f.dirty = false
}

func (f *Field) check(id packet.NodeID) {
	if id < 0 || int(id) >= len(f.pos) {
		panic(fmt.Sprintf("topo: node id %d out of range [0,%d)", id, len(f.pos)))
	}
}
