// Package topo models the sensor field: node positions (grid, uniform,
// chain, or clustered placement), zone neighborhoods, power-level
// selection between nodes, and the mobility models — the paper's §5.1.3
// fractional relocation (at discrete times a random fraction of nodes
// teleports, after which routing must re-converge) and random waypoint
// (waypoint.go).
//
// A zone, per the paper, is the region a node can reach transmitting at its
// maximum power level; the nodes inside it are the node's zone neighbors.
package topo

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Field is the set of node positions plus the shared radio model. Radio
// queries (ZoneNeighbors, ReachedBy, Contenders) run against a spatial
// index with per-node per-power-level neighbor caches — O(neighbors) and
// allocation-free once warm; see index.go for the structure, the epoch
// invalidation scheme, and the cache-ownership contract on returned slices.
type Field struct {
	model  *radio.Model
	pos    []geom.Point
	bounds geom.Rect

	rangeSq []float64 // rangeSq[l-1]: RangeM(l)², strictly decreasing
	index   *spatialIndex
	cache   []nodeCache

	epoch     uint64   // mobility event counter, starts at 1
	nodeEpoch []uint64 // last epoch node i's neighborhood changed

	scratch rebuildScratch // lazy-rebuild workspace, reused across rebuilds
}

// newField wires the spatial index and empty caches over freshly placed
// positions. Every cache starts invalid (epoch 0 < nodeEpoch 1), so first
// queries build lazily through the index.
func newField(m *radio.Model, pos []geom.Point, bounds geom.Rect) *Field {
	f := &Field{
		model:     m,
		pos:       pos,
		bounds:    bounds,
		rangeSq:   make([]float64, m.NumLevels()),
		cache:     make([]nodeCache, len(pos)),
		epoch:     1,
		nodeEpoch: make([]uint64, len(pos)),
	}
	f.scratch.counts = make([]int, m.NumLevels())
	for l := range f.rangeSq {
		r := m.RangeM(radio.Level(l + 1))
		f.rangeSq[l] = r * r
	}
	for i := range f.nodeEpoch {
		f.nodeEpoch[i] = 1
	}
	f.index = newSpatialIndex(bounds, m.MaxRange(), pos)
	return f
}

// DefaultGridSpacing is the default inter-node distance in meters. 5 m on a
// grid with the MICA2 lowest power range (5.48 m) gives ns = 5 reachable
// nodes at minimum power and n1 ≈ 45 at a 20 m zone radius — the values the
// paper takes from [9].
const DefaultGridSpacing = 5.0

// NewGridField places n nodes on a square grid with the given spacing.
func NewGridField(n int, spacing float64, m *radio.Model) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topo: non-positive spacing %v", spacing)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	pts := geom.GridPlacement(n, spacing)
	side := float64(geom.GridSide(n)-1) * spacing
	return newField(m, pts, geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: side, Y: side}}), nil
}

// NewUniformField places n nodes uniformly at random in bounds.
func NewUniformField(n int, bounds geom.Rect, m *radio.Model, rng *sim.RNG) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	if rng == nil {
		return nil, fmt.Errorf("topo: nil rng")
	}
	if bounds.Area() <= 0 {
		return nil, fmt.Errorf("topo: empty bounds %+v", bounds)
	}
	return newField(m, geom.UniformPlacement(n, bounds, rng.Float64), bounds), nil
}

// NewClusteredField places n nodes as Gaussian blobs around k uniformly
// seeded cluster centers (geom.ClusteredPlacement): sigma is the per-axis
// standard deviation of a blob in meters, and positions are clamped into
// bounds.
func NewClusteredField(n, k int, sigma float64, bounds geom.Rect, m *radio.Model, rng *sim.RNG) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("topo: non-positive cluster count %d", k)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("topo: non-positive cluster spread %v", sigma)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	if rng == nil {
		return nil, fmt.Errorf("topo: nil rng")
	}
	if bounds.Area() <= 0 {
		return nil, fmt.Errorf("topo: empty bounds %+v", bounds)
	}
	return newField(m, geom.ClusteredPlacement(n, k, sigma, bounds, rng.Float64), bounds), nil
}

// NewChainField places n nodes on a straight line, the §4 analytic topology.
func NewChainField(n int, spacing float64, m *radio.Model) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: non-positive node count %d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topo: non-positive spacing %v", spacing)
	}
	if m == nil {
		return nil, fmt.Errorf("topo: nil radio model")
	}
	pts := geom.ChainPlacement(n, spacing)
	return newField(m, pts, geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: float64(n-1) * spacing, Y: 0}}), nil
}

// N returns the number of nodes.
func (f *Field) N() int { return len(f.pos) }

// Model returns the shared radio model.
func (f *Field) Model() *radio.Model { return f.model }

// Bounds returns the field rectangle used for random relocation.
func (f *Field) Bounds() geom.Rect { return f.bounds }

// Pos returns the position of node id.
func (f *Field) Pos(id packet.NodeID) geom.Point {
	f.check(id)
	return f.pos[id]
}

// Dist returns the distance in meters between two nodes.
func (f *Field) Dist(a, b packet.NodeID) float64 {
	f.check(a)
	f.check(b)
	return f.pos[a].Dist(f.pos[b])
}

// LevelTo returns the lowest-power level at which a reaches b, and whether
// b is reachable at all (i.e. a zone neighbor).
func (f *Field) LevelTo(a, b packet.NodeID) (radio.Level, bool) {
	return f.model.LevelFor(f.Dist(a, b))
}

// ZoneNeighbors returns the ids of the nodes within node id's zone
// (reachable at maximum power), excluding id itself, sorted ascending. The
// slice is cache-owned under the contract in index.go: do not modify it, do
// not retain it across a mobility event.
func (f *Field) ZoneNeighbors(id packet.NodeID) []packet.NodeID {
	f.check(id)
	return f.ensure(id).byLevel[0]
}

// InZone reports whether b lies within a's zone.
func (f *Field) InZone(a, b packet.NodeID) bool {
	if a == b {
		return false
	}
	f.check(a)
	f.check(b)
	return f.pos[a].Dist2(f.pos[b]) <= f.rangeSq[0]
}

// InRange reports whether b lies within a's radio range at level l — the
// broadcast-reachability predicate ReachedBy materializes.
func (f *Field) InRange(a, b packet.NodeID, l radio.Level) bool {
	f.check(a)
	f.check(b)
	return f.pos[a].Dist2(f.pos[b]) <= f.levelRangeSq(l)
}

// Contenders returns how many nodes (including the transmitter itself) lie
// within the transmitter's radio range at level l — the "n" of the MAC
// G·n² contention model. O(1) on a warm cache.
func (f *Field) Contenders(id packet.NodeID, l radio.Level) int {
	f.check(id)
	return len(f.ensure(id).byLevel[f.levelIndex(l)]) + 1
}

// ReachedBy returns the ids of all nodes (excluding src) within src's radio
// range at level l, sorted ascending: the receivers of a broadcast at that
// level. The slice is cache-owned under the contract in index.go: do not
// modify it, do not retain it across a mobility event.
func (f *Field) ReachedBy(src packet.NodeID, l radio.Level) []packet.NodeID {
	f.check(src)
	return f.ensure(src).byLevel[f.levelIndex(l)]
}

// Move relocates node id, incrementally invalidating the neighbor caches of
// the neighborhoods it leaves and enters.
func (f *Field) Move(id packet.NodeID, p geom.Point) {
	f.check(id)
	np := f.bounds.Clamp(p)
	f.epoch++
	f.invalidateAround(f.pos[id])
	f.pos[id] = np
	f.index.move(id, np)
	f.invalidateAround(np)
	f.nodeEpoch[id] = f.epoch
}

// RelocateFraction moves ceil(frac·N) randomly chosen nodes to uniform
// random positions in the field, returning the moved ids. This is the
// paper's mobility event: "a predefined fraction of nodes move; the nodes
// which are to move and their destination are chosen randomly." The ceiling
// uses a magnitude-relative tolerance so binary rounding in frac·N cannot
// inflate the count (see ceilFrac).
func (f *Field) RelocateFraction(frac float64, rng *sim.RNG) []packet.NodeID {
	if frac <= 0 || rng == nil {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	k := ceilFrac(frac, len(f.pos))
	perm := rng.Perm(len(f.pos))
	moved := make([]packet.NodeID, 0, k)
	f.epoch++
	// Past ~half the field moving, per-move neighborhood stamping does more
	// work than dirtying every node outright; either way cache contents —
	// and therefore simulation output — are identical.
	global := 2*k >= len(f.pos)
	for _, idx := range perm[:k] {
		id := packet.NodeID(idx)
		np := f.bounds.UniformPoint(rng.Float64)
		if !global {
			f.invalidateAround(f.pos[id])
		}
		f.pos[id] = np
		f.index.move(id, np)
		if !global {
			f.invalidateAround(np)
		}
		f.nodeEpoch[id] = f.epoch
		moved = append(moved, id)
	}
	if global {
		for i := range f.nodeEpoch {
			f.nodeEpoch[i] = f.epoch
		}
	}
	return moved
}

// MeanZoneSize returns the average zone-neighbor count, a sanity metric the
// experiments report (the paper expects 5–50 nodes per zone).
func (f *Field) MeanZoneSize() float64 {
	total := 0
	for i := range f.pos {
		total += len(f.ensure(packet.NodeID(i)).byLevel[0])
	}
	return float64(total) / float64(len(f.pos))
}

// levelIndex maps a radio level to its rangeSq/byLevel index, panicking on
// levels the model does not define (the pre-index code panicked through
// Model.RangeM; the contract is unchanged).
func (f *Field) levelIndex(l radio.Level) int {
	if l < 1 || int(l) > len(f.rangeSq) {
		panic(fmt.Sprintf("topo: invalid level %d (model has %d)", l, len(f.rangeSq)))
	}
	return int(l) - 1
}

// levelRangeSq returns the squared range at level l.
func (f *Field) levelRangeSq(l radio.Level) float64 {
	return f.rangeSq[f.levelIndex(l)]
}

func (f *Field) check(id packet.NodeID) {
	if id < 0 || int(id) >= len(f.pos) {
		panic(fmt.Sprintf("topo: node id %d out of range [0,%d)", id, len(f.pos)))
	}
}
