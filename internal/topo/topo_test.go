package topo

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

func mustGrid(t *testing.T, n int, spacing float64, m *radio.Model) *Field {
	t.Helper()
	f, err := NewGridField(n, spacing, m)
	if err != nil {
		t.Fatalf("NewGridField: %v", err)
	}
	return f
}

func scaled(t *testing.T, r float64) *radio.Model {
	t.Helper()
	m, err := radio.ScaledMICA2(r)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	return m
}

func TestConstructorValidation(t *testing.T) {
	m := radio.MICA2()
	rng := sim.NewRNG(1)
	bounds := geom.Rect{Max: geom.Point{X: 10, Y: 10}}
	if _, err := NewGridField(0, 5, m); err == nil {
		t.Fatal("n=0 grid should fail")
	}
	if _, err := NewGridField(4, 0, m); err == nil {
		t.Fatal("spacing=0 grid should fail")
	}
	if _, err := NewGridField(4, 5, nil); err == nil {
		t.Fatal("nil model should fail")
	}
	if _, err := NewUniformField(0, bounds, m, rng); err == nil {
		t.Fatal("n=0 uniform should fail")
	}
	if _, err := NewUniformField(5, geom.Rect{}, m, rng); err == nil {
		t.Fatal("empty bounds should fail")
	}
	if _, err := NewUniformField(5, bounds, m, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
	if _, err := NewChainField(0, 5, m); err == nil {
		t.Fatal("n=0 chain should fail")
	}
	if _, err := NewChainField(3, -1, m); err == nil {
		t.Fatal("negative spacing chain should fail")
	}
	if _, err := NewChainField(3, 1, nil); err == nil {
		t.Fatal("nil model chain should fail")
	}
}

func TestGridFieldGeometry(t *testing.T) {
	f := mustGrid(t, 9, 5, radio.MICA2())
	if f.N() != 9 {
		t.Fatalf("N=%d, want 9", f.N())
	}
	if got := f.Dist(0, 1); got != 5 {
		t.Fatalf("Dist(0,1)=%v, want 5 (adjacent columns)", got)
	}
	if got := f.Dist(0, 4); math.Abs(got-5*math.Sqrt2) > 1e-9 {
		t.Fatalf("Dist(0,4)=%v, want 5√2 (diagonal)", got)
	}
	if got := f.Dist(0, 8); math.Abs(got-10*math.Sqrt2) > 1e-9 {
		t.Fatalf("Dist(0,8)=%v, want 10√2", got)
	}
}

func TestZoneNeighborsGrid(t *testing.T) {
	// 20 m zone radius on a 5 m grid: the paper's configuration for
	// Figures 6 and 8. Center node of a 13×13 grid should see ≈45 nodes.
	f := mustGrid(t, 169, 5, scaled(t, 20))
	center := packet.NodeID(6*13 + 6)
	zs := f.ZoneNeighbors(center)
	// Count of grid points within 20m of center (excluding itself):
	// radius 4 cells → all (dx,dy) with dx²+dy² ≤ 16, minus origin = 48.
	if len(zs) != 48 {
		t.Fatalf("center zone size = %d, want 48", len(zs))
	}
	for _, z := range zs {
		if f.Dist(center, z) > 20+1e-9 {
			t.Fatalf("zone neighbor %d at %v m > radius", z, f.Dist(center, z))
		}
		if z == center {
			t.Fatal("node must not be its own zone neighbor")
		}
	}
}

func TestZoneSymmetry(t *testing.T) {
	f := mustGrid(t, 49, 5, scaled(t, 15))
	for i := 0; i < f.N(); i++ {
		for _, j := range f.ZoneNeighbors(packet.NodeID(i)) {
			if !f.InZone(j, packet.NodeID(i)) {
				t.Fatalf("zone relation asymmetric: %d sees %d but not vice versa", i, j)
			}
		}
	}
}

func TestInZoneSelf(t *testing.T) {
	f := mustGrid(t, 4, 5, radio.MICA2())
	if f.InZone(0, 0) {
		t.Fatal("a node is not in its own zone neighbor set")
	}
}

func TestLevelTo(t *testing.T) {
	// MICA2 ranges: 5.48/11.28/22.86/45.72/91.44 for levels 5..1.
	f := mustGrid(t, 169, 5, radio.MICA2())
	tests := []struct {
		a, b   packet.NodeID
		want   radio.Level
		wantOK bool
	}{
		{0, 1, 5, true},   // 5 m: lowest power
		{0, 2, 4, true},   // 10 m
		{0, 4, 3, true},   // 20 m (same row, 4 columns apart)
		{0, 12, 1, true},  // 60 m: max power
		{0, 168, 1, true}, // far corner: 60√2 ≈ 84.85 m, still level 1
	}
	for _, tt := range tests {
		got, ok := f.LevelTo(tt.a, tt.b)
		if ok != tt.wantOK {
			t.Fatalf("LevelTo(%d,%d) ok=%v, want %v (dist=%v)", tt.a, tt.b, ok, tt.wantOK, f.Dist(tt.a, tt.b))
		}
		if ok && got != tt.want {
			t.Fatalf("LevelTo(%d,%d)=%v, want %v (dist=%v)", tt.a, tt.b, got, tt.want, f.Dist(tt.a, tt.b))
		}
	}
}

func TestContenders(t *testing.T) {
	// On a 5 m grid with MICA2: lowest power (5.48 m) reaches the 4
	// orthogonal neighbors; contenders includes self → 5. This is the
	// paper's ns = 5.
	f := mustGrid(t, 169, 5, radio.MICA2())
	center := packet.NodeID(6*13 + 6)
	if got := f.Contenders(center, 5); got != 5 {
		t.Fatalf("Contenders(center, min power)=%d, want 5", got)
	}
	// A corner node has only 2 orthogonal neighbors.
	if got := f.Contenders(0, 5); got != 3 {
		t.Fatalf("Contenders(corner, min power)=%d, want 3", got)
	}
	// Contenders grows with power level.
	prev := 0
	for l := f.Model().MinPower(); l >= 1; l-- {
		n := f.Contenders(center, l)
		if n < prev {
			t.Fatalf("contenders decreased when raising power: %d < %d", n, prev)
		}
		prev = n
	}
}

func TestReachedBy(t *testing.T) {
	f := mustGrid(t, 169, 5, radio.MICA2())
	center := packet.NodeID(6*13 + 6)
	got := f.ReachedBy(center, 5)
	if len(got) != 4 {
		t.Fatalf("ReachedBy(center, min power) = %d nodes, want 4", len(got))
	}
	for _, id := range got {
		if id == center {
			t.Fatal("ReachedBy must exclude the transmitter")
		}
	}
	// Consistency: ReachedBy at level l = Contenders - 1.
	for l := radio.Level(1); l <= f.Model().MinPower(); l++ {
		if len(f.ReachedBy(center, l)) != f.Contenders(center, l)-1 {
			t.Fatalf("ReachedBy/Contenders inconsistent at level %v", l)
		}
	}
}

func TestMoveInvalidatesZones(t *testing.T) {
	f := mustGrid(t, 9, 5, scaled(t, 6))
	before := len(f.ZoneNeighbors(0))
	// Move node 8 (far corner) right next to node 0.
	f.Move(8, geom.Point{X: 1, Y: 0})
	after := len(f.ZoneNeighbors(0))
	if after != before+1 {
		t.Fatalf("zone size after move = %d, want %d", after, before+1)
	}
}

func TestMoveClampsToBounds(t *testing.T) {
	f := mustGrid(t, 9, 5, radio.MICA2())
	f.Move(0, geom.Point{X: -100, Y: 100})
	got := f.Pos(0)
	if !f.Bounds().Contains(got) {
		t.Fatalf("Move left node outside bounds: %v", got)
	}
}

func TestRelocateFraction(t *testing.T) {
	rng := sim.NewRNG(7)
	f := mustGrid(t, 100, 5, radio.MICA2())
	moved := f.RelocateFraction(0.1, rng)
	if len(moved) != 10 {
		t.Fatalf("moved %d nodes, want 10", len(moved))
	}
	seen := map[packet.NodeID]bool{}
	for _, id := range moved {
		if seen[id] {
			t.Fatalf("node %d moved twice in one event", id)
		}
		seen[id] = true
		if !f.Bounds().Contains(f.Pos(id)) {
			t.Fatalf("relocated node %d outside field", id)
		}
	}
	if got := f.RelocateFraction(0, rng); got != nil {
		t.Fatal("frac=0 should move nothing")
	}
	if got := f.RelocateFraction(0.5, nil); got != nil {
		t.Fatal("nil rng should move nothing")
	}
	// Tiny fraction still moves at least one node.
	if got := f.RelocateFraction(0.001, rng); len(got) != 1 {
		t.Fatalf("tiny fraction moved %d, want 1", len(got))
	}
	// Fraction > 1 clamps to all nodes.
	if got := f.RelocateFraction(2, rng); len(got) != 100 {
		t.Fatalf("frac>1 moved %d, want all 100", len(got))
	}
}

func TestRelocateDeterminism(t *testing.T) {
	f1 := mustGrid(t, 50, 5, radio.MICA2())
	f2 := mustGrid(t, 50, 5, radio.MICA2())
	m1 := f1.RelocateFraction(0.2, sim.NewRNG(99))
	m2 := f2.RelocateFraction(0.2, sim.NewRNG(99))
	if len(m1) != len(m2) {
		t.Fatal("same seed gave different move counts")
	}
	for i := range m1 {
		if m1[i] != m2[i] || f1.Pos(m1[i]) != f2.Pos(m2[i]) {
			t.Fatal("same seed gave different relocations")
		}
	}
}

func TestMeanZoneSize(t *testing.T) {
	f := mustGrid(t, 169, 5, scaled(t, 20))
	mean := f.MeanZoneSize()
	// Interior nodes have 48 zone neighbors; edges fewer. Mean in (20, 48).
	if mean <= 20 || mean >= 48 {
		t.Fatalf("MeanZoneSize=%v, want within (20,48)", mean)
	}
}

func TestUniformFieldInBounds(t *testing.T) {
	bounds := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 60, Y: 60}}
	f, err := NewUniformField(100, bounds, radio.MICA2(), sim.NewRNG(5))
	if err != nil {
		t.Fatalf("NewUniformField: %v", err)
	}
	for i := 0; i < f.N(); i++ {
		if !bounds.Contains(f.Pos(packet.NodeID(i))) {
			t.Fatalf("node %d outside bounds", i)
		}
	}
}

func TestChainField(t *testing.T) {
	f, err := NewChainField(5, 10, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	if got := f.Dist(0, 4); got != 40 {
		t.Fatalf("chain end-to-end = %v, want 40", got)
	}
	// With MICA2, 10 m hop → level 4; 40 m span → level 2.
	if l, ok := f.LevelTo(0, 1); !ok || l != 4 {
		t.Fatalf("LevelTo(0,1)=(%v,%v), want (4,true)", l, ok)
	}
	if l, ok := f.LevelTo(0, 4); !ok || l != 2 {
		t.Fatalf("LevelTo(0,4)=(%v,%v), want (2,true)", l, ok)
	}
}

func TestOutOfRangeIDPanics(t *testing.T) {
	f := mustGrid(t, 4, 5, radio.MICA2())
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Pos", func() { f.Pos(99) }},
		{"Dist", func() { f.Dist(0, -3) }},
		{"Zone", func() { f.ZoneNeighbors(4) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: out-of-range id should panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
