package topo

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
)

func waypointField(t *testing.T, n int) *Field {
	t.Helper()
	m, err := radio.ScaledMICA2(20)
	if err != nil {
		t.Fatalf("radio: %v", err)
	}
	f, err := NewGridField(n, DefaultGridSpacing, m)
	if err != nil {
		t.Fatalf("field: %v", err)
	}
	return f
}

func defaultWaypointCfg() WaypointConfig {
	return WaypointConfig{SpeedMin: 5, SpeedMax: 15, PauseMin: 0, PauseMax: 100 * time.Millisecond}
}

func TestWaypointConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     WaypointConfig
		wantErr bool
	}{
		{"default", defaultWaypointCfg(), false},
		{"fixed speed no pause", WaypointConfig{SpeedMin: 3, SpeedMax: 3}, false},
		{"negative speed", WaypointConfig{SpeedMin: -1, SpeedMax: 3}, true},
		{"zero max speed", WaypointConfig{SpeedMin: 0, SpeedMax: 0}, true},
		{"inverted speeds", WaypointConfig{SpeedMin: 5, SpeedMax: 2}, true},
		{"negative pause", WaypointConfig{SpeedMin: 1, SpeedMax: 2, PauseMin: -1}, true},
		{"inverted pauses", WaypointConfig{SpeedMin: 1, SpeedMax: 2, PauseMin: 5, PauseMax: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestNewWaypointValidation(t *testing.T) {
	f := waypointField(t, 25)
	rng := sim.NewRNG(1)
	if _, err := NewWaypoint(nil, defaultWaypointCfg(), 0.5, rng); err == nil {
		t.Fatal("nil field accepted")
	}
	if _, err := NewWaypoint(f, defaultWaypointCfg(), 0.5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewWaypoint(f, WaypointConfig{}, 0.5, rng); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestWaypointMobileSelection(t *testing.T) {
	f := waypointField(t, 100)
	wp, err := NewWaypoint(f, defaultWaypointCfg(), 0.25, sim.NewRNG(3))
	if err != nil {
		t.Fatalf("NewWaypoint: %v", err)
	}
	ids := wp.MobileIDs()
	if len(ids) != 25 {
		t.Fatalf("got %d mobile nodes for frac 0.25 of 100, want 25", len(ids))
	}
	seen := map[packet.NodeID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("node %d selected twice", id)
		}
		seen[id] = true
	}

	// Non-positive fraction moves nothing.
	still, err := NewWaypoint(f, defaultWaypointCfg(), 0, sim.NewRNG(3))
	if err != nil {
		t.Fatalf("NewWaypoint frac=0: %v", err)
	}
	if n := still.Advance(time.Second); n != 0 {
		t.Fatalf("frac=0 moved %d nodes", n)
	}
}

// TestWaypointOnlyMobileNodesMove pins down the moving set: after many
// ticks, every non-mobile node is exactly where it started.
func TestWaypointOnlyMobileNodesMove(t *testing.T) {
	f := waypointField(t, 49)
	before := make([]geom.Point, f.N())
	for i := range before {
		before[i] = f.Pos(packet.NodeID(i))
	}
	wp, err := NewWaypoint(f, defaultWaypointCfg(), 0.2, sim.NewRNG(8))
	if err != nil {
		t.Fatalf("NewWaypoint: %v", err)
	}
	mobile := map[packet.NodeID]bool{}
	for _, id := range wp.MobileIDs() {
		mobile[id] = true
	}
	for i := 0; i < 50; i++ {
		wp.Advance(100 * time.Millisecond)
	}
	for i := range before {
		id := packet.NodeID(i)
		if mobile[id] {
			continue
		}
		if f.Pos(id) != before[i] {
			t.Fatalf("immobile node %d moved from %v to %v", id, before[i], f.Pos(id))
		}
	}
}

// TestWaypointSpeedBound verifies per-tick displacement never exceeds what
// the fastest leg allows, and that positions stay inside the field.
func TestWaypointSpeedBound(t *testing.T) {
	f := waypointField(t, 64)
	cfg := defaultWaypointCfg()
	wp, err := NewWaypoint(f, cfg, 0.5, sim.NewRNG(2))
	if err != nil {
		t.Fatalf("NewWaypoint: %v", err)
	}
	const dt = 100 * time.Millisecond
	maxStep := cfg.SpeedMax * dt.Seconds() * (1 + 1e-9)
	for tick := 0; tick < 100; tick++ {
		prev := make([]geom.Point, f.N())
		for i := range prev {
			prev[i] = f.Pos(packet.NodeID(i))
		}
		wp.Advance(dt)
		for i := range prev {
			id := packet.NodeID(i)
			p := f.Pos(id)
			if !f.Bounds().Contains(p) {
				t.Fatalf("tick %d: node %d at %v escaped bounds %+v", tick, id, p, f.Bounds())
			}
			if d := prev[i].Dist(p); d > maxStep {
				t.Fatalf("tick %d: node %d moved %v m in %v (max %v)", tick, id, d, dt, maxStep)
			}
		}
	}
}

// TestWaypointPauseHolds arms an enormous pause window: after the first
// arrival a node must sit still, so over a short horizon total motion is
// bounded and some ticks move nothing.
func TestWaypointPauseHolds(t *testing.T) {
	f := waypointField(t, 25)
	cfg := WaypointConfig{SpeedMin: 1000, SpeedMax: 1000, PauseMin: time.Hour, PauseMax: time.Hour}
	wp, err := NewWaypoint(f, cfg, 1, sim.NewRNG(6))
	if err != nil {
		t.Fatalf("NewWaypoint: %v", err)
	}
	// At 1000 m/s every node reaches its first target within the first
	// tick and starts its hour-long pause.
	wp.Advance(time.Second)
	for tick := 0; tick < 10; tick++ {
		if n := wp.Advance(100 * time.Millisecond); n != 0 {
			t.Fatalf("tick %d: %d nodes moved during an hour-long pause", tick, n)
		}
	}
}

// TestWaypointDeterminism: same seed, same trajectories.
func TestWaypointDeterminism(t *testing.T) {
	run := func() []geom.Point {
		f := waypointField(t, 36)
		wp, err := NewWaypoint(f, defaultWaypointCfg(), 0.5, sim.NewRNG(12))
		if err != nil {
			t.Fatalf("NewWaypoint: %v", err)
		}
		for i := 0; i < 30; i++ {
			wp.Advance(100 * time.Millisecond)
		}
		out := make([]geom.Point, f.N())
		for i := range out {
			out[i] = f.Pos(packet.NodeID(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at node %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestWaypointEpochInvalidation is the acceptance-criteria check: every
// radio query after a waypoint step must agree with a brute-force scan, at
// every power level, across many interleaved advances — i.e. the
// incremental cache invalidation Move performs is sound under continuous
// small-step motion (run with -race in CI like the rest of the suite).
func TestWaypointEpochInvalidation(t *testing.T) {
	f := waypointField(t, 81)
	wp, err := NewWaypoint(f, defaultWaypointCfg(), 0.3, sim.NewRNG(17))
	if err != nil {
		t.Fatalf("NewWaypoint: %v", err)
	}
	levels := f.Model().NumLevels()
	check := func(tick int) {
		for i := 0; i < f.N(); i++ {
			id := packet.NodeID(i)
			for l := 1; l <= levels; l++ {
				got := f.ReachedBy(id, radio.Level(l))
				var want []packet.NodeID
				for j := 0; j < f.N(); j++ {
					jid := packet.NodeID(j)
					if jid != id && f.InRange(id, jid, radio.Level(l)) {
						want = append(want, jid)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("tick %d node %d level %d: %d neighbors, brute force %d", tick, id, l, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("tick %d node %d level %d: neighbor[%d]=%d, brute force %d", tick, id, l, k, got[k], want[k])
					}
				}
			}
		}
	}
	epoch := f.Epoch()
	for tick := 0; tick < 20; tick++ {
		moved := wp.Advance(100 * time.Millisecond)
		if moved > 0 && f.Epoch() == epoch {
			t.Fatalf("tick %d: %d nodes moved but the mobility epoch did not advance", tick, moved)
		}
		epoch = f.Epoch()
		check(tick)
	}
}

func TestNewClusteredFieldValidation(t *testing.T) {
	m, err := radio.ScaledMICA2(20)
	if err != nil {
		t.Fatalf("radio: %v", err)
	}
	bounds := geom.Rect{Max: geom.Point{X: 50, Y: 50}}
	rng := sim.NewRNG(1)
	if _, err := NewClusteredField(0, 4, 2, bounds, m, rng); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewClusteredField(10, 0, 2, bounds, m, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewClusteredField(10, 4, 0, bounds, m, rng); err == nil {
		t.Fatal("sigma=0 accepted")
	}
	if _, err := NewClusteredField(10, 4, 2, geom.Rect{}, m, rng); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewClusteredField(10, 4, 2, bounds, nil, rng); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewClusteredField(10, 4, 2, bounds, m, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	f, err := NewClusteredField(30, 3, 2, bounds, m, rng)
	if err != nil {
		t.Fatalf("NewClusteredField: %v", err)
	}
	if f.N() != 30 {
		t.Fatalf("N=%d, want 30", f.N())
	}
	for i := 0; i < f.N(); i++ {
		if !bounds.Contains(f.Pos(packet.NodeID(i))) {
			t.Fatalf("node %d at %v outside bounds", i, f.Pos(packet.NodeID(i)))
		}
	}
}
