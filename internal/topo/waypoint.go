// waypoint.go is the random-waypoint mobility model: each mobile node
// repeatedly picks a uniform random destination in the field, travels
// toward it at a per-leg uniform random speed, pauses there for a uniform
// random time, and repeats. Unlike the paper's relocation model (teleport a
// fraction of the nodes per event, RelocateFraction), waypoint motion is
// continuous, so successive positions are correlated and every step flows
// through Field.Move — exercising the spatial index's incremental
// invalidation path instead of the near-global stamping a mass relocation
// triggers.
package topo

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// WaypointConfig parameterizes the random-waypoint model. Speeds are in
// meters per simulated second; each leg draws its speed uniformly from
// [SpeedMin, SpeedMax] and each arrival pauses uniformly from
// [PauseMin, PauseMax].
type WaypointConfig struct {
	SpeedMin, SpeedMax float64
	PauseMin, PauseMax time.Duration
}

// Validate checks the configuration.
func (c WaypointConfig) Validate() error {
	if c.SpeedMin < 0 {
		return fmt.Errorf("topo: negative waypoint speed %v", c.SpeedMin)
	}
	if c.SpeedMax <= 0 {
		return fmt.Errorf("topo: non-positive waypoint max speed %v", c.SpeedMax)
	}
	if c.SpeedMax < c.SpeedMin {
		return fmt.Errorf("topo: waypoint speed range [%v, %v] inverted", c.SpeedMin, c.SpeedMax)
	}
	if c.PauseMin < 0 || c.PauseMax < c.PauseMin {
		return fmt.Errorf("topo: invalid waypoint pause window [%v, %v]", c.PauseMin, c.PauseMax)
	}
	return nil
}

// waypointLeg is one mobile node's motion state: where it is headed, how
// fast, and how much pause remains before it moves again.
type waypointLeg struct {
	id     packet.NodeID
	target geom.Point
	speed  float64 // m/s for the current leg; 0 only if SpeedMin == SpeedMax == 0
	pause  time.Duration
}

// Waypoint drives a fraction of a Field's nodes along random-waypoint
// trajectories. Like the Field it moves, a Waypoint belongs to one
// single-threaded scheduler; Advance is not safe for concurrent use.
type Waypoint struct {
	f    *Field
	cfg  WaypointConfig
	rng  *sim.RNG
	legs []waypointLeg
}

// NewWaypoint selects ceil(frac·N) random nodes as mobile (same selection
// rule as RelocateFraction) and arms each with an initial destination and
// speed. frac is clamped to [0, 1]; a non-positive frac yields a Waypoint
// that moves nothing.
func NewWaypoint(f *Field, cfg WaypointConfig, frac float64, rng *sim.RNG) (*Waypoint, error) {
	if f == nil {
		return nil, fmt.Errorf("topo: nil field")
	}
	if rng == nil {
		return nil, fmt.Errorf("topo: nil rng")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Waypoint{f: f, cfg: cfg, rng: rng}
	if frac <= 0 {
		return w, nil
	}
	if frac > 1 {
		frac = 1
	}
	k := ceilFrac(frac, f.N())
	perm := rng.Perm(f.N())
	w.legs = make([]waypointLeg, 0, k)
	for _, idx := range perm[:k] {
		leg := waypointLeg{id: packet.NodeID(idx)}
		w.rollLeg(&leg)
		w.legs = append(w.legs, leg)
	}
	return w, nil
}

// MobileIDs returns the mobile node ids in selection order.
func (w *Waypoint) MobileIDs() []packet.NodeID {
	ids := make([]packet.NodeID, len(w.legs))
	for i, l := range w.legs {
		ids[i] = l.id
	}
	return ids
}

// rollLeg draws a fresh destination and speed for the leg.
func (w *Waypoint) rollLeg(l *waypointLeg) {
	l.target = w.f.Bounds().UniformPoint(w.rng.Float64)
	l.speed = w.rng.Uniform(w.cfg.SpeedMin, w.cfg.SpeedMax)
}

// Advance moves every mobile node dt of simulated time along its
// trajectory, consuming pauses and rolling new legs on arrival. Returns
// how many nodes changed position (a node pausing for the whole step does
// not count). Every position change goes through Field.Move, so neighbor
// caches invalidate incrementally.
func (w *Waypoint) Advance(dt time.Duration) int {
	moved := 0
	for i := range w.legs {
		if w.advanceLeg(&w.legs[i], dt) {
			moved++
		}
	}
	return moved
}

// advanceLeg walks one node through dt: pause, travel, arrival, repeat.
func (w *Waypoint) advanceLeg(l *waypointLeg, dt time.Duration) bool {
	movedAny := false
	for dt > 0 {
		if l.pause > 0 {
			if l.pause >= dt {
				l.pause -= dt
				return movedAny
			}
			dt -= l.pause
			l.pause = 0
		}
		if l.speed <= 0 {
			// A zero-speed leg can never arrive; re-roll once in case the
			// speed range allows motion, else the node is pinned this step.
			w.rollLeg(l)
			if l.speed <= 0 {
				return movedAny
			}
		}
		pos := w.f.Pos(l.id)
		remaining := pos.Dist(l.target)
		step := l.speed * dt.Seconds()
		if step < remaining {
			frac := step / remaining
			w.f.Move(l.id, geom.Point{
				X: pos.X + (l.target.X-pos.X)*frac,
				Y: pos.Y + (l.target.Y-pos.Y)*frac,
			})
			return true
		}
		// Arrival: land exactly on the target, spend the travel share of
		// dt, then pause and roll the next leg.
		if remaining > 0 {
			w.f.Move(l.id, l.target)
			movedAny = true
			dt -= time.Duration(remaining / l.speed * float64(time.Second))
		}
		l.pause = w.rng.UniformDuration(w.cfg.PauseMin, w.cfg.PauseMax)
		w.rollLeg(l)
		if l.pause == 0 && w.f.Pos(l.id).Dist(l.target) == 0 {
			// Degenerate field (single-point bounds): no destination can
			// ever be elsewhere, so stop instead of spinning.
			return movedAny
		}
	}
	return movedAny
}
