// index.go is the spatial substrate behind the Field's radio queries: a
// uniform bucket grid over the field rectangle (cell size = the radio's
// maximum range, so a range query only visits the 3×3 cell neighborhood)
// plus per-node, per-power-level neighbor caches invalidated by a mobility
// epoch counter. Together they make ReachedBy/Contenders/ZoneNeighbors
// O(neighbors) with zero allocations on the steady-state query path, where
// the pre-index implementation scanned all N nodes per query and rebuilt
// the zone table in O(N²) after every mobility event.
//
// # Cache ownership
//
// ZoneNeighbors and ReachedBy return slices owned by the neighbor cache:
// callers must not modify them and must not retain them across a mobility
// event (Move, RelocateFraction, InvalidateAll). A rebuild never writes
// into a previously returned slice — it swaps in freshly allocated backing —
// so a caller iterating a list while *other* nodes rebuild theirs is safe.
// This is sound under the DESIGN.md §5.1 concurrency contract: a Field
// belongs to exactly one single-threaded scheduler, so no query can race a
// mobility event, and sweep workers never share a Field.
//
// # Epoch invalidation
//
// epoch counts mobility events. nodeEpoch[i] is the last epoch at which
// node i's neighborhood changed; a cache entry is valid while its build
// epoch is >= nodeEpoch[i]. Moving one node bumps the global epoch and
// stamps only the nodes within max range of the old and new positions (two
// 3×3 bucket queries), so a k-node relocation dirties ~2k neighborhoods
// instead of the whole field, and rebuilds are lazy: only nodes actually
// queried afterwards pay the O(neighbors) rebuild.
package topo

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/zone"
)

// spatialIndex is the uniform bucket grid: buckets[c] holds the ids of the
// nodes currently inside cell c, in no particular order (query results are
// sorted by the cache layer, so bucket order never reaches callers). The
// per-axis cell cap is derived from the node count (geom.MaxCellsForCount)
// so bucket memory stays O(N) while neighbor queries stay O(degree) at any
// scale; cell contents are a pure function of positions, so the cap choice
// never changes query results — only how much gets scanned to produce them.
type spatialIndex struct {
	grid    geom.CellGrid
	buckets [][]packet.NodeID
	cell    []int32 // node id -> flattened bucket index
}

func newSpatialIndex(bounds geom.Rect, cellSize float64, pos []geom.Point) *spatialIndex {
	s := &spatialIndex{
		grid: geom.NewCellGrid(bounds, cellSize, geom.MaxCellsForCount(len(pos))),
		cell: make([]int32, len(pos)),
	}
	s.buckets = make([][]packet.NodeID, s.grid.NumCells())
	for i, p := range pos {
		c := s.grid.Index(s.grid.CellOf(p))
		s.buckets[c] = append(s.buckets[c], packet.NodeID(i))
		s.cell[i] = int32(c)
	}
	return s
}

// move rebuckets node id after its position changed to p.
func (s *spatialIndex) move(id packet.NodeID, p geom.Point) {
	to := int32(s.grid.Index(s.grid.CellOf(p)))
	from := s.cell[id]
	if to == from {
		return
	}
	b := s.buckets[from]
	for i, n := range b {
		if n == id {
			b[i] = b[len(b)-1]
			s.buckets[from] = b[:len(b)-1]
			break
		}
	}
	s.buckets[to] = append(s.buckets[to], id)
	s.cell[id] = to
}

// visitNeighborhood calls fn for each bucket of the 3×3 cell neighborhood
// around p — the superset of every node within one cell size of p.
func (s *spatialIndex) visitNeighborhood(p geom.Point, fn func(ids []packet.NodeID)) {
	cx, cy := s.grid.CellOf(p)
	x0, x1 := cx-1, cx+1
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= s.grid.Cols() {
		x1 = s.grid.Cols() - 1
	}
	y0, y1 := cy-1, cy+1
	if y0 < 0 {
		y0 = 0
	}
	if y1 >= s.grid.Rows() {
		y1 = s.grid.Rows() - 1
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if b := s.buckets[s.grid.Index(x, y)]; len(b) > 0 {
				fn(b)
			}
		}
	}
}

// nodeCache is one node's cached neighbor lists. byLevel[l-1] holds the ids
// reachable at power level l, sorted ascending — the same order the
// pre-index full scans produced, which keeps all simulation output
// bit-identical. The lists share one backing array per rebuild; the [][]
// header slice is allocated once per node and reused.
type nodeCache struct {
	epoch   uint64 // epoch the lists were built at; valid while >= nodeEpoch
	byLevel [][]packet.NodeID
}

// candidate is a rebuild scratch entry: a zone neighbor and its squared
// distance, used to classify it into power levels.
type candidate struct {
	id packet.NodeID
	d2 float64
}

// rebuildScratch is the reusable workspace one rebuild needs: the candidate
// buffer and the per-level counts. The Field owns one for the lazy
// single-threaded path; WarmAll allocates one per worker so parallel
// rebuilds never share it.
type rebuildScratch struct {
	cands  []candidate
	counts []int // per-level counts, len == NumLevels
}

// ensure returns node id's cache, rebuilding it if a mobility event
// invalidated it. The steady-state path (valid cache) does no work beyond
// the epoch comparison and allocates nothing.
func (f *Field) ensure(id packet.NodeID) *nodeCache {
	c := &f.cache[id]
	if c.epoch >= f.nodeEpoch[id] {
		return c
	}
	f.rebuildNode(id, c, &f.scratch)
	return c
}

// rebuildNode recomputes every power level's neighbor list for one node by
// scanning only the 3×3 bucket neighborhood: O(neighbors), not O(N). It
// reads only frozen state (positions, buckets, ranges) plus the caller's
// scratch, and writes only node id's own cache entry — the disjoint-write
// shape that lets WarmAll run it from many workers at once.
func (f *Field) rebuildNode(id packet.NodeID, c *nodeCache, ws *rebuildScratch) {
	p := f.pos[id]
	cands := ws.cands[:0]
	rmax2 := f.rangeSq[0]
	f.index.visitNeighborhood(p, func(ids []packet.NodeID) {
		for _, j := range ids {
			if j == id {
				continue
			}
			if d2 := p.Dist2(f.pos[j]); d2 <= rmax2 {
				cands = append(cands, candidate{id: j, d2: d2})
			}
		}
	})
	slices.SortFunc(cands, func(a, b candidate) int { return cmp.Compare(a.id, b.id) })
	ws.cands = cands // keep the grown capacity for the next rebuild

	// Levels are nested (rangeSq is strictly decreasing), so one pass per
	// level over the sorted candidates materializes each list in id order.
	nl := len(f.rangeSq)
	if ws.counts == nil {
		ws.counts = make([]int, nl)
	}
	counts := ws.counts
	total := 0
	for l := 0; l < nl; l++ {
		counts[l] = 0
	}
	for _, cand := range cands {
		for l := 0; l < nl && cand.d2 <= f.rangeSq[l]; l++ {
			counts[l]++
		}
	}
	for l := 0; l < nl; l++ {
		total += counts[l]
	}
	// Fresh backing every rebuild: previously returned slices stay intact
	// (see "Cache ownership" above).
	backing := make([]packet.NodeID, 0, total)
	if c.byLevel == nil {
		c.byLevel = make([][]packet.NodeID, nl)
	}
	for l := 0; l < nl; l++ {
		start := len(backing)
		r2 := f.rangeSq[l]
		for _, cand := range cands {
			if cand.d2 <= r2 {
				backing = append(backing, cand.id)
			}
		}
		c.byLevel[l] = backing[start:len(backing):len(backing)]
	}
	c.epoch = f.epoch
}

// WarmAll rebuilds every invalid neighbor cache using up to workers
// goroutines, partitioned into contiguous node ranges with per-worker
// scratch. Cache contents are a pure function of positions (each node's
// lists are rebuilt from frozen inputs and written only by its own range's
// worker), so a warmed field answers every query exactly as lazy rebuilds
// would — WarmAll changes when the work happens, never what it produces.
//
// Call it before read-only parallel passes over the field (graph building,
// parallel route derivation): once every cache is valid, ZoneNeighbors /
// ReachedBy / Contenders touch no shared mutable state.
func (f *Field) WarmAll(workers int) {
	zone.For(workers, len(f.pos), func(_, lo, hi int) {
		var ws rebuildScratch
		for i := lo; i < hi; i++ {
			c := &f.cache[i]
			if c.epoch < f.nodeEpoch[i] {
				f.rebuildNode(packet.NodeID(i), c, &ws)
			}
		}
	})
}

// invalidateAround stamps every node within max radio range of p with the
// current epoch: exactly the nodes whose neighbor lists can gain or lose a
// node that moved from or to p.
func (f *Field) invalidateAround(p geom.Point) {
	rmax2 := f.rangeSq[0]
	f.index.visitNeighborhood(p, func(ids []packet.NodeID) {
		for _, j := range ids {
			if p.Dist2(f.pos[j]) <= rmax2 {
				f.nodeEpoch[j] = f.epoch
			}
		}
	})
}

// InvalidateAll discards every cached neighbor list, forcing each node's
// next query to rebuild. Mobility events invalidate incrementally on their
// own; this exists for callers (and benchmarks) that want the pre-index
// full-rebuild behavior as a baseline.
func (f *Field) InvalidateAll() {
	f.epoch++
	for i := range f.nodeEpoch {
		f.nodeEpoch[i] = f.epoch
	}
}

// Epoch returns the mobility epoch counter: it increments once per Move,
// RelocateFraction, or InvalidateAll. Tests use it to assert invalidation
// behavior; simulation code has no need for it.
func (f *Field) Epoch() uint64 { return f.epoch }

// ceilFrac returns ceil(frac·n) with a magnitude-relative tolerance that
// absorbs binary rounding in the product: 0.1·100 must be 10, not 11, even
// though float64(0.1)*100 lands just above 10. The tolerance (1e-12
// relative) is far below any meaningful fractional part, so genuinely
// fractional products (169·0.05 = 8.45) still round up.
func ceilFrac(frac float64, n int) int {
	k := int(math.Ceil(frac * float64(n) * (1 - 1e-12)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}
