// Package stats summarizes small replicate samples: the mean, sample
// standard deviation, 95% confidence half-width, minimum, and maximum the
// replication engine reports per metric. It depends on nothing but the
// standard library, so every layer — experiment, campaign, the commands —
// can use it without import cycles.
//
// All computations are order-deterministic two-pass formulas over the
// input slice, so summaries of the same replicate vector are bit-identical
// regardless of how the replicates were scheduled — the property the
// byte-identical-at-any-pool-size contract of campaign output relies on.
package stats

import "math"

// Summary describes one metric across a replicate sample.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`  // sample standard deviation (n-1); 0 when N < 2
	CI95 float64 `json:"ci95"` // 95% confidence half-width of the mean (Student t)
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Describe summarizes xs. An empty sample yields the zero Summary; a
// single observation has zero Std and CI95.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = TCritical95(s.N-1) * s.Std / math.Sqrt(float64(s.N))
	return s
}

// DescribeColumns summarizes each column of rows: row r holds the metric
// vector of replicate r, and the returned slice has one Summary per
// column. Short rows contribute only to the columns they have.
func DescribeColumns(rows [][]float64) []Summary {
	width := 0
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	out := make([]Summary, width)
	col := make([]float64, 0, len(rows))
	for c := range out {
		col = col[:0]
		for _, r := range rows {
			if c < len(r) {
				col = append(col, r[c])
			}
		}
		out[c] = Describe(col)
	}
	return out
}

// tTable95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom (index df-1).
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom: exact table values through df = 30, then the
// conventional interval anchors (40, 60, 120) and the normal limit 1.960.
// Non-positive df returns the df = 1 value.
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return tTable95[0]
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
