package stats

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescribeKnownSample(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population variance 4, sample
	// variance 32/7.
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("Describe: %+v", s)
	}
	wantStd := math.Sqrt(32.0 / 7.0)
	if !approx(s.Std, wantStd, 1e-12) {
		t.Fatalf("Std = %v, want %v", s.Std, wantStd)
	}
	wantCI := 2.365 * wantStd / math.Sqrt(8) // t(df=7) = 2.365
	if !approx(s.CI95, wantCI, 1e-12) {
		t.Fatalf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestDescribeDegenerateSamples(t *testing.T) {
	if s := Describe(nil); s != (Summary{}) {
		t.Fatalf("empty sample: %+v", s)
	}
	s := Describe([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.CI95 != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single sample: %+v", s)
	}
	s = Describe([]float64{2, 2, 2})
	if s.Std != 0 || s.CI95 != 0 || s.Mean != 2 {
		t.Fatalf("constant sample: %+v", s)
	}
}

func TestDescribeColumns(t *testing.T) {
	cols := DescribeColumns([][]float64{{1, 10}, {3, 30}})
	if len(cols) != 2 {
		t.Fatalf("%d columns, want 2", len(cols))
	}
	if cols[0].Mean != 2 || cols[1].Mean != 20 {
		t.Fatalf("column means: %+v", cols)
	}
	if cols[0].N != 2 || cols[1].Min != 10 || cols[1].Max != 30 {
		t.Fatalf("column summaries: %+v", cols)
	}
	if len(DescribeColumns(nil)) != 0 {
		t.Fatal("no rows should yield no columns")
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 12.706}, {1, 12.706}, {4, 2.776}, {30, 2.042},
		{31, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Fatalf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}
