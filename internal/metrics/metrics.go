// Package metrics collects the two quantities the paper evaluates — energy
// and end-to-end delay — plus protocol event counters used by tests and the
// experiment harness.
//
// Energy is attributed per node and per cause (data-plane transmit, receive,
// and control-plane/routing), because §5.1.3 requires charging SPMS for the
// Bellman-Ford traffic that mobility triggers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/radio"
)

// EnergyBreakdown is a node's cumulative energy by cause, in microjoules.
type EnergyBreakdown struct {
	Tx   radio.Energy // data-plane transmissions (ADV/REQ/DATA)
	Rx   radio.Energy // receptions
	Ctrl radio.Energy // routing-protocol traffic (DBF rounds)
}

// Total returns the node's total energy.
func (b EnergyBreakdown) Total() radio.Energy { return b.Tx + b.Rx + b.Ctrl }

// EnergyAccount tracks per-node energy for a simulation run.
type EnergyAccount struct {
	perNode []EnergyBreakdown
}

// NewEnergyAccount creates an account for n nodes.
func NewEnergyAccount(n int) *EnergyAccount {
	if n < 0 {
		n = 0
	}
	return &EnergyAccount{perNode: make([]EnergyBreakdown, n)}
}

// N returns the number of nodes tracked.
func (a *EnergyAccount) N() int { return len(a.perNode) }

func (a *EnergyAccount) check(id packet.NodeID, e radio.Energy) {
	if id < 0 || int(id) >= len(a.perNode) {
		panic(fmt.Sprintf("metrics: node id %d out of range [0,%d)", id, len(a.perNode)))
	}
	if e < 0 {
		panic(fmt.Sprintf("metrics: negative energy %v for node %d", e, id))
	}
}

// AddTx charges a data-plane transmission to a node.
func (a *EnergyAccount) AddTx(id packet.NodeID, e radio.Energy) {
	a.check(id, e)
	a.perNode[id].Tx += e
}

// AddRx charges a reception to a node.
func (a *EnergyAccount) AddRx(id packet.NodeID, e radio.Energy) {
	a.check(id, e)
	a.perNode[id].Rx += e
}

// AddCtrl charges routing-control energy to a node.
func (a *EnergyAccount) AddCtrl(id packet.NodeID, e radio.Energy) {
	a.check(id, e)
	a.perNode[id].Ctrl += e
}

// Node returns a node's breakdown.
func (a *EnergyAccount) Node(id packet.NodeID) EnergyBreakdown {
	a.check(id, 0)
	return a.perNode[id]
}

// Total sums every node's total energy.
func (a *EnergyAccount) Total() radio.Energy {
	var t radio.Energy
	for _, b := range a.perNode {
		t += b.Total()
	}
	return t
}

// TotalBreakdown sums the per-cause totals across nodes.
func (a *EnergyAccount) TotalBreakdown() EnergyBreakdown {
	var out EnergyBreakdown
	for _, b := range a.perNode {
		out.Tx += b.Tx
		out.Rx += b.Rx
		out.Ctrl += b.Ctrl
	}
	return out
}

// DelayStats accumulates end-to-end delay samples. The paper measures delay
// "from the time the ADV packet is sent out by the source to the time that
// the data packet is received at the destination" and reports the average
// across all packets.
type DelayStats struct {
	samples []time.Duration
	sum     time.Duration
	min     time.Duration
	max     time.Duration

	// sorted caches the sorted copy Percentile ranks into; dirty marks it
	// stale. Percentile is called once per delay metric per sweep point
	// (mean/p95/max aggregation paths), so re-sorting the full sample set
	// on every call was an O(n log n) tax paid several times per point —
	// now paid once per Record burst. The backing array is reused across
	// invalidations.
	sorted []time.Duration
	dirty  bool
}

// NewDelayStats returns an empty sample set.
func NewDelayStats() *DelayStats { return &DelayStats{} }

// Record adds one delivery delay sample. Negative samples panic: a negative
// end-to-end delay is always an accounting bug.
func (d *DelayStats) Record(delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("metrics: negative delay %v", delay))
	}
	if len(d.samples) == 0 || delay < d.min {
		d.min = delay
	}
	if len(d.samples) == 0 || delay > d.max {
		d.max = delay
	}
	d.samples = append(d.samples, delay)
	d.sum += delay
	d.dirty = true
}

// Count returns the number of samples.
func (d *DelayStats) Count() int { return len(d.samples) }

// Mean returns the average delay, or 0 with no samples.
func (d *DelayStats) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / time.Duration(len(d.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (d *DelayStats) Min() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest sample, or 0 with no samples.
func (d *DelayStats) Max() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	return d.max
}

// Percentile returns the p-th percentile (0 < p ≤ 100) by nearest-rank on
// a sorted copy, or 0 with no samples. The sorted copy is cached and
// invalidated by Record, so repeated percentile queries between recordings
// sort at most once.
func (d *DelayStats) Percentile(p float64) time.Duration {
	if len(d.samples) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	if d.dirty || len(d.sorted) != len(d.samples) {
		d.sorted = append(d.sorted[:0], d.samples...)
		sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
		d.dirty = false
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.sorted))))
	if rank < 1 {
		rank = 1
	}
	return d.sorted[rank-1]
}

// Counters tallies protocol events. Tests assert on these to verify the
// state machines take the intended paths (e.g. failover counts under
// injected failures).
type Counters struct {
	// Sent counts transmissions by kind, indexed directly (c.Sent[packet.ADV]).
	// A flat array rather than a map: CountSend sits on the per-transmission
	// hot path, and the array increment is a single indexed store with no
	// hashing and no allocation.
	Sent       [packet.NumKinds]uint64
	Delivered  uint64 // DATA packets delivered to a requester
	Duplicates uint64 // data received that the node already had
	Timeouts   uint64 // τADV or τDAT expirations
	Failovers  uint64 // requests redirected to SCONE / direct PRONE
	Drops      uint64 // packets lost to dead or out-of-range nodes
}

// NewCounters returns zeroed counters.
func NewCounters() *Counters {
	return &Counters{}
}

// CountSend records one transmission of the given kind.
func (c *Counters) CountSend(k packet.Kind) { c.Sent[k]++ }

// TotalSent sums transmissions across kinds.
func (c *Counters) TotalSent() uint64 {
	var t uint64
	for _, v := range c.Sent {
		t += v
	}
	return t
}
