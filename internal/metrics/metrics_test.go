package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/radio"
)

func TestEnergyAccountBasics(t *testing.T) {
	a := NewEnergyAccount(3)
	if a.N() != 3 {
		t.Fatalf("N=%d, want 3", a.N())
	}
	a.AddTx(0, 5)
	a.AddRx(0, 2)
	a.AddCtrl(0, 1)
	a.AddTx(2, 10)
	if got := a.Node(0); got.Tx != 5 || got.Rx != 2 || got.Ctrl != 1 {
		t.Fatalf("node 0 breakdown = %+v", got)
	}
	if got := a.Node(0).Total(); got != 8 {
		t.Fatalf("node 0 total = %v, want 8", got)
	}
	if got := a.Node(1).Total(); got != 0 {
		t.Fatalf("untouched node total = %v, want 0", got)
	}
	if got := a.Total(); got != 18 {
		t.Fatalf("Total=%v, want 18", got)
	}
	tb := a.TotalBreakdown()
	if tb.Tx != 15 || tb.Rx != 2 || tb.Ctrl != 1 {
		t.Fatalf("TotalBreakdown=%+v", tb)
	}
}

func TestEnergyAccountPanics(t *testing.T) {
	a := NewEnergyAccount(2)
	cases := map[string]func(){
		"out of range":    func() { a.AddTx(5, 1) },
		"negative id":     func() { a.AddRx(-1, 1) },
		"negative energy": func() { a.AddCtrl(0, -0.5) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestEnergyAccountNegativeSize(t *testing.T) {
	a := NewEnergyAccount(-5)
	if a.N() != 0 {
		t.Fatalf("N=%d, want 0", a.N())
	}
}

func TestEnergyAccountMonotonicProperty(t *testing.T) {
	prop := func(adds []uint8) bool {
		a := NewEnergyAccount(1)
		var prev radio.Energy
		for _, v := range adds {
			a.AddTx(0, radio.Energy(v))
			if a.Total() < prev {
				return false
			}
			prev = a.Total()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayStatsEmpty(t *testing.T) {
	d := NewDelayStats()
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty stats should be all zero")
	}
}

func TestDelayStatsAggregates(t *testing.T) {
	d := NewDelayStats()
	for _, ms := range []int{5, 1, 9, 3} {
		d.Record(time.Duration(ms) * time.Millisecond)
	}
	if d.Count() != 4 {
		t.Fatalf("Count=%d, want 4", d.Count())
	}
	if d.Mean() != 4500*time.Microsecond {
		t.Fatalf("Mean=%v, want 4.5ms", d.Mean())
	}
	if d.Min() != time.Millisecond || d.Max() != 9*time.Millisecond {
		t.Fatalf("Min/Max=%v/%v", d.Min(), d.Max())
	}
}

func TestDelayStatsPercentile(t *testing.T) {
	d := NewDelayStats()
	for i := 1; i <= 100; i++ {
		d.Record(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{150, 100 * time.Millisecond}, // clamps
		{1, time.Millisecond},
	}
	for _, tt := range tests {
		if got := d.Percentile(tt.p); got != tt.want {
			t.Fatalf("P%v=%v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestDelayStatsNegativePanics(t *testing.T) {
	d := NewDelayStats()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	d.Record(-time.Millisecond)
}

func TestDelayStatsMeanBoundedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDelayStats()
		for _, v := range raw {
			d.Record(time.Duration(v) * time.Microsecond)
		}
		return d.Min() <= d.Mean() && d.Mean() <= d.Max()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.CountSend(packet.ADV)
	c.CountSend(packet.ADV)
	c.CountSend(packet.DATA)
	if c.Sent[packet.ADV] != 2 || c.Sent[packet.DATA] != 1 {
		t.Fatalf("Sent=%v", c.Sent)
	}
	if c.TotalSent() != 3 {
		t.Fatalf("TotalSent=%d, want 3", c.TotalSent())
	}
	c.Delivered++
	c.Failovers++
	if c.Delivered != 1 || c.Failovers != 1 {
		t.Fatal("manual counters broken")
	}
}
