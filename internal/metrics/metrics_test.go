package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/radio"
)

func TestEnergyAccountBasics(t *testing.T) {
	a := NewEnergyAccount(3)
	if a.N() != 3 {
		t.Fatalf("N=%d, want 3", a.N())
	}
	a.AddTx(0, 5)
	a.AddRx(0, 2)
	a.AddCtrl(0, 1)
	a.AddTx(2, 10)
	if got := a.Node(0); got.Tx != 5 || got.Rx != 2 || got.Ctrl != 1 {
		t.Fatalf("node 0 breakdown = %+v", got)
	}
	if got := a.Node(0).Total(); got != 8 {
		t.Fatalf("node 0 total = %v, want 8", got)
	}
	if got := a.Node(1).Total(); got != 0 {
		t.Fatalf("untouched node total = %v, want 0", got)
	}
	if got := a.Total(); got != 18 {
		t.Fatalf("Total=%v, want 18", got)
	}
	tb := a.TotalBreakdown()
	if tb.Tx != 15 || tb.Rx != 2 || tb.Ctrl != 1 {
		t.Fatalf("TotalBreakdown=%+v", tb)
	}
}

func TestEnergyAccountPanics(t *testing.T) {
	a := NewEnergyAccount(2)
	cases := map[string]func(){
		"out of range":    func() { a.AddTx(5, 1) },
		"negative id":     func() { a.AddRx(-1, 1) },
		"negative energy": func() { a.AddCtrl(0, -0.5) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestEnergyAccountNegativeSize(t *testing.T) {
	a := NewEnergyAccount(-5)
	if a.N() != 0 {
		t.Fatalf("N=%d, want 0", a.N())
	}
}

func TestEnergyAccountMonotonicProperty(t *testing.T) {
	prop := func(adds []uint8) bool {
		a := NewEnergyAccount(1)
		var prev radio.Energy
		for _, v := range adds {
			a.AddTx(0, radio.Energy(v))
			if a.Total() < prev {
				return false
			}
			prev = a.Total()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayStatsEmpty(t *testing.T) {
	d := NewDelayStats()
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty stats should be all zero")
	}
}

func TestDelayStatsAggregates(t *testing.T) {
	d := NewDelayStats()
	for _, ms := range []int{5, 1, 9, 3} {
		d.Record(time.Duration(ms) * time.Millisecond)
	}
	if d.Count() != 4 {
		t.Fatalf("Count=%d, want 4", d.Count())
	}
	if d.Mean() != 4500*time.Microsecond {
		t.Fatalf("Mean=%v, want 4.5ms", d.Mean())
	}
	if d.Min() != time.Millisecond || d.Max() != 9*time.Millisecond {
		t.Fatalf("Min/Max=%v/%v", d.Min(), d.Max())
	}
}

func TestDelayStatsPercentile(t *testing.T) {
	d := NewDelayStats()
	for i := 1; i <= 100; i++ {
		d.Record(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{150, 100 * time.Millisecond}, // clamps
		{1, time.Millisecond},
	}
	for _, tt := range tests {
		if got := d.Percentile(tt.p); got != tt.want {
			t.Fatalf("P%v=%v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestDelayStatsNegativePanics(t *testing.T) {
	d := NewDelayStats()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	d.Record(-time.Millisecond)
}

func TestDelayStatsMeanBoundedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDelayStats()
		for _, v := range raw {
			d.Record(time.Duration(v) * time.Microsecond)
		}
		return d.Min() <= d.Mean() && d.Mean() <= d.Max()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.CountSend(packet.ADV)
	c.CountSend(packet.ADV)
	c.CountSend(packet.DATA)
	if c.Sent[packet.ADV] != 2 || c.Sent[packet.DATA] != 1 {
		t.Fatalf("Sent=%v", c.Sent)
	}
	if c.TotalSent() != 3 {
		t.Fatalf("TotalSent=%d, want 3", c.TotalSent())
	}
	c.Delivered++
	c.Failovers++
	if c.Delivered != 1 || c.Failovers != 1 {
		t.Fatal("manual counters broken")
	}
}

// naivePercentile is the pre-cache implementation: sort a fresh copy on
// every call. The cached Percentile must agree with it across interleaved
// Record/query sequences — the regression test for the sort-once cache.
func naivePercentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestDelayStatsPercentileCacheInvalidation(t *testing.T) {
	d := NewDelayStats()
	rng := rand.New(rand.NewSource(42))
	var raw []time.Duration
	ps := []float64{1, 25, 50, 90, 95, 99, 100}
	// Interleave recording bursts with repeated queries: every query after
	// a Record must see the new sample, and repeated queries without an
	// intervening Record must keep agreeing (the cached path).
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 1+rng.Intn(50); i++ {
			v := time.Duration(rng.Intn(1_000_000)) * time.Microsecond
			d.Record(v)
			raw = append(raw, v)
		}
		for _, p := range ps {
			want := naivePercentile(raw, p)
			if got := d.Percentile(p); got != want {
				t.Fatalf("burst %d: Percentile(%v) = %v, want %v (n=%d)", burst, p, got, want, len(raw))
			}
			if got := d.Percentile(p); got != want {
				t.Fatalf("burst %d: cached re-query Percentile(%v) = %v, want %v", burst, p, got, want)
			}
		}
	}
}

// TestDelayStatsPercentileSortsOnce pins the optimization itself: repeated
// percentile queries without intervening records must not re-sort (0 allocs
// after the first call builds the cache).
func TestDelayStatsPercentileSortsOnce(t *testing.T) {
	d := NewDelayStats()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		d.Record(time.Duration(rng.Intn(1_000_000)) * time.Microsecond)
	}
	d.Percentile(50) // build the cache
	allocs := testing.AllocsPerRun(100, func() {
		d.Percentile(95)
		d.Percentile(99)
		d.Percentile(50)
	})
	if allocs != 0 {
		t.Fatalf("cached Percentile allocated %.1f times per run, want 0", allocs)
	}
}
