package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperParamsValid(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero Ttx", func(p *Params) { p.Ttx = 0 }},
		{"negative G", func(p *Params) { p.G = -1 }},
		{"negative Tproc", func(p *Params) { p.Tproc = -1 }},
		{"zero A", func(p *Params) { p.A = 0 }},
		{"zero R", func(p *Params) { p.R = 0 }},
		{"zero D", func(p *Params) { p.D = 0 }},
		{"zero alpha", func(p *Params) { p.Alpha = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := PaperParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

// TestPaperSpotValue verifies the paper's printed number: with Ttx = 0.05,
// Tproc = 0.02, A:D = 1:30, G = 0.01, n1 = 45, ns = 5 the delay ratio is
// 2.7865.
func TestPaperSpotValue(t *testing.T) {
	p := PaperParams()
	got := p.DelayRatio(45, 5)
	if !almostEqual(got, 2.7865, 0.0005) {
		t.Fatalf("DelayRatio(45,5)=%v, want 2.7865 (paper §4.1.2)", got)
	}
}

func TestSPINSingleHopDelayComponents(t *testing.T) {
	p := PaperParams()
	// 3·0.01·45² + 32·0.05 + 2·0.02 = 60.75 + 1.6 + 0.04 = 62.39 ms.
	if got := p.SPINSingleHopDelay(45); !almostEqual(got, 62.39, 1e-9) {
		t.Fatalf("SPIN delay=%v, want 62.39", got)
	}
}

func TestSPMSSingleHopDelayComponents(t *testing.T) {
	p := PaperParams()
	// 0.01·45² + 2·0.01·25 + 1.6 + 0.04 = 20.25 + 0.5 + 1.64 = 22.39 ms.
	if got := p.SPMSSingleHopDelay(45, 5); !almostEqual(got, 22.39, 1e-9) {
		t.Fatalf("SPMS delay=%v, want 22.39", got)
	}
}

func TestDelayRatioAlwaysAboveOne(t *testing.T) {
	// With ns < n1, SPMS's single-hop delay is strictly lower: two of the
	// three channel accesses happen at lower contention.
	p := PaperParams()
	prop := func(rawN1, rawNs uint8) bool {
		n1 := float64(rawN1%200) + 2
		ns := float64(rawNs%100) + 1
		if ns >= n1 {
			return true // model premise requires ns < n1
		}
		return p.DelayRatio(n1, ns) > 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayRatioApproachesThree(t *testing.T) {
	// As n1 → ∞ with ns fixed, contention dominates and the ratio tends to
	// 3 (three max-power accesses vs one).
	p := PaperParams()
	r := p.DelayRatio(10000, 5)
	if !almostEqual(r, 3, 0.01) {
		t.Fatalf("asymptotic ratio=%v, want ≈3", r)
	}
}

func TestRoundAndTwoHopDelays(t *testing.T) {
	p := PaperParams()
	round := p.Round(45, 5)
	if !almostEqual(round, 22.39, 1e-9) {
		t.Fatalf("Round=%v, want 22.39 (equals SPMS single-hop)", round)
	}
	if got := p.SPMSTwoHopBestDelay(45, 5); !almostEqual(got, 2*round, 1e-9) {
		t.Fatalf("case a.a=%v, want 2·round", got)
	}
	// Case a.b: G·n1² + 4·G·ns² + (A+2R+2D)·Ttx + 4·Tproc + TOutADV
	// = 20.25 + 1 + 63·0.05 + 0.08 + 1.0 = 25.48.
	if got := p.SPMSTwoHopWorstDelay(45, 5); !almostEqual(got, 25.48, 1e-9) {
		t.Fatalf("case a.b=%v, want 25.48", got)
	}
}

func TestKRelayWorstDelay(t *testing.T) {
	p := PaperParams()
	// Equation (3): (K-1)·Tround + TOutADV + T_ab.
	want := 4*p.Round(45, 5) + p.TOutADV + p.SPMSTwoHopWorstDelay(45, 5)
	if got := p.SPMSKRelayWorstDelay(5, 45, 5); !almostEqual(got, want, 1e-9) {
		t.Fatalf("k-relay worst=%v, want %v", got, want)
	}
	// k clamps at 1.
	if got := p.SPMSKRelayWorstDelay(0, 45, 5); !almostEqual(got, p.TOutADV+p.SPMSTwoHopWorstDelay(45, 5), 1e-9) {
		t.Fatalf("k=0 not clamped: %v", got)
	}
}

func TestFailureDelaysExceedFailureFree(t *testing.T) {
	// §4.1.2 requires the timeouts be "adjusted properly" — at least one
	// round each — for the analysis to be self-consistent. With such
	// timeouts, every failure case costs more than the failure-free run.
	p := PaperParams()
	round := p.Round(45, 5)
	p.TOutADV = round
	p.TOutDAT = round
	free := p.SPMSTwoHopBestDelay(45, 5)
	ba := p.SPMSFailureBeforeADVDelay(45, 20, 5)
	bb := p.SPMSFailureAfterADVDelay(45, 20, 5)
	if ba <= free || bb <= free {
		t.Fatalf("failure delays (%v, %v) must exceed failure-free %v", ba, bb, free)
	}
	// Both failure cases include the timeout components.
	if ba < p.TOutADV+p.TOutDAT || bb < p.TOutDAT {
		t.Fatal("failure delays missing timeout components")
	}
}

func TestChainFailureDelayMonotonicInJ(t *testing.T) {
	// The farther from the destination the failed relay is (larger j
	// means failure nearer the source; k-j rounds of progress), the less
	// total delay: fewer rounds happen before the stall is detected.
	p := PaperParams()
	prev := math.Inf(1)
	for j := 1; j <= 6; j++ {
		got := p.SPMSChainFailureDelay(6, j, 45, 20, 5)
		if got > prev {
			t.Fatalf("chain failure delay not decreasing in j: j=%d %v > %v", j, got, prev)
		}
		prev = got
	}
	// j clamps into [1, k].
	if p.SPMSChainFailureDelay(3, 0, 45, 20, 5) != p.SPMSChainFailureDelay(3, 1, 45, 20, 5) {
		t.Fatal("j=0 not clamped to 1")
	}
	if p.SPMSChainFailureDelay(3, 9, 45, 20, 5) != p.SPMSChainFailureDelay(3, 3, 45, 20, 5) {
		t.Fatal("j>k not clamped to k")
	}
}

func TestFraction(t *testing.T) {
	// Paper: D = 32·A = 32·R from the mote experiments → f = 1/34.
	if got := Fraction(1, 32, 1); !almostEqual(got, 1.0/34, 1e-12) {
		t.Fatalf("Fraction=%v, want 1/34", got)
	}
	if Fraction(0, 0, 0) != 0 {
		t.Fatal("degenerate fraction should be 0")
	}
}

func TestEnergyRatioChainAtOneHop(t *testing.T) {
	// k=1: no relays, SPMS degenerates to SPIN; the ratio is exactly 1.
	f := Fraction(1, 32, 1)
	if got := EnergyRatioChain(1, f, 3.5); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("ratio(k=1)=%v, want 1", got)
	}
	// k<1 clamps.
	if got := EnergyRatioChain(0.3, f, 3.5); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("ratio(k<1)=%v, want 1", got)
	}
}

func TestEnergyRatioChainGrowsWithRadius(t *testing.T) {
	f := Fraction(1, 32, 1)
	prev := 0.0
	for _, k := range []float64{1, 2, 5, 10, 20, 30} {
		got := EnergyRatioChain(k, f, 3.5)
		if got < prev {
			t.Fatalf("energy ratio not increasing at k=%v: %v < %v", k, got, prev)
		}
		prev = got
	}
	// SPMS does "substantially better" at large radius: well above 10× by
	// k=30, saturating toward 1/f = 34.
	if r := EnergyRatioChain(30, f, 3.5); r < 10 {
		t.Fatalf("ratio(k=30)=%v, want >10", r)
	}
	if r := EnergyRatioChain(1e6, f, 3.5); r > 1/f+1e-6 {
		t.Fatalf("ratio beyond asymptote 1/f: %v", r)
	}
}

func TestGridContendersPaperValues(t *testing.T) {
	// 5 m grid: minimum power (5.48 m) reaches the 4 orthogonal neighbors
	// plus self = 5 = the paper's ns.
	if got := GridContenders(5.48, 5); got != 5 {
		t.Fatalf("GridContenders(5.48, 5)=%d, want 5", got)
	}
	// A 20 m radius reaches 49 grid nodes (45 in the paper's estimate from
	// [9]; the lattice count is 49 — same regime).
	got := GridContenders(20, 5)
	if got < 45 || got > 49 {
		t.Fatalf("GridContenders(20, 5)=%d, want ≈45-49", got)
	}
	if got := GridContenders(0, 5); got != 1 {
		t.Fatalf("zero radius=%d, want 1 (self)", got)
	}
	if got := GridContenders(-3, 5); got != 1 {
		t.Fatal("negative radius should count only self")
	}
	if got := GridContenders(10, 0); got != 1 {
		t.Fatal("zero spacing should count only self")
	}
}

func TestGridContendersMonotone(t *testing.T) {
	prev := 0
	for r := 0.0; r <= 40; r += 2.5 {
		got := GridContenders(r, 5)
		if got < prev {
			t.Fatalf("contenders not monotone at r=%v", r)
		}
		prev = got
	}
}

func TestDelayRatioSeriesShape(t *testing.T) {
	p := PaperParams()
	radii := []float64{5, 10, 15, 20, 25, 30}
	series := DelayRatioSeries(p, radii, 5, 5)
	if len(series) != len(radii) {
		t.Fatalf("series has %d points, want %d", len(series), len(radii))
	}
	for i, pt := range series {
		if pt.X != radii[i] {
			t.Fatalf("X[%d]=%v, want %v", i, pt.X, radii[i])
		}
		if pt.Y <= 0 {
			t.Fatalf("ratio must be positive at r=%v", pt.X)
		}
	}
	// The ratio grows with the radius (contention at max power grows
	// quadratically while SPMS's low-power legs stay cheap).
	if series[len(series)-1].Y <= series[0].Y {
		t.Fatal("Figure 3 curve must increase with radius")
	}
}

func TestEnergyRatioSeriesShape(t *testing.T) {
	f := Fraction(1, 32, 1)
	series := EnergyRatioSeries(f, 3.5, []float64{1, 5, 10, 20, 30})
	for i := 1; i < len(series); i++ {
		if series[i].Y < series[i-1].Y {
			t.Fatal("Figure 5 curve must increase with radius")
		}
	}
	if !almostEqual(series[0].Y, 1, 1e-12) {
		t.Fatalf("ratio at k=1 is %v, want 1", series[0].Y)
	}
}

func TestBreakEvenPackets(t *testing.T) {
	// 100 µJ re-convergence, 2 µJ/packet gain → 50 packets to amortize.
	if got := BreakEvenPackets(100, 5, 3); !almostEqual(got, 50, 1e-12) {
		t.Fatalf("BreakEvenPackets=%v, want 50", got)
	}
	if got := BreakEvenPackets(100, 3, 5); !math.IsInf(got, 1) {
		t.Fatalf("no-gain case=%v, want +Inf", got)
	}
	if got := BreakEvenPackets(100, 3, 3); !math.IsInf(got, 1) {
		t.Fatalf("zero-gain case=%v, want +Inf", got)
	}
}
