// Package analysis implements the paper's §4 theoretical evaluation: the
// closed-form delay expressions (equations (1)–(3) and the failure cases),
// the chain-topology energy ratio behind Figure 5, and the mobility
// break-even calculation of §5.1.3.
//
// Conventions follow the paper: times are in milliseconds, packet lengths
// in abstract units (with Ttx ms per unit), and contention is the MAC model
// Tcsma = G·n² where n is the number of nodes inside the transmission
// radius. Where the published equations are ambiguous (OCR noise in the
// source), the reconstruction used is stated in the function comment and
// cross-checked against the paper's printed spot values (the 2.7865 ratio).
package analysis

import (
	"fmt"
	"math"
)

// Params holds the §4 model constants.
type Params struct {
	G     float64 // MAC contention constant (ms); paper sample: 0.01
	Ttx   float64 // transmission time per unit of data (ms); paper: 0.05
	Tproc float64 // processing delay per packet (ms); paper: 0.02

	A float64 // ADV length (units); paper: 1
	R float64 // REQ length (units); paper: 1
	D float64 // DATA length (units); paper: 30 (A:D = 1:30)

	TOutADV float64 // τADV timeout (ms); Table 1: 1.0
	TOutDAT float64 // τDAT timeout (ms); Table 1: 2.5

	Alpha float64 // path-loss exponent; paper: 3.5
}

// PaperParams returns the sample values of §4.1.2 used for Figure 3 and the
// printed 2.7865 ratio.
func PaperParams() Params {
	return Params{
		G:       0.01,
		Ttx:     0.05,
		Tproc:   0.02,
		A:       1,
		R:       1,
		D:       30,
		TOutADV: 1.0,
		TOutDAT: 2.5,
		Alpha:   3.5,
	}
}

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.G < 0 || p.Ttx <= 0 || p.Tproc < 0 {
		return fmt.Errorf("analysis: invalid timing params G=%v Ttx=%v Tproc=%v", p.G, p.Ttx, p.Tproc)
	}
	if p.A <= 0 || p.R <= 0 || p.D <= 0 {
		return fmt.Errorf("analysis: invalid packet lengths A=%v R=%v D=%v", p.A, p.R, p.D)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("analysis: invalid alpha %v", p.Alpha)
	}
	return nil
}

// csma returns the MAC access delay G·n².
func (p Params) csma(n float64) float64 { return p.G * n * n }

// SPINSingleHopDelay is equation (1): the time for B to receive the data in
// SPIN, from A's ADV onward. Every packet contends at the max-power
// contender count n1:
//
//	T_b = 3·G·n1² + (A+R+D)·Ttx + 2·Tproc
func (p Params) SPINSingleHopDelay(n1 float64) float64 {
	return 3*p.csma(n1) + (p.A+p.R+p.D)*p.Ttx + 2*p.Tproc
}

// SPMSSingleHopDelay is equation (2): the ADV still goes out at maximum
// power (n1 contenders) but the REQ and DATA legs run at a reduced power
// level reaching only n2 nodes:
//
//	T_b = G·n1² + 2·G·n2² + (A+R+D)·Ttx + 2·Tproc
func (p Params) SPMSSingleHopDelay(n1, n2 float64) float64 {
	return p.csma(n1) + 2*p.csma(n2) + (p.A+p.R+p.D)*p.Ttx + 2*p.Tproc
}

// DelayRatio is the Figure 3 quantity: equation (1) over equation (2) with
// the low-power radius holding ns nodes.
func (p Params) DelayRatio(n1, ns float64) float64 {
	return p.SPINSingleHopDelay(n1) / p.SPMSSingleHopDelay(n1, ns)
}

// Round is T_round of §4.1.2 case a.a — one "data ripples one hop and is
// re-advertised" period:
//
//	T_round = G·n1² + 2·G·ns² + (A+R+D)·Ttx + 2·Tproc
func (p Params) Round(n1, ns float64) float64 {
	return p.csma(n1) + 2*p.csma(ns) + (p.A+p.R+p.D)*p.Ttx + 2*p.Tproc
}

// SPMSTwoHopBestDelay is case a.a: the relay requests the data itself, so
// the A-B sequence repeats twice: T_c = 2·T_round.
func (p Params) SPMSTwoHopBestDelay(n1, ns float64) float64 {
	return 2 * p.Round(n1, ns)
}

// SPMSTwoHopWorstDelay is case a.b: the relay does not request, so the
// destination times out (TOutADV) and pulls through the relay:
//
//	T_c = G·n1² + 4·G·ns² + (A+2R+2D)·Ttx + 4·Tproc + TOutADV
func (p Params) SPMSTwoHopWorstDelay(n1, ns float64) float64 {
	return p.csma(n1) + 4*p.csma(ns) + (p.A+2*p.R+2*p.D)*p.Ttx + 4*p.Tproc + p.TOutADV
}

// SPMSKRelayWorstDelay is equation (3), case a.c: with K relay nodes the
// worst case has the data rippling through the first K-1 relays and the
// last relay declining to request:
//
//	T_C ≤ (K-1)·T_round + TOutADV + T_c(a.b)
func (p Params) SPMSKRelayWorstDelay(k int, n1, ns float64) float64 {
	if k < 1 {
		k = 1
	}
	return float64(k-1)*p.Round(n1, ns) + p.TOutADV + p.SPMSTwoHopWorstDelay(n1, ns)
}

// SPMSFailureBeforeADVDelay is case b.a: the relay fails before
// advertising. The destination burns TOutADV, its multi-hop REQ dies at the
// failed relay (one low-power access), it burns TOutDAT, and finally pulls
// the data directly from the PRONE at a higher power level reaching n2
// nodes (ns < n2 < n1):
//
//	T_c1 = G·n1² + G·ns² + 2·G·n2² + (A+R+D)·Ttx + TOutADV + TOutDAT + 2·Tproc
func (p Params) SPMSFailureBeforeADVDelay(n1, n2, ns float64) float64 {
	return p.csma(n1) + p.csma(ns) + 2*p.csma(n2) +
		(p.A+p.R+p.D)*p.Ttx + p.TOutADV + p.TOutDAT + 2*p.Tproc
}

// SPMSFailureAfterADVDelay is case b.b: the relay fails after advertising,
// so the destination saw the ADV (one full round elapsed), requested the
// dead relay directly (one low-power access + REQ), burned TOutDAT, and
// then pulled directly from the SCONE at power level n2:
//
//	T_c2 = T_round + G·ns² + R·Ttx + TOutDAT + 2·G·n2² + (R+D)·Ttx + 2·Tproc
func (p Params) SPMSFailureAfterADVDelay(n1, n2, ns float64) float64 {
	return p.Round(n1, ns) + p.csma(ns) + p.R*p.Ttx + p.TOutDAT +
		2*p.csma(n2) + (p.R+p.D)*p.Ttx + 2*p.Tproc
}

// SPMSChainFailureDelay is the general k-relay failure expression of
// §4.1.2(b): in a chain of k relays, the (k-j+1)-th relay from the source
// fails. Data takes (k-j) rounds to reach the last live relay, the
// destination burns TOutADV and a dead multi-hop REQ (one ns access), burns
// TOutDAT, and finally pulls from the last heard node at a power level
// reaching nj nodes:
//
//	Delay = (k-j)·T_round + TOutADV + G·ns² + TOutDAT + 2·G·nj² + (R+D)·Ttx + 2·Tproc
func (p Params) SPMSChainFailureDelay(k, j int, n1, nj, ns float64) float64 {
	if k < 1 {
		k = 1
	}
	if j < 1 {
		j = 1
	}
	if j > k {
		j = k
	}
	return float64(k-j)*p.Round(n1, ns) + p.TOutADV + p.csma(ns) + p.TOutDAT +
		2*p.csma(nj) + (p.R+p.D)*p.Ttx + 2*p.Tproc
}

// Fraction is f = A/(A+D+R), the metadata fraction of a full exchange.
func Fraction(a, d, r float64) float64 {
	total := a + d + r
	if total <= 0 {
		return 0
	}
	return a / total
}

// EnergyRatioChain is the Figure 5 quantity: the SPIN:SPMS energy ratio for
// a source-destination pair separated by k equally spaced relay hops under
// a d^alpha path-loss model (the printed closed form of §4.2):
//
//	E_SPIN : E_SPMS = (k^α + 1) / (f·k^α + (2-f)·k)
//
// where f = A/(A+D+R). At k = 1 the ratio is 1 (no relays, identical
// behavior); it grows with k and saturates near 1/f.
func EnergyRatioChain(k, f, alpha float64) float64 {
	if k < 1 {
		k = 1
	}
	num := math.Pow(k, alpha) + 1
	den := f*math.Pow(k, alpha) + (2-f)*k
	return num / den
}

// GridContenders counts the nodes of an infinite unit-density square grid
// (spacing meters apart) within radius meters of a grid point, including
// the point itself. This is how §4's sample values arise: with 5 m spacing,
// a 5.48 m radius holds ns = 5 nodes and a ≈20 m radius holds n1 ≈ 45–49.
func GridContenders(radius, spacing float64) int {
	if radius < 0 || spacing <= 0 {
		return 1
	}
	maxSteps := int(radius / spacing)
	r2 := radius * radius
	count := 0
	for dx := -maxSteps; dx <= maxSteps; dx++ {
		for dy := -maxSteps; dy <= maxSteps; dy++ {
			d2 := (float64(dx)*spacing)*(float64(dx)*spacing) + (float64(dy)*spacing)*(float64(dy)*spacing)
			if d2 <= r2 {
				count++
			}
		}
	}
	return count
}

// SeriesPoint is one (x, y) sample of a figure's curve.
type SeriesPoint struct {
	X float64
	Y float64
}

// DelayRatioSeries produces the Figure 3 curve: the SPIN/SPMS delay ratio
// as the maximum transmission radius sweeps over radii. n1 at each radius
// is the grid-contender count; ns stays the low-power contender count
// (paper: 5).
func DelayRatioSeries(p Params, radii []float64, spacing, ns float64) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(radii))
	for _, r := range radii {
		n1 := float64(GridContenders(r, spacing))
		out = append(out, SeriesPoint{X: r, Y: p.DelayRatio(n1, ns)})
	}
	return out
}

// EnergyRatioSeries produces the Figure 5 curve: the SPIN/SPMS energy ratio
// as the transmission radius sweeps. With grid granularity 1 and a node on
// every grid point, k = r (paper's construction).
func EnergyRatioSeries(f, alpha float64, radii []float64) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(radii))
	for _, r := range radii {
		out = append(out, SeriesPoint{X: r, Y: EnergyRatioChain(r, f, alpha)})
	}
	return out
}

// BreakEvenPackets is §5.1.3's mobility threshold: the number of packets
// that must be delivered between two mobility events for SPMS's per-packet
// energy advantage to amortize one routing re-convergence. The paper's
// calibration yields 239.18 packets; the experiment harness recomputes the
// value from measured quantities.
//
// Returns +Inf when SPMS has no per-packet advantage.
func BreakEvenPackets(dbfEnergyPerEvent, spinPerPacket, spmsPerPacket float64) float64 {
	gain := spinPerPacket - spmsPerPacket
	if gain <= 0 {
		return math.Inf(1)
	}
	return dbfEnergyPerEvent / gain
}
