// models_test.go covers the scenario-model registry at the experiment
// layer: zero values select the paper's models, WithDefaults fills the new
// knobs, Validate rejects nonsense, the wire form round-trips and — the
// compatibility contract — a pre-registry scenario serializes without any
// registry field, and Run executes every model combination.
package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestModelZeroValuesAreThePaperModels(t *testing.T) {
	if PlacementKind(0) != PlaceGrid {
		t.Fatal("zero placement must be grid")
	}
	if MobilityKind(0) != MobRelocate {
		t.Fatal("zero mobility model must be relocate")
	}
	if fault.Model(0) != fault.Transient {
		t.Fatal("zero failure model must be transient")
	}
}

func TestParsePlacementAndMobilityModel(t *testing.T) {
	for _, p := range []PlacementKind{PlaceGrid, PlaceUniform, PlaceChain, PlaceClustered} {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePlacement(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePlacement("torus"); err == nil {
		t.Fatal("unknown placement accepted")
	}
	for _, m := range []MobilityKind{MobRelocate, MobWaypoint} {
		got, err := ParseMobilityModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMobilityModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMobilityModel("brownian"); err == nil {
		t.Fatal("unknown mobility model accepted")
	}
}

func modelBase() Scenario {
	return Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 25, ZoneRadius: 15, Seed: 3}
}

func TestWithDefaultsFillsModelKnobs(t *testing.T) {
	sc := modelBase()
	sc.Placement = PlaceClustered
	sc.Mobility = true
	sc.MobilityModel = MobWaypoint
	sc.Failures = true
	sc.FailureCfg.Model = fault.Burst
	d := sc.WithDefaults()

	if d.PlacementClusters != DefaultPlacementClusters {
		t.Fatalf("PlacementClusters=%d, want %d", d.PlacementClusters, DefaultPlacementClusters)
	}
	if d.PlacementSpread != 2*d.GridSpacing {
		t.Fatalf("PlacementSpread=%v, want %v", d.PlacementSpread, 2*d.GridSpacing)
	}
	if d.WaypointSpeedMin != DefaultWaypointSpeedMin || d.WaypointSpeedMax != DefaultWaypointSpeedMax {
		t.Fatalf("waypoint speeds [%v, %v], want defaults [%v, %v]",
			d.WaypointSpeedMin, d.WaypointSpeedMax, DefaultWaypointSpeedMin, DefaultWaypointSpeedMax)
	}
	if d.WaypointPauseMax != DefaultWaypointPauseMax {
		t.Fatalf("WaypointPauseMax=%v, want %v", d.WaypointPauseMax, DefaultWaypointPauseMax)
	}
	// Model-only failure config inherits Table 1 timing and the zone
	// radius as burst radius.
	if d.FailureCfg.MeanInterArrival != 50*time.Millisecond {
		t.Fatalf("model-only failure config lost Table 1 timing: %+v", d.FailureCfg)
	}
	if d.FailureCfg.Model != fault.Burst || d.FailureCfg.BurstRadius != d.ZoneRadius {
		t.Fatalf("burst radius %v, want zone radius %v", d.FailureCfg.BurstRadius, d.ZoneRadius)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("defaulted scenario invalid: %v", err)
	}

	// Explicit timing is taken literally, exactly the pre-registry rule.
	sc2 := modelBase()
	sc2.Failures = true
	sc2.FailureCfg = fault.Config{Model: fault.Crash, MeanInterArrival: time.Second}
	d2 := sc2.WithDefaults()
	if d2.FailureCfg.MeanInterArrival != time.Second || d2.FailureCfg.RepairMax != 0 {
		t.Fatalf("explicit timing was rewritten: %+v", d2.FailureCfg)
	}

	// Grid placement and relocate mobility leave every knob untouched.
	d3 := modelBase().WithDefaults()
	if d3.PlacementClusters != 0 || d3.PlacementSpread != 0 ||
		d3.WaypointSpeedMax != 0 || d3.WaypointPauseMax != 0 {
		t.Fatalf("paper scenario grew model knobs: %+v", d3)
	}
}

func TestValidateModelFields(t *testing.T) {
	mk := func(mut func(*Scenario)) Scenario {
		sc := modelBase().WithDefaults()
		mut(&sc)
		return sc
	}
	tests := []struct {
		name    string
		sc      Scenario
		wantErr string
	}{
		{"bad placement", mk(func(s *Scenario) { s.Placement = PlacementKind(9) }), "unknown placement"},
		{"negative clusters", mk(func(s *Scenario) { s.PlacementClusters = -1 }), "negative placement clusters"},
		{"negative spread", mk(func(s *Scenario) { s.PlacementSpread = -2 }), "negative placement spread"},
		{"bad mobility model", mk(func(s *Scenario) { s.MobilityModel = MobilityKind(5) }), "unknown mobility model"},
		{"negative speed", mk(func(s *Scenario) { s.WaypointSpeedMin = -1 }), "negative waypoint speed"},
		{"inverted speeds", mk(func(s *Scenario) { s.WaypointSpeedMin, s.WaypointSpeedMax = 9, 2 }), "inverted"},
		{"negative pause", mk(func(s *Scenario) { s.WaypointPauseMin = -time.Second }), "negative waypoint pause"},
		{"inverted pauses", mk(func(s *Scenario) { s.WaypointPauseMin, s.WaypointPauseMax = time.Second, time.Millisecond }), "inverted"},
		{"burst without radius", mk(func(s *Scenario) {
			s.Failures = true
			s.FailureCfg = fault.Config{Model: fault.Burst, MeanInterArrival: time.Second, RepairMax: time.Second}
		}), "burst"},
		// Unknown numeric models must die in Validate even with failures
		// off — they have no wire name, so they'd fail sink marshaling
		// mid-campaign otherwise.
		{"bad failure model, failures off", mk(func(s *Scenario) {
			s.FailureCfg.Model = fault.Model(7)
		}), "unknown failure model"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.sc.Validate()
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("err=%v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

// TestPreRegistryWireFormUnchanged is the zero-value-compatibility
// contract on the wire: a scenario that predates the model registry must
// marshal to JSON containing none of the registry's field names.
func TestPreRegistryWireFormUnchanged(t *testing.T) {
	sc := modelBase()
	sc.Failures = true
	sc.Mobility = true
	sc = sc.WithDefaults()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{
		"placement", "placementClusters", "placementSpread",
		"mobilityModel", "waypointSpeed", "waypointPause",
		"model", "burstRadius",
	} {
		if strings.Contains(string(data), `"`+field) {
			t.Fatalf("pre-registry scenario marshaled registry field %q:\n%s", field, data)
		}
	}
}

func TestModelWireFormRoundTrip(t *testing.T) {
	sc := modelBase()
	sc.Placement = PlaceClustered
	sc.PlacementClusters = 3
	sc.PlacementSpread = 7.5
	sc.Mobility = true
	sc.MobilityModel = MobWaypoint
	sc.WaypointSpeedMin = 1
	sc.WaypointSpeedMax = 4
	sc.WaypointPauseMin = 10 * time.Millisecond
	sc.WaypointPauseMax = 20 * time.Millisecond
	sc.Failures = true
	sc.FailureCfg = fault.Config{Model: fault.Burst, MeanInterArrival: 80 * time.Millisecond, RepairMin: time.Millisecond, RepairMax: 2 * time.Millisecond, BurstRadius: 12}

	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"placement":"clustered"`, `"mobilityModel":"waypoint"`, `"model":"burst"`, `"waypointPauseMin":"10ms"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("wire form missing %s:\n%s", want, data)
		}
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != sc {
		t.Fatalf("round trip changed scenario:\n got %+v\nwant %+v", back, sc)
	}
}

// TestRunEveryModelCombination is the end-to-end smoke: each placement,
// mobility, and failure model executes to completion at tiny scale and
// delivers data. (The golden corpus locks the exact bytes; this guards
// the error paths under -race.)
func TestRunEveryModelCombination(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweep runs ~10 simulations")
	}
	for _, placement := range []PlacementKind{PlaceGrid, PlaceUniform, PlaceChain, PlaceClustered} {
		for _, mob := range []MobilityKind{MobRelocate, MobWaypoint} {
			sc := modelBase()
			sc.PacketsPerNode = 1
			sc.Drain = time.Second
			sc.Placement = placement
			sc.Mobility = true
			sc.MobilityModel = mob
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("placement=%v mobility=%v: %v", placement, mob, err)
			}
			if res.Deliveries == 0 {
				t.Fatalf("placement=%v mobility=%v delivered nothing", placement, mob)
			}
			if res.MobilityEvents == 0 {
				t.Fatalf("placement=%v mobility=%v saw no mobility events", placement, mob)
			}
		}
	}
	for _, fm := range []fault.Model{fault.Transient, fault.Crash, fault.Burst} {
		sc := modelBase()
		sc.PacketsPerNode = 1
		sc.Drain = time.Second
		sc.Failures = true
		sc.FailureCfg.Model = fm
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("failure model %v: %v", fm, err)
		}
		if res.FailuresInjected == 0 {
			t.Fatalf("failure model %v injected nothing", fm)
		}
	}
}
