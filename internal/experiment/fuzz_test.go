// fuzz_test.go fuzzes the strict Scenario JSON decoder: whatever bytes
// arrive, decoding must never panic, Validate (raw and defaulted) must
// never panic, and any decodable scenario that re-encodes must round-trip
// stably — decode → encode → decode → encode yields identical bytes, the
// property campaign sinks rely on for byte-identical output.
//
// CI runs a short `-fuzz` smoke on top of the seed corpus; locally:
//
//	go test -run=^$ -fuzz=FuzzDecodeScenario -fuzztime=30s ./internal/experiment/
package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fuzzSeedScenarios covers every wire field at least once, including the
// model registry's placement/mobility/failure forms.
var fuzzSeedScenarios = []string{
	`{}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":169,"zoneRadius":20,"seed":1}`,
	`{"protocol":"spin","workload":"clustered","nodes":25,"zoneRadius":15,"clusterInterestProb":0.1,"drain":"2s"}`,
	`{"protocol":"flood","nodes":49,"zoneRadius":10,"meanArrival":"1ms","packetsPerNode":2,"replications":5}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,"failures":true,
	  "failureConfig":{"meanInterArrival":"50ms","repairMin":"5ms","repairMax":"15ms"}}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,"failures":true,
	  "failureConfig":{"model":"burst","burstRadius":25}}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,"failures":true,
	  "failureConfig":{"model":"crash","meanInterArrival":"500ms"}}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,
	  "placement":"clustered","placementClusters":5,"placementSpread":7.5}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,"placement":"chain"}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,"mobility":true,
	  "mobilityModel":"waypoint","waypointSpeedMin":2,"waypointSpeedMax":8,
	  "waypointPauseMin":"5ms","waypointPauseMax":"50ms","mobilityPeriod":"100ms","mobilityFraction":0.1}`,
	`{"protocol":"spms","workload":"all-to-all","nodes":100,"zoneRadius":20,
	  "spmsConfig":{"tOutADV":"1ms","tOutDAT":"2.5ms","proc":"20µs","autoTimeouts":true,"maxAttempts":4},
	  "routeAlternatives":3,"carrierSense":true,"chargeInitialDBF":true}`,
	`{"protocol":2,"workload":1,"nodes":10,"zoneRadius":5,"mobilityModel":1,"placement":3}`,
}

func FuzzDecodeScenario(f *testing.F) {
	for _, s := range fuzzSeedScenarios {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return // rejected input is fine; panicking is not
		}
		_ = sc.Validate()                // must not panic on raw decodes
		_ = sc.WithDefaults().Validate() // nor after defaulting

		enc, err := json.Marshal(sc)
		if err != nil {
			// Numeric enum forms can decode values that have no name and
			// therefore no wire form; such scenarios are unmarshalable by
			// design (Validate rejects them too).
			return
		}
		var back Scenario
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoding: %s", err, enc)
		}
		if back != sc {
			t.Fatalf("decode→encode→decode changed the scenario:\n first %+v\nsecond %+v\nwire %s", sc, back, enc)
		}
		enc2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding unstable:\n first %s\nsecond %s", enc, enc2)
		}
	})
}
