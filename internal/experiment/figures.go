// figures.go reproduces every table and figure of the paper's evaluation.
// Each FigureN function returns a Table whose columns match the series the
// paper plots; cmd/figures renders them and bench_test.go regenerates them
// under `go test -bench`.
package experiment

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table is one reproduced figure or table: a titled series family over a
// common x-axis.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []TableRow
	Notes   string
}

// TableRow is one x-axis sample.
type TableRow struct {
	X     float64
	Cells []float64
}

// Format renders the table as aligned text (CSV-compatible with -csv in
// cmd/figures).
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "# %s\n", t.Notes)
	}
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14.4g", r.X)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %14.4f", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		// Canonical float form (DESIGN §9): the CSV bytes are golden, so
		// pin them to strconv rather than fmt's default verb rendering.
		b.WriteString(strconv.FormatFloat(r.X, 'g', -1, 64))
		for _, c := range r.Cells {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Quality controls simulation scale: Full is the paper's configuration;
// Quick shrinks the workload for fast benchmarks and CI.
type Quality struct {
	PacketsPerNode int
	NodeCounts     []int     // x-axis for Figures 6, 8, 10
	Radii          []float64 // x-axis for Figures 7, 9, 11, 12, 13
	Drain          time.Duration
	Seed           int64

	// Replications is how many seed-derived trials each sweep point runs
	// (see ReplicateSeed); 0 or 1 means single trials, the paper's
	// configurations' default. Above 1 every simulated figure gains a ±
	// column per series: the 95% CI half-width across replicates.
	Replications int
}

// Full is the paper-scale configuration: 10 packets per node, fields up to
// 225 nodes, radii 5–30 m.
func Full() Quality {
	return Quality{
		PacketsPerNode: workload.DefaultPacketsPerNode,
		NodeCounts:     []int{25, 49, 100, 169, 225},
		Radii:          []float64{5, 10, 15, 20, 25, 30},
		Drain:          3 * time.Second,
		Seed:           1,
	}
}

// Standard trims the most expensive sweep points (225 nodes, 30 m radius)
// while keeping the paper's 10 packets/node; the full report generates in
// minutes instead of an hour.
func Standard() Quality {
	return Quality{
		PacketsPerNode: workload.DefaultPacketsPerNode,
		NodeCounts:     []int{25, 49, 100, 169},
		Radii:          []float64{10, 15, 20, 25},
		Drain:          3 * time.Second,
		Seed:           1,
	}
}

// Quick is a reduced configuration for benchmarks: the same sweep shape at
// roughly a tenth of the event volume.
func Quick() Quality {
	return Quality{
		PacketsPerNode: 2,
		NodeCounts:     []int{25, 49, 100},
		Radii:          []float64{10, 15, 20, 25},
		Drain:          2 * time.Second,
		Seed:           1,
	}
}

// Runner executes figure reproductions through the parallel sweep engine
// (see sweep.go) with a memo: Figures 6/8 and 7/9 sweep identical scenarios
// (they plot energy and delay of the same runs), and the failure figures
// re-use the failure-free baselines, so caching roughly halves a full
// report's cost. Each figure runner batches its whole scenario grid into one
// Sweep, so every point of a figure runs concurrently across the pool while
// rows are assembled in deterministic point order. A Runner is not safe for
// concurrent use; the parallelism is inside each call.
type Runner struct {
	q       Quality
	workers int
	cache   map[Scenario][]Result // replicate vectors, keyed by the replicated scenario
}

// NewRunner builds a memoizing runner at the given quality with a worker
// per core.
func NewRunner(q Quality) *Runner {
	return NewRunnerWorkers(q, 0)
}

// NewRunnerWorkers builds a memoizing runner with an explicit sweep pool
// size; workers <= 0 means one per core. workers == 1 reproduces the serial
// execution path (the output is byte-identical either way).
func NewRunnerWorkers(q Quality, workers int) *Runner {
	return &Runner{q: q, workers: workers, cache: make(map[Scenario][]Result)}
}

// results executes one batch of scenarios: cache hits are recalled, distinct
// misses run through the replicated sweep pool (each point's trials are
// independent work units), and the returned slice matches points index for
// index — each entry the point's replicate vector.
func (r *Runner) results(points []Scenario) ([][]Result, error) {
	var missing []Scenario
	seen := make(map[Scenario]bool)
	for _, sc := range points {
		if _, ok := r.cache[sc]; !ok && !seen[sc] {
			seen[sc] = true
			missing = append(missing, sc)
		}
	}
	if len(missing) > 0 {
		res, err := (ReplicatedSweep{Points: missing, Workers: r.workers}).Execute()
		if err != nil {
			return nil, err
		}
		for i, sc := range missing {
			r.cache[sc] = res[i]
		}
	}
	out := make([][]Result, len(points))
	for i, sc := range points {
		out[i] = r.cache[sc]
	}
	return out, nil
}

// pairPoints expands a base scenario into its SPMS and SPIN variants.
func pairPoints(base Scenario) []Scenario {
	spms, spin := base, base
	spms.Protocol = SPMS
	spin.Protocol = SPIN
	return []Scenario{spms, spin}
}

// pair executes the scenario under SPMS and SPIN, returning each side's
// first replicate (the base-seed trial).
func (r *Runner) pair(base Scenario) (spms, spin Result, err error) {
	res, err := r.results(pairPoints(base))
	if err != nil {
		return Result{}, Result{}, err
	}
	return res[0][0], res[1][0], nil
}

// sweepTable is the shared figure harness: it expands every x-axis sample
// into its scenario group, executes the whole grid as one parallel batch,
// and assembles one row per sample from that row's results. With
// replications above 1 the cells function is applied once per replicate —
// replicate k pairs every group member's k-th trial, so the series share
// seeds within a replicate — and each column becomes (mean, ± 95% CI).
func (r *Runner) sweepTable(t Table, xs []float64,
	group func(x float64) []Scenario,
	cells func(res []Result) []float64) (Table, error) {
	var points []Scenario
	counts := make([]int, len(xs))
	for i, x := range xs {
		g := group(x)
		counts[i] = len(g)
		points = append(points, g...)
	}
	res, err := r.results(points)
	if err != nil {
		return Table{}, fmt.Errorf("%s: %w", t.ID, err)
	}
	reps := 1
	if r.q.Replications > 1 {
		reps = r.q.Replications
	}
	if reps > 1 {
		t.Columns = ciColumns(t.Columns)
		note := fmt.Sprintf("± columns are 95%% CI half-widths over %d replicates", reps)
		if t.Notes == "" {
			t.Notes = note
		} else {
			t.Notes += "; " + note
		}
	}
	off := 0
	for i, x := range xs {
		g := res[off : off+counts[i]]
		if reps == 1 {
			row := make([]Result, len(g))
			for j := range g {
				row[j] = g[j][0]
			}
			t.Rows = append(t.Rows, TableRow{X: x, Cells: cells(row)})
		} else {
			perRep := make([][]float64, reps)
			for k := 0; k < reps; k++ {
				rk := make([]Result, len(g))
				for j := range g {
					rk[j] = g[j][k]
				}
				perRep[k] = cells(rk)
			}
			cols := stats.DescribeColumns(perRep)
			row := make([]float64, 0, 2*len(cols))
			for _, c := range cols {
				row = append(row, c.Mean, c.CI95)
			}
			t.Rows = append(t.Rows, TableRow{X: x, Cells: row})
		}
		off += counts[i]
	}
	return t, nil
}

// ciColumns interleaves a ± column after every series column.
func ciColumns(cols []string) []string {
	out := make([]string, 0, 2*len(cols))
	for _, c := range cols {
		out = append(out, c, c+" ±")
	}
	return out
}

// nodeAxis converts the quality's node counts to an x-axis.
func nodeAxis(q Quality) []float64 {
	xs := make([]float64, len(q.NodeCounts))
	for i, n := range q.NodeCounts {
		xs[i] = float64(n)
	}
	return xs
}

// Table1Rows returns the simulation parameters as (name, value) pairs,
// verifying that the defaults wired through the packages equal the
// paper's Table 1. cmd/figures renders them as text or CSV.
func Table1Rows() [][2]string {
	macCfg := mac.AnalyticConfig() // the configuration Run wires in
	failCfg := fault.DefaultConfig()
	sizes := packet.DefaultSizes()
	rows := [][2]string{
		{"Packet arrivals (Poisson mean)", workload.DefaultMeanArrival.String()},
		{"Failure inter-arrival (exp mean)", failCfg.MeanInterArrival.String()},
		{"MTTR (uniform repair mean)", failCfg.MTTR().String()},
		{"Processing time", "20µs"},
		{"Slot time", macCfg.SlotTime.String()},
		{"Number of slots", fmt.Sprintf("%d", macCfg.NumSlots)},
		{"MAC contention constant G", fmt.Sprintf("%.2f ms", macCfg.G)},
		{"Power levels (mW)", "3.1622, 0.7943, 0.1995, 0.05, 0.0125"},
		{"Ranges (m)", "91.44, 45.72, 22.86, 11.28, 5.48"},
		{"Time of transmission", "0.05 ms/byte"},
		{"Size of ADV / REQ", fmt.Sprintf("%d B / %d B", sizes.ADV, sizes.REQ)},
		{"Size of DATA : REQ", fmt.Sprintf("%d (DATA = %d B)", sizes.DATA/sizes.REQ, sizes.DATA)},
		{"TOutADV / TOutDAT", "1ms / 2.5ms"},
	}
	return rows
}

// Table1 renders the parameter table as aligned text.
func Table1() string {
	var b strings.Builder
	b.WriteString("## Table 1 — Simulation Parameters\n")
	for _, r := range Table1Rows() {
		fmt.Fprintf(&b, "%-36s %s\n", r[0], r[1])
	}
	return b.String()
}

// Figure3 is the analytic SPIN/SPMS delay-ratio curve vs transmission
// radius (§4.1.2), including the printed spot value 2.7865 at n1=45, ns=5.
func Figure3() Table {
	p := analysis.PaperParams()
	radii := []float64{5, 7.5, 10, 12.5, 15, 17.5, 20, 22.5, 25, 27.5, 30}
	series := analysis.DelayRatioSeries(p, radii, 5, 5)
	t := Table{
		ID:      "fig3",
		Title:   "Analytic delay ratio SPIN/SPMS vs transmission radius",
		XLabel:  "radius_m",
		YLabel:  "delay ratio",
		Columns: []string{"SPIN/SPMS"},
		Notes:   fmt.Sprintf("spot value at n1=45, ns=5: %.4f (paper: 2.7865)", p.DelayRatio(45, 5)),
	}
	for _, pt := range series {
		t.Rows = append(t.Rows, TableRow{X: pt.X, Cells: []float64{pt.Y}})
	}
	return t
}

// Figure5 is the analytic SPIN/SPMS energy-ratio curve vs transmission
// radius on the k-relay chain with α = 3.5 (§4.2).
func Figure5() Table {
	f := analysis.Fraction(1, 32, 1)
	radii := []float64{1, 2, 4, 6, 8, 10, 15, 20, 25, 30}
	series := analysis.EnergyRatioSeries(f, 3.5, radii)
	t := Table{
		ID:      "fig5",
		Title:   "Analytic energy ratio SPIN/SPMS vs transmission radius (k = r)",
		XLabel:  "radius_k",
		YLabel:  "energy ratio",
		Columns: []string{"SPIN/SPMS"},
		Notes:   "f = A/(A+D+R) with D = 32A = 32R; ratio saturates toward 1/f = 34",
	}
	for _, pt := range series {
		t.Rows = append(t.Rows, TableRow{X: pt.X, Cells: []float64{pt.Y}})
	}
	return t
}

// baseScenario builds the common §5.1 all-to-all configuration.
func baseScenario(q Quality, nodes int, radius float64) Scenario {
	return Scenario{
		Workload:       AllToAll,
		Nodes:          nodes,
		ZoneRadius:     radius,
		PacketsPerNode: q.PacketsPerNode,
		Seed:           q.Seed,
		Drain:          q.Drain,
		Replications:   q.Replications,
	}
}

// pairEnergy and pairDelay map a (SPMS, SPIN) result pair to row cells.
func pairEnergy(res []Result) []float64 {
	return []float64{res[0].EnergyPerPacket, res[1].EnergyPerPacket}
}

func pairDelay(res []Result) []float64 {
	return []float64{ms(res[0].MeanDelay), ms(res[1].MeanDelay)}
}

// Figure6 — energy per packet vs number of nodes, static failure-free
// all-to-all, transmission radius 20 m. Paper: SPMS saves 26–43 %.
func (r *Runner) Figure6() (Table, error) {
	t := Table{
		ID:      "fig6",
		Title:   "Energy vs number of nodes (radius 20 m, static, failure-free)",
		XLabel:  "nodes",
		YLabel:  "energy per packet (µJ)",
		Columns: []string{"SPMS", "SPIN"},
	}
	return r.sweepTable(t, nodeAxis(r.q), func(x float64) []Scenario {
		return pairPoints(baseScenario(r.q, int(x), 20))
	}, pairEnergy)
}

// Figure7 — energy per packet vs transmission radius, 169 nodes.
func (r *Runner) Figure7() (Table, error) {
	t := Table{
		ID:      "fig7",
		Title:   "Energy vs transmission radius (169 nodes, static, failure-free)",
		XLabel:  "radius_m",
		YLabel:  "energy per packet (µJ)",
		Columns: []string{"SPMS", "SPIN"},
	}
	nodes := figureRadiusNodes(r.q)
	return r.sweepTable(t, r.q.Radii, func(x float64) []Scenario {
		return pairPoints(baseScenario(r.q, nodes, x))
	}, pairEnergy)
}

// figureRadiusNodes returns the node count for the radius sweeps: the
// paper's 169, or the largest Quick count when running reduced.
func figureRadiusNodes(q Quality) int {
	if q.PacketsPerNode >= workload.DefaultPacketsPerNode {
		return 169
	}
	max := 0
	for _, n := range q.NodeCounts {
		if n > max {
			max = n
		}
	}
	return max
}

// Figure8 — mean end-to-end delay vs number of nodes (radius 20 m). Paper:
// SPMS ≈10× faster.
func (r *Runner) Figure8() (Table, error) {
	t := Table{
		ID:      "fig8",
		Title:   "End-to-end delay vs number of nodes (radius 20 m)",
		XLabel:  "nodes",
		YLabel:  "delay (ms/packet)",
		Columns: []string{"SPMS", "SPIN"},
	}
	return r.sweepTable(t, nodeAxis(r.q), func(x float64) []Scenario {
		return pairPoints(baseScenario(r.q, int(x), 20))
	}, pairDelay)
}

// Figure9 — mean end-to-end delay vs transmission radius (169 nodes).
func (r *Runner) Figure9() (Table, error) {
	t := Table{
		ID:      "fig9",
		Title:   "End-to-end delay vs transmission radius (169 nodes)",
		XLabel:  "radius_m",
		YLabel:  "delay (ms/packet)",
		Columns: []string{"SPMS", "SPIN"},
	}
	nodes := figureRadiusNodes(r.q)
	return r.sweepTable(t, r.q.Radii, func(x float64) []Scenario {
		return pairPoints(baseScenario(r.q, nodes, x))
	}, pairDelay)
}

// Figure10 — delay vs number of nodes under transient failures: the paper
// plots SPMS, F-SPMS, SPIN, F-SPIN.
func (r *Runner) Figure10() (Table, error) {
	t := Table{
		ID:      "fig10",
		Title:   "End-to-end delay vs number of nodes with transient failures (radius 20 m)",
		XLabel:  "nodes",
		YLabel:  "delay (ms/packet)",
		Columns: []string{"SPMS", "F-SPMS", "SPIN", "F-SPIN"},
	}
	return r.sweepTable(t, nodeAxis(r.q), func(x float64) []Scenario {
		return failurePoints(baseScenario(r.q, int(x), 20))
	}, failureDelay)
}

// failurePoints expands a base scenario into the failure figures' four
// runs: (SPMS, SPIN) failure-free plus (F-SPMS, F-SPIN) with injection.
func failurePoints(base Scenario) []Scenario {
	failing := base
	failing.Failures = true
	return append(pairPoints(base), pairPoints(failing)...)
}

// failureDelay maps failurePoints results to the paper's column order
// (SPMS, F-SPMS, SPIN, F-SPIN).
func failureDelay(res []Result) []float64 {
	return []float64{ms(res[0].MeanDelay), ms(res[2].MeanDelay), ms(res[1].MeanDelay), ms(res[3].MeanDelay)}
}

// Figure11 — delay vs transmission radius under transient failures.
func (r *Runner) Figure11() (Table, error) {
	t := Table{
		ID:      "fig11",
		Title:   "End-to-end delay vs transmission radius with transient failures (169 nodes)",
		XLabel:  "radius_m",
		YLabel:  "delay (ms/packet)",
		Columns: []string{"SPMS", "F-SPMS", "SPIN", "F-SPIN"},
	}
	nodes := figureRadiusNodes(r.q)
	return r.sweepTable(t, r.q.Radii, func(x float64) []Scenario {
		return failurePoints(baseScenario(r.q, nodes, x))
	}, failureDelay)
}

// Figure12 — energy vs transmission radius with mobile nodes (all-to-all).
// SPMS's curve includes the Bellman-Ford re-convergence energy. Paper:
// savings drop to 5–21 %.
func (r *Runner) Figure12() (Table, error) {
	t := Table{
		ID:      "fig12",
		Title:   "Energy vs transmission radius with mobility (all-to-all)",
		XLabel:  "radius_m",
		YLabel:  "energy per packet (µJ)",
		Columns: []string{"SPMS", "SPIN"},
		Notes:   "SPMS includes DBF re-convergence energy; mobility frequency set for ≈300 packets/event (above the §5.1.3 break-even)",
	}
	nodes := figureRadiusNodes(r.q)
	return r.sweepTable(t, r.q.Radii, func(x float64) []Scenario {
		sc := baseScenario(r.q, nodes, x)
		sc.Mobility = true
		// Pace mobility so roughly 300 packets flow between events — the
		// paper's operating regime (its break-even is 239.18 packets/event).
		items := nodes * r.q.PacketsPerNode
		events := items / 300
		if events < 1 {
			events = 1
		}
		sc.MobilityPeriod = 500 * time.Millisecond / time.Duration(events)
		return pairPoints(sc)
	}, pairEnergy)
}

// Figure13 — energy vs transmission radius for cluster-based hierarchical
// communication, failure-free and with failures. Paper: SPMS uses 35–59 %
// less energy.
func (r *Runner) Figure13() (Table, error) {
	t := Table{
		ID:      "fig13",
		Title:   "Energy vs transmission radius, cluster-based hierarchical communication",
		XLabel:  "radius_m",
		YLabel:  "energy per packet (µJ)",
		Columns: []string{"SPMS", "SPIN", "F-SPMS", "F-SPIN"},
	}
	nodes := figureRadiusNodes(r.q)
	return r.sweepTable(t, r.q.Radii, func(x float64) []Scenario {
		sc := baseScenario(r.q, nodes, x)
		sc.Workload = Clustered
		return failurePoints(sc)
	}, func(res []Result) []float64 {
		// Column order here is (SPMS, SPIN, F-SPMS, F-SPIN).
		return []float64{
			res[0].EnergyPerPacket, res[1].EnergyPerPacket,
			res[2].EnergyPerPacket, res[3].EnergyPerPacket,
		}
	})
}

// MobilityThreshold recomputes §5.1.3's break-even packet count from
// measured quantities: the DBF re-convergence energy of one mobility event
// and the measured per-packet energies of both protocols at the given
// scale. The paper's calibration yields 239.18 packets.
func (r *Runner) MobilityThreshold() (breakEven float64, dbfEnergy float64, err error) {
	nodes := figureRadiusNodes(r.q)
	// One batch: the failure-free pair plus an SPMS mobility run whose
	// control-energy share measures one event's convergence cost.
	mob := baseScenario(r.q, nodes, 20)
	mob.Mobility = true
	mob.Protocol = SPMS
	points := append(pairPoints(baseScenario(r.q, nodes, 20)), mob)
	res, err := r.results(points)
	if err != nil {
		return 0, 0, err
	}
	// Replicate means (a single replicate's mean is the value itself, so
	// the unreplicated path is unchanged). The per-event DBF energy is
	// averaged per replicate before averaging across them.
	spmsE := meanMetric(res[0], func(r Result) float64 { return r.EnergyPerPacket })
	spinE := meanMetric(res[1], func(r Result) float64 { return r.EnergyPerPacket })
	dbfEnergy = meanMetric(res[2], func(r Result) float64 {
		if r.MobilityEvents == 0 {
			return 0
		}
		return r.CtrlEnergy / float64(r.MobilityEvents)
	})
	return analysis.BreakEvenPackets(dbfEnergy, spinE, spmsE), dbfEnergy, nil
}

// meanMetric averages one metric over a replicate vector.
func meanMetric(rs []Result, metric func(Result) float64) float64 {
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = metric(r)
	}
	return stats.Describe(vals).Mean
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
