package experiment

import (
	"strings"
	"testing"
	"time"
)

// tiny is the smallest quality that still exercises multi-zone behavior;
// figure tests use it to keep the suite fast.
func tiny() Quality {
	return Quality{
		PacketsPerNode: 1,
		NodeCounts:     []int{16, 25},
		Radii:          []float64{10, 15},
		Drain:          1500 * time.Millisecond,
		Seed:           1,
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, frag := range []string{
		"3.1622", "0.0125", // power levels
		"91.44", "5.48", // ranges
		"0.05 ms/byte",
		"50ms",  // failure inter-arrival
		"10ms",  // MTTR
		"100µs", // slot time
		"20",    // slots
		"2 B",   // ADV/REQ
		"40 B",  // DATA
		"1ms / 2.5ms",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table 1 rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure3SpotValueAndShape(t *testing.T) {
	tab := Figure3()
	if tab.ID != "fig3" || len(tab.Rows) == 0 {
		t.Fatalf("bad table: %+v", tab)
	}
	if !strings.Contains(tab.Notes, "2.7865") {
		t.Fatalf("notes missing the paper's spot value: %q", tab.Notes)
	}
	// Monotone non-decreasing after the first few points, all ≥ 1 beyond
	// small radii.
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells[0] < 2.8 || last.Cells[0] > 3.0 {
		t.Fatalf("ratio at r=30 is %v, want ≈2.96 (approaching 3)", last.Cells[0])
	}
}

func TestFigure5Shape(t *testing.T) {
	tab := Figure5()
	if tab.ID != "fig5" || len(tab.Rows) == 0 {
		t.Fatalf("bad table: %+v", tab)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if first.Cells[0] != 1 {
		t.Fatalf("ratio at k=1 is %v, want exactly 1", first.Cells[0])
	}
	if last.Cells[0] < 30 || last.Cells[0] > 34 {
		t.Fatalf("ratio at k=30 is %v, want ≈33.5 (saturating toward 1/f=34)", last.Cells[0])
	}
}

func TestSimFiguresShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures are slow")
	}
	r := NewRunner(tiny())

	t.Run("fig6 energy ordering", func(t *testing.T) {
		tab, err := r.Figure6()
		if err != nil {
			t.Fatalf("Figure6: %v", err)
		}
		if len(tab.Rows) != 2 || len(tab.Columns) != 2 {
			t.Fatalf("bad dimensions: %+v", tab)
		}
		for _, row := range tab.Rows {
			spms, spin := row.Cells[0], row.Cells[1]
			if spms <= 0 || spin <= 0 {
				t.Fatalf("non-positive energy at n=%v", row.X)
			}
			if spms >= spin {
				t.Fatalf("SPMS energy %v ≥ SPIN %v at n=%v", spms, spin, row.X)
			}
		}
	})

	t.Run("fig8 delay positive", func(t *testing.T) {
		tab, err := r.Figure8()
		if err != nil {
			t.Fatalf("Figure8: %v", err)
		}
		// Delay grows with node count for both protocols (paper's shape).
		if tab.Rows[1].Cells[0] <= tab.Rows[0].Cells[0] {
			t.Fatalf("SPMS delay not growing with nodes: %+v", tab.Rows)
		}
		if tab.Rows[1].Cells[1] <= tab.Rows[0].Cells[1] {
			t.Fatalf("SPIN delay not growing with nodes: %+v", tab.Rows)
		}
	})

	t.Run("fig10 failure columns dominate", func(t *testing.T) {
		tab, err := r.Figure10()
		if err != nil {
			t.Fatalf("Figure10: %v", err)
		}
		if len(tab.Columns) != 4 {
			t.Fatalf("want 4 columns, got %v", tab.Columns)
		}
		// At the largest scale, failure delay ≥ failure-free delay for both.
		last := tab.Rows[len(tab.Rows)-1]
		if last.Cells[1] < last.Cells[0] {
			t.Fatalf("F-SPMS %v < SPMS %v", last.Cells[1], last.Cells[0])
		}
		if last.Cells[3] < last.Cells[2] {
			t.Fatalf("F-SPIN %v < SPIN %v", last.Cells[3], last.Cells[2])
		}
	})

	t.Run("fig13 cluster energy ordering", func(t *testing.T) {
		tab, err := r.Figure13()
		if err != nil {
			t.Fatalf("Figure13: %v", err)
		}
		for _, row := range tab.Rows {
			if row.Cells[0] >= row.Cells[1] {
				t.Fatalf("clustered SPMS %v ≥ SPIN %v at r=%v", row.Cells[0], row.Cells[1], row.X)
			}
		}
	})

	t.Run("runner memoizes", func(t *testing.T) {
		before := len(r.cache)
		if before == 0 {
			t.Fatal("cache empty after figure runs")
		}
		// Re-running Figure6 must not add scenarios.
		if _, err := r.Figure6(); err != nil {
			t.Fatalf("Figure6: %v", err)
		}
		if len(r.cache) != before {
			t.Fatalf("cache grew on repeat: %d → %d", before, len(r.cache))
		}
	})
}

// TestFigureReplications checks the ± layer: above one replication every
// series gains a CI column and the means stay positive; at exactly one
// replication the table is byte-identical to the unreplicated run.
func TestFigureReplications(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures are slow")
	}
	q := tiny()
	q.NodeCounts = []int{16}

	q.Replications = 2
	tab, err := NewRunner(q).Figure8()
	if err != nil {
		t.Fatalf("Figure8 replicated: %v", err)
	}
	wantCols := []string{"SPMS", "SPMS ±", "SPIN", "SPIN ±"}
	if len(tab.Columns) != 4 {
		t.Fatalf("columns = %v, want %v", tab.Columns, wantCols)
	}
	for i, c := range wantCols {
		if tab.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", tab.Columns, wantCols)
		}
	}
	if !strings.Contains(tab.Notes, "95% CI") || !strings.Contains(tab.Notes, "2 replicates") {
		t.Fatalf("notes missing the CI legend: %q", tab.Notes)
	}
	row := tab.Rows[0]
	if len(row.Cells) != 4 || row.Cells[0] <= 0 || row.Cells[2] <= 0 {
		t.Fatalf("replicated row malformed: %+v", row)
	}
	if row.Cells[1] < 0 || row.Cells[3] < 0 {
		t.Fatalf("negative CI half-width: %+v", row)
	}

	q.Replications = 1
	one, err := NewRunner(q).Figure8()
	if err != nil {
		t.Fatalf("Figure8 single: %v", err)
	}
	q.Replications = 0
	zero, err := NewRunner(q).Figure8()
	if err != nil {
		t.Fatalf("Figure8 unreplicated: %v", err)
	}
	if one.Format() != zero.Format() || one.CSV() != zero.CSV() {
		t.Fatalf("replications=1 table diverged from the unreplicated table:\n--- replications=1\n%s\n--- unset\n%s", one.Format(), zero.Format())
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := Table{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Columns: []string{"A", "B"},
		Rows:    []TableRow{{X: 1, Cells: []float64{2.5, 3.5}}, {X: 2, Cells: []float64{4, 5}}},
		Notes:   "a note",
	}
	txt := tab.Format()
	for _, frag := range []string{"figX", "demo", "a note", "A", "B", "2.5000"} {
		if !strings.Contains(txt, frag) {
			t.Fatalf("Format missing %q:\n%s", frag, txt)
		}
	}
	csv := tab.CSV()
	wantHeader := "x,A,B\n"
	if !strings.HasPrefix(csv, wantHeader) {
		t.Fatalf("CSV header = %q, want prefix %q", csv, wantHeader)
	}
	if !strings.Contains(csv, "1,2.5,3.5\n") {
		t.Fatalf("CSV missing row: %q", csv)
	}
}

func TestQualityPresets(t *testing.T) {
	full, std, quick := Full(), Standard(), Quick()
	if full.PacketsPerNode != 10 || std.PacketsPerNode != 10 {
		t.Fatal("Full/Standard must use the paper's 10 packets/node")
	}
	if quick.PacketsPerNode >= full.PacketsPerNode {
		t.Fatal("Quick must be cheaper than Full")
	}
	if len(full.NodeCounts) <= len(std.NodeCounts)-1 {
		t.Fatal("Full should sweep at least as many node counts as Standard")
	}
	// Full covers the paper's extremes.
	foundMax := false
	for _, n := range full.NodeCounts {
		if n == 225 {
			foundMax = true
		}
	}
	if !foundMax {
		t.Fatal("Full must include the paper's 225-node point")
	}
}
