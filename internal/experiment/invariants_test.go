package experiment

import (
	"testing"
	"time"
)

// TestProtocolsDeliverSameSets runs SPMS and SPIN on an identical workload
// and verifies both satisfy exactly the expected interest set in a
// failure-free static field — the protocols differ in cost, never in
// outcome.
func TestProtocolsDeliverSameSets(t *testing.T) {
	for _, wl := range []WorkloadKind{AllToAll, Clustered} {
		name := "all-to-all"
		if wl == Clustered {
			name = "clustered"
		}
		t.Run(name, func(t *testing.T) {
			var expected int
			for _, p := range []Protocol{SPMS, SPIN, Flooding} {
				if wl == Clustered && p == Flooding {
					continue // flooding ignores interest; counts differ by design
				}
				res, err := Run(Scenario{
					Protocol:       p,
					Workload:       wl,
					Nodes:          36,
					ZoneRadius:     18,
					PacketsPerNode: 2,
					Seed:           5,
					Drain:          3 * time.Second,
				})
				if err != nil {
					t.Fatalf("%v: %v", p, err)
				}
				if expected == 0 {
					expected = res.Expected
				}
				if res.Expected != expected {
					t.Fatalf("%v expected-set size %d, others %d (workload not shared?)",
						p, res.Expected, expected)
				}
				if res.Deliveries != res.Expected {
					t.Fatalf("%v delivered %d/%d in a failure-free run", p, res.Deliveries, res.Expected)
				}
			}
		})
	}
}

// TestEnergyOrderingInvariant asserts the paper's global energy ordering on
// a common workload: SPMS < SPIN ≤ flooding (metadata negotiation saves
// energy; shortest-path multi-hop saves more).
func TestEnergyOrderingInvariant(t *testing.T) {
	results := map[Protocol]Result{}
	for _, p := range []Protocol{SPMS, SPIN, Flooding} {
		res, err := Run(Scenario{
			Protocol:       p,
			Workload:       AllToAll,
			Nodes:          49,
			ZoneRadius:     20,
			PacketsPerNode: 2,
			Seed:           9,
			Drain:          3 * time.Second,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		results[p] = res
	}
	if !(results[SPMS].TotalEnergy < results[SPIN].TotalEnergy) {
		t.Fatalf("SPMS %v ≥ SPIN %v", results[SPMS].TotalEnergy, results[SPIN].TotalEnergy)
	}
	if !(results[SPIN].TotalEnergy <= results[Flooding].TotalEnergy) {
		t.Fatalf("SPIN %v > flooding %v", results[SPIN].TotalEnergy, results[Flooding].TotalEnergy)
	}
}

// TestSeedSweepStability runs the headline comparison across several seeds:
// the SPMS-beats-SPIN conclusion must not be a single-seed artifact.
func TestSeedSweepStability(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for seed := int64(1); seed <= 5; seed++ {
		sc := Scenario{
			Protocol:       SPMS,
			Workload:       AllToAll,
			Nodes:          49,
			ZoneRadius:     20,
			PacketsPerNode: 2,
			Seed:           seed,
			Drain:          2 * time.Second,
		}
		spms, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d SPMS: %v", seed, err)
		}
		sc.Protocol = SPIN
		spin, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d SPIN: %v", seed, err)
		}
		if spms.EnergyPerPacket >= spin.EnergyPerPacket {
			t.Fatalf("seed %d: SPMS energy %v ≥ SPIN %v", seed, spms.EnergyPerPacket, spin.EnergyPerPacket)
		}
		if spms.MeanDelay >= spin.MeanDelay {
			t.Fatalf("seed %d: SPMS delay %v ≥ SPIN %v", seed, spms.MeanDelay, spin.MeanDelay)
		}
	}
}

// TestDuplicateEconomy: metadata negotiation exists to fight implosion, so
// SPMS/SPIN duplicate receptions must be far below flooding's on a dense
// field.
func TestDuplicateEconomy(t *testing.T) {
	dups := map[Protocol]uint64{}
	for _, p := range []Protocol{SPMS, SPIN, Flooding} {
		res, err := Run(Scenario{
			Protocol:       p,
			Workload:       AllToAll,
			Nodes:          25,
			ZoneRadius:     30, // dense single zone: worst case for implosion
			PacketsPerNode: 1,
			Seed:           3,
			Drain:          3 * time.Second,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		dups[p] = res.Duplicates
	}
	if dups[SPIN] >= dups[Flooding] {
		t.Fatalf("SPIN duplicates %d ≥ flooding %d; negotiation not suppressing implosion",
			dups[SPIN], dups[Flooding])
	}
}
