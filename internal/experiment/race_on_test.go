//go:build race

package experiment

// raceEnabled reports whether this test binary was built with -race; the
// 10⁵-node scale test skips itself there (the shadow memory multiplies its
// footprint and runtime far past CI budgets).
const raceEnabled = true
