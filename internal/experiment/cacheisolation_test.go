package experiment

import (
	"testing"
	"time"
)

// TestSweepWorkersCacheIsolation exercises the topo neighbor caches under
// the race detector: several identical mobility-heavy scenarios run
// concurrently in one pool, so every worker is constantly rebuilding and
// querying its own field's cache-owned slices. A worker observing another
// worker's cache would show up either as a -race report (the caches are
// written without synchronization — safe only because each Field belongs to
// exactly one worker) or as a result mismatch against the serial run.
func TestSweepWorkersCacheIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	sc := Scenario{
		Protocol:         SPMS,
		Workload:         AllToAll,
		Nodes:            49,
		ZoneRadius:       20,
		PacketsPerNode:   2,
		Mobility:         true,
		MobilityPeriod:   50 * time.Millisecond,
		MobilityFraction: 0.1,
		Seed:             7,
		Drain:            2 * time.Second,
	}
	// Identical points: any cross-worker cache bleed makes results diverge.
	points := []Scenario{sc, sc, sc, sc}
	serial, err := (Sweep{Points: points, Workers: 1}).Execute()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (Sweep{Points: points, Workers: len(points)}).Execute()
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d diverged between serial and parallel pools:\nserial:   %+v\nparallel: %+v",
				i, serial[i], parallel[i])
		}
		if serial[i] != serial[0] {
			t.Fatalf("identical scenarios gave different results within the serial pool (point %d)", i)
		}
	}
}
