// metrics.go names Result's numeric metrics in one canonical report
// order — the order campaign CSV columns, aggregate records, and the
// replicated-run summaries all share — and aggregates replicate vectors
// into per-metric statistics.
package experiment

import "repro/internal/stats"

// resultMetricNames is the canonical metric order with units embedded:
// energies in microjoules, delays in milliseconds. It must stay aligned
// field for field with Result.MetricValues.
var resultMetricNames = []string{
	"totalEnergy_uJ", "energyPerPacket_uJ", "ctrlEnergy_uJ",
	"meanDelay_ms", "p95Delay_ms", "maxDelay_ms",
	"items", "deliveries", "expected", "deliveryRate",
	"timeouts", "failovers", "drops", "duplicates",
	"sentADV", "sentREQ", "sentDATA",
	"dbfRounds", "dbfBroadcasts", "mobilityEvents", "failuresInjected",
}

// ResultMetricNames returns the canonical metric report order. The caller
// may keep the slice; it is a fresh copy.
func ResultMetricNames() []string {
	out := make([]string, len(resultMetricNames))
	copy(out, resultMetricNames)
	return out
}

// MetricValues returns the result's metrics in ResultMetricNames order.
func (r Result) MetricValues() []float64 {
	return []float64{
		r.TotalEnergy, r.EnergyPerPacket, r.CtrlEnergy,
		ms(r.MeanDelay), ms(r.P95Delay), ms(r.MaxDelay),
		float64(r.Items), float64(r.Deliveries), float64(r.Expected), r.DeliveryRate,
		float64(r.Timeouts), float64(r.Failovers), float64(r.Drops), float64(r.Duplicates),
		float64(r.SentADV), float64(r.SentREQ), float64(r.SentDATA),
		float64(r.DBFRounds), float64(r.DBFBroadcasts), float64(r.MobilityEvents), float64(r.FailuresInjected),
	}
}

// AggregateResults summarizes a replicate vector per metric: entry k of
// the returned slice is the stats.Summary of metric k (ResultMetricNames
// order) across the replicates, in replicate order — deterministic for a
// deterministic replicate vector.
func AggregateResults(rs []Result) []stats.Summary {
	rows := make([][]float64, len(rs))
	for i, r := range rs {
		rows[i] = r.MetricValues()
	}
	return stats.DescribeColumns(rows)
}
