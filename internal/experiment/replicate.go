// replicate.go is the multi-seed replication engine: it turns one
// Scenario with Replications = N into N independent trials whose seeds
// are derived deterministically from the base seed, and runs them as
// plain work units through the Sweep pool — replicates parallelize
// exactly like points, and the per-point replicate vectors are
// byte-identical at every pool size (DESIGN.md §2).
package experiment

// ReplicateSeed returns the seed of replicate i (0-based) of a scenario
// whose base seed is base. Replicate 0 runs the base seed itself, so a
// single replication reproduces the unreplicated run bit for bit;
// replicates i > 0 use a SplitMix64-mixed seed, which decorrelates the
// math/rand streams far better than consecutive integers while staying a
// pure function of (base, i).
func ReplicateSeed(base int64, i int) int64 {
	if i <= 0 {
		return base
	}
	x := uint64(base) + uint64(i)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Replications returns the trial count a scenario stands for: at least 1.
func Replications(sc Scenario) int {
	if sc.Replications > 1 {
		return sc.Replications
	}
	return 1
}

// Replicate returns trial i of the scenario: the same parameters with the
// derived seed and Replications cleared — a replicate is itself a single
// run, and clearing keeps its JSON form free of replication metadata.
func Replicate(sc Scenario, i int) Scenario {
	sc.Seed = ReplicateSeed(sc.Seed, i)
	sc.Replications = 0
	return sc
}

// ReplicatedSweep executes every point's replicates as independent units
// through the Sweep worker pool and reassembles them per point: the
// result of point i is its replicate vector, in replicate order.
type ReplicatedSweep struct {
	// Points are the scenarios to run; each expands to Replications(sc)
	// trials. Order is the result order.
	Points []Scenario

	// Run executes one trial. Nil means the package-level Run. It must be
	// safe to call concurrently.
	Run func(Scenario) (Result, error)

	// Workers bounds the pool, as in Sweep.
	Workers int

	// OnPoint, when non-nil, is invoked once per point as soon as its last
	// replicate completes, with the point's index, its (unexpanded)
	// scenario, and the full replicate vector. Calls are serialized but may
	// arrive out of point order when Workers > 1; a non-nil return aborts
	// the sweep with Sweep.OnPoint's abort semantics.
	OnPoint func(index int, sc Scenario, reps []Result) error

	// OnStart, when non-nil, is invoked as a worker claims a trial of the
	// given point — once per replicate, so a replicated point reports a
	// start per trial. Sweep.OnStart's concurrency caveats apply: calls
	// are concurrent and must be cheap and safe.
	OnStart func(point int)

	// Cancel, when non-nil, requests a graceful stop when closed, with
	// Sweep.Cancel's drain semantics. Because the unit of work is a trial,
	// a cancelled sweep may finish some replicates of a point but not all;
	// only fully-replicated points reach OnPoint.
	Cancel <-chan struct{}
}

// Execute runs every trial through the pool and returns the per-point
// replicate vectors in point order. Trial failures surface with Sweep's
// lowest-failing-unit error contract.
func (s ReplicatedSweep) Execute() ([][]Result, error) {
	total := 0
	for _, p := range s.Points {
		total += Replications(p)
	}
	trials := make([]Scenario, 0, total)
	// refs[t] locates trial t: point index and replicate index.
	type trialRef struct{ point, rep int }
	refs := make([]trialRef, 0, total)
	out := make([][]Result, len(s.Points))
	remaining := make([]int, len(s.Points))
	for i, p := range s.Points {
		n := Replications(p)
		out[i] = make([]Result, n)
		remaining[i] = n
		for r := 0; r < n; r++ {
			trials = append(trials, Replicate(p, r))
			refs = append(refs, trialRef{i, r})
		}
	}

	// Sweep serializes OnPoint invocations, so the reassembly state below
	// needs no lock; wg.Wait in Execute orders the final reads after every
	// callback write.
	var onStart func(int)
	if s.OnStart != nil {
		//repolint:allow hooknil the closure is only constructed under this guard, and s is a value copy so the field cannot change afterward
		onStart = func(t int) { s.OnStart(refs[t].point) }
	}
	inner := Sweep{
		Points:  trials,
		Run:     s.Run,
		Workers: s.Workers,
		OnStart: onStart,
		Cancel:  s.Cancel,
		OnPoint: func(t int, _ Scenario, res Result) error {
			ref := refs[t]
			out[ref.point][ref.rep] = res
			remaining[ref.point]--
			if remaining[ref.point] == 0 && s.OnPoint != nil {
				return s.OnPoint(ref.point, s.Points[ref.point], out[ref.point])
			}
			return nil
		},
	}
	if _, err := inner.Execute(); err != nil {
		return nil, err
	}
	return out, nil
}
