package experiment

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestReplicateSeed(t *testing.T) {
	if got := ReplicateSeed(42, 0); got != 42 {
		t.Fatalf("replicate 0 seed = %d, want the base seed 42", got)
	}
	// Derived seeds are deterministic and distinct across replicates and
	// across nearby base seeds (SplitMix64 mixing, not consecutive ints).
	seen := make(map[int64]bool)
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 8; i++ {
			s := ReplicateSeed(base, i)
			if s != ReplicateSeed(base, i) {
				t.Fatal("ReplicateSeed is not deterministic")
			}
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d: %d", base, i, s)
			}
			seen[s] = true
		}
	}
}

func TestReplicateScenario(t *testing.T) {
	sc := Scenario{Nodes: 49, Seed: 7, Replications: 4}
	r2 := Replicate(sc, 2)
	if r2.Seed != ReplicateSeed(7, 2) || r2.Replications != 0 || r2.Nodes != 49 {
		t.Fatalf("Replicate(sc, 2) = %+v", r2)
	}
	if n := Replications(sc); n != 4 {
		t.Fatalf("Replications = %d, want 4", n)
	}
	if n := Replications(Scenario{}); n != 1 {
		t.Fatalf("Replications of zero scenario = %d, want 1", n)
	}
	if n := Replications(Scenario{Replications: 1}); n != 1 {
		t.Fatalf("Replications of explicit 1 = %d, want 1", n)
	}
}

// TestReplicatedSweepOrder checks per-point replicate vectors come back in
// (point, replicate) order at every pool size, with trial seeds derived
// from each point's base seed.
func TestReplicatedSweepOrder(t *testing.T) {
	points := make([]Scenario, 9)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1, Seed: int64(100 + i), Replications: 3}
	}
	stub := func(sc Scenario) (Result, error) {
		return Result{Items: sc.Nodes, EnergyPerPacket: float64(sc.Seed)}, nil
	}
	for _, workers := range []int{0, 1, 2, 8} {
		res, err := (ReplicatedSweep{Points: points, Run: stub, Workers: workers}).Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(points) {
			t.Fatalf("workers=%d: %d vectors, want %d", workers, len(res), len(points))
		}
		for i, reps := range res {
			if len(reps) != 3 {
				t.Fatalf("workers=%d: point %d has %d replicates, want 3", workers, i, len(reps))
			}
			for r, got := range reps {
				if got.Items != i+1 {
					t.Fatalf("workers=%d: point %d replicate %d out of order: %+v", workers, i, r, got)
				}
				if want := float64(ReplicateSeed(int64(100+i), r)); got.EnergyPerPacket != want {
					t.Fatalf("workers=%d: point %d replicate %d ran seed %v, want %v", workers, i, r, got.EnergyPerPacket, want)
				}
			}
		}
	}
}

// TestReplicatedSweepOnPoint checks the callback fires exactly once per
// point with the complete replicate vector, and that unreplicated points
// deliver single-element vectors.
func TestReplicatedSweepOnPoint(t *testing.T) {
	points := []Scenario{
		{Nodes: 1, Seed: 1, Replications: 2},
		{Nodes: 2, Seed: 2},
		{Nodes: 3, Seed: 3, Replications: 4},
	}
	stub := func(sc Scenario) (Result, error) {
		return Result{Items: sc.Nodes}, nil
	}
	for _, workers := range []int{1, 8} {
		got := make(map[int][]Result)
		_, err := (ReplicatedSweep{
			Points:  points,
			Run:     stub,
			Workers: workers,
			OnPoint: func(i int, sc Scenario, reps []Result) error {
				if _, dup := got[i]; dup {
					t.Errorf("workers=%d: point %d delivered twice", workers, i)
				}
				if sc.Nodes != points[i].Nodes {
					t.Errorf("workers=%d: point %d delivered scenario %+v", workers, i, sc)
				}
				got[i] = reps
				return nil
			},
		}).Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 3 || len(got[0]) != 2 || len(got[1]) != 1 || len(got[2]) != 4 {
			t.Fatalf("workers=%d: replicate vector shapes wrong: %v", workers, got)
		}
	}
}

// TestReplicatedSweepTrialError checks a failing trial aborts the sweep
// and surfaces through the pool at every size.
func TestReplicatedSweepTrialError(t *testing.T) {
	boom := errors.New("trial boom")
	points := []Scenario{{Nodes: 1, Seed: 1, Replications: 3}}
	stub := func(sc Scenario) (Result, error) {
		if sc.Seed == ReplicateSeed(1, 1) {
			return Result{}, boom
		}
		return Result{}, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := (ReplicatedSweep{Points: points, Run: stub, Workers: workers}).Execute()
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want trial boom", workers, err)
		}
	}
}

// TestReplicatedSweepSerialParallelDeterminism is the replication half of
// the determinism contract: real replicated simulations produce identical
// replicate vectors at workers=1 and workers=8.
func TestReplicatedSweepSerialParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	points := make([]Scenario, 2)
	for i, p := range []Protocol{SPMS, SPIN} {
		points[i] = Scenario{
			Protocol:       p,
			Workload:       AllToAll,
			Nodes:          16,
			ZoneRadius:     15,
			PacketsPerNode: 1,
			Seed:           1,
			Drain:          1500 * time.Millisecond,
			Replications:   3,
		}
	}
	serial, err := (ReplicatedSweep{Points: points, Workers: 1}).Execute()
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	parallel, err := (ReplicatedSweep{Points: points, Workers: 8}).Execute()
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("replicated results diverged:\n--- workers=1\n%+v\n--- workers=8\n%+v", serial, parallel)
	}
	// Replicates genuinely differ (different seeds), so the aggregation
	// has variance to summarize.
	if serial[0][0] == serial[0][1] && serial[0][1] == serial[0][2] {
		t.Fatal("all replicates identical — seed derivation is not varying the trials")
	}
}
