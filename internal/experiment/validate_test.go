package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// validScenario is a minimal scenario that passes Validate.
func validScenario() Scenario {
	return Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 25, ZoneRadius: 15}
}

// TestScenarioValidate is the table-driven contract of Validate: zero
// values that WithDefaults fills are fine, explicit nonsense is rejected
// with an error naming the offending field.
func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string // "" means valid
	}{
		{"baseline", func(sc *Scenario) {}, ""},
		{"defaulted zeros", func(sc *Scenario) {
			sc.GridSpacing, sc.PacketsPerNode, sc.Drain = 0, 0, 0
		}, ""},
		{"clustered", func(sc *Scenario) { sc.Workload = Clustered; sc.ClusterInterestProb = 1 }, ""},
		{"unknown protocol", func(sc *Scenario) { sc.Protocol = 0 }, "unknown protocol"},
		{"protocol out of range", func(sc *Scenario) { sc.Protocol = Flooding + 1 }, "unknown protocol"},
		{"unknown workload", func(sc *Scenario) { sc.Workload = 0 }, "unknown workload"},
		{"zero nodes", func(sc *Scenario) { sc.Nodes = 0 }, "node count"},
		{"negative nodes", func(sc *Scenario) { sc.Nodes = -5 }, "node count"},
		{"negative spacing", func(sc *Scenario) { sc.GridSpacing = -1 }, "grid spacing"},
		{"zero radius", func(sc *Scenario) { sc.ZoneRadius = 0 }, "zone radius"},
		{"negative radius", func(sc *Scenario) { sc.ZoneRadius = -3 }, "zone radius"},
		{"negative packets", func(sc *Scenario) { sc.PacketsPerNode = -1 }, "packets per node"},
		{"negative arrival", func(sc *Scenario) { sc.MeanArrival = -time.Millisecond }, "mean arrival"},
		{"interest prob below 0", func(sc *Scenario) { sc.ClusterInterestProb = -0.1 }, "outside [0,1]"},
		{"interest prob above 1", func(sc *Scenario) { sc.ClusterInterestProb = 1.5 }, "outside [0,1]"},
		{"bad failure config", func(sc *Scenario) {
			sc.Failures = true
			sc.FailureCfg = fault.Config{MeanInterArrival: -time.Millisecond}
		}, "inter-arrival"},
		{"failure config ignored when failures off", func(sc *Scenario) {
			sc.FailureCfg = fault.Config{MeanInterArrival: -time.Millisecond}
		}, ""},
		{"negative mobility period", func(sc *Scenario) { sc.MobilityPeriod = -time.Second }, "mobility period"},
		{"mobility fraction below 0", func(sc *Scenario) { sc.MobilityFraction = -0.01 }, "mobility fraction"},
		{"mobility fraction above 1", func(sc *Scenario) { sc.MobilityFraction = 2 }, "mobility fraction"},
		{"negative route alternatives", func(sc *Scenario) { sc.RouteAlternatives = -1 }, "route alternatives"},
		{"negative drain", func(sc *Scenario) { sc.Drain = -time.Second }, "negative drain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScenario()
			tc.mutate(&sc)
			err := sc.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v, want error containing %q", sc, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalid checks Run surfaces the tightened validation, not
// a downstream panic.
func TestRunRejectsInvalid(t *testing.T) {
	sc := validScenario()
	sc.PacketsPerNode = -2
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "packets per node") {
		t.Fatalf("Run(negative packets) = %v, want validation error", err)
	}
}

// TestWithDefaultsIdempotent checks applying defaults twice is a no-op, so
// campaign expansion can pre-apply them without changing what Run sees.
func TestWithDefaultsIdempotent(t *testing.T) {
	sc := validScenario()
	sc.Mobility = true
	once := sc.WithDefaults()
	twice := once.WithDefaults()
	if once != twice {
		t.Fatalf("WithDefaults not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
}
