package experiment

import (
	"testing"
	"time"
)

// runPair executes a scenario under both SPMS and SPIN (test helper over
// the memoizing Runner).
func runPair(sc Scenario) (spms, spin Result, err error) {
	return NewRunner(Quick()).pair(sc)
}

// quickScenario is a small but non-trivial all-to-all configuration used
// throughout these tests: 49 nodes, 20 m zones, 2 packets per node.
func quickScenario(p Protocol) Scenario {
	return Scenario{
		Protocol:       p,
		Workload:       AllToAll,
		Nodes:          49,
		ZoneRadius:     20,
		PacketsPerNode: 2,
		Seed:           1,
		Drain:          2 * time.Second,
	}
}

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"unknown protocol", func(s *Scenario) { s.Protocol = 0 }},
		{"unknown workload", func(s *Scenario) { s.Workload = 99 }},
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"zero radius", func(s *Scenario) { s.ZoneRadius = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := quickScenario(SPMS)
			tt.mutate(&sc)
			if _, err := Run(sc); err == nil {
				t.Fatal("invalid scenario accepted")
			}
		})
	}
}

func TestRunCompletesAllProtocols(t *testing.T) {
	for _, p := range []Protocol{SPMS, SPIN, Flooding} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := Run(quickScenario(p))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Items != 98 {
				t.Fatalf("Items=%d, want 98", res.Items)
			}
			if res.DeliveryRate < 0.99 {
				t.Fatalf("%v delivery rate %v, want ≈1 in failure-free static run", p, res.DeliveryRate)
			}
			if res.TotalEnergy <= 0 || res.EnergyPerPacket <= 0 {
				t.Fatalf("%v recorded no energy", p)
			}
			if res.MeanDelay <= 0 {
				t.Fatalf("%v recorded no delay", p)
			}
		})
	}
}

func TestSPMSBeatsSPINOnEnergyAndDelay(t *testing.T) {
	// The headline result (Figures 6 and 8): static failure-free all-to-all
	// has SPMS below SPIN on both energy per packet and mean delay.
	spms, spin, err := runPair(quickScenario(SPMS))
	if err != nil {
		t.Fatalf("runPair: %v", err)
	}
	if spms.EnergyPerPacket >= spin.EnergyPerPacket {
		t.Fatalf("SPMS energy %v ≥ SPIN %v", spms.EnergyPerPacket, spin.EnergyPerPacket)
	}
	if spms.MeanDelay >= spin.MeanDelay {
		t.Fatalf("SPMS delay %v ≥ SPIN %v", spms.MeanDelay, spin.MeanDelay)
	}
}

func TestFloodingCostsMostEnergy(t *testing.T) {
	flood, err := Run(quickScenario(Flooding))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	spin, err := Run(quickScenario(SPIN))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if flood.EnergyPerPacket <= spin.EnergyPerPacket {
		t.Fatalf("flooding energy %v ≤ SPIN %v; negotiation should save energy",
			flood.EnergyPerPacket, spin.EnergyPerPacket)
	}
}

func TestFailuresIncreaseDelay(t *testing.T) {
	base := quickScenario(SPMS)
	free, err := Run(base)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	base.Failures = true
	// Per-node failure clocks at Table 1 rates put every node down ≈1/6 of
	// the time, so failures are guaranteed to land inside the active
	// dissemination window.
	failing, err := Run(base)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if failing.FailuresInjected == 0 {
		t.Fatal("failure scenario injected nothing")
	}
	if failing.MeanDelay <= free.MeanDelay {
		t.Fatalf("failure delay %v ≤ failure-free %v", failing.MeanDelay, free.MeanDelay)
	}
	// Failovers should actually fire under failures.
	if failing.Failovers == 0 {
		t.Fatal("no failovers under injected failures")
	}
	// Most traffic still gets through (transient failures, short MTTR).
	// With every node down ≈1/6 of the time, some acquisitions legitimately
	// exhaust their providers; ≈90% delivery is the expected regime.
	if failing.DeliveryRate < 0.8 {
		t.Fatalf("delivery rate %v under failures, want ≥0.8", failing.DeliveryRate)
	}
}

func TestMobilityChargesControlEnergy(t *testing.T) {
	sc := quickScenario(SPMS)
	sc.Mobility = true
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MobilityEvents == 0 {
		t.Fatal("no mobility events fired")
	}
	if res.CtrlEnergy <= 0 {
		t.Fatal("mobility run charged no control energy")
	}
	// SPIN pays no routing cost under mobility.
	sc.Protocol = SPIN
	spinRes, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spinRes.CtrlEnergy != 0 {
		t.Fatalf("SPIN charged %v control energy", spinRes.CtrlEnergy)
	}
}

func TestMobilityNarrowsEnergyGap(t *testing.T) {
	// §5.1.3: mobility costs SPMS re-convergence energy, shrinking (but not
	// eliminating) its advantage — provided enough packets flow between
	// mobility events ("at least 239.18 packets must be successfully
	// transmitted between two instances of network mobility for SPMS to
	// save energy"). Run above that regime: a full workload with a single
	// mobility event.
	static := quickScenario(SPMS)
	static.PacketsPerNode = 10
	spmsStatic, spinStatic, err := runPair(static)
	if err != nil {
		t.Fatalf("runPair: %v", err)
	}
	mobile := static
	mobile.Mobility = true
	mobile.MobilityPeriod = 400 * time.Millisecond
	spmsMobile, spinMobile, err := runPair(mobile)
	if err != nil {
		t.Fatalf("runPair: %v", err)
	}
	gapStatic := spinStatic.EnergyPerPacket / spmsStatic.EnergyPerPacket
	gapMobile := spinMobile.EnergyPerPacket / spmsMobile.EnergyPerPacket
	if gapMobile >= gapStatic {
		t.Fatalf("mobility did not narrow the energy gap: static %v, mobile %v", gapStatic, gapMobile)
	}
	if gapMobile <= 1 {
		t.Fatalf("SPMS lost its advantage entirely under mobility: gap %v", gapMobile)
	}
}

func TestMobilityBelowBreakEvenFavorsSPIN(t *testing.T) {
	// The flip side of §5.1.3: with too few packets between mobility
	// events, the re-convergence energy swamps SPMS's per-packet gain and
	// SPIN wins — the existence of the 239.18-packet threshold depends on
	// this regime being real.
	sc := quickScenario(SPMS)
	sc.PacketsPerNode = 1 // 49 items across ~5 mobility events
	sc.Mobility = true
	sc.MobilityPeriod = 50 * time.Millisecond
	spms, spin, err := runPair(sc)
	if err != nil {
		t.Fatalf("runPair: %v", err)
	}
	if spms.EnergyPerPacket <= spin.EnergyPerPacket {
		t.Fatalf("below break-even SPMS (%v) should cost more than SPIN (%v)",
			spms.EnergyPerPacket, spin.EnergyPerPacket)
	}
}

func TestClusteredWorkloadRuns(t *testing.T) {
	sc := quickScenario(SPMS)
	sc.Workload = Clustered
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Expected == 0 {
		t.Fatal("clustered workload expected no deliveries")
	}
	if res.DeliveryRate < 0.99 {
		t.Fatalf("clustered delivery rate %v, want ≈1", res.DeliveryRate)
	}
	// Clustered interest is sparse: expected deliveries far below
	// all-to-all's items × (n-1).
	if res.Expected >= res.Items*(sc.Nodes-1) {
		t.Fatal("clustered interest not sparse")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(quickScenario(SPMS))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(quickScenario(SPMS))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a != b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	c := quickScenario(SPMS)
	c.Seed = 2
	other, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.MeanDelay == other.MeanDelay && a.TotalEnergy == other.TotalEnergy {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestChargeInitialDBF(t *testing.T) {
	sc := quickScenario(SPMS)
	without, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sc.ChargeInitialDBF = true
	with, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if with.CtrlEnergy <= without.CtrlEnergy {
		t.Fatal("initial DBF charge had no effect")
	}
	if with.TotalEnergy <= without.TotalEnergy {
		t.Fatal("total energy should include the DBF charge")
	}
}

func TestRouteAlternativesAblation(t *testing.T) {
	// k=1 (no secondary routes) must still deliver in the failure-free
	// case; the scenario knob exists for the ablation bench.
	sc := quickScenario(SPMS)
	sc.RouteAlternatives = 1
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DeliveryRate < 0.99 {
		t.Fatalf("k=1 delivery rate %v", res.DeliveryRate)
	}
}

func TestProtocolString(t *testing.T) {
	tests := []struct {
		p    Protocol
		want string
	}{
		{SPMS, "SPMS"}, {SPIN, "SPIN"}, {Flooding, "FLOOD"}, {Protocol(9), "Protocol(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Fatalf("String(%d)=%q, want %q", int(tt.p), got, tt.want)
		}
	}
}
