package experiment

import (
	"regexp"
	"testing"
	"time"
)

// hashScenario is a convenience wrapper failing the test on marshal errors.
func hashScenario(t *testing.T, sc Scenario) string {
	t.Helper()
	h, err := ScenarioHash(sc)
	if err != nil {
		t.Fatalf("ScenarioHash: %v", err)
	}
	return h
}

// TestScenarioHashShape pins the format: lowercase hex SHA-256.
func TestScenarioHashShape(t *testing.T) {
	h := hashScenario(t, Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 25, ZoneRadius: 20})
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(h) {
		t.Fatalf("hash %q is not 64 lowercase hex chars", h)
	}
}

// TestScenarioHashCanonicalization is the identity contract: a minimal
// scenario and its explicitly-defaulted form hash identically (the hash is
// over the defaulted wire form), and the 0/1 replication normalization
// collapses into one identity.
func TestScenarioHashCanonicalization(t *testing.T) {
	minimal := Scenario{Protocol: SPIN, Workload: AllToAll, Nodes: 49, ZoneRadius: 20, Seed: 7}
	if got, want := hashScenario(t, minimal), hashScenario(t, minimal.WithDefaults()); got != want {
		t.Fatalf("defaulting changed the hash: %s vs %s", got, want)
	}
	one := minimal
	one.Replications = 1
	if hashScenario(t, minimal) != hashScenario(t, one) {
		t.Fatal("replications:1 hashes differently from the single-trial form")
	}
}

// TestScenarioHashSensitivity checks every identity-bearing dimension
// moves the hash: parameters, seed, and the replication count (a 5-trial
// point is a different unit of work than a 1-trial point).
func TestScenarioHashSensitivity(t *testing.T) {
	base := Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 49, ZoneRadius: 20, Seed: 7}
	h0 := hashScenario(t, base)
	mutations := []struct {
		name string
		sc   Scenario
	}{
		{"protocol", Scenario{Protocol: SPIN, Workload: AllToAll, Nodes: 49, ZoneRadius: 20, Seed: 7}},
		{"nodes", Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 100, ZoneRadius: 20, Seed: 7}},
		{"seed", Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 49, ZoneRadius: 20, Seed: 8}},
		{"drain", Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 49, ZoneRadius: 20, Seed: 7, Drain: time.Second}},
		{"replications", Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 49, ZoneRadius: 20, Seed: 7, Replications: 5}},
	}
	seen := map[string]string{h0: "base"}
	for _, m := range mutations {
		h := hashScenario(t, m.sc)
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q: %s", m.name, prev, h)
		}
		seen[h] = m.name
	}
}

// TestScenarioHashStability pins one concrete hash value: the canonical
// identity must never drift silently, because journals and caches written
// by older binaries key on it. If this test fails, every existing
// checkpoint directory and result cache is invalidated — change the wire
// form only with that cost in mind (and document it in DESIGN.md §13).
func TestScenarioHashStability(t *testing.T) {
	sc := Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 25, ZoneRadius: 20, Seed: 1}
	data, err := CanonicalScenarioJSON(sc)
	if err != nil {
		t.Fatalf("CanonicalScenarioJSON: %v", err)
	}
	// The canonical JSON is the defaulted wire form; spot-check the frozen
	// properties the hash depends on (named enums, duration strings,
	// defaults filled in).
	for _, want := range []string{`"protocol":"spms"`, `"workload":"all-to-all"`, `"drain":"3s"`, `"routeAlternatives":2`} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).Match(data) {
			t.Errorf("canonical JSON lacks %s:\n%s", want, data)
		}
	}
	h1 := hashScenario(t, sc)
	h2 := hashScenario(t, sc)
	if h1 != h2 {
		t.Fatalf("hash not stable across calls: %s vs %s", h1, h2)
	}
}
