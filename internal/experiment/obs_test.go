package experiment

// The §11 observability suite: attaching a RunObserver — trace export,
// timeline sampling, phase timing — must never change what a run computes
// (the Result is byte-identical with observability on or off), and the
// exported trace must be byte-identical at every SimWorkers count and
// across repeated runs, because the network trace hook fires inside the
// single-threaded event loop in dispatch order.

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// obsScenario exercises every trace kind: SPMS with failures (drops,
// failovers) and mobility (route recomputes) over a small all-to-all grid.
func obsScenario() Scenario {
	return Scenario{
		Protocol:         SPMS,
		Workload:         AllToAll,
		Nodes:            49,
		ZoneRadius:       20,
		PacketsPerNode:   2,
		Failures:         true,
		FailureCfg:       fault.DefaultConfig(),
		Mobility:         true,
		MobilityPeriod:   50 * time.Millisecond,
		MobilityFraction: 0.1,
		Seed:             7,
		Drain:            2 * time.Second,
	}
}

// traceRun executes the scenario with a trace sink attached and returns
// the JSONL bytes and the Result.
func traceRun(t *testing.T, sc Scenario, workers int) ([]byte, Result) {
	t.Helper()
	var buf bytes.Buffer
	o := &obs.RunObserver{Trace: obs.NewTraceSink(&buf)}
	res, err := RunWith(sc, RunConfig{SimWorkers: workers, Obs: o})
	if err != nil {
		t.Fatalf("RunWith(workers=%d): %v", workers, err)
	}
	if err := o.Trace.Flush(); err != nil {
		t.Fatalf("trace flush: %v", err)
	}
	return buf.Bytes(), res
}

// TestTraceDeterminism is the §11 contract: the exported trace is a pure
// function of the scenario — byte-identical across two runs and at
// SimWorkers 1, 4, and 7.
func TestTraceDeterminism(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	sc := obsScenario()

	base, _ := traceRun(t, sc, 1)
	if len(base) == 0 {
		t.Fatal("trace export produced no events")
	}
	if again, _ := traceRun(t, sc, 1); !bytes.Equal(base, again) {
		t.Fatal("trace diverged across two identical serial runs")
	}
	for _, w := range []int{4, 7} {
		if got, _ := traceRun(t, sc, w); !bytes.Equal(base, got) {
			t.Fatalf("trace at SimWorkers=%d diverged from serial (%d vs %d bytes)", w, len(got), len(base))
		}
	}
}

// TestTraceCoversAllKinds checks the adapter maps every network trace kind
// onto the wire: the failure scenario must produce tx, deliver, and drop
// lines.
func TestTraceCoversAllKinds(t *testing.T) {
	raw, _ := traceRun(t, obsScenario(), 1)
	for _, kind := range []string{`"kind":"tx"`, `"kind":"deliver"`, `"kind":"drop"`} {
		if !bytes.Contains(raw, []byte(kind)) {
			t.Fatalf("trace missing %s events", kind)
		}
	}
	// Every line is valid JSON with a monotonically non-decreasing timestamp
	// (dispatch order).
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	var prev int64 = -1
	for i, line := range lines {
		var ev struct {
			T    int64  `json:"t"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %d not valid JSON: %v\n%s", i, err, line)
		}
		if ev.T < prev {
			t.Fatalf("trace line %d out of dispatch order: t=%d after t=%d", i, ev.T, prev)
		}
		prev = ev.T
	}
}

// TestObserverPreservesResult is the identity half of §11: a fully enabled
// observer (trace + timeline + phases) yields the same serialized Result
// as no observer at all.
func TestObserverPreservesResult(t *testing.T) {
	sc := obsScenario()
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := obs.NewTimeline(25*time.Millisecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := &obs.RunObserver{Trace: obs.NewTraceSink(&buf), Timeline: tl}
	observed, err := RunWith(sc, RunConfig{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Fatalf("observer perturbed the Result:\nplain:    %s\nobserved: %s", a, b)
	}

	// An installed-but-empty observer (no sinks) must also preserve identity —
	// the phase-timing-only configuration the harness always allows.
	bare, err := RunWith(sc, RunConfig{Obs: &obs.RunObserver{}})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(bare)
	if !bytes.Equal(a, c) {
		t.Fatalf("bare observer perturbed the Result:\nplain: %s\nbare:  %s", a, c)
	}
}

// TestRunStatsPopulated checks the phase/kernel profile of a real run is
// coherent: events dispatched, a non-trivial peak heap, and non-zero phase
// spans that sum to no more than the wall clock.
func TestRunStatsPopulated(t *testing.T) {
	o := &obs.RunObserver{}
	if _, err := RunWith(obsScenario(), RunConfig{Obs: o}); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.EventsDispatched == 0 {
		t.Fatal("EventsDispatched = 0")
	}
	if st.PeakHeapDepth <= 0 || st.ArenaHighWater < st.PeakHeapDepth {
		t.Fatalf("kernel stats incoherent: peak heap %d, arena %d", st.PeakHeapDepth, st.ArenaHighWater)
	}
	if st.TopologyBuild <= 0 || st.RouteCompute <= 0 || st.EventLoop <= 0 {
		t.Fatalf("phase spans missing: %+v", st)
	}
	if st.Wall < st.EventLoop {
		t.Fatalf("wall %v < event loop %v", st.Wall, st.EventLoop)
	}
}

// TestTimelineDuringRun checks the sampling ticker against the run it
// watched: samples are bounded, strictly ordered in sim time, stay within
// the horizon, and the cumulative counters are non-decreasing with the
// final sample consistent with the Result.
func TestTimelineDuringRun(t *testing.T) {
	const maxSamples = 32
	tl, err := obs.NewTimeline(20*time.Millisecond, maxSamples)
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.RunObserver{Timeline: tl}
	res, err := RunWith(obsScenario(), RunConfig{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	samples := tl.Samples()
	if len(samples) == 0 {
		t.Fatal("timeline collected no samples")
	}
	if len(samples) > maxSamples {
		t.Fatalf("timeline over bound: %d > %d", len(samples), maxSamples)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatalf("sample %d: sim time not increasing (%v after %v)", i, samples[i].T, samples[i-1].T)
		}
		if samples[i].Sent < samples[i-1].Sent || samples[i].TotalEnergy < samples[i-1].TotalEnergy {
			t.Fatalf("sample %d: cumulative counters decreased", i)
		}
	}
	last := samples[len(samples)-1]
	if last.Sent == 0 {
		t.Fatal("final sample saw no traffic")
	}
	if last.TotalEnergy > res.TotalEnergy {
		t.Fatalf("final sample energy %v exceeds run total %v", last.TotalEnergy, res.TotalEnergy)
	}
	if st := o.Stats(); st.TimelineSamples != len(samples) {
		t.Fatalf("Stats().TimelineSamples = %d, want %d", st.TimelineSamples, len(samples))
	}
}
