// obs.go glues the observability layer (internal/obs) onto a run: the
// network-trace adapter and the timeline ticker. Both are opt-in through
// RunConfig.Obs and both are read-only observers — they never mutate
// protocol, topology, or RNG state — so a run's Result (and therefore
// every golden and campaign byte) is identical with them on or off. The
// timeline ticker does consume event sequence numbers, but sequence
// numbers only break ties between otherwise-identical instants and the
// relative order of all non-ticker events is preserved, so the dispatch
// trajectory the collectors observe is unchanged (DESIGN.md §11).
package experiment

import (
	"time"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

// obsTraceKind maps the network-layer trace kinds onto the wire enum.
func obsTraceKind(k network.TraceKind) obs.EventKind {
	switch k {
	case network.TraceTx:
		return obs.EventTx
	case network.TraceDeliver:
		return obs.EventDeliver
	default:
		return obs.EventDrop
	}
}

// installTrace hooks the network's trace callback to the sink. The hook
// runs inside the single-threaded event loop with the clock at the
// event's timestamp, so the exported stream is in dispatch order and
// byte-deterministic at any SimWorkers count.
func installTrace(nw *network.Network, sched *sim.Scheduler, sink *obs.TraceSink) {
	nw.SetTrace(func(ev network.TraceEvent) {
		sink.Emit(obs.Event{
			T:          sched.Now(),
			Kind:       obsTraceKind(ev.Kind),
			Node:       ev.Node,
			PacketKind: ev.Packet.Kind,
			Meta:       ev.Packet.Meta,
			Src:        ev.Packet.Src,
			Dst:        ev.Packet.Dst,
			Requester:  ev.Packet.Requester,
			Provider:   ev.Packet.Provider,
			Level:      int(ev.Packet.Level),
			Bytes:      ev.Packet.Bytes,
			Reason:     ev.Reason,
		})
	})
}

// scheduleTimeline arms the recurring sampling tick: every tl.Interval()
// of sim time it snapshots the cumulative counters and energy totals and
// offers them to the timeline (which decimates under its bound). The tick
// handler only reads collectors — no protocol state, no RNG draws — so
// the simulated trajectory is untouched.
func scheduleTimeline(sched *sim.Scheduler, nw *network.Network, tl *obs.Timeline, horizon time.Duration) {
	interval := tl.Interval()
	var tick func()
	tick = func() {
		c := nw.Counters()
		b := nw.Energy().TotalBreakdown()
		tl.Offer(obs.TimelineSample{
			T:           sched.Now(),
			Sent:        c.TotalSent(),
			Delivered:   c.Delivered,
			Drops:       c.Drops,
			Duplicates:  c.Duplicates,
			Timeouts:    c.Timeouts,
			TotalEnergy: float64(b.Total()),
			CtrlEnergy:  float64(b.Ctrl),
		})
		if sched.Now()+interval <= horizon {
			sched.After(interval, tick)
		}
	}
	sched.After(interval, tick)
}
