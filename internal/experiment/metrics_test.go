package experiment

import (
	"sort"
	"testing"
	"time"
)

// TestResultMetricsAlignment pins names and values to the same order and
// the documented units (delays milliseconds, energies microjoules).
func TestResultMetricsAlignment(t *testing.T) {
	names := ResultMetricNames()
	r := Result{
		TotalEnergy:     100,
		EnergyPerPacket: 10,
		CtrlEnergy:      5,
		MeanDelay:       2 * time.Millisecond,
		P95Delay:        4 * time.Millisecond,
		MaxDelay:        8 * time.Millisecond,
		Items:           7,
		Deliveries:      6,
		Expected:        8,
		DeliveryRate:    0.75,
		Timeouts:        1, Failovers: 2, Drops: 3, Duplicates: 4,
		SentADV: 11, SentREQ: 12, SentDATA: 13,
		DBFRounds: 21, DBFBroadcasts: 22, MobilityEvents: 23,
		FailuresInjected: 24,
	}
	vals := r.MetricValues()
	if len(vals) != len(names) {
		t.Fatalf("%d values for %d names", len(vals), len(names))
	}
	want := map[string]float64{
		"totalEnergy_uJ":   100,
		"meanDelay_ms":     2,
		"p95Delay_ms":      4,
		"maxDelay_ms":      8,
		"deliveryRate":     0.75,
		"sentDATA":         13,
		"failuresInjected": 24,
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	keys := make([]string, 0, len(want))
	for name := range want {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	for _, name := range keys {
		i, ok := idx[name]
		if !ok {
			t.Fatalf("metric %q missing from names %v", name, names)
		}
		if vals[i] != want[name] {
			t.Fatalf("metric %q = %v, want %v", name, vals[i], want[name])
		}
	}

	// Callers may mutate the returned name slice without corrupting the
	// canonical order.
	names[0] = "clobbered"
	if ResultMetricNames()[0] != "totalEnergy_uJ" {
		t.Fatal("ResultMetricNames returns a shared slice")
	}
}

// TestAggregateResults checks per-metric aggregation across replicates.
func TestAggregateResults(t *testing.T) {
	sums := AggregateResults([]Result{
		{TotalEnergy: 10, Items: 2},
		{TotalEnergy: 30, Items: 2},
	})
	if len(sums) != len(ResultMetricNames()) {
		t.Fatalf("%d summaries, want %d", len(sums), len(ResultMetricNames()))
	}
	if sums[0].Mean != 20 || sums[0].Min != 10 || sums[0].Max != 30 || sums[0].N != 2 {
		t.Fatalf("totalEnergy summary: %+v", sums[0])
	}
	if sums[0].Std == 0 || sums[0].CI95 == 0 {
		t.Fatalf("variance not populated: %+v", sums[0])
	}
}
