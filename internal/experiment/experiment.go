// Package experiment wires every substrate into runnable scenarios and
// reproduces the paper's evaluation (§5): each figure has a runner that
// sweeps the paper's x-axis and reports the same series the paper plots.
//
// A Scenario is a complete, seeded description of one simulation run; Run
// executes it deterministically and returns the measured energy, delay, and
// protocol counters.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/fault"
	"repro/internal/flood"
	"repro/internal/mac"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Protocol selects the dissemination protocol under test.
type Protocol int

// Protocols under test.
const (
	SPMS Protocol = iota + 1
	SPIN
	Flooding
)

// String names the protocol as the paper does (F- prefixes are added by the
// figure runners for failure scenarios).
func (p Protocol) String() string {
	switch p {
	case SPMS:
		return "SPMS"
	case SPIN:
		return "SPIN"
	case Flooding:
		return "FLOOD"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// WorkloadKind selects the §5 communication pattern.
type WorkloadKind int

// Workload kinds.
const (
	AllToAll WorkloadKind = iota + 1
	Clustered
)

// String names the workload as spec files and flags do.
func (w WorkloadKind) String() string {
	switch w {
	case AllToAll:
		return "all-to-all"
	case Clustered:
		return "clustered"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(w))
	}
}

// Scenario is one fully specified simulation run. The JSON form (tags
// below, codecs in json.go) is the wire format of campaign spec files and
// result-sink tagging: protocols and workloads appear as names ("spms",
// "all-to-all") and durations as Go duration strings ("2.5ms").
type Scenario struct {
	Protocol Protocol     `json:"protocol,omitempty"`
	Workload WorkloadKind `json:"workload,omitempty"`

	// Topology. Nodes are placed on a square grid with GridSpacing meters
	// between neighbors; the radio is a MICA2 scaled so maximum range is
	// ZoneRadius meters.
	Nodes       int     `json:"nodes,omitempty"`
	GridSpacing float64 `json:"gridSpacing,omitempty"`
	ZoneRadius  float64 `json:"zoneRadius,omitempty"`

	// Traffic.
	PacketsPerNode      int           `json:"packetsPerNode,omitempty"`
	MeanArrival         time.Duration `json:"meanArrival,omitempty"`
	ClusterInterestProb float64       `json:"clusterInterestProb,omitempty"` // Clustered only; default 5%

	// Failures (§5.1.2). Zero FailureCfg means fault.DefaultConfig.
	Failures   bool         `json:"failures,omitempty"`
	FailureCfg fault.Config `json:"failureConfig"`

	// Mobility (§5.1.3): every MobilityPeriod, MobilityFraction of the
	// nodes relocates and (for SPMS) routing re-converges, charged as
	// control energy.
	Mobility         bool          `json:"mobility,omitempty"`
	MobilityPeriod   time.Duration `json:"mobilityPeriod,omitempty"`
	MobilityFraction float64       `json:"mobilityFraction,omitempty"`

	// Protocol tuning.
	SPMSConfig        core.Config `json:"spmsConfig"`                  // zero value means core.DefaultConfig
	RouteAlternatives int         `json:"routeAlternatives,omitempty"` // SPMS routing entries per destination; 0 = 2
	ChargeInitialDBF  bool        `json:"chargeInitialDBF,omitempty"`  // charge the initial convergence, not just re-runs

	// CarrierSense enables shared-channel serialization in the network
	// layer (see network.Config). Off for all figure reproductions; the MAC
	// ablation benchmark turns it on.
	CarrierSense bool `json:"carrierSense,omitempty"`

	// Run control.
	Seed  int64         `json:"seed,omitempty"`
	Drain time.Duration `json:"drain,omitempty"` // extra simulated time after the last origination

	// Replications is how many independent trials this scenario stands
	// for: replicate i runs with ReplicateSeed(Seed, i) and everything
	// else identical. 0 and 1 both mean a single trial (exactly the
	// pre-replication behavior); Run executes one trial regardless — the
	// fan-out lives in ReplicatedSweep (replicate.go).
	Replications int `json:"replications,omitempty"`
}

// Defaults used when a Scenario leaves fields zero.
const (
	DefaultDrain       = 3 * time.Second
	DefaultGridSpacing = topo.DefaultGridSpacing
)

// mobilityActiveTail is how far past the last origination mobility events
// keep firing: an allowance for in-flight dissemination.
const mobilityActiveTail = 500 * time.Millisecond

// WithDefaults returns a copy with every unset field filled with the
// package default — the exact scenario Run executes. Campaign expansion
// applies it so every emitted parameter tuple is fully explicit.
func (s Scenario) WithDefaults() Scenario {
	if s.GridSpacing == 0 {
		s.GridSpacing = DefaultGridSpacing
	}
	if s.PacketsPerNode == 0 {
		s.PacketsPerNode = workload.DefaultPacketsPerNode
	}
	if s.MeanArrival == 0 {
		s.MeanArrival = workload.DefaultMeanArrival
	}
	if s.ClusterInterestProb == 0 {
		s.ClusterInterestProb = workload.DefaultClusterInterestProb
	}
	if s.Failures && s.FailureCfg == (fault.Config{}) {
		s.FailureCfg = fault.DefaultConfig()
	}
	if s.Mobility {
		if s.MobilityPeriod == 0 {
			s.MobilityPeriod = 100 * time.Millisecond
		}
		if s.MobilityFraction == 0 {
			s.MobilityFraction = 0.05
		}
	}
	if s.SPMSConfig == (core.Config{}) {
		s.SPMSConfig = core.DefaultConfig()
	}
	if s.RouteAlternatives == 0 {
		s.RouteAlternatives = routing.DefaultAlternatives
	}
	if s.Drain == 0 {
		s.Drain = DefaultDrain
	}
	return s
}

// Validate rejects unusable scenarios. Zero values that WithDefaults
// fills (packets, arrival, spacing, drain, …) are accepted; explicit
// nonsense — negative counts or durations, probabilities outside [0,1] —
// is not, so a hand-written campaign spec fails loudly instead of
// simulating garbage.
func (s Scenario) Validate() error {
	if s.Protocol < SPMS || s.Protocol > Flooding {
		return fmt.Errorf("experiment: unknown protocol %d", int(s.Protocol))
	}
	if s.Workload != AllToAll && s.Workload != Clustered {
		return fmt.Errorf("experiment: unknown workload %d", int(s.Workload))
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("experiment: non-positive node count %d", s.Nodes)
	}
	if s.GridSpacing < 0 {
		return fmt.Errorf("experiment: negative grid spacing %v", s.GridSpacing)
	}
	if s.ZoneRadius <= 0 {
		return fmt.Errorf("experiment: non-positive zone radius %v", s.ZoneRadius)
	}
	if s.PacketsPerNode < 0 {
		return fmt.Errorf("experiment: negative packets per node %d", s.PacketsPerNode)
	}
	if s.MeanArrival < 0 {
		return fmt.Errorf("experiment: negative mean arrival %v", s.MeanArrival)
	}
	if s.ClusterInterestProb < 0 || s.ClusterInterestProb > 1 {
		return fmt.Errorf("experiment: cluster interest probability %v outside [0,1]", s.ClusterInterestProb)
	}
	if s.Failures && s.FailureCfg != (fault.Config{}) {
		if err := s.FailureCfg.Validate(); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	if s.MobilityPeriod < 0 {
		return fmt.Errorf("experiment: negative mobility period %v", s.MobilityPeriod)
	}
	if s.MobilityFraction < 0 || s.MobilityFraction > 1 {
		return fmt.Errorf("experiment: mobility fraction %v outside [0,1]", s.MobilityFraction)
	}
	if s.RouteAlternatives < 0 {
		return fmt.Errorf("experiment: negative route alternatives %d", s.RouteAlternatives)
	}
	if s.Drain < 0 {
		return fmt.Errorf("experiment: negative drain %v", s.Drain)
	}
	if s.Replications < 0 {
		return fmt.Errorf("experiment: negative replications %d", s.Replications)
	}
	return nil
}

// Result is the outcome of one Run. The JSON form is what campaign result
// sinks stream; durations serialize as integer nanoseconds (exact, easy to
// post-process), energies as µJ floats.
type Result struct {
	// Energy, in microjoules.
	TotalEnergy     float64 `json:"totalEnergy"`
	EnergyPerPacket float64 `json:"energyPerPacket"` // total / originated items
	CtrlEnergy      float64 `json:"ctrlEnergy"`      // routing-convergence share

	// Delay.
	MeanDelay time.Duration `json:"meanDelayNs"`
	P95Delay  time.Duration `json:"p95DelayNs"`
	MaxDelay  time.Duration `json:"maxDelayNs"`

	// Delivery accounting.
	Items        int     `json:"items"`      // data items originated
	Deliveries   int     `json:"deliveries"` // distinct (node, item) deliveries
	Expected     int     `json:"expected"`   // deliveries a lossless run would make
	DeliveryRate float64 `json:"deliveryRate"`

	// Protocol event counters.
	Timeouts   uint64 `json:"timeouts"`
	Failovers  uint64 `json:"failovers"`
	Drops      uint64 `json:"drops"`
	Duplicates uint64 `json:"duplicates"`
	SentADV    uint64 `json:"sentADV"`
	SentREQ    uint64 `json:"sentREQ"`
	SentDATA   uint64 `json:"sentDATA"`

	// Routing.
	DBFRounds      int `json:"dbfRounds"`     // initial convergence rounds
	DBFBroadcasts  int `json:"dbfBroadcasts"` // initial convergence vector broadcasts
	MobilityEvents int `json:"mobilityEvents"`

	// Failure injection.
	FailuresInjected int `json:"failuresInjected"`
}

// Run executes the scenario to completion and collects metrics.
func Run(sc Scenario) (Result, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}

	model, err := radio.ScaledMICA2(sc.ZoneRadius)
	if err != nil {
		return Result{}, err
	}
	field, err := topo.NewGridField(sc.Nodes, sc.GridSpacing, model)
	if err != nil {
		return Result{}, err
	}

	sched := sim.NewScheduler()
	root := sim.NewRNG(sc.Seed)
	wlRNG := root.Fork()
	netRNG := root.Fork()
	failRNG := root.Fork()
	mobRNG := root.Fork()

	nw, err := network.New(sched, field, netRNG, network.Config{
		Sizes:        packet.DefaultSizes(),
		MAC:          mac.AnalyticConfig(),
		CarrierSense: sc.CarrierSense,
	})
	if err != nil {
		return Result{}, err
	}
	ledger := dissem.NewLedger()

	var gen *workload.Generator
	switch sc.Workload {
	case AllToAll:
		gen, err = workload.AllToAll(sc.Nodes, sc.PacketsPerNode, sc.MeanArrival, wlRNG)
	case Clustered:
		gen, err = workload.Clustered(field, sc.PacketsPerNode, sc.MeanArrival, sc.ClusterInterestProb, wlRNG)
	}
	if err != nil {
		return Result{}, err
	}

	var (
		proto  dissem.Protocol
		spms   *core.System
		tables *routing.Tables
	)
	switch sc.Protocol {
	case SPMS:
		tables = routing.Compute(routing.BuildGraph(field), sc.RouteAlternatives)
		if sc.ChargeInitialDBF {
			routing.ChargeConvergenceEnergy(tables, field, nw.Sizes(), nw.Energy())
		}
		spms, err = core.NewSystem(nw, ledger, gen.Interest(), tables, sc.SPMSConfig)
		proto = spms
	case SPIN:
		var sys *spin.System
		sys, err = spin.NewSystem(nw, ledger, gen.Interest(), spin.DefaultConfig())
		proto = sys
	case Flooding:
		proto, err = newFloodSystem(nw, ledger, gen.Interest())
	}
	if err != nil {
		return Result{}, err
	}

	res := Result{}
	if tables != nil {
		res.DBFRounds = tables.Rounds()
		res.DBFBroadcasts = tables.Broadcasts()
	}

	var injector *fault.Injector
	if sc.Failures {
		injector, err = fault.NewInjector(sc.FailureCfg, sched, failRNG, nw)
		if err != nil {
			return Result{}, err
		}
		if err := injector.Start(); err != nil {
			return Result{}, err
		}
	}

	horizon := gen.Horizon() + sc.Drain
	if sc.Mobility {
		// Mobility events cover the traffic-carrying part of the run: the
		// origination window plus a dissemination allowance. The drain tail
		// exists only to let queues empty; charging re-convergences during
		// dead air would bias the energy comparison.
		activeEnd := gen.Horizon() + mobilityActiveTail
		if activeEnd > horizon {
			activeEnd = horizon
		}
		scheduleMobility(&res, sc, sched, field, mobRNG, nw, spms, activeEnd)
	}

	gen.Schedule(sched, proto)
	if err := sched.Run(horizon); err != nil {
		return Result{}, err
	}

	fillResult(&res, gen, ledger, nw)
	if injector != nil {
		res.FailuresInjected = injector.Stats().Injected
	}
	return res, nil
}

// newFloodSystem adapts the flooding baseline to the common constructor
// shape.
func newFloodSystem(nw *network.Network, ledger *dissem.Ledger, interest dissem.Interest) (dissem.Protocol, error) {
	return flood.NewSystem(nw, ledger, interest, core.DefaultProc)
}

// scheduleMobility arms the recurring relocation events. Re-convergence is
// instantaneous in virtual time (a documented simplification; see
// DESIGN.md) but its radio traffic is fully charged as control energy —
// the §5.1.3 cost model.
func scheduleMobility(res *Result, sc Scenario, sched *sim.Scheduler, field *topo.Field,
	rng *sim.RNG, nw *network.Network, spms *core.System, horizon time.Duration) {
	var tick func()
	tick = func() {
		if sched.Now() >= horizon {
			return
		}
		field.RelocateFraction(sc.MobilityFraction, rng)
		res.MobilityEvents++
		if spms != nil {
			fresh := routing.Compute(routing.BuildGraph(field), sc.RouteAlternatives)
			spms.SetTables(fresh)
			routing.ChargeConvergenceEnergy(fresh, field, nw.Sizes(), nw.Energy())
		}
		sched.After(sc.MobilityPeriod, tick)
	}
	sched.After(sc.MobilityPeriod, tick)
}

// fillResult converts raw collectors into the Result summary.
func fillResult(res *Result, gen *workload.Generator, ledger *dissem.Ledger, nw *network.Network) {
	breakdown := nw.Energy().TotalBreakdown()
	res.TotalEnergy = float64(breakdown.Total())
	res.CtrlEnergy = float64(breakdown.Ctrl)
	res.Items = gen.Items()
	if res.Items > 0 {
		res.EnergyPerPacket = res.TotalEnergy / float64(res.Items)
	}
	res.MeanDelay = ledger.Delays().Mean()
	res.P95Delay = ledger.Delays().Percentile(95)
	res.MaxDelay = ledger.Delays().Max()
	res.Deliveries = ledger.Deliveries()
	res.Expected = gen.ExpectedDeliveries()
	if res.Expected > 0 {
		res.DeliveryRate = float64(res.Deliveries) / float64(res.Expected)
	}
	c := nw.Counters()
	res.Timeouts = c.Timeouts
	res.Failovers = c.Failovers
	res.Drops = c.Drops
	res.Duplicates = c.Duplicates
	res.SentADV = c.Sent[packet.ADV]
	res.SentREQ = c.Sent[packet.REQ]
	res.SentDATA = c.Sent[packet.DATA]
}
