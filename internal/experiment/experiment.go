// Package experiment wires every substrate into runnable scenarios and
// reproduces the paper's evaluation (§5): each figure has a runner that
// sweeps the paper's x-axis and reports the same series the paper plots.
//
// A Scenario is a complete, seeded description of one simulation run; Run
// executes it deterministically and returns the measured energy, delay, and
// protocol counters.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/fault"
	"repro/internal/flood"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/topo"
	"repro/internal/workload"
	"repro/internal/zone"
)

// Protocol selects the dissemination protocol under test.
type Protocol int

// Protocols under test.
const (
	SPMS Protocol = iota + 1
	SPIN
	Flooding
)

// String names the protocol as the paper does (F- prefixes are added by the
// figure runners for failure scenarios).
func (p Protocol) String() string {
	switch p {
	case SPMS:
		return "SPMS"
	case SPIN:
		return "SPIN"
	case Flooding:
		return "FLOOD"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// WorkloadKind selects the §5 communication pattern.
type WorkloadKind int

// Workload kinds.
const (
	AllToAll WorkloadKind = iota + 1
	Clustered
)

// String names the workload as spec files and flags do.
func (w WorkloadKind) String() string {
	switch w {
	case AllToAll:
		return "all-to-all"
	case Clustered:
		return "clustered"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(w))
	}
}

// PlacementKind selects the node-placement model. The zero value is the
// paper's square grid, so pre-existing scenarios are untouched by the
// model registry (the zero-value-compatibility contract, DESIGN.md §9).
type PlacementKind int

// Placement models.
const (
	PlaceGrid      PlacementKind = iota // §5.1 square grid (the zero value)
	PlaceUniform                        // uniform random over the field square
	PlaceChain                          // §4 analytic straight line
	PlaceClustered                      // Gaussian blobs around seeded centers
)

// String names the placement as spec files and flags do.
func (p PlacementKind) String() string {
	switch p {
	case PlaceGrid:
		return "grid"
	case PlaceUniform:
		return "uniform"
	case PlaceChain:
		return "chain"
	case PlaceClustered:
		return "clustered"
	default:
		return fmt.Sprintf("PlacementKind(%d)", int(p))
	}
}

// MobilityKind selects the mobility model. The zero value is the paper's
// periodic fractional relocation (§5.1.3).
type MobilityKind int

// Mobility models.
const (
	MobRelocate MobilityKind = iota // §5.1.3 teleporting relocation (the zero value)
	MobWaypoint                     // random waypoint with speed/pause ranges
)

// String names the mobility model as spec files and flags do.
func (m MobilityKind) String() string {
	switch m {
	case MobRelocate:
		return "relocate"
	case MobWaypoint:
		return "waypoint"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(m))
	}
}

// Scenario is one fully specified simulation run. The JSON form (tags
// below, codecs in json.go) is the wire format of campaign spec files and
// result-sink tagging: protocols, workloads, and models appear as names
// ("spms", "all-to-all", "clustered") and durations as Go duration strings
// ("2.5ms"). Every model-selection field's zero value is the paper's
// model, so a scenario written before the model registry existed runs —
// and serializes — exactly as it always did.
type Scenario struct {
	Protocol Protocol     `json:"protocol,omitempty"`
	Workload WorkloadKind `json:"workload,omitempty"`

	// Topology. Nodes are placed on a square grid with GridSpacing meters
	// between neighbors; the radio is a MICA2 scaled so maximum range is
	// ZoneRadius meters.
	Nodes       int     `json:"nodes,omitempty"`
	GridSpacing float64 `json:"gridSpacing,omitempty"`
	ZoneRadius  float64 `json:"zoneRadius,omitempty"`

	// Placement selects the node layout. Uniform and clustered layouts
	// span the same square the grid would occupy (keeping density
	// comparable at fixed n); chain is the §4 line. PlacementClusters and
	// PlacementSpread parameterize the clustered model: k Gaussian blobs
	// with per-axis deviation of spread meters (defaults: 4 clusters,
	// 2·GridSpacing spread).
	Placement         PlacementKind `json:"placement,omitempty"`
	PlacementClusters int           `json:"placementClusters,omitempty"`
	PlacementSpread   float64       `json:"placementSpread,omitempty"`

	// Traffic. Sources restricts origination to the first Sources node ids
	// (0 = every node originates, the paper's workloads). Limiting sources
	// decouples traffic volume from field size — the knob that makes
	// 10⁵-node fields simulable.
	PacketsPerNode      int           `json:"packetsPerNode,omitempty"`
	Sources             int           `json:"sources,omitempty"`
	MeanArrival         time.Duration `json:"meanArrival,omitempty"`
	ClusterInterestProb float64       `json:"clusterInterestProb,omitempty"` // Clustered only; default 5%

	// Failures. FailureCfg.Model selects the process — the paper's
	// transient model (§5.1.2, the zero value), permanent crash-stop, or
	// spatially correlated bursts. A FailureCfg that sets nothing but the
	// model (and, for bursts, the radius) inherits Table 1's timing
	// defaults; a fully zero FailureCfg means fault.DefaultConfig, exactly
	// as before the model registry.
	Failures   bool         `json:"failures,omitempty"`
	FailureCfg fault.Config `json:"failureConfig"`

	// Mobility (§5.1.3): every MobilityPeriod a mobility event fires and
	// (for SPMS) routing re-converges, charged as control energy. The
	// model decides what an event does: MobRelocate teleports
	// MobilityFraction of the nodes to random positions (the paper's
	// model); MobWaypoint advances the same fraction of nodes along
	// random-waypoint trajectories, each leg at a uniform speed from
	// [WaypointSpeedMin, WaypointSpeedMax] m/s with arrival pauses from
	// [WaypointPauseMin, WaypointPauseMax].
	Mobility         bool          `json:"mobility,omitempty"`
	MobilityModel    MobilityKind  `json:"mobilityModel,omitempty"`
	MobilityPeriod   time.Duration `json:"mobilityPeriod,omitempty"`
	MobilityFraction float64       `json:"mobilityFraction,omitempty"`
	WaypointSpeedMin float64       `json:"waypointSpeedMin,omitempty"`
	WaypointSpeedMax float64       `json:"waypointSpeedMax,omitempty"`
	WaypointPauseMin time.Duration `json:"waypointPauseMin,omitempty"`
	WaypointPauseMax time.Duration `json:"waypointPauseMax,omitempty"`

	// Protocol tuning.
	SPMSConfig        core.Config `json:"spmsConfig"`                  // zero value means core.DefaultConfig
	RouteAlternatives int         `json:"routeAlternatives,omitempty"` // SPMS routing entries per destination; 0 = 2
	ChargeInitialDBF  bool        `json:"chargeInitialDBF,omitempty"`  // charge the initial convergence, not just re-runs

	// CarrierSense enables shared-channel serialization in the network
	// layer (see network.Config). Off for all figure reproductions; the MAC
	// ablation benchmark turns it on.
	CarrierSense bool `json:"carrierSense,omitempty"`

	// Run control.
	Seed  int64         `json:"seed,omitempty"`
	Drain time.Duration `json:"drain,omitempty"` // extra simulated time after the last origination

	// Replications is how many independent trials this scenario stands
	// for: replicate i runs with ReplicateSeed(Seed, i) and everything
	// else identical. 0 and 1 both mean a single trial (exactly the
	// pre-replication behavior); Run executes one trial regardless — the
	// fan-out lives in ReplicatedSweep (replicate.go).
	Replications int `json:"replications,omitempty"`
}

// Defaults used when a Scenario leaves fields zero.
const (
	DefaultDrain       = 3 * time.Second
	DefaultGridSpacing = topo.DefaultGridSpacing

	// Clustered placement: 4 blobs spread 2·GridSpacing meters each.
	DefaultPlacementClusters = 4

	// Waypoint mobility: brisk 5–15 m/s legs with up to 100 ms pauses, so
	// a short simulated run still sees real topology churn.
	DefaultWaypointSpeedMin = 5.0
	DefaultWaypointSpeedMax = 15.0
	DefaultWaypointPauseMax = 100 * time.Millisecond
)

// mobilityActiveTail is how far past the last origination mobility events
// keep firing: an allowance for in-flight dissemination.
const mobilityActiveTail = 500 * time.Millisecond

// WithDefaults returns a copy with every unset field filled with the
// package default — the exact scenario Run executes. Campaign expansion
// applies it so every emitted parameter tuple is fully explicit.
func (s Scenario) WithDefaults() Scenario {
	if s.GridSpacing == 0 {
		s.GridSpacing = DefaultGridSpacing
	}
	if s.PacketsPerNode == 0 {
		s.PacketsPerNode = workload.DefaultPacketsPerNode
	}
	if s.MeanArrival == 0 {
		s.MeanArrival = workload.DefaultMeanArrival
	}
	if s.ClusterInterestProb == 0 {
		s.ClusterInterestProb = workload.DefaultClusterInterestProb
	}
	if s.Placement == PlaceClustered {
		if s.PlacementClusters == 0 {
			s.PlacementClusters = DefaultPlacementClusters
		}
		if s.PlacementSpread == 0 {
			s.PlacementSpread = 2 * s.GridSpacing
		}
	}
	if s.Failures {
		// A config that sets nothing beyond the model selection (model,
		// burst radius) inherits Table 1's timing; a config with any
		// explicit timing is taken literally — exactly the pre-registry
		// rule, which only special-cased the fully zero config.
		timing := s.FailureCfg
		timing.Model, timing.BurstRadius = 0, 0
		if timing == (fault.Config{}) {
			d := fault.DefaultConfig()
			d.Model, d.BurstRadius = s.FailureCfg.Model, s.FailureCfg.BurstRadius
			s.FailureCfg = d
		}
		if s.FailureCfg.Model == fault.Burst && s.FailureCfg.BurstRadius == 0 {
			// One zone radius knocks out a node's whole reachable region —
			// the stressor the protocol's multipath failover targets.
			s.FailureCfg.BurstRadius = s.ZoneRadius
		}
	}
	if s.Mobility {
		if s.MobilityPeriod == 0 {
			s.MobilityPeriod = 100 * time.Millisecond
		}
		if s.MobilityFraction == 0 {
			s.MobilityFraction = 0.05
		}
		if s.MobilityModel == MobWaypoint {
			if s.WaypointSpeedMax == 0 {
				s.WaypointSpeedMax = DefaultWaypointSpeedMax
			}
			if s.WaypointSpeedMin == 0 {
				// Clamp so an explicit slow max (below the default min)
				// yields a fixed speed instead of an inverted range.
				s.WaypointSpeedMin = DefaultWaypointSpeedMin
				if s.WaypointSpeedMin > s.WaypointSpeedMax {
					s.WaypointSpeedMin = s.WaypointSpeedMax
				}
			}
			if s.WaypointPauseMax == 0 {
				s.WaypointPauseMax = DefaultWaypointPauseMax
			}
		}
	}
	if s.SPMSConfig == (core.Config{}) {
		s.SPMSConfig = core.DefaultConfig()
	}
	if s.RouteAlternatives == 0 {
		s.RouteAlternatives = routing.DefaultAlternatives
	}
	if s.Drain == 0 {
		s.Drain = DefaultDrain
	}
	return s
}

// Validate rejects unusable scenarios. Zero values that WithDefaults
// fills (packets, arrival, spacing, drain, …) are accepted; explicit
// nonsense — negative counts or durations, probabilities outside [0,1] —
// is not, so a hand-written campaign spec fails loudly instead of
// simulating garbage.
func (s Scenario) Validate() error {
	if s.Protocol < SPMS || s.Protocol > Flooding {
		return fmt.Errorf("experiment: unknown protocol %d", int(s.Protocol))
	}
	if s.Workload != AllToAll && s.Workload != Clustered {
		return fmt.Errorf("experiment: unknown workload %d", int(s.Workload))
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("experiment: non-positive node count %d", s.Nodes)
	}
	if s.GridSpacing < 0 {
		return fmt.Errorf("experiment: negative grid spacing %v", s.GridSpacing)
	}
	if s.ZoneRadius <= 0 {
		return fmt.Errorf("experiment: non-positive zone radius %v", s.ZoneRadius)
	}
	if s.Placement < PlaceGrid || s.Placement > PlaceClustered {
		return fmt.Errorf("experiment: unknown placement %d", int(s.Placement))
	}
	if s.PlacementClusters < 0 {
		return fmt.Errorf("experiment: negative placement clusters %d", s.PlacementClusters)
	}
	if s.PlacementSpread < 0 {
		return fmt.Errorf("experiment: negative placement spread %v", s.PlacementSpread)
	}
	if s.PacketsPerNode < 0 {
		return fmt.Errorf("experiment: negative packets per node %d", s.PacketsPerNode)
	}
	if s.Sources < 0 || s.Sources > s.Nodes {
		return fmt.Errorf("experiment: source count %d outside [0,%d]", s.Sources, s.Nodes)
	}
	if s.MeanArrival < 0 {
		return fmt.Errorf("experiment: negative mean arrival %v", s.MeanArrival)
	}
	if s.ClusterInterestProb < 0 || s.ClusterInterestProb > 1 {
		return fmt.Errorf("experiment: cluster interest probability %v outside [0,1]", s.ClusterInterestProb)
	}
	// The model enum is checked even with failures off (like Placement and
	// MobilityModel): an unnamable numeric model would otherwise survive
	// to fail Scenario marshaling mid-campaign. The full config is only
	// validated when it will actually run.
	if m := s.FailureCfg.Model; m < fault.Transient || m > fault.Burst {
		return fmt.Errorf("experiment: unknown failure model %d", int(m))
	}
	if s.Failures && s.FailureCfg != (fault.Config{}) {
		if err := s.FailureCfg.Validate(); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	if s.MobilityModel < MobRelocate || s.MobilityModel > MobWaypoint {
		return fmt.Errorf("experiment: unknown mobility model %d", int(s.MobilityModel))
	}
	if s.MobilityPeriod < 0 {
		return fmt.Errorf("experiment: negative mobility period %v", s.MobilityPeriod)
	}
	if s.MobilityFraction < 0 || s.MobilityFraction > 1 {
		return fmt.Errorf("experiment: mobility fraction %v outside [0,1]", s.MobilityFraction)
	}
	if s.WaypointSpeedMin < 0 || s.WaypointSpeedMax < 0 {
		return fmt.Errorf("experiment: negative waypoint speed [%v, %v]", s.WaypointSpeedMin, s.WaypointSpeedMax)
	}
	if s.WaypointSpeedMax != 0 && s.WaypointSpeedMax < s.WaypointSpeedMin {
		return fmt.Errorf("experiment: waypoint speed range [%v, %v] inverted", s.WaypointSpeedMin, s.WaypointSpeedMax)
	}
	if s.WaypointPauseMin < 0 || s.WaypointPauseMax < 0 {
		return fmt.Errorf("experiment: negative waypoint pause [%v, %v]", s.WaypointPauseMin, s.WaypointPauseMax)
	}
	if s.WaypointPauseMax != 0 && s.WaypointPauseMax < s.WaypointPauseMin {
		return fmt.Errorf("experiment: waypoint pause window [%v, %v] inverted", s.WaypointPauseMin, s.WaypointPauseMax)
	}
	if s.RouteAlternatives < 0 {
		return fmt.Errorf("experiment: negative route alternatives %d", s.RouteAlternatives)
	}
	if s.Drain < 0 {
		return fmt.Errorf("experiment: negative drain %v", s.Drain)
	}
	if s.Replications < 0 {
		return fmt.Errorf("experiment: negative replications %d", s.Replications)
	}
	return nil
}

// Result is the outcome of one Run. The JSON form is what campaign result
// sinks stream; durations serialize as integer nanoseconds (exact, easy to
// post-process), energies as µJ floats.
type Result struct {
	// Energy, in microjoules.
	TotalEnergy     float64 `json:"totalEnergy"`
	EnergyPerPacket float64 `json:"energyPerPacket"` // total / originated items
	CtrlEnergy      float64 `json:"ctrlEnergy"`      // routing-convergence share

	// Delay.
	MeanDelay time.Duration `json:"meanDelayNs"`
	P95Delay  time.Duration `json:"p95DelayNs"`
	MaxDelay  time.Duration `json:"maxDelayNs"`

	// Delivery accounting.
	Items        int     `json:"items"`      // data items originated
	Deliveries   int     `json:"deliveries"` // distinct (node, item) deliveries
	Expected     int     `json:"expected"`   // deliveries a lossless run would make
	DeliveryRate float64 `json:"deliveryRate"`

	// Protocol event counters.
	Timeouts   uint64 `json:"timeouts"`
	Failovers  uint64 `json:"failovers"`
	Drops      uint64 `json:"drops"`
	Duplicates uint64 `json:"duplicates"`
	SentADV    uint64 `json:"sentADV"`
	SentREQ    uint64 `json:"sentREQ"`
	SentDATA   uint64 `json:"sentDATA"`

	// Routing.
	DBFRounds      int `json:"dbfRounds"`     // initial convergence rounds
	DBFBroadcasts  int `json:"dbfBroadcasts"` // initial convergence vector broadcasts
	MobilityEvents int `json:"mobilityEvents"`

	// Failure injection.
	FailuresInjected int `json:"failuresInjected"`
}

// RunConfig carries execution knobs that are not part of the scenario's
// identity: they change how fast a run computes, never what it computes, so
// they live outside the Scenario — campaign sink output stays byte-identical
// whatever they are set to.
type RunConfig struct {
	// SimWorkers bounds the goroutines the run's data-parallel kernels use
	// (neighbor-cache warmup, DBF rounds, route derivation, graph builds).
	// 0 or 1 means serial; values above GOMAXPROCS are clamped. The event
	// loop itself is always single-threaded (DESIGN.md §5.1); results are
	// byte-identical at every worker count (DESIGN.md §10).
	SimWorkers int

	// Obs attaches run-lifecycle observability: phase timing and kernel
	// stats always, plus timeline sampling and trace export when the
	// observer carries those sinks. Nil observes nothing. Like SimWorkers
	// it is an execution knob, not scenario identity: the Result is
	// byte-identical with observability on or off (DESIGN.md §11).
	Obs *obs.RunObserver
}

// Run executes the scenario to completion and collects metrics.
func Run(sc Scenario) (Result, error) {
	return RunWith(sc, RunConfig{})
}

// RunWith is Run with explicit execution knobs.
func RunWith(sc Scenario, cfg RunConfig) (Result, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	workers := zone.Workers(cfg.SimWorkers)
	o := cfg.Obs
	o.BeginRun()

	model, err := radio.ScaledMICA2(sc.ZoneRadius)
	if err != nil {
		return Result{}, err
	}

	sched := sim.NewScheduler()
	root := sim.NewRNG(sc.Seed)
	// Fork order is part of the determinism contract: each subsystem owns
	// a stream, and placeRNG forks last so pre-registry scenarios (whose
	// grid placement draws nothing) keep their historical streams.
	wlRNG := root.Fork()
	netRNG := root.Fork()
	failRNG := root.Fork()
	mobRNG := root.Fork()
	placeRNG := root.Fork()

	topoSpan := o.StartPhase(obs.PhaseTopology)
	field, err := buildField(sc, model, placeRNG)
	if err != nil {
		return Result{}, err
	}
	if workers > 1 {
		// Warm every neighbor cache in parallel up front: cache contents are
		// a pure function of positions, so this only moves work earlier.
		field.WarmAll(workers)
	}
	topoSpan.End()

	nw, err := network.New(sched, field, netRNG, network.Config{
		Sizes:        packet.DefaultSizes(),
		MAC:          mac.AnalyticConfig(),
		CarrierSense: sc.CarrierSense,
	})
	if err != nil {
		return Result{}, err
	}
	if o != nil && o.Trace != nil {
		installTrace(nw, sched, o.Trace)
	}
	ledger := dissem.NewLedger()

	var gen *workload.Generator
	switch sc.Workload {
	case AllToAll:
		gen, err = workload.AllToAllSources(sc.Nodes, sc.Sources, sc.PacketsPerNode, sc.MeanArrival, wlRNG)
	case Clustered:
		gen, err = workload.ClusteredSources(field, sc.Sources, sc.PacketsPerNode, sc.MeanArrival, sc.ClusterInterestProb, wlRNG)
	}
	if err != nil {
		return Result{}, err
	}

	var (
		proto  dissem.Protocol
		spms   *core.System
		tables *routing.Tables
	)
	switch sc.Protocol {
	case SPMS:
		routeSpan := o.StartPhase(obs.PhaseRoutes)
		tables = routing.ComputeWorkers(routing.BuildGraphWorkers(field, workers), sc.RouteAlternatives, workers)
		routeSpan.End()
		if sc.ChargeInitialDBF {
			routing.ChargeConvergenceEnergy(tables, field, nw.Sizes(), nw.Energy())
		}
		spms, err = core.NewSystem(nw, ledger, gen.Interest(), tables, sc.SPMSConfig)
		proto = spms
	case SPIN:
		var sys *spin.System
		sys, err = spin.NewSystem(nw, ledger, gen.Interest(), spin.DefaultConfig())
		proto = sys
	case Flooding:
		proto, err = newFloodSystem(nw, ledger, gen.Interest())
	}
	if err != nil {
		return Result{}, err
	}

	res := Result{}
	if tables != nil {
		res.DBFRounds = tables.Rounds()
		res.DBFBroadcasts = tables.Broadcasts()
	}

	var injector *fault.Injector
	if sc.Failures {
		injector, err = fault.NewInjector(sc.FailureCfg, sched, failRNG, nw)
		if err != nil {
			return Result{}, err
		}
		injector.SetLocator(field)
		if err := injector.Start(); err != nil {
			return Result{}, err
		}
	}

	horizon := gen.Horizon() + sc.Drain
	if sc.Mobility {
		// Mobility events cover the traffic-carrying part of the run: the
		// origination window plus a dissemination allowance. The drain tail
		// exists only to let queues empty; charging re-convergences during
		// dead air would bias the energy comparison.
		activeEnd := gen.Horizon() + mobilityActiveTail
		if activeEnd > horizon {
			activeEnd = horizon
		}
		if err := scheduleMobility(&res, sc, sched, field, mobRNG, nw, spms, activeEnd, workers, o); err != nil {
			return Result{}, err
		}
	}
	if o != nil && o.Timeline != nil {
		scheduleTimeline(sched, nw, o.Timeline, horizon)
	}

	gen.Schedule(sched, proto)
	eventSpan := o.StartPhase(obs.PhaseEvents)
	if err := sched.Run(horizon); err != nil {
		return Result{}, err
	}
	eventSpan.End()
	o.RecordKernel(sched.Dispatched(), sched.PeakHeapDepth(), sched.ArenaSize())
	o.EndRun()

	fillResult(&res, gen, ledger, nw)
	if injector != nil {
		res.FailuresInjected = injector.Stats().Injected
	}
	return res, nil
}

// newFloodSystem adapts the flooding baseline to the common constructor
// shape.
func newFloodSystem(nw *network.Network, ledger *dissem.Ledger, interest dissem.Interest) (dissem.Protocol, error) {
	return flood.NewSystem(nw, ledger, interest, core.DefaultProc)
}

// buildField constructs the scenario's node layout. Uniform and clustered
// placements span the same square the grid layout would occupy (side =
// (GridSide(n)-1)·spacing), keeping node density comparable across
// placement models at a fixed node count.
func buildField(sc Scenario, model *radio.Model, rng *sim.RNG) (*topo.Field, error) {
	switch sc.Placement {
	case PlaceGrid:
		return topo.NewGridField(sc.Nodes, sc.GridSpacing, model)
	case PlaceUniform:
		return topo.NewUniformField(sc.Nodes, placementBounds(sc), model, rng)
	case PlaceChain:
		return topo.NewChainField(sc.Nodes, sc.GridSpacing, model)
	case PlaceClustered:
		return topo.NewClusteredField(sc.Nodes, sc.PlacementClusters, sc.PlacementSpread, placementBounds(sc), model, rng)
	default:
		return nil, fmt.Errorf("experiment: unknown placement %d", int(sc.Placement))
	}
}

// placementBounds is the field square the random placements draw in: the
// rectangle the same node count would occupy on the grid.
func placementBounds(sc Scenario) geom.Rect {
	side := float64(geom.GridSide(sc.Nodes)-1) * sc.GridSpacing
	return geom.Rect{Max: geom.Point{X: side, Y: side}}
}

// scheduleMobility arms the recurring mobility events of the scenario's
// model — per-event teleport relocation (MobRelocate, the paper's §5.1.3)
// or continuous random-waypoint advancement (MobWaypoint). Re-convergence
// is instantaneous in virtual time (a documented simplification; see
// DESIGN.md) but its radio traffic is fully charged as control energy —
// the §5.1.3 cost model, applied identically under both models.
func scheduleMobility(res *Result, sc Scenario, sched *sim.Scheduler, field *topo.Field,
	rng *sim.RNG, nw *network.Network, spms *core.System, horizon time.Duration, workers int,
	o *obs.RunObserver) error {
	step := func() { field.RelocateFraction(sc.MobilityFraction, rng) }
	if sc.MobilityModel == MobWaypoint {
		wp, err := topo.NewWaypoint(field, topo.WaypointConfig{
			SpeedMin: sc.WaypointSpeedMin,
			SpeedMax: sc.WaypointSpeedMax,
			PauseMin: sc.WaypointPauseMin,
			PauseMax: sc.WaypointPauseMax,
		}, sc.MobilityFraction, rng)
		if err != nil {
			return err
		}
		step = func() { wp.Advance(sc.MobilityPeriod) }
	}
	var tick func()
	tick = func() {
		if sched.Now() >= horizon {
			return
		}
		step()
		res.MobilityEvents++
		if spms != nil {
			span := o.StartPhase(obs.PhaseRoutes)
			fresh := routing.ComputeWorkers(routing.BuildGraphWorkers(field, workers), sc.RouteAlternatives, workers)
			span.End()
			spms.SetTables(fresh)
			routing.ChargeConvergenceEnergy(fresh, field, nw.Sizes(), nw.Energy())
		}
		sched.After(sc.MobilityPeriod, tick)
	}
	sched.After(sc.MobilityPeriod, tick)
	return nil
}

// fillResult converts raw collectors into the Result summary.
func fillResult(res *Result, gen *workload.Generator, ledger *dissem.Ledger, nw *network.Network) {
	breakdown := nw.Energy().TotalBreakdown()
	res.TotalEnergy = float64(breakdown.Total())
	res.CtrlEnergy = float64(breakdown.Ctrl)
	res.Items = gen.Items()
	if res.Items > 0 {
		res.EnergyPerPacket = res.TotalEnergy / float64(res.Items)
	}
	res.MeanDelay = ledger.Delays().Mean()
	res.P95Delay = ledger.Delays().Percentile(95)
	res.MaxDelay = ledger.Delays().Max()
	res.Deliveries = ledger.Deliveries()
	res.Expected = gen.ExpectedDeliveries()
	if res.Expected > 0 {
		res.DeliveryRate = float64(res.Deliveries) / float64(res.Expected)
	}
	c := nw.Counters()
	res.Timeouts = c.Timeouts
	res.Failovers = c.Failovers
	res.Drops = c.Drops
	res.Duplicates = c.Duplicates
	res.SentADV = c.Sent[packet.ADV]
	res.SentREQ = c.Sent[packet.REQ]
	res.SentDATA = c.Sent[packet.DATA]
}
