package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestScenarioJSONRoundTrip marshals a fully-populated scenario and checks
// the decode reproduces it field for field.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Scenario{
		Protocol:            SPMS,
		Workload:            Clustered,
		Nodes:               169,
		GridSpacing:         5,
		ZoneRadius:          20,
		PacketsPerNode:      10,
		MeanArrival:         time.Millisecond,
		ClusterInterestProb: 0.05,
		Failures:            true,
		FailureCfg:          fault.DefaultConfig(),
		Mobility:            true,
		MobilityPeriod:      100 * time.Millisecond,
		MobilityFraction:    0.05,
		SPMSConfig:          core.DefaultConfig(),
		RouteAlternatives:   3,
		ChargeInitialDBF:    true,
		CarrierSense:        true,
		Seed:                42,
		Drain:               3 * time.Second,
		Replications:        5,
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if back != sc {
		t.Fatalf("round trip diverged:\nin:   %+v\nout:  %+v\njson: %s", sc, back, data)
	}
	for _, frag := range []string{`"protocol":"spms"`, `"workload":"clustered"`, `"drain":"3s"`, `"meanInterArrival":"50ms"`, `"replications":5`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("wire form missing %s:\n%s", frag, data)
		}
	}
}

// TestScenarioJSONReplicationsNormalized checks 0 and 1 — both meaning a
// single trial — serialize identically: the field is omitted, so an
// explicit replications:1 spec round-trips byte-identically to one that
// never mentions replication.
func TestScenarioJSONReplicationsNormalized(t *testing.T) {
	for _, n := range []int{0, 1} {
		data, err := json.Marshal(Scenario{Protocol: SPMS, Workload: AllToAll, Nodes: 25, ZoneRadius: 20, Replications: n})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if strings.Contains(string(data), "replications") {
			t.Fatalf("replications=%d leaked into the wire form: %s", n, data)
		}
	}
}

// TestScenarioJSONFlexibleInput checks the spec-file conveniences: named
// protocols/workloads (any case), duration strings or raw nanoseconds.
func TestScenarioJSONFlexibleInput(t *testing.T) {
	in := `{
		"protocol": "SPIN",
		"workload": "cluster",
		"nodes": 49,
		"zoneRadius": 15,
		"meanArrival": 1000000,
		"drain": "2s"
	}`
	var sc Scenario
	if err := json.Unmarshal([]byte(in), &sc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if sc.Protocol != SPIN || sc.Workload != Clustered {
		t.Fatalf("enum parse: %+v", sc)
	}
	if sc.MeanArrival != time.Millisecond || sc.Drain != 2*time.Second {
		t.Fatalf("duration parse: arrival=%v drain=%v", sc.MeanArrival, sc.Drain)
	}
}

// TestScenarioJSONRejects checks strict decoding: unknown fields, unknown
// enum names, and malformed durations all fail loudly.
func TestScenarioJSONRejects(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"unknown field", `{"protocol":"spms","nodez":25}`, "nodez"},
		{"unknown protocol", `{"protocol":"smps"}`, "unknown protocol"},
		{"unknown workload", `{"workload":"mesh"}`, "unknown workload"},
		{"bad duration", `{"drain":"3 parsecs"}`, "bad duration"},
		{"bad nested field", `{"failureConfig":{"mttr":"10ms"}}`, "mttr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sc Scenario
			err := json.Unmarshal([]byte(tc.in), &sc)
			if err == nil {
				t.Fatalf("accepted %s as %+v", tc.in, sc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestResultJSONTags spot-checks Result's wire names.
func TestResultJSONTags(t *testing.T) {
	data, err := json.Marshal(Result{MeanDelay: 1500 * time.Microsecond, EnergyPerPacket: 2.5})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, frag := range []string{`"meanDelayNs":1500000`, `"energyPerPacket":2.5`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("result wire form missing %s:\n%s", frag, data)
		}
	}
}
