package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSweepOrderAndWorkers checks that Execute returns results in point
// order for any pool size, using a stub Run that tags each result.
func TestSweepOrderAndWorkers(t *testing.T) {
	points := make([]Scenario, 37)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1} // distinct, identifiable
	}
	stub := func(sc Scenario) (Result, error) {
		return Result{Items: sc.Nodes}, nil
	}
	for _, workers := range []int{0, 1, 2, 8, 64} {
		res, err := (Sweep{Points: points, Run: stub, Workers: workers}).Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(points) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(points))
		}
		for i, r := range res {
			if r.Items != i+1 {
				t.Fatalf("workers=%d: result %d out of order: %+v", workers, i, r)
			}
		}
	}
}

// TestSweepEmpty checks the empty sweep is a no-op, not a hang or panic.
func TestSweepEmpty(t *testing.T) {
	res, err := (Sweep{}).Execute()
	if err != nil || len(res) != 0 {
		t.Fatalf("empty sweep: res=%v err=%v", res, err)
	}
}

// TestSweepFirstErrorWins checks that the reported error is the
// lowest-indexed failing point regardless of completion order, matching
// what a serial sweep surfaces first.
func TestSweepFirstErrorWins(t *testing.T) {
	points := make([]Scenario, 16)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	boom := errors.New("boom")
	stub := func(sc Scenario) (Result, error) {
		if sc.Nodes >= 5 { // points 4.. all fail
			return Result{}, fmt.Errorf("n=%d: %w", sc.Nodes, boom)
		}
		return Result{}, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := (Sweep{Points: points, Run: stub, Workers: workers}).Execute()
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "point 4") {
			t.Fatalf("workers=%d: err=%v, want the lowest failing point (4)", workers, err)
		}
	}
}

// TestSweepRealScenarioValidation checks the default Run path propagates
// scenario validation errors through the pool.
func TestSweepRealScenarioValidation(t *testing.T) {
	_, err := (Sweep{Points: []Scenario{{}}, Workers: 4}).Execute()
	if err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

// TestSweepOnPoint checks the streaming callback fires exactly once per
// point with the matching scenario/result pair, at every pool size. Calls
// are serialized by Sweep, so the unsynchronized map below is also a race
// check under -race.
func TestSweepOnPoint(t *testing.T) {
	points := make([]Scenario, 53)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	stub := func(sc Scenario) (Result, error) {
		return Result{Items: sc.Nodes}, nil
	}
	for _, workers := range []int{1, 8} {
		got := make(map[int]Result)
		_, err := (Sweep{
			Points:  points,
			Run:     stub,
			Workers: workers,
			OnPoint: func(i int, sc Scenario, res Result) error {
				if _, dup := got[i]; dup {
					t.Errorf("workers=%d: point %d delivered twice", workers, i)
				}
				if sc.Nodes != i+1 || res.Items != i+1 {
					t.Errorf("workers=%d: point %d got sc.Nodes=%d res.Items=%d", workers, i, sc.Nodes, res.Items)
				}
				got[i] = res
				return nil
			},
		}).Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(points) {
			t.Fatalf("workers=%d: %d callbacks, want %d", workers, len(got), len(points))
		}
	}
}

// TestSweepOnPointErrorAborts checks a callback error stops the sweep:
// serial execution stops immediately after the failing delivery, parallel
// execution stops claiming points and surfaces the error.
func TestSweepOnPointErrorAborts(t *testing.T) {
	points := make([]Scenario, 24)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	boom := errors.New("sink boom")

	var runs atomic.Int64
	stub := func(sc Scenario) (Result, error) {
		runs.Add(1)
		return Result{Items: sc.Nodes}, nil
	}
	cb := func(i int, _ Scenario, _ Result) error {
		if i == 2 {
			return boom
		}
		return nil
	}

	_, err := (Sweep{Points: points, Run: stub, Workers: 1, OnPoint: cb}).Execute()
	if !errors.Is(err, boom) {
		t.Fatalf("workers=1: err = %v, want sink boom", err)
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("workers=1: %d points ran after callback error at point 2, want exactly 3", got)
	}

	_, err = (Sweep{Points: points, Run: stub, Workers: 8, OnPoint: cb}).Execute()
	if !errors.Is(err, boom) {
		t.Fatalf("workers=8: err = %v, want sink boom", err)
	}
}

// TestSweepOnPointErrorStopsClaiming pins the parallel abort contract
// exactly: after a callback error, workers stop claiming points. The
// second worker's points are gated on the failure having happened, so the
// run count is deterministic — point 0 (whose delivery errors) and point 1
// (in flight when it does) execute; nothing else may.
func TestSweepOnPointErrorStopsClaiming(t *testing.T) {
	points := make([]Scenario, 24)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	boom := errors.New("sink boom")
	aborted := make(chan struct{})

	var runs atomic.Int64
	stub := func(sc Scenario) (Result, error) {
		runs.Add(1)
		if sc.Nodes > 1 {
			// Hold every later point until the sink has already failed, so
			// any claim after this one is provably post-abort.
			<-aborted
		}
		return Result{Items: sc.Nodes}, nil
	}
	cb := func(i int, _ Scenario, _ Result) error {
		if i == 0 {
			close(aborted)
			return boom
		}
		return nil
	}

	_, err := (Sweep{Points: points, Run: stub, Workers: 2, OnPoint: cb}).Execute()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink boom", err)
	}
	// Points 0 (whose delivery errors) and, at most, point 1 (claimed
	// while 0 ran) execute; every later point would have unblocked on
	// `aborted` and run, so any third run means claiming continued.
	if got := runs.Load(); got < 1 || got > 2 {
		t.Fatalf("%d points ran after the sink died, want 1 or 2 — workers kept claiming", got)
	}
}

// TestSweepPointErrorBeatsOnPointError pins the precedence contract under
// Workers > 1: when a point failure and a sink failure both occur in one
// parallel sweep, Execute deterministically reports the point's error no
// matter which lands first. Channel gating makes both failures happen in
// every schedule: the callback for point 0 cannot return its error until
// point 1's run has started failing, and point 1 is always claimed
// because no failure can be recorded before then. (Serial sweeps stop at
// the first failure in point order, so the race only exists in parallel.)
func TestSweepPointErrorBeatsOnPointError(t *testing.T) {
	pointErr := errors.New("point boom")
	sinkErr := errors.New("sink boom")
	for try := 0; try < 25; try++ {
		point1Started := make(chan struct{})
		stub := func(sc Scenario) (Result, error) {
			if sc.Nodes == 2 {
				close(point1Started)
				return Result{}, pointErr
			}
			return Result{Items: sc.Nodes}, nil
		}
		cb := func(i int, _ Scenario, _ Result) error {
			<-point1Started
			return sinkErr
		}
		_, err := (Sweep{
			Points:  []Scenario{{Nodes: 1}, {Nodes: 2}},
			Run:     stub,
			Workers: 2,
			OnPoint: cb,
		}).Execute()
		if !errors.Is(err, pointErr) {
			t.Fatalf("try %d: err = %v, want the point error to take precedence over the sink error", try, err)
		}
	}
}

// TestSweepPanicRecovered checks a panicking trial surfaces as an ordinary
// point error carrying the panic value and a stack trace, at every pool
// size — one bad trial must not take down the process.
func TestSweepPanicRecovered(t *testing.T) {
	points := make([]Scenario, 8)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	stub := func(sc Scenario) (Result, error) {
		if sc.Nodes == 3 {
			panic("kaboom at n=3")
		}
		return Result{Items: sc.Nodes}, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := (Sweep{Points: points, Run: stub, Workers: workers}).Execute()
		if err == nil {
			t.Fatalf("workers=%d: panic swallowed", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want a wrapped *PanicError", workers, err)
		}
		if pe.Value != "kaboom at n=3" {
			t.Fatalf("workers=%d: panic value = %v, want the original value", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "sweep_test.go") {
			t.Fatalf("workers=%d: stack does not name the panic site:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(err.Error(), "point 2") {
			t.Fatalf("workers=%d: err = %v, want the failing point's index", workers, err)
		}
	}
}

// TestSweepCancelSerial pins serial cancellation: the check happens before
// each claim, so closing Cancel during point k's delivery runs exactly
// k+1 points and returns ErrCancelled.
func TestSweepCancelSerial(t *testing.T) {
	points := make([]Scenario, 10)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	cancel := make(chan struct{})
	var runs atomic.Int64
	stub := func(sc Scenario) (Result, error) {
		runs.Add(1)
		return Result{Items: sc.Nodes}, nil
	}
	_, err := (Sweep{
		Points:  points,
		Run:     stub,
		Workers: 1,
		Cancel:  cancel,
		OnPoint: func(i int, _ Scenario, _ Result) error {
			if i == 2 {
				close(cancel)
			}
			return nil
		},
	}).Execute()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("%d points ran after cancel during point 2, want exactly 3", got)
	}

	// A pre-closed Cancel stops the sweep before any work.
	closed := make(chan struct{})
	close(closed)
	runs.Store(0)
	_, err = (Sweep{Points: points, Run: stub, Workers: 1, Cancel: closed}).Execute()
	if !errors.Is(err, ErrCancelled) || runs.Load() != 0 {
		t.Fatalf("pre-cancelled sweep: err=%v runs=%d, want ErrCancelled and zero runs", err, runs.Load())
	}
}

// TestSweepCancelDrainsInFlight pins the parallel drain contract: after
// Cancel closes, workers claim nothing new, but every point already in
// flight runs to completion AND is delivered through OnPoint — exactly
// what lets the campaign journal each drained point before exit.
func TestSweepCancelDrainsInFlight(t *testing.T) {
	points := make([]Scenario, 24)
	for i := range points {
		points[i] = Scenario{Nodes: i + 1}
	}
	cancel := make(chan struct{})
	var runs atomic.Int64
	stub := func(sc Scenario) (Result, error) {
		runs.Add(1)
		if sc.Nodes > 1 {
			// Hold later points until cancellation has happened, so any
			// claim after this one is provably post-cancel.
			<-cancel
		}
		return Result{Items: sc.Nodes}, nil
	}
	delivered := make(map[int]bool)
	_, err := (Sweep{
		Points:  points,
		Run:     stub,
		Workers: 2,
		Cancel:  cancel,
		OnPoint: func(i int, _ Scenario, _ Result) error {
			delivered[i] = true
			if i == 0 {
				close(cancel)
			}
			return nil
		},
	}).Execute()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// Point 0 always runs; point 1 may have been claimed before cancel. No
	// third point may be claimed, and — the drain contract — every point
	// that ran must have been delivered.
	if got := runs.Load(); got < 1 || got > 2 {
		t.Fatalf("%d points ran, want 1 or 2 — workers kept claiming after cancel", got)
	}
	if int64(len(delivered)) != runs.Load() {
		t.Fatalf("%d points ran but %d were delivered — in-flight work was dropped, not drained", runs.Load(), len(delivered))
	}
}

// TestReplicatedSweepCancel checks Cancel passes through ReplicatedSweep
// with the same sentinel, and that cancellation can not deliver a
// partially-replicated point.
func TestReplicatedSweepCancel(t *testing.T) {
	points := []Scenario{{Nodes: 1, Replications: 3}, {Nodes: 2, Replications: 3}}
	cancel := make(chan struct{})
	stub := func(sc Scenario) (Result, error) {
		return Result{Items: sc.Nodes}, nil
	}
	_, err := (ReplicatedSweep{
		Points:  points,
		Run:     stub,
		Workers: 1,
		Cancel:  cancel,
		OnPoint: func(i int, _ Scenario, reps []Result) error {
			if len(reps) != 3 {
				t.Errorf("point %d delivered with %d replicates, want 3", i, len(reps))
			}
			if i == 0 {
				close(cancel)
			}
			return nil
		},
	}).Execute()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestSweepParallelDeterminism is the tentpole's contract: Figure8-class
// sweeps produce byte-identical tables at workers=1 and workers=8. Figure10
// adds failure injection and Figure13 the clustered workload, so the
// comparison covers every scenario dimension the figures exercise.
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	serial := NewRunnerWorkers(tiny(), 1)
	parallel := NewRunnerWorkers(tiny(), 8)
	figures := []struct {
		name string
		run  func(*Runner) (Table, error)
	}{
		{"fig8", (*Runner).Figure8},
		{"fig10", (*Runner).Figure10},
		{"fig13", (*Runner).Figure13},
	}
	for _, f := range figures {
		t.Run(f.name, func(t *testing.T) {
			a, err := f.run(serial)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			b, err := f.run(parallel)
			if err != nil {
				t.Fatalf("workers=8: %v", err)
			}
			if a.Format() != b.Format() {
				t.Fatalf("parallel table diverged from serial:\n--- workers=1\n%s\n--- workers=8\n%s", a.Format(), b.Format())
			}
			if a.CSV() != b.CSV() {
				t.Fatal("parallel CSV diverged from serial")
			}
		})
	}
}
