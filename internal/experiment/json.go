// json.go is the wire codec behind Scenario's JSON form — the format of
// campaign spec files (internal/campaign), `spmsim -scenario`, and result
// sink tagging. Protocols and workloads serialize as their names, and
// every duration accepts either a Go duration string ("2.5ms") or integer
// nanoseconds, marshaling back as the string form. Decoding is strict:
// unknown fields are rejected so a typoed spec fails instead of silently
// simulating the default.
package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// MarshalJSON writes the protocol name ("spms", "spin", "flood").
func (p Protocol) MarshalJSON() ([]byte, error) {
	switch p {
	case SPMS, SPIN, Flooding:
		return json.Marshal(strings.ToLower(p.String()))
	default:
		return nil, fmt.Errorf("experiment: cannot marshal unknown protocol %d", int(p))
	}
}

// UnmarshalJSON accepts a protocol name (case-insensitive) or its numeric
// value.
func (p *Protocol) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := ParseProtocol(s)
		if err != nil {
			return err
		}
		*p = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*p = Protocol(n)
	return nil
}

// ParseProtocol resolves a protocol name as used in flags and spec files.
func ParseProtocol(s string) (Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "spms":
		return SPMS, nil
	case "spin":
		return SPIN, nil
	case "flood", "flooding":
		return Flooding, nil
	default:
		return 0, fmt.Errorf("experiment: unknown protocol %q (want spms | spin | flood)", s)
	}
}

// MarshalJSON writes the workload name ("all-to-all", "clustered").
func (w WorkloadKind) MarshalJSON() ([]byte, error) {
	switch w {
	case AllToAll, Clustered:
		return json.Marshal(w.String())
	default:
		return nil, fmt.Errorf("experiment: cannot marshal unknown workload %d", int(w))
	}
}

// UnmarshalJSON accepts a workload name (case-insensitive) or its numeric
// value.
func (w *WorkloadKind) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := ParseWorkload(s)
		if err != nil {
			return err
		}
		*w = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*w = WorkloadKind(n)
	return nil
}

// ParseWorkload resolves a workload name as used in flags and spec files.
func ParseWorkload(s string) (WorkloadKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "all-to-all", "alltoall":
		return AllToAll, nil
	case "cluster", "clustered":
		return Clustered, nil
	default:
		return 0, fmt.Errorf("experiment: unknown workload %q (want all-to-all | cluster)", s)
	}
}

// MarshalJSON writes the placement name ("grid", "uniform", "chain",
// "clustered").
func (p PlacementKind) MarshalJSON() ([]byte, error) {
	switch p {
	case PlaceGrid, PlaceUniform, PlaceChain, PlaceClustered:
		return json.Marshal(p.String())
	default:
		return nil, fmt.Errorf("experiment: cannot marshal unknown placement %d", int(p))
	}
}

// UnmarshalJSON accepts a placement name (case-insensitive) or its numeric
// value.
func (p *PlacementKind) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := ParsePlacement(s)
		if err != nil {
			return err
		}
		*p = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*p = PlacementKind(n)
	return nil
}

// ParsePlacement resolves a placement name as used in flags and spec files.
func ParsePlacement(s string) (PlacementKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "grid":
		return PlaceGrid, nil
	case "uniform":
		return PlaceUniform, nil
	case "chain":
		return PlaceChain, nil
	case "cluster", "clustered":
		return PlaceClustered, nil
	default:
		return 0, fmt.Errorf("experiment: unknown placement %q (want grid | uniform | chain | clustered)", s)
	}
}

// MarshalJSON writes the mobility-model name ("relocate", "waypoint").
func (m MobilityKind) MarshalJSON() ([]byte, error) {
	switch m {
	case MobRelocate, MobWaypoint:
		return json.Marshal(m.String())
	default:
		return nil, fmt.Errorf("experiment: cannot marshal unknown mobility model %d", int(m))
	}
}

// UnmarshalJSON accepts a mobility-model name (case-insensitive) or its
// numeric value.
func (m *MobilityKind) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := ParseMobilityModel(s)
		if err != nil {
			return err
		}
		*m = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*m = MobilityKind(n)
	return nil
}

// ParseMobilityModel resolves a mobility-model name as used in flags and
// spec files.
func ParseMobilityModel(s string) (MobilityKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "relocate", "relocation":
		return MobRelocate, nil
	case "waypoint", "random-waypoint":
		return MobWaypoint, nil
	default:
		return 0, fmt.Errorf("experiment: unknown mobility model %q (want relocate | waypoint)", s)
	}
}

// FlexDuration marshals as a Go duration string and unmarshals from
// either a duration string or integer nanoseconds. Exported so other
// spec layers (internal/campaign's duration axes) share the one codec
// instead of drifting copies.
type FlexDuration time.Duration

func (d FlexDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *FlexDuration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("experiment: bad duration %q: %w", s, err)
		}
		*d = FlexDuration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("experiment: duration must be a string like \"2.5ms\" or integer nanoseconds: %w", err)
	}
	*d = FlexDuration(n)
	return nil
}

// faultConfigJSON is fault.Config's wire form (named model, duration
// strings). The model and burst-radius fields omit their zero values, so a
// pre-registry transient config serializes byte-identically to before.
type faultConfigJSON struct {
	Model            fault.Model  `json:"model,omitempty"`
	MeanInterArrival FlexDuration `json:"meanInterArrival,omitempty"`
	RepairMin        FlexDuration `json:"repairMin,omitempty"`
	RepairMax        FlexDuration `json:"repairMax,omitempty"`
	BurstRadius      float64      `json:"burstRadius,omitempty"`
}

func (j faultConfigJSON) config() fault.Config {
	return fault.Config{
		Model:            j.Model,
		MeanInterArrival: time.Duration(j.MeanInterArrival),
		RepairMin:        time.Duration(j.RepairMin),
		RepairMax:        time.Duration(j.RepairMax),
		BurstRadius:      j.BurstRadius,
	}
}

// coreConfigJSON is core.Config's wire form (duration strings).
type coreConfigJSON struct {
	TOutADV         FlexDuration `json:"tOutADV,omitempty"`
	TOutDAT         FlexDuration `json:"tOutDAT,omitempty"`
	Proc            FlexDuration `json:"proc,omitempty"`
	AutoTimeouts    bool         `json:"autoTimeouts,omitempty"`
	MaxAttempts     int          `json:"maxAttempts,omitempty"`
	ServeFromCache  bool         `json:"serveFromCache,omitempty"`
	DisableRelayADV bool         `json:"disableRelayADV,omitempty"`
	QueryHorizon    int          `json:"queryHorizon,omitempty"`
	BorderFanout    int          `json:"borderFanout,omitempty"`
}

func (j coreConfigJSON) config() core.Config {
	return core.Config{
		TOutADV:         time.Duration(j.TOutADV),
		TOutDAT:         time.Duration(j.TOutDAT),
		Proc:            time.Duration(j.Proc),
		AutoTimeouts:    j.AutoTimeouts,
		MaxAttempts:     j.MaxAttempts,
		ServeFromCache:  j.ServeFromCache,
		DisableRelayADV: j.DisableRelayADV,
		QueryHorizon:    j.QueryHorizon,
		BorderFanout:    j.BorderFanout,
	}
}

// The Marshal/Unmarshal pair below overlays Scenario's duration and
// nested-config fields with their wire forms. The overlay fields are
// declared directly on the auxiliary struct (depth 0) so they win the
// JSON name conflict against the embedded alias's fields (depth 1);
// embedding them through a named shadow struct would tie the depths and
// make encoding/json drop the colliding names entirely.

// MarshalJSON renders the scenario with named protocols/workloads and
// duration strings; zero-valued nested configs are omitted.
func (s Scenario) MarshalJSON() ([]byte, error) {
	type alias Scenario
	aux := struct {
		MeanArrival      FlexDuration     `json:"meanArrival,omitempty"`
		MobilityPeriod   FlexDuration     `json:"mobilityPeriod,omitempty"`
		WaypointPauseMin FlexDuration     `json:"waypointPauseMin,omitempty"`
		WaypointPauseMax FlexDuration     `json:"waypointPauseMax,omitempty"`
		Drain            FlexDuration     `json:"drain,omitempty"`
		FailureCfg       *faultConfigJSON `json:"failureConfig,omitempty"`
		SPMSConfig       *coreConfigJSON  `json:"spmsConfig,omitempty"`
		Replications     int              `json:"replications,omitempty"`
		*alias
	}{
		MeanArrival:      FlexDuration(s.MeanArrival),
		MobilityPeriod:   FlexDuration(s.MobilityPeriod),
		WaypointPauseMin: FlexDuration(s.WaypointPauseMin),
		WaypointPauseMax: FlexDuration(s.WaypointPauseMax),
		Drain:            FlexDuration(s.Drain),
		alias:            (*alias)(&s),
	}
	// 0 and 1 both mean "single trial"; normalize to the omitted form so
	// an explicit replications:1 spec serializes byte-identically to one
	// that never mentions replication.
	if s.Replications > 1 {
		aux.Replications = s.Replications
	}
	if s.FailureCfg != (fault.Config{}) {
		aux.FailureCfg = &faultConfigJSON{
			Model:            s.FailureCfg.Model,
			MeanInterArrival: FlexDuration(s.FailureCfg.MeanInterArrival),
			RepairMin:        FlexDuration(s.FailureCfg.RepairMin),
			RepairMax:        FlexDuration(s.FailureCfg.RepairMax),
			BurstRadius:      s.FailureCfg.BurstRadius,
		}
	}
	if s.SPMSConfig != (core.Config{}) {
		c := s.SPMSConfig
		aux.SPMSConfig = &coreConfigJSON{
			TOutADV:         FlexDuration(c.TOutADV),
			TOutDAT:         FlexDuration(c.TOutDAT),
			Proc:            FlexDuration(c.Proc),
			AutoTimeouts:    c.AutoTimeouts,
			MaxAttempts:     c.MaxAttempts,
			ServeFromCache:  c.ServeFromCache,
			DisableRelayADV: c.DisableRelayADV,
			QueryHorizon:    c.QueryHorizon,
			BorderFanout:    c.BorderFanout,
		}
	}
	return json.Marshal(&aux)
}

// UnmarshalJSON decodes the wire form, rejecting unknown fields.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	type alias Scenario
	aux := struct {
		MeanArrival      FlexDuration     `json:"meanArrival,omitempty"`
		MobilityPeriod   FlexDuration     `json:"mobilityPeriod,omitempty"`
		WaypointPauseMin FlexDuration     `json:"waypointPauseMin,omitempty"`
		WaypointPauseMax FlexDuration     `json:"waypointPauseMax,omitempty"`
		Drain            FlexDuration     `json:"drain,omitempty"`
		FailureCfg       *faultConfigJSON `json:"failureConfig,omitempty"`
		SPMSConfig       *coreConfigJSON  `json:"spmsConfig,omitempty"`
		*alias
	}{alias: (*alias)(s)}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return fmt.Errorf("experiment: bad scenario: %w", err)
	}
	s.MeanArrival = time.Duration(aux.MeanArrival)
	s.MobilityPeriod = time.Duration(aux.MobilityPeriod)
	s.WaypointPauseMin = time.Duration(aux.WaypointPauseMin)
	s.WaypointPauseMax = time.Duration(aux.WaypointPauseMax)
	s.Drain = time.Duration(aux.Drain)
	if aux.FailureCfg != nil {
		s.FailureCfg = aux.FailureCfg.config()
	}
	if aux.SPMSConfig != nil {
		s.SPMSConfig = aux.SPMSConfig.config()
	}
	return nil
}
