package experiment

// The headline scale test: one simulation at 10⁵ nodes must complete. The
// enabling configuration is deliberate — SPIN (no N² routing tables),
// source-restricted clustered traffic (items scale with Sources, not N),
// and the density-sized spatial index (queries O(degree), not O(N)). SPMS
// stays out of reach at this N because its distance-vector tables are
// inherently N²; that is a property of the protocol, not the engine.

import (
	"testing"
	"time"
)

func TestHundredThousandNodeSimCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-node sim is seconds of work; skipped in short mode")
	}
	if raceEnabled {
		t.Skip("10⁵-node sim under -race exceeds CI memory/time budgets")
	}
	sc := Scenario{
		Protocol:       SPIN,
		Workload:       Clustered,
		Nodes:          100_000,
		ZoneRadius:     20,
		Placement:      PlaceUniform,
		PacketsPerNode: 1,
		Sources:        200,
		Seed:           1,
		Drain:          2 * time.Second,
	}
	start := time.Now()
	res, err := RunWith(sc, RunConfig{SimWorkers: 2})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	t.Logf("10⁵-node SPIN run: %d items, %d deliveries, rate %.3f in %v",
		res.Items, res.Deliveries, res.DeliveryRate, time.Since(start).Round(time.Millisecond))
	if res.Items != 200 {
		t.Fatalf("Items = %d, want 200 (sources × packetsPerNode)", res.Items)
	}
	if res.Deliveries == 0 {
		t.Fatal("no deliveries at 10⁵ nodes")
	}
	if res.DeliveryRate < 0.9 {
		t.Fatalf("delivery rate %.3f, want >= 0.9", res.DeliveryRate)
	}
}
