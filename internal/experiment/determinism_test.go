package experiment

// The §10 determinism suite: a scenario's Result — serialized to JSON — must
// be byte-identical at every SimWorkers value, because the parallel kernels
// (neighbor-cache warmup, DBF rounds, route derivation) only move work
// between goroutines, never change what is computed. GOMAXPROCS is raised so
// the worker pools genuinely fork even on single-core CI machines; the CI
// parallel-kernel job additionally runs this file under -race.

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
)

var determinismWorkerCounts = []int{1, 2, 4, 7}

// resultJSON runs sc at the given worker count and returns the serialized
// Result, the byte string the campaign sinks would emit.
func resultJSON(t *testing.T, sc Scenario, workers int) []byte {
	t.Helper()
	res, err := RunWith(sc, RunConfig{SimWorkers: workers})
	if err != nil {
		t.Fatalf("RunWith(workers=%d): %v", workers, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func assertWorkerInvariant(t *testing.T, sc Scenario) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	base := resultJSON(t, sc, 1)
	for _, w := range determinismWorkerCounts[1:] {
		if got := resultJSON(t, sc, w); string(got) != string(base) {
			t.Fatalf("SimWorkers=%d diverged from serial:\nserial: %s\nworkers: %s", w, base, got)
		}
	}
}

// TestSimWorkersInvariantSPMSMobilityFailures exercises the heaviest
// parallel surface: SPMS recomputes routing (graph build + DBF + route
// derivation, all zone-parallel) after every mobility epoch, with failures
// perturbing liveness between recomputes.
func TestSimWorkersInvariantSPMSMobilityFailures(t *testing.T) {
	assertWorkerInvariant(t, Scenario{
		Protocol:         SPMS,
		Workload:         AllToAll,
		Nodes:            49,
		ZoneRadius:       20,
		PacketsPerNode:   2,
		Failures:         true,
		FailureCfg:       fault.DefaultConfig(),
		Mobility:         true,
		MobilityPeriod:   50 * time.Millisecond,
		MobilityFraction: 0.1,
		Seed:             7,
		Drain:            2 * time.Second,
	})
}

// TestSimWorkersInvariantSPINClusteredSources covers the 10⁵-node enabler
// configuration at test scale: SPIN, clustered placement and workload, and
// origination restricted to a source subset.
func TestSimWorkersInvariantSPINClusteredSources(t *testing.T) {
	assertWorkerInvariant(t, Scenario{
		Protocol:          SPIN,
		Workload:          Clustered,
		Nodes:             100,
		ZoneRadius:        20,
		Placement:         PlaceClustered,
		PlacementClusters: 4,
		PacketsPerNode:    2,
		Sources:           10,
		Seed:              11,
		Drain:             2 * time.Second,
	})
}

// TestSimWorkersInvariantWaypoint pins the waypoint mobility model too: its
// per-leg RNG draws happen on the event thread, so worker count must not
// reach them.
func TestSimWorkersInvariantWaypoint(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the relocation variant in short mode")
	}
	assertWorkerInvariant(t, Scenario{
		Protocol:         SPMS,
		Workload:         AllToAll,
		Nodes:            49,
		ZoneRadius:       20,
		PacketsPerNode:   1,
		Mobility:         true,
		MobilityModel:    MobWaypoint,
		MobilityPeriod:   100 * time.Millisecond,
		MobilityFraction: 0.1,
		WaypointSpeedMin: 1,
		WaypointSpeedMax: 3,
		Seed:             3,
		Drain:            2 * time.Second,
	})
}
