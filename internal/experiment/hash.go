// hash.go defines the canonical scenario identity: a stable content hash
// over the fully-defaulted wire form. The hash is the key of everything
// durable in the campaign layer (DESIGN.md §13) — write-ahead journal
// records carry it so a resumed run refuses a journal written by a
// different campaign, and the content-addressed result cache maps it to a
// finished replicate vector so overlapping grids and re-runs reuse points
// across campaigns.
//
// Stability argument: the JSON wire form (json.go) is already the frozen
// byte format of campaign sinks and spec files — named enums, duration
// strings, omitted zero values — and WithDefaults is idempotent, so two
// scenarios that would execute identically marshal identically. The hash
// covers Replications (a scenario standing for 5 trials is a different
// unit of work than the same parameters run once) but nothing about HOW a
// run executes: worker counts, retry counts, and observability are
// execution knobs outside the Scenario and therefore outside its identity.
package experiment

import (
	"crypto/sha256"
	"encoding/hex"
)

// CanonicalScenarioJSON returns the scenario's identity bytes: the strict
// wire-form JSON of the fully-defaulted scenario. Two scenarios with equal
// canonical JSON execute identically (same trials, same seeds, same
// replicate vector).
func CanonicalScenarioJSON(sc Scenario) ([]byte, error) {
	return sc.WithDefaults().MarshalJSON()
}

// ScenarioHash returns the canonical content hash of the scenario: the
// lowercase hex SHA-256 of CanonicalScenarioJSON. It is a pure function of
// the defaulted scenario (replications included), stable across processes
// and runs.
func ScenarioHash(sc Scenario) (string, error) {
	data, err := CanonicalScenarioJSON(sc)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
