// sweep.go is the parallel execution engine behind every figure runner:
// a declarative scenario grid executed by a bounded worker pool. Scenarios
// are independent, fully seeded simulations — each worker goroutine builds
// its own Scheduler — so parallel execution is deterministic: results are
// reassembled in point order and are byte-identical to a serial run.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrCancelled is returned by Execute when the sweep's Cancel channel
// closes before every point completes. Points already handed to OnPoint
// are fully delivered; the error only says the grid was not finished.
var ErrCancelled = errors.New("experiment: sweep cancelled")

// PanicError is a per-trial panic recovered by the sweep workers: the
// panicking value plus the goroutine stack at recovery. One bad trial
// becomes one failed point instead of taking down the whole campaign
// process; the stack travels in the error so the crash site survives into
// logs and journals.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value followed by the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("trial panicked: %v\n%s", e.Value, e.Stack)
}

// Recovered wraps a trial executor so a panic surfaces as a *PanicError
// return instead of unwinding the goroutine. The sweep applies it to every
// executor; retry layers apply it themselves so each ATTEMPT recovers
// independently (a panicking first attempt can be retried).
func Recovered(run func(Scenario) (Result, error)) func(Scenario) (Result, error) {
	return func(sc Scenario) (res Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				res, err = Result{}, &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		return run(sc)
	}
}

// Sweep is a declarative parallel scenario sweep: the points to execute and
// the function that executes one of them.
type Sweep struct {
	// Points are the scenarios to run. Order is the result order.
	Points []Scenario

	// Run executes one point. Nil means the package-level Run. It must be
	// safe to call concurrently (Run is: every call builds a private
	// scheduler, field, and RNG tree).
	Run func(Scenario) (Result, error)

	// Workers bounds the pool. Zero or negative means runtime.GOMAXPROCS(0).
	Workers int

	// OnPoint, when non-nil, is invoked once per successfully completed
	// point with its index, scenario, and result — the streaming hook the
	// campaign sinks hang off. Calls are serialized (never concurrent) but
	// may arrive out of point order when Workers > 1; Execute still returns
	// the full result slice in point order. A non-nil return aborts the
	// sweep — workers stop claiming points and Execute returns that error
	// (a point's own error takes precedence if both occur). After any
	// failure, remaining completions are best-effort.
	OnPoint func(index int, sc Scenario, res Result) error

	// OnStart, when non-nil, is invoked as a worker claims point index,
	// before running it — the live-progress hook (which points are in
	// flight right now). Unlike OnPoint it is NOT serialized: workers call
	// it concurrently, so it must be safe for concurrent use and should be
	// cheap. It cannot abort the sweep.
	OnStart func(index int)

	// Cancel, when non-nil, requests a graceful stop when closed: workers
	// claim no further points but every point already in flight runs to
	// completion and is delivered through OnPoint. Execute then returns
	// ErrCancelled (unless a point failed first, which takes precedence).
	Cancel <-chan struct{}
}

// cancelled reports whether the sweep's Cancel channel has been closed.
func (s Sweep) cancelled() bool {
	if s.Cancel == nil {
		return false
	}
	select {
	case <-s.Cancel:
		return true
	default:
		return false
	}
}

// Execute runs every point through the worker pool and returns results in
// point order. On failure it returns the error of the lowest-indexed failing
// point — the same error a serial sweep would surface first — wrapped with
// that point's position and protocol.
func (s Sweep) Execute() ([]Result, error) {
	run := s.Run
	if run == nil {
		run = Run
	}
	// The recovery boundary sits per trial, inside the worker, so sibling
	// trials in the same worker goroutine keep running after a failure is
	// recorded.
	run = Recovered(run)
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.Points) {
		workers = len(s.Points)
	}
	results := make([]Result, len(s.Points))

	if workers <= 1 {
		for i, p := range s.Points {
			if s.cancelled() {
				return nil, ErrCancelled
			}
			if s.OnStart != nil {
				s.OnStart(i)
			}
			r, err := run(p)
			if err != nil {
				return nil, fmt.Errorf("sweep point %d (%v): %w", i, p.Protocol, err)
			}
			results[i] = r
			if s.OnPoint != nil {
				if err := s.OnPoint(i, p, r); err != nil {
					return nil, err
				}
			}
		}
		return results, nil
	}

	var (
		next   atomic.Int64 // next unclaimed point index
		failed atomic.Bool  // stop claiming new points after any failure
		wg     sync.WaitGroup
		mu     sync.Mutex
		cbMu   sync.Mutex // serializes OnPoint invocations
		errIdx = -1
		first  error
		cbErr  error // first OnPoint error (point errors take precedence)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() && !s.cancelled() {
				i := int(next.Add(1)) - 1
				if i >= len(s.Points) {
					return
				}
				if s.OnStart != nil {
					s.OnStart(i)
				}
				r, err := run(s.Points[i])
				if err != nil {
					// Points are claimed in ascending order, so every point
					// below i is finished or in flight when we set failed:
					// the lowest failing index still wins, as serial would.
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx = i
						first = fmt.Errorf("sweep point %d (%v): %w", i, s.Points[i].Protocol, err)
					}
					mu.Unlock()
					continue
				}
				results[i] = r
				if s.OnPoint != nil {
					cbMu.Lock()
					err := s.OnPoint(i, s.Points[i], r)
					cbMu.Unlock()
					if err != nil {
						failed.Store(true)
						mu.Lock()
						if cbErr == nil {
							cbErr = err
						}
						mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	if cbErr != nil {
		return nil, cbErr
	}
	if s.cancelled() && int(next.Load()) < len(s.Points) {
		return nil, ErrCancelled
	}
	return results, nil
}
