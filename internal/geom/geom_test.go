package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Dist=%v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Fatalf("Dist2=%v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryAndTriangleProperty(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		// Triangle inequality with tolerance for float error.
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewFieldForDensity(t *testing.T) {
	r := NewFieldForDensity(100, 0.04)
	if math.Abs(r.Area()-100/0.04) > 1e-6 {
		t.Fatalf("area=%v, want %v", r.Area(), 100/0.04)
	}
	if math.Abs(r.Width()-r.Height()) > 1e-9 {
		t.Fatal("field should be square")
	}
	if got := NewFieldForDensity(0, 0.04); got.Area() != 0 {
		t.Fatal("degenerate inputs should return empty field")
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 10}}
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Fatal("Contains rejected interior/boundary points")
	}
	if r.Contains(Point{-1, 5}) || r.Contains(Point{5, 11}) {
		t.Fatal("Contains accepted exterior points")
	}
	got := r.Clamp(Point{-3, 15})
	if got != (Point{0, 10}) {
		t.Fatalf("Clamp=%v, want (0,10)", got)
	}
	if in := (Point{3, 4}); r.Clamp(in) != in {
		t.Fatal("Clamp moved an interior point")
	}
}

func TestGridPlacement(t *testing.T) {
	pts := GridPlacement(9, 10)
	if len(pts) != 9 {
		t.Fatalf("len=%d, want 9", len(pts))
	}
	if pts[0] != (Point{0, 0}) || pts[4] != (Point{10, 10}) || pts[8] != (Point{20, 20}) {
		t.Fatalf("unexpected grid: %v", pts)
	}
	// Non-perfect square: 5 nodes on a 3-wide grid.
	pts = GridPlacement(5, 1)
	if pts[3] != (Point{0, 1}) || pts[4] != (Point{1, 1}) {
		t.Fatalf("partial row misplaced: %v", pts)
	}
	if GridPlacement(0, 1) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestGridPlacementUniqueness(t *testing.T) {
	pts := GridPlacement(169, 5)
	seen := make(map[Point]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestGridSide(t *testing.T) {
	tests := []struct{ n, want int }{{0, 0}, {1, 1}, {4, 2}, {5, 3}, {9, 3}, {169, 13}, {170, 14}}
	for _, tt := range tests {
		if got := GridSide(tt.n); got != tt.want {
			t.Fatalf("GridSide(%d)=%d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestUniformPlacementInBounds(t *testing.T) {
	r := Rect{Min: Point{10, 20}, Max: Point{30, 50}}
	src := rand.New(rand.NewSource(1))
	pts := UniformPlacement(500, r, src.Float64)
	if len(pts) != 500 {
		t.Fatalf("len=%d, want 500", len(pts))
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %v outside field %v", p, r)
		}
	}
}

func TestChainPlacement(t *testing.T) {
	pts := ChainPlacement(4, 2.5)
	want := []Point{{0, 0}, {2.5, 0}, {5, 0}, {7.5, 0}}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("chain[%d]=%v, want %v", i, pts[i], want[i])
		}
	}
}
