package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Dist=%v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Fatalf("Dist2=%v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryAndTriangleProperty(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		// Triangle inequality with tolerance for float error.
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewFieldForDensity(t *testing.T) {
	r := NewFieldForDensity(100, 0.04)
	if math.Abs(r.Area()-100/0.04) > 1e-6 {
		t.Fatalf("area=%v, want %v", r.Area(), 100/0.04)
	}
	if math.Abs(r.Width()-r.Height()) > 1e-9 {
		t.Fatal("field should be square")
	}
	if got := NewFieldForDensity(0, 0.04); got.Area() != 0 {
		t.Fatal("degenerate inputs should return empty field")
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 10}}
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Fatal("Contains rejected interior/boundary points")
	}
	if r.Contains(Point{-1, 5}) || r.Contains(Point{5, 11}) {
		t.Fatal("Contains accepted exterior points")
	}
	got := r.Clamp(Point{-3, 15})
	if got != (Point{0, 10}) {
		t.Fatalf("Clamp=%v, want (0,10)", got)
	}
	if in := (Point{3, 4}); r.Clamp(in) != in {
		t.Fatal("Clamp moved an interior point")
	}
}

func TestGridPlacement(t *testing.T) {
	pts := GridPlacement(9, 10)
	if len(pts) != 9 {
		t.Fatalf("len=%d, want 9", len(pts))
	}
	if pts[0] != (Point{0, 0}) || pts[4] != (Point{10, 10}) || pts[8] != (Point{20, 20}) {
		t.Fatalf("unexpected grid: %v", pts)
	}
	// Non-perfect square: 5 nodes on a 3-wide grid.
	pts = GridPlacement(5, 1)
	if pts[3] != (Point{0, 1}) || pts[4] != (Point{1, 1}) {
		t.Fatalf("partial row misplaced: %v", pts)
	}
	if GridPlacement(0, 1) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestGridPlacementUniqueness(t *testing.T) {
	pts := GridPlacement(169, 5)
	seen := make(map[Point]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestGridSide(t *testing.T) {
	tests := []struct{ n, want int }{{0, 0}, {1, 1}, {4, 2}, {5, 3}, {9, 3}, {169, 13}, {170, 14}}
	for _, tt := range tests {
		if got := GridSide(tt.n); got != tt.want {
			t.Fatalf("GridSide(%d)=%d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestUniformPlacementInBounds(t *testing.T) {
	r := Rect{Min: Point{10, 20}, Max: Point{30, 50}}
	src := rand.New(rand.NewSource(1))
	pts := UniformPlacement(500, r, src.Float64)
	if len(pts) != 500 {
		t.Fatalf("len=%d, want 500", len(pts))
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %v outside field %v", p, r)
		}
	}
}

func TestChainPlacement(t *testing.T) {
	pts := ChainPlacement(4, 2.5)
	want := []Point{{0, 0}, {2.5, 0}, {5, 0}, {7.5, 0}}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("chain[%d]=%v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCellGridDimensions(t *testing.T) {
	tests := []struct {
		name       string
		bounds     Rect
		minCell    float64
		maxPerAxis int
		cols, rows int
	}{
		{"exact fit", Rect{Max: Point{60, 60}}, 20, 0, 3, 3},
		{"partial cells absorb", Rect{Max: Point{65, 65}}, 20, 0, 3, 3},
		{"cell bigger than field", Rect{Max: Point{60, 60}}, 91.44, 0, 1, 1},
		{"degenerate height (chain)", Rect{Max: Point{100, 0}}, 10, 0, 10, 1},
		{"empty rect", Rect{}, 10, 0, 1, 1},
		{"non-positive cell", Rect{Max: Point{60, 60}}, 0, 0, 1, 1},
		{"per-axis cap", Rect{Max: Point{1000, 1000}}, 1, 64, 64, 64},
	}
	for _, tt := range tests {
		g := NewCellGrid(tt.bounds, tt.minCell, tt.maxPerAxis)
		if g.Cols() != tt.cols || g.Rows() != tt.rows {
			t.Fatalf("%s: %dx%d cells, want %dx%d", tt.name, g.Cols(), g.Rows(), tt.cols, tt.rows)
		}
		if g.NumCells() != tt.cols*tt.rows {
			t.Fatalf("%s: NumCells=%d, want %d", tt.name, g.NumCells(), tt.cols*tt.rows)
		}
	}
}

// TestCellGridCellSizeInvariant checks the property the spatial index
// relies on: every cell spans at least minCell in both axes, so any two
// points within minCell of each other are at most one cell apart.
func TestCellGridCellSizeInvariant(t *testing.T) {
	bounds := Rect{Min: Point{3, 7}, Max: Point{130, 55}}
	const minCell = 11.0
	g := NewCellGrid(bounds, minCell, 0)
	if w := bounds.Width() / float64(g.Cols()); w < minCell {
		t.Fatalf("cell width %v < minCell %v", w, minCell)
	}
	if h := bounds.Height() / float64(g.Rows()); h < minCell {
		t.Fatalf("cell height %v < minCell %v", h, minCell)
	}
	src := rand.New(rand.NewSource(2))
	randPt := func() Point {
		return Point{
			X: bounds.Min.X + bounds.Width()*src.Float64(),
			Y: bounds.Min.Y + bounds.Height()*src.Float64(),
		}
	}
	for i := 0; i < 2000; i++ {
		p := randPt()
		q := Point{X: p.X + (src.Float64()*2-1)*minCell, Y: p.Y + (src.Float64()*2-1)*minCell}
		if !bounds.Contains(q) || p.Dist(q) > minCell {
			continue
		}
		px, py := g.CellOf(p)
		qx, qy := g.CellOf(q)
		if dx := px - qx; dx < -1 || dx > 1 {
			t.Fatalf("points %v,%v within %v are %d columns apart", p, q, minCell, dx)
		}
		if dy := py - qy; dy < -1 || dy > 1 {
			t.Fatalf("points %v,%v within %v are %d rows apart", p, q, minCell, dy)
		}
	}
}

func TestCellGridClampsOutOfBounds(t *testing.T) {
	g := NewCellGrid(Rect{Max: Point{60, 60}}, 20, 0)
	for _, p := range []Point{{-5, -5}, {100, 30}, {30, 100}, {1e18, -1e18}} {
		cx, cy := g.CellOf(p)
		if cx < 0 || cx >= g.Cols() || cy < 0 || cy >= g.Rows() {
			t.Fatalf("CellOf(%v) = (%d,%d) outside grid %dx%d", p, cx, cy, g.Cols(), g.Rows())
		}
	}
	// Index covers the full row-major range.
	seen := map[int]bool{}
	for cy := 0; cy < g.Rows(); cy++ {
		for cx := 0; cx < g.Cols(); cx++ {
			idx := g.Index(cx, cy)
			if idx < 0 || idx >= g.NumCells() || seen[idx] {
				t.Fatalf("Index(%d,%d)=%d invalid or duplicate", cx, cy, idx)
			}
			seen[idx] = true
		}
	}
}
