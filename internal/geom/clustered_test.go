package geom

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestClusteredPlacementBasics(t *testing.T) {
	r := Rect{Max: Point{X: 50, Y: 50}}
	pts := ClusteredPlacement(40, 4, 2, r, sim.NewRNG(1).Float64)
	if len(pts) != 40 {
		t.Fatalf("got %d points, want 40", len(pts))
	}
	for i, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %d = %v outside %+v", i, p, r)
		}
	}
}

func TestClusteredPlacementDegenerateCounts(t *testing.T) {
	r := Rect{Max: Point{X: 10, Y: 10}}
	if pts := ClusteredPlacement(0, 3, 1, r, sim.NewRNG(1).Float64); pts != nil {
		t.Fatalf("n=0 returned %d points", len(pts))
	}
	if pts := ClusteredPlacement(5, 0, 1, r, sim.NewRNG(1).Float64); pts != nil {
		t.Fatalf("k=0 returned %d points", len(pts))
	}
	// More clusters than nodes: k clamps to n, one node per blob.
	if pts := ClusteredPlacement(3, 10, 1, r, sim.NewRNG(1).Float64); len(pts) != 3 {
		t.Fatalf("k>n returned %d points, want 3", len(pts))
	}
}

func TestClusteredPlacementDeterminism(t *testing.T) {
	r := Rect{Max: Point{X: 30, Y: 30}}
	a := ClusteredPlacement(20, 3, 1.5, r, sim.NewRNG(9).Float64)
	b := ClusteredPlacement(20, 3, 1.5, r, sim.NewRNG(9).Float64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestClusteredPlacementTightBlob pins the shape property: with one center
// and a tiny sigma, every node lands within a few sigma of the center, so
// the layout is a genuine blob, not uniform scatter.
func TestClusteredPlacementTightBlob(t *testing.T) {
	r := Rect{Max: Point{X: 1000, Y: 1000}}
	const sigma = 1.0
	pts := ClusteredPlacement(200, 1, sigma, r, sim.NewRNG(5).Float64)
	// The center is the blob's mean in expectation; use the sample mean.
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	for i, p := range pts {
		if d := p.Dist(Point{X: cx, Y: cy}); d > 6*sigma {
			t.Fatalf("point %d is %v m from the blob mean; want within 6 sigma = %v", i, d, 6*sigma)
		}
	}
	// And the blob must occupy a vanishing part of the 1 km field.
	if cx < 0 || cx > 1000 || cy < 0 || cy > 1000 {
		t.Fatalf("blob mean (%v, %v) outside the field", cx, cy)
	}
}

// TestClusteredPlacementSpreadScales checks that sigma actually controls
// dispersion: the mean distance to the assigned center grows with sigma.
func TestClusteredPlacementSpreadScales(t *testing.T) {
	r := Rect{Max: Point{X: 10000, Y: 10000}}
	spread := func(sigma float64) float64 {
		pts := ClusteredPlacement(300, 1, sigma, r, sim.NewRNG(4).Float64)
		var cx, cy float64
		for _, p := range pts {
			cx += p.X
			cy += p.Y
		}
		cx /= float64(len(pts))
		cy /= float64(len(pts))
		total := 0.0
		for _, p := range pts {
			total += p.Dist(Point{X: cx, Y: cy})
		}
		return total / float64(len(pts))
	}
	narrow, wide := spread(1), spread(10)
	// Rayleigh mean distance is sigma·sqrt(pi/2); a 10× sigma should land
	// near 10× the dispersion (same seed, same variates).
	if ratio := wide / narrow; math.Abs(ratio-10) > 2 {
		t.Fatalf("spread ratio %v for 10x sigma, want ≈10", ratio)
	}
}
