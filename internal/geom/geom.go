// Package geom provides the 2-D geometry primitives used by the sensor-field
// model: points, distances, and the standard node placements — grid and
// uniform random (the paper's "uniform density of nodes" assumption), the
// §4 analytic chain, and clustered Gaussian blobs.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the sensor field, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance in meters between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance, for comparisons that do not
// need the square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// String formats the point for diagnostics.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, used as the sensor-field boundary.
type Rect struct {
	Min, Max Point
}

// NewFieldForDensity returns a square field sized so that n nodes give the
// requested density (nodes per square meter). The paper keeps density
// uniform: "as the number of nodes increases, the sensor field area
// increases" (§5).
func NewFieldForDensity(n int, density float64) Rect {
	if n <= 0 || density <= 0 {
		return Rect{}
	}
	side := math.Sqrt(float64(n) / density)
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in the rectangle (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// UniformPoint draws one uniform random point in the rectangle. The rand
// function must return variates in [0,1) (pass rng.Float64); X is drawn
// before Y, the order every caller has always used — relocation, uniform
// placement, waypoint destinations, burst epicenters — so the shared
// helper preserves their historical variate sequences.
func (r Rect) UniformPoint(rand func() float64) Point {
	return Point{
		X: r.Min.X + r.Width()*rand(),
		Y: r.Min.Y + r.Height()*rand(),
	}
}

// CellGrid partitions a Rect into a uniform grid of equally sized cells,
// each at least minCell wide and tall. It is the geometric substrate of the
// topology layer's spatial index: because every cell spans at least minCell
// in both axes, all points within minCell of a query point lie in the 3×3
// cell neighborhood around it. A degenerate axis (zero width or height, as
// in a chain field) collapses to a single row or column.
type CellGrid struct {
	min        Point
	cols, rows int
	invW, invH float64 // cells per meter; 0 on a degenerate axis
}

// NewCellGrid builds the cell decomposition of bounds. minCell <= 0 yields a
// single cell, as does a bounds whose extent is smaller than minCell.
// maxPerAxis caps the cell count per axis (<= 0 means no cap); the spatial
// index uses it to bound bucket memory on sparse fields.
func NewCellGrid(bounds Rect, minCell float64, maxPerAxis int) CellGrid {
	axis := func(extent float64) (int, float64) {
		n := 1
		if minCell > 0 && extent > minCell {
			n = int(extent / minCell)
		}
		if maxPerAxis > 0 && n > maxPerAxis {
			n = maxPerAxis
		}
		if n < 1 {
			n = 1
		}
		if extent <= 0 {
			return 1, 0
		}
		return n, float64(n) / extent
	}
	g := CellGrid{min: bounds.Min}
	g.cols, g.invW = axis(bounds.Width())
	g.rows, g.invH = axis(bounds.Height())
	return g
}

// MaxCellsForCount returns the per-axis cell cap for a grid indexing count
// points: enough axis resolution that the grid never degenerates at scale,
// while bounding total bucket memory to O(count).
//
// A fixed cap (the spatial index's original 64 per axis) makes cells grow
// with the field once the extent exceeds cap·minCell, so each 3×3-cell
// neighbor query scans an ever-larger superset of the true neighborhood —
// O(N/cap²) per query instead of O(degree). Capping at ~2·√count instead
// keeps at most ~4·count total cells (constant memory per point) and, on a
// roughly uniform field, at least ~¼ point per cell — queries stay
// O(degree) from 10³ to 10⁶ points. The 64 floor preserves the historical
// cap for small fields, where it never binds.
func MaxCellsForCount(count int) int {
	cap := 64
	if count > 0 {
		if byDensity := int(math.Ceil(2 * math.Sqrt(float64(count)))); byDensity > cap {
			cap = byDensity
		}
	}
	return cap
}

// Cols returns the number of cell columns.
func (g CellGrid) Cols() int { return g.cols }

// Rows returns the number of cell rows.
func (g CellGrid) Rows() int { return g.rows }

// NumCells returns the total cell count.
func (g CellGrid) NumCells() int { return g.cols * g.rows }

// CellOf returns the cell coordinates containing p, clamped to the grid, so
// out-of-bounds points map to the nearest boundary cell.
func (g CellGrid) CellOf(p Point) (cx, cy int) {
	clamp := func(v float64, n int) int {
		i := int(v)
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	cx = clamp((p.X-g.min.X)*g.invW, g.cols)
	cy = clamp((p.Y-g.min.Y)*g.invH, g.rows)
	return cx, cy
}

// Index flattens cell coordinates row-major into [0, NumCells).
func (g CellGrid) Index(cx, cy int) int { return cy*g.cols + cx }

// GridPlacement places n nodes on a square grid with the given spacing in
// meters, row-major from the origin. If n is not a perfect square the last
// row is partial. This mirrors the paper's analytic setup of "a uniform
// density of nodes on the grid".
func GridPlacement(n int, spacing float64) []Point {
	if n <= 0 {
		return nil
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		pts = append(pts, Point{X: float64(col) * spacing, Y: float64(row) * spacing})
	}
	return pts
}

// GridSide returns the number of columns GridPlacement uses for n nodes.
func GridSide(n int) int {
	if n <= 0 {
		return 0
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// UniformPlacement places n nodes uniformly at random in r. The rand
// function must return variates in [0,1) (pass rng.Float64).
func UniformPlacement(n int, r Rect, rand func() float64) []Point {
	if n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, r.UniformPoint(rand))
	}
	return pts
}

// ClusteredPlacement places n nodes as Gaussian blobs around k cluster
// centers: the centers are drawn uniformly in r, then nodes are assigned
// to centers round-robin (so blob populations differ by at most one) and
// scattered around their center with independent N(0, sigma²) offsets per
// axis, clamped into r. The rand function must return variates in [0,1)
// (pass rng.Float64); all normal variates derive from it via Box-Muller,
// so a seed fully determines the layout.
func ClusteredPlacement(n, k int, sigma float64, r Rect, rand func() float64) []Point {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	centers := UniformPlacement(k, r, rand)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%k]
		dx, dy := gaussianPair(rand)
		pts = append(pts, r.Clamp(Point{X: c.X + sigma*dx, Y: c.Y + sigma*dy}))
	}
	return pts
}

// gaussianPair returns two independent standard normal variates via the
// Box-Muller transform.
func gaussianPair(rand func() float64) (float64, float64) {
	// 1-u keeps the log argument in (0,1]; u itself can be exactly 0.
	m := math.Sqrt(-2 * math.Log(1-rand()))
	theta := 2 * math.Pi * rand()
	return m * math.Cos(theta), m * math.Sin(theta)
}

// ChainPlacement places n nodes on a straight line with the given spacing,
// the topology of the paper's §4 analytical model (k equally spaced relays).
func ChainPlacement(n int, spacing float64) []Point {
	if n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{X: float64(i) * spacing, Y: 0})
	}
	return pts
}
