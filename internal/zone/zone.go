// Package zone is the deterministic intra-simulation parallelism substrate:
// a fork-join parallel-for over contiguous index ranges ("zones") of a
// shared array. It exists so the simulation's data-parallel kernels —
// neighbor-cache warmup, DBF rounds, route derivation, graph building — can
// use every core while preserving the repository's byte-identical-output
// contract (DESIGN.md §10).
//
// The determinism argument is structural, not scheduling-based: a kernel
// run under For must write only to slots of its own index range (disjoint
// writes) and read only state that no worker writes (frozen inputs, or
// double-buffered previous-generation state). Under that contract the
// result of For is the same for every worker count, including 1, because
// each slot's value is a pure function of frozen inputs — the workers
// merely race to finish, never to write. Cross-zone reductions (float
// sums, counters) stay with the caller, in index order, after For returns.
//
// The event kernel itself (internal/sim) remains single-threaded: handlers
// mutate shared protocol state and draw from one RNG stream, so their order
// is the output. Parallelism lives in the side computations between events,
// which is where the cycles are at scale.
package zone

import (
	"sync"
)

// MaxWorkers bounds a single For call's goroutine count; a backstop against
// nonsense inputs, far above any useful parallelism.
const MaxWorkers = 256

// Workers normalizes a requested worker count: values below 1 mean 1
// (serial); values above MaxWorkers are capped. The count is deliberately
// NOT clamped to the core count: the kernels run identically (and the
// determinism suite verifies output at worker counts above GOMAXPROCS),
// so oversubscription costs only scheduling overhead — and clamping would
// silently serialize on small machines, hiding concurrency bugs from the
// race detector.
func Workers(requested int) int {
	if requested < 1 {
		return 1
	}
	if requested > MaxWorkers {
		return MaxWorkers
	}
	return requested
}

// For partitions [0, n) into one contiguous range per worker and runs
// fn(worker, lo, hi) concurrently on each. fn must honor the disjoint-write
// contract above; the worker index selects per-worker scratch state. With
// workers <= 1 (or n smaller than a useful split) fn runs inline on the
// caller's goroutine — the serial path has zero synchronization cost.
//
// Ranges are split evenly (sizes differ by at most one, earlier ranges
// larger), so the partition — and therefore which worker computes which
// slot — is a pure function of (n, workers). For returns after every
// worker finishes: the caller observes a full barrier.
func For(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}
