package zone

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	if got := Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(MaxWorkers + 100); got != MaxWorkers {
		t.Fatalf("Workers(MaxWorkers+100) = %d, want %d", got, MaxWorkers)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d, want 1", got)
	}
	// Worker counts above the core count pass through unclamped: concurrency
	// (and with it the determinism contract) must be exercisable on any
	// machine, including single-core CI runners.
	if over := runtime.GOMAXPROCS(0) + 3; Workers(over) != over {
		t.Fatalf("Workers(%d) = %d, want %d (no GOMAXPROCS clamp)", over, Workers(over), over)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {2, 10}, {3, 10}, {4, 7}, {7, 4}, {4, 100}, {2, 1},
	} {
		counts := make([]int32, tc.n)
		For(tc.workers, tc.n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d n=%d: index %d visited %d times", tc.workers, tc.n, i, c)
			}
		}
	}
}

func TestForPartitionIsDeterministic(t *testing.T) {
	// The partition must be a pure function of (n, workers): even sizes,
	// earlier ranges larger, contiguous, ascending worker index.
	type r struct{ w, lo, hi int }
	collect := func() []r {
		var mu [16]r // worker index is the slot; no locking needed
		For(4, 10, func(w, lo, hi int) { mu[w] = r{w, lo, hi} })
		return mu[:4]
	}
	a, b := collect(), collect()
	want := []r{{0, 0, 3}, {1, 3, 6}, {2, 6, 8}, {3, 8, 10}}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("partition run1=%v run2=%v, want %v", a, b, want)
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	// workers==1 must execute on the calling goroutine (no synchronization),
	// observable as strictly sequential side effects without atomics.
	sum := 0
	For(1, 100, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			//repolint:allow zonewrite workers==1 runs the kernel inline on the calling goroutine; the unsynchronized shared write is exactly what this test observes
			sum += i
		}
	})
	if sum != 4950 {
		t.Fatalf("serial sum = %d, want 4950", sum)
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	called := false
	For(4, 0, func(_, _, _ int) { called = true }) //repolint:allow zonewrite n==0 means the kernel must never run; the write exists to detect an erroneous invocation
	if called {
		t.Fatal("For with n=0 invoked the body")
	}
	// n < workers: at most n workers, each with a single index.
	var total int32
	For(8, 3, func(_, lo, hi int) {
		if hi-lo != 1 {
			t.Errorf("range [%d,%d) not a single index", lo, hi)
		}
		atomic.AddInt32(&total, int32(hi-lo))
	})
	if total != 3 {
		t.Fatalf("covered %d indices, want 3", total)
	}
}
