// cache.go is the content-addressed result cache: canonical scenario hash
// → finished replicate vector, one JSON file per hash. Because the key is
// the hash of the fully-defaulted scenario (replications included), any
// campaign whose grid contains an equivalent point — a re-run of a golden
// campaign, an overlapping sweep, a resumed shard — reuses the finished
// result instead of resimulating it, across processes and across
// campaigns. Entries are published atomically (temp file + rename), so
// concurrent campaigns sharing a cache directory can only ever observe
// complete entries.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiment"
)

// Cache is a directory of content-addressed finished points.
type Cache struct {
	dir string
}

// cacheEntry is the stored form of one finished point. The hash is
// repeated inside the file so an entry is self-describing and a mangled
// filename cannot silently serve the wrong results.
type cacheEntry struct {
	Hash    string              `json:"scenarioHash"`
	Results []experiment.Result `json:"results"`
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// entryPath maps a hash to its file, rejecting anything that is not a
// plain lowercase-hex name (the hash is used as a path component; this
// keeps a corrupted caller from escaping the cache directory).
func (c *Cache) entryPath(hash string) (string, error) {
	if len(hash) != 64 {
		return "", fmt.Errorf("checkpoint: cache key %q is not a sha256 hex digest", hash)
	}
	for _, ch := range hash {
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return "", fmt.Errorf("checkpoint: cache key %q is not a sha256 hex digest", hash)
		}
	}
	return filepath.Join(c.dir, hash+".json"), nil
}

// Get returns the cached replicate vector for hash, if present. A missing
// entry is an ordinary miss. A present-but-unreadable entry (torn by an
// ancient crash, hand-edited, wrong self-described hash) is also treated
// as a miss — the cache's contract is "may remember, never lies", and a
// subsequent Put overwrites the damage — but genuine I/O errors surface.
func (c *Cache) Get(hash string) ([]experiment.Result, bool, error) {
	path, err := c.entryPath(hash)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("checkpoint: cache read: %w", err)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Hash != hash || len(e.Results) == 0 {
		return nil, false, nil
	}
	return e.Results, true, nil
}

// Put durably stores the replicate vector for hash, atomically replacing
// any previous entry.
func (c *Cache) Put(hash string, results []experiment.Result) error {
	path, err := c.entryPath(hash)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("checkpoint: refusing to cache empty replicate vector for %s", hash)
	}
	data, err := json.Marshal(&cacheEntry{Hash: hash, Results: results})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal cache entry: %w", err)
	}
	if err := WriteFileAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("checkpoint: cache write: %w", err)
	}
	return nil
}
