package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

func rec(i int, hash string, energies ...float64) Record {
	rs := make([]experiment.Result, len(energies))
	for j, e := range energies {
		rs[j] = experiment.Result{TotalEnergy: e, Items: i}
	}
	return Record{Index: i, Hash: hash, Results: rs}
}

const hashA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
const hashB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"

// TestJournalRoundTrip appends records, reopens, and replays them intact.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, false)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	want := []Record{rec(2, hashA, 10, 20), rec(0, hashB, 5)}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, err := LoadJournal(dir)
	if err != nil {
		t.Fatalf("LoadJournal: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].Hash != want[i].Hash || len(got[i].Results) != len(want[i].Results) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
		for r := range want[i].Results {
			if got[i].Results[r] != want[i].Results[r] {
				t.Fatalf("record %d replicate %d = %+v, want %+v", i, r, got[i].Results[r], want[i].Results[r])
			}
		}
	}
}

// TestJournalMissingIsEmpty: resuming against a directory with no journal
// (or no directory at all) is an empty history, not an error.
func TestJournalMissingIsEmpty(t *testing.T) {
	recs, err := LoadJournal(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || recs != nil {
		t.Fatalf("LoadJournal(missing) = %v, %v; want nil, nil", recs, err)
	}
}

// TestJournalTruncatedTailDiscarded: a SIGKILL between write and sync can
// leave a partial final line; replay must keep every complete record and
// drop only the torn tail.
func TestJournalTruncatedTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, false)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec(i, hashA, float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	data, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	// Simulate the crash: keep the first two full lines plus a torn prefix
	// of the third.
	lines := strings.SplitAfter(string(data), "\n")
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(JournalPath(dir), []byte(torn), 0o644); err != nil {
		t.Fatalf("write torn journal: %v", err)
	}

	recs, err := LoadJournal(dir)
	if err != nil {
		t.Fatalf("LoadJournal(torn): %v", err)
	}
	if len(recs) != 2 || recs[0].Index != 0 || recs[1].Index != 1 {
		t.Fatalf("torn journal replayed %+v, want records 0 and 1", recs)
	}
}

// TestJournalMidFileCorruptionFails: garbage that is NOT the final line
// cannot be crash residue — replay must refuse it rather than silently
// dropping completed work.
func TestJournalMidFileCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir, false)
	j.Append(rec(0, hashA, 1))
	j.Append(rec(1, hashA, 2))
	j.Close()

	data, _ := os.ReadFile(JournalPath(dir))
	lines := strings.SplitAfter(string(data), "\n")
	corrupt := lines[0][:len(lines[0])/2] + "\n" + lines[1]
	os.WriteFile(JournalPath(dir), []byte(corrupt), 0o644)

	if _, err := LoadJournal(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("LoadJournal(mid-file corruption) err = %v, want corruption error", err)
	}
}

// TestJournalResumeAppends: reopening with resume=true preserves prior
// records and appends after them; resume=false truncates.
func TestJournalResumeAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir, false)
	j.Append(rec(0, hashA, 1))
	j.Close()

	j2, err := OpenJournal(dir, true)
	if err != nil {
		t.Fatalf("OpenJournal(resume): %v", err)
	}
	j2.Append(rec(1, hashB, 2))
	j2.Close()

	recs, err := LoadJournal(dir)
	if err != nil {
		t.Fatalf("LoadJournal: %v", err)
	}
	if len(recs) != 2 || recs[0].Index != 0 || recs[1].Index != 1 {
		t.Fatalf("resume-append replayed %+v, want records 0 then 1", recs)
	}

	j3, _ := OpenJournal(dir, false)
	j3.Close()
	recs, err = LoadJournal(dir)
	if err != nil || len(recs) != 0 {
		t.Fatalf("fresh open left %d records (err %v), want truncated empty journal", len(recs), err)
	}
}
