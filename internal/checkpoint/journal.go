// Package checkpoint is the durability layer under long-running campaigns
// (DESIGN.md §13): a write-ahead point journal that makes a killed run
// resumable, and a content-addressed result cache that makes finished
// points reusable across campaigns. Both key on the canonical scenario
// hash (experiment.ScenarioHash), so a journal or cache entry can never be
// replayed into a campaign it does not belong to.
//
// The package sits in the deterministic set for repolint purposes —
// everything it writes is a pure function of finished results — but its
// job is durability, and durability barriers (fsync) are inherently
// wall-clock I/O; those sites carry reasoned //repolint:allow annotations
// rather than a package-wide exemption.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiment"
)

// Record is one journaled point completion: the point's position in the
// expanded grid, the canonical hash of its (defaulted) scenario, and the
// full replicate vector. One JSONL line per record; the hash lets resume
// verify each record against the grid it is being replayed into.
type Record struct {
	Index   int                 `json:"index"`
	Hash    string              `json:"scenarioHash"`
	Results []experiment.Result `json:"results"`
}

// journalName is the journal file inside a checkpoint directory.
const journalName = "journal.jsonl"

// JournalPath returns the journal file path inside a checkpoint directory.
func JournalPath(dir string) string { return filepath.Join(dir, journalName) }

// Journal is an append-only write-ahead log of finished campaign points.
// Every Append is flushed and fsynced before it returns, so a record the
// caller has seen acknowledged survives a SIGKILL — the property that lets
// the campaign runner hand a point to its sinks only after the journal
// holds it.
type Journal struct {
	f *os.File
}

// OpenJournal opens the journal inside dir, creating the directory as
// needed. With resume false any previous journal is truncated — a fresh
// checkpointed run starts a fresh log; with resume true existing records
// are preserved and new ones append after them (the caller replays the old
// records first via LoadJournal).
func OpenJournal(dir string, resume bool) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(JournalPath(dir), flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append durably records one finished point: the record is marshaled to a
// single JSONL line, written in one call, and fsynced before Append
// returns. A crash between write and sync can leave at most a truncated
// final line, which LoadJournal discards.
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal record %d: %w", rec.Index, err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("checkpoint: append record %d: %w", rec.Index, err)
	}
	//repolint:allow detsource the write-ahead contract IS the durability barrier: a record must hit stable storage before sinks may observe its point
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync journal: %w", err)
	}
	return nil
}

// Close releases the journal file. Records are already durable (every
// Append syncs), so Close has nothing left to flush.
func (j *Journal) Close() error {
	return j.f.Close()
}

// LoadJournal replays the journal in dir and returns its records in append
// order. A truncated or otherwise unparseable FINAL line is discarded —
// that is the legal residue of a crash mid-append — but garbage earlier in
// the file is real corruption and fails loudly. A missing journal (or
// missing directory) is an empty history, not an error, so "resume a
// campaign that never checkpointed" degrades to a fresh run.
func LoadJournal(dir string) ([]Record, error) {
	f, err := os.Open(JournalPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	defer f.Close()

	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The bad line had successors, so it was not a crash-truncated
			// tail: surface the corruption.
			return nil, pendingErr
		}
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("checkpoint: journal line %d corrupt: %w", line, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong && pendingErr == nil {
			// An over-long unterminated tail is the same crash residue as a
			// truncated line; everything scanned before it stands.
			return recs, nil
		}
		return nil, fmt.Errorf("checkpoint: read journal: %w", err)
	}
	return recs, nil
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory, fsyncs it, and renames it into place — readers never observe
// a partially-written file, and a crash leaves at most an orphaned
// temporary that later writes overwrite. The cache entries and the
// service daemon's job manifests both publish through it.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	//repolint:allow detsource atomic publication requires the bytes durable before the rename makes them visible
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
