package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestCacheRoundTrip stores and retrieves a replicate vector.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	if _, ok, err := c.Get(hashA); ok || err != nil {
		t.Fatalf("Get(empty) = hit=%v err=%v, want clean miss", ok, err)
	}
	want := []experiment.Result{{TotalEnergy: 1.5, Items: 3}, {TotalEnergy: 2.5, Items: 3}}
	if err := c.Put(hashA, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := c.Get(hashA)
	if err != nil || !ok {
		t.Fatalf("Get = hit=%v err=%v, want hit", ok, err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
	// A different hash stays a miss.
	if _, ok, _ := c.Get(hashB); ok {
		t.Fatal("Get(other hash) hit")
	}
}

// TestCacheRejectsBadKeys: only sha256 hex digests may name entries — the
// key is a path component.
func TestCacheRejectsBadKeys(t *testing.T) {
	c, _ := OpenCache(t.TempDir())
	for _, bad := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64), strings.Repeat("a", 63) + "/"} {
		if err := c.Put(bad, []experiment.Result{{}}); err == nil {
			t.Errorf("Put(%q) accepted a non-digest key", bad)
		}
		if _, _, err := c.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted a non-digest key", bad)
		}
	}
}

// TestCacheCorruptEntryIsMiss: a mangled entry must read as a miss (the
// cache may forget, never lie), and a Put must repair it.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCache(dir)
	if err := os.WriteFile(filepath.Join(dir, hashA+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatalf("plant corrupt entry: %v", err)
	}
	if _, ok, err := c.Get(hashA); ok || err != nil {
		t.Fatalf("Get(corrupt) = hit=%v err=%v, want clean miss", ok, err)
	}
	// An entry whose self-described hash disagrees with its filename is a
	// lie, not a cache entry.
	wrong := `{"scenarioHash":"` + hashB + `","results":[{"totalEnergy":1}]}`
	os.WriteFile(filepath.Join(dir, hashA+".json"), []byte(wrong), 0o644)
	if _, ok, _ := c.Get(hashA); ok {
		t.Fatal("Get served an entry whose self-described hash mismatches")
	}
	if err := c.Put(hashA, []experiment.Result{{TotalEnergy: 9}}); err != nil {
		t.Fatalf("Put over corrupt entry: %v", err)
	}
	got, ok, err := c.Get(hashA)
	if err != nil || !ok || got[0].TotalEnergy != 9 {
		t.Fatalf("repaired entry: hit=%v err=%v got=%+v", ok, err, got)
	}
}

// TestCacheAtomicPublish: after a Put, no temporary files remain — entries
// appear atomically or not at all.
func TestCacheAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCache(dir)
	if err := c.Put(hashA, []experiment.Result{{Items: 1}}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != hashA+".json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("cache dir holds %v, want exactly one published entry", names)
	}
}

// TestCacheRefusesEmptyVector: an empty replicate vector can never be a
// finished point.
func TestCacheRefusesEmptyVector(t *testing.T) {
	c, _ := OpenCache(t.TempDir())
	if err := c.Put(hashA, nil); err == nil {
		t.Fatal("Put(nil) accepted")
	}
}
