package routing

import (
	"container/heap"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topo"
)

func gridField(t testing.TB, n int, spacing, zoneRadius float64) *topo.Field {
	t.Helper()
	m, err := radio.ScaledMICA2(zoneRadius)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewGridField(n, spacing, m)
	if err != nil {
		t.Fatalf("NewGridField: %v", err)
	}
	return f
}

// dijkstra is the oracle: single-source shortest path over the same graph.
func dijkstra(g *Graph, src packet.NodeID) []float64 {
	const inf = math.MaxFloat64
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{int(src), 0}}
	for pq.Len() > 0 {
		item, ok := heap.Pop(pq).(distItem)
		if !ok {
			panic("bad heap item")
		}
		if item.d > dist[item.id] {
			continue
		}
		for _, e := range g.Neighbors(packet.NodeID(item.id)) {
			nd := item.d + e.WeightMW
			if nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, distItem{int(e.To), nd})
			}
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = math.Inf(1)
		}
	}
	return dist
}

type distItem struct {
	id int
	d  float64
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func TestBuildGraphSymmetric(t *testing.T) {
	f := gridField(t, 25, 5, 12)
	g := BuildGraph(f)
	if g.N() != 25 {
		t.Fatalf("N=%d, want 25", g.N())
	}
	// Undirected field ⇒ symmetric adjacency with equal weights.
	for i := 0; i < g.N(); i++ {
		for _, e := range g.Neighbors(packet.NodeID(i)) {
			found := false
			for _, back := range g.Neighbors(e.To) {
				if back.To == packet.NodeID(i) {
					found = true
					if back.WeightMW != e.WeightMW {
						t.Fatalf("asymmetric weight %d<->%d", i, e.To)
					}
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no reverse", i, e.To)
			}
		}
	}
}

func TestBuildGraphWeightsAreMinimumPower(t *testing.T) {
	f := gridField(t, 9, 5, 12)
	g := BuildGraph(f)
	m := f.Model()
	for i := 0; i < g.N(); i++ {
		for _, e := range g.Neighbors(packet.NodeID(i)) {
			wantLevel, ok := f.LevelTo(packet.NodeID(i), e.To)
			if !ok {
				t.Fatalf("edge %d->%d beyond range", i, e.To)
			}
			if e.Level != wantLevel || e.WeightMW != m.PowerMW(wantLevel) {
				t.Fatalf("edge %d->%d level=%v w=%v, want %v/%v",
					i, e.To, e.Level, e.WeightMW, wantLevel, m.PowerMW(wantLevel))
			}
		}
	}
}

func TestDBFMatchesDijkstraOnGrid(t *testing.T) {
	f := gridField(t, 49, 5, 15)
	g := BuildGraph(f)
	tbl := Compute(g, 2)
	for src := 0; src < g.N(); src++ {
		oracle := dijkstra(g, packet.NodeID(src))
		for dst := 0; dst < g.N(); dst++ {
			got, ok := tbl.Cost(packet.NodeID(src), packet.NodeID(dst))
			if math.IsInf(oracle[dst], 1) {
				if ok && src != dst {
					t.Fatalf("DBF found route %d->%d, oracle says unreachable", src, dst)
				}
				continue
			}
			if src == dst {
				continue
			}
			if !ok {
				t.Fatalf("DBF missing route %d->%d", src, dst)
			}
			if math.Abs(got-oracle[dst]) > 1e-9 {
				t.Fatalf("cost %d->%d = %v, oracle %v", src, dst, got, oracle[dst])
			}
		}
	}
}

func TestDBFMatchesDijkstraOnRandomFieldsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		m, err := radio.ScaledMICA2(18)
		if err != nil {
			return false
		}
		bounds := geom.Rect{Max: geom.Point{X: 40, Y: 40}}
		f, err := topo.NewUniformField(20, bounds, m, rng)
		if err != nil {
			return false
		}
		g := BuildGraph(f)
		tbl := Compute(g, 2)
		for src := 0; src < g.N(); src++ {
			oracle := dijkstra(g, packet.NodeID(src))
			for dst := 0; dst < g.N(); dst++ {
				if src == dst {
					continue
				}
				got, ok := tbl.Cost(packet.NodeID(src), packet.NodeID(dst))
				if math.IsInf(oracle[dst], 1) != !ok {
					return false
				}
				if ok && math.Abs(got-oracle[dst]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiHopCheaperThanDirect(t *testing.T) {
	// Chain 0-1-2 spaced 5 m with MICA2: direct 0→2 (10 m) needs level 4
	// (0.05 mW); two hops at level 5 cost 2×0.0125 = 0.025 mW. DBF must
	// choose the relay route — the core premise of SPMS.
	m := radio.MICA2()
	f, err := topo.NewChainField(3, 5, m)
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	tbl := Compute(BuildGraph(f), 2)
	cost, ok := tbl.Cost(0, 2)
	if !ok {
		t.Fatal("no route 0->2")
	}
	if math.Abs(cost-0.025) > 1e-9 {
		t.Fatalf("cost 0->2 = %v, want 0.025 (two min-power hops)", cost)
	}
	if hops, _ := tbl.Hops(0, 2); hops != 2 {
		t.Fatalf("hops 0->2 = %d, want 2", hops)
	}
	if next, _ := tbl.NextHop(0, 2); next != 1 {
		t.Fatalf("next hop 0->2 = %d, want 1", next)
	}
}

func TestRoutesDistinctNextHops(t *testing.T) {
	f := gridField(t, 25, 5, 15)
	tbl := Compute(BuildGraph(f), 2)
	for src := 0; src < 25; src++ {
		for dst := 0; dst < 25; dst++ {
			if src == dst {
				continue
			}
			rs := tbl.Routes(packet.NodeID(src), packet.NodeID(dst))
			if len(rs) == 2 && rs[0].NextHop == rs[1].NextHop {
				t.Fatalf("duplicate next hop %d for %d->%d", rs[0].NextHop, src, dst)
			}
			if len(rs) == 2 && rs[1].Cost < rs[0].Cost {
				t.Fatalf("routes out of order for %d->%d: %v", src, dst, rs)
			}
			if len(rs) >= 1 && rs[0].Cost <= 0 {
				t.Fatalf("non-positive primary cost for %d->%d", src, dst)
			}
		}
	}
}

func TestRoutesRespectK(t *testing.T) {
	f := gridField(t, 25, 5, 15)
	g := BuildGraph(f)
	for _, k := range []int{1, 2, 3} {
		tbl := Compute(g, k)
		maxSeen := 0
		for src := 0; src < 25; src++ {
			for dst := 0; dst < 25; dst++ {
				if src == dst {
					continue
				}
				if l := len(tbl.Routes(packet.NodeID(src), packet.NodeID(dst))); l > maxSeen {
					maxSeen = l
				}
			}
		}
		if maxSeen > k {
			t.Fatalf("k=%d but saw %d routes", k, maxSeen)
		}
	}
	// k<1 falls back to the default.
	tbl := Compute(g, 0)
	if got := len(tbl.Routes(0, 24)); got > DefaultAlternatives {
		t.Fatalf("default k exceeded: %d", got)
	}
}

func TestPathFollowsNextHops(t *testing.T) {
	f := gridField(t, 49, 5, 20)
	tbl := Compute(BuildGraph(f), 2)
	for src := 0; src < 49; src += 7 {
		for dst := 0; dst < 49; dst += 5 {
			s, d := packet.NodeID(src), packet.NodeID(dst)
			path := tbl.Path(s, d)
			if src == dst {
				if len(path) != 1 || path[0] != s {
					t.Fatalf("self path = %v", path)
				}
				continue
			}
			if path == nil {
				if _, ok := tbl.Cost(s, d); ok {
					t.Fatalf("Path nil but Cost exists for %d->%d", src, dst)
				}
				continue
			}
			if path[0] != s || path[len(path)-1] != d {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			if hops, _ := tbl.Hops(s, d); len(path)-1 != hops {
				t.Fatalf("path length %d != hops %d for %d->%d", len(path)-1, hops, src, dst)
			}
			// Path cost equals table cost.
			var sum float64
			for i := 0; i+1 < len(path); i++ {
				found := false
				for _, e := range BuildGraph(f).Neighbors(path[i]) {
					if e.To == path[i+1] {
						sum += e.WeightMW
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("path uses nonexistent edge %d->%d", path[i], path[i+1])
				}
			}
			cost, _ := tbl.Cost(s, d)
			if math.Abs(sum-cost) > 1e-9 {
				t.Fatalf("path cost %v != table cost %v for %d->%d", sum, cost, src, dst)
			}
		}
	}
}

func TestSubpathOptimality(t *testing.T) {
	// Every suffix of a shortest path is itself shortest — this is what
	// makes hop-by-hop forwarding by per-node tables consistent.
	f := gridField(t, 36, 5, 18)
	tbl := Compute(BuildGraph(f), 2)
	for src := 0; src < 36; src += 4 {
		for dst := 0; dst < 36; dst += 3 {
			if src == dst {
				continue
			}
			s, d := packet.NodeID(src), packet.NodeID(dst)
			path := tbl.Path(s, d)
			if path == nil {
				continue
			}
			full, _ := tbl.Cost(s, d)
			var consumed float64
			g := BuildGraph(f)
			for i := 1; i < len(path)-1; i++ {
				for _, e := range g.Neighbors(path[i-1]) {
					if e.To == path[i] {
						consumed += e.WeightMW
						break
					}
				}
				rest, ok := tbl.Cost(path[i], d)
				if !ok {
					t.Fatalf("relay %d has no route to %d", path[i], d)
				}
				if math.Abs(consumed+rest-full) > 1e-9 {
					t.Fatalf("suffix from %d not optimal: %v+%v != %v", path[i], consumed, rest, full)
				}
			}
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two nodes 50 m apart with a 12 m zone: unreachable.
	m, err := radio.ScaledMICA2(12)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewChainField(2, 50, m)
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	tbl := Compute(BuildGraph(f), 2)
	if _, ok := tbl.Cost(0, 1); ok {
		t.Fatal("found route across disconnected graph")
	}
	if _, ok := tbl.NextHop(0, 1); ok {
		t.Fatal("NextHop for unreachable destination")
	}
	if p := tbl.Path(0, 1); p != nil {
		t.Fatalf("Path for unreachable destination: %v", p)
	}
	if hops, ok := tbl.Hops(0, 1); ok || hops != 0 {
		t.Fatal("Hops for unreachable destination")
	}
}

func TestConvergenceRoundsBounded(t *testing.T) {
	// DBF converges in O(diameter) rounds: for a 7×7 grid with 1-hop links
	// the hop diameter is 12, so rounds must be ≤ 12 + 2.
	f := gridField(t, 49, 5, 6)
	tbl := Compute(BuildGraph(f), 2)
	if tbl.Rounds() > 14 {
		t.Fatalf("Rounds=%d, want ≤ 14", tbl.Rounds())
	}
	if tbl.Rounds() < 3 {
		t.Fatalf("Rounds=%d suspiciously small", tbl.Rounds())
	}
	if tbl.Broadcasts() < 49 {
		t.Fatalf("Broadcasts=%d, want ≥ one per node", tbl.Broadcasts())
	}
}

func TestNodeBroadcastsSumToTotal(t *testing.T) {
	f := gridField(t, 25, 5, 12)
	tbl := Compute(BuildGraph(f), 2)
	sum := 0
	for i := 0; i < 25; i++ {
		sum += tbl.NodeBroadcasts(packet.NodeID(i))
	}
	if sum != tbl.Broadcasts() {
		t.Fatalf("per-node broadcasts %d != total %d", sum, tbl.Broadcasts())
	}
}

func TestChargeConvergenceEnergy(t *testing.T) {
	f := gridField(t, 25, 5, 12)
	tbl := Compute(BuildGraph(f), 2)
	acct := metrics.NewEnergyAccount(25)
	ChargeConvergenceEnergy(tbl, f, packet.DefaultSizes(), acct)
	if acct.Total() <= 0 {
		t.Fatal("convergence energy must be positive")
	}
	br := acct.TotalBreakdown()
	if br.Tx != 0 || br.Rx != 0 {
		t.Fatal("convergence energy must be charged as Ctrl")
	}
	// Expected tx part: per-node broadcasts × vector-sized CTRL at max
	// power (4 bytes per destination entry, incl. self).
	m := f.Model()
	var wantTx float64
	for i := 0; i < 25; i++ {
		id := packet.NodeID(i)
		bytes := CtrlEntryBytes * (1 + len(f.ZoneNeighbors(id)))
		wantTx += float64(tbl.NodeBroadcasts(id)) * float64(m.TxEnergy(bytes, radio.MaxPower))
	}
	if float64(br.Ctrl) <= wantTx {
		t.Fatal("total ctrl energy should exceed tx-only (receivers charged)")
	}
	// The vector payload must dominate a minimal 2-byte packet's cost.
	minimal := float64(tbl.Broadcasts()) * float64(m.TxEnergy(2, radio.MaxPower))
	if wantTx <= minimal {
		t.Fatal("vector-sized control packets should cost more than 2-byte ones")
	}
}

func TestComputeDeterministic(t *testing.T) {
	f := gridField(t, 36, 5, 15)
	g := BuildGraph(f)
	a, b := Compute(g, 2), Compute(g, 2)
	for src := 0; src < 36; src++ {
		for dst := 0; dst < 36; dst++ {
			if src == dst {
				continue
			}
			ra := a.Routes(packet.NodeID(src), packet.NodeID(dst))
			rb := b.Routes(packet.NodeID(src), packet.NodeID(dst))
			if len(ra) != len(rb) {
				t.Fatalf("route count differs for %d->%d", src, dst)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("route %d differs for %d->%d: %v vs %v", i, src, dst, ra[i], rb[i])
				}
			}
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	f := gridField(t, 4, 5, 12)
	tbl := Compute(BuildGraph(f), 2)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Routes", func() { tbl.Routes(9, 0) }},
		{"Cost", func() { tbl.Cost(0, -1) }},
		{"NodeBroadcasts", func() { tbl.NodeBroadcasts(7) }},
		{"GraphNeighbors", func() { BuildGraph(f).Neighbors(11) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}
