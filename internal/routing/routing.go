// Package routing implements the paper's intra-zone route formation: a
// synchronous Distributed Bellman-Ford (DBF) over the graph whose edge
// weight w(i,j) is the minimum transmit power at which i reaches j. DBF
// "finds the shortest path between any two nodes in the weighted graph"
// (§3.2); keeping n entries per destination tolerates n concurrent relay
// failures — the paper's implementation (and ours, by default) keeps the
// shortest and the second shortest path.
//
// The algorithm is executed as the real distributed protocol would be: in
// rounds, each node whose distance vector changed broadcasts it to its zone
// neighbors. The number of broadcasts is recorded so the mobility
// experiments (§5.1.3) can charge routing-convergence energy.
package routing

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/topo"
	"repro/internal/zone"
)

// DefaultAlternatives is the number of next-hop entries kept per
// destination: the shortest and second-shortest path (§5.1.2).
const DefaultAlternatives = 2

// Edge is one usable radio link: the lowest-power level that spans it and
// that level's power draw, which is the link's routing weight.
type Edge struct {
	To       packet.NodeID
	WeightMW float64
	Level    radio.Level
}

// Graph is the connectivity snapshot DBF runs on. Rebuild it after nodes
// move.
type Graph struct {
	n   int
	adj [][]Edge
}

// BuildGraph derives the link graph from current node positions: an edge
// exists between every pair of zone neighbors, weighted by the minimum
// power to cross it.
func BuildGraph(f *topo.Field) *Graph {
	return BuildGraphWorkers(f, 1)
}

// BuildGraphWorkers is BuildGraph over up to workers goroutines. The field's
// neighbor caches are warmed first (topo.Field.WarmAll), after which each
// node's adjacency row is a pure function of positions written only by its
// own worker — the graph is identical for every worker count.
func BuildGraphWorkers(f *topo.Field, workers int) *Graph {
	n := f.N()
	g := &Graph{n: n, adj: make([][]Edge, n)}
	m := f.Model()
	f.WarmAll(workers)
	zone.For(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := packet.NodeID(i)
			for _, dst := range f.ZoneNeighbors(src) {
				level, ok := f.LevelTo(src, dst)
				if !ok {
					continue // zone boundary race after a move; skip
				}
				g.adj[i] = append(g.adj[i], Edge{To: dst, WeightMW: m.PowerMW(level), Level: level})
			}
		}
	})
	return g
}

// N returns the number of nodes in the graph.
func (g *Graph) N() int { return g.n }

// Neighbors returns node id's outgoing edges. The slice is owned by the
// graph; callers must not modify it.
func (g *Graph) Neighbors(id packet.NodeID) []Edge {
	if id < 0 || int(id) >= g.n {
		panic(fmt.Sprintf("routing: node id %d out of range [0,%d)", id, g.n))
	}
	return g.adj[id]
}

// Entry is one routing-table row: reach the destination via NextHop at
// total path cost Cost (mW-weighted) in Hops hops.
type Entry struct {
	NextHop packet.NodeID
	Cost    float64
	Hops    int
}

// Tables is the converged output of one DBF execution for every node.
type Tables struct {
	n      int
	k      int
	dist   [][]float64 // dist[i][d]: shortest cost i→d (math.Inf if none)
	hops   [][]int     // hops on the shortest path
	routes [][][]Entry // routes[i][d]: up to k entries, best first

	rounds        int
	broadcasts    int
	perNodeBcasts []int
}

// Compute runs synchronous DBF to convergence and derives k-alternative
// routing tables. k < 1 is treated as DefaultAlternatives.
func Compute(g *Graph, k int) *Tables {
	return ComputeWorkers(g, k, 1)
}

// ComputeWorkers is Compute over up to workers goroutines. The synchronous
// DBF round structure is exactly what makes it parallel-safe: within a
// round every node reads only the previous generation's vectors
// (double-buffered) and writes only its own row, so rows partition across
// workers with no synchronization beyond the round barrier. Each node's row
// is computed by the identical instruction sequence regardless of worker
// count — same float operations in the same order — so the converged tables
// are bit-identical at any worker count. The broadcast accounting (a
// cross-node reduction the mobility experiments charge energy by) stays
// serial in node order between rounds.
func ComputeWorkers(g *Graph, k, workers int) *Tables {
	if k < 1 {
		k = DefaultAlternatives
	}
	n := g.n
	t := &Tables{
		n:             n,
		k:             k,
		dist:          make([][]float64, n),
		hops:          make([][]int, n),
		routes:        make([][][]Entry, n),
		perNodeBcasts: make([]int, n),
	}
	// Round 0: every node announces its initial vector (distance 0 to
	// itself) to its neighbors. The two vector generations are
	// double-buffered and swapped between rounds — the synchronous
	// read-old/write-new update without reallocating O(N²) state per round.
	changed := make([]bool, n)
	next := make([]bool, n)
	newDist := make([][]float64, n)
	newHops := make([][]int, n)
	zone.For(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.dist[i] = make([]float64, n)
			t.hops[i] = make([]int, n)
			for d := 0; d < n; d++ {
				if i == d {
					t.dist[i][d] = 0
				} else {
					t.dist[i][d] = math.Inf(1)
					t.hops[i][d] = -1
				}
			}
			changed[i] = true
			newDist[i] = make([]float64, n)
			newHops[i] = make([]int, n)
		}
	})
	inf := math.Inf(1)
	for {
		anyChanged := false
		for i := range changed {
			if changed[i] {
				anyChanged = true
				t.broadcasts++
				t.perNodeBcasts[i]++
			}
		}
		if !anyChanged {
			break
		}
		t.rounds++

		// Each node recomputes from the vectors its neighbors broadcast
		// this round. Disjoint writes: node i's worker owns next[i],
		// newDist[i], newHops[i] and reads only previous-generation state.
		zone.For(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				next[i] = false
				di, hops := newDist[i], newHops[i]
				copy(di, t.dist[i])
				copy(hops, t.hops[i])
				for _, e := range g.adj[i] {
					if !changed[e.To] {
						continue // that neighbor did not broadcast this round
					}
					dj, hj := t.dist[e.To], t.hops[e.To]
					w := e.WeightMW
					for d := 0; d < n; d++ {
						if i == d || dj[d] == inf {
							continue
						}
						cand := w + dj[d]
						if cand < di[d]-costEpsilon ||
							(approxEqual(cand, di[d]) && 1+hj[d] < hops[d]) {
							di[d] = cand
							hops[d] = 1 + hj[d]
							next[i] = true
						}
					}
				}
			}
		})
		t.dist, newDist = newDist, t.dist
		t.hops, newHops = newHops, t.hops
		changed, next = next, changed
	}

	t.deriveRoutes(g, workers)
	return t
}

// costEpsilon absorbs float error when comparing accumulated link weights.
const costEpsilon = 1e-12

func approxEqual(a, b float64) bool { return math.Abs(a-b) <= costEpsilon }

// deriveRoutes builds the k-alternative tables from converged distances:
// for each (src, dst), the candidate cost via each neighbor j is
// w(src,j) + dist(j,dst); keep the best k with distinct next hops. One
// scratch buffer collects candidates per pair (the comparator's NextHop
// tie-break makes the order total, so the sort result is unique); the kept
// prefix is copied into an arena so the N² route slices cost O(N²·k)
// memory in a handful of allocations instead of one allocation per pair.
//
// Rows partition across workers: each (i, d) entry is a pure function of
// the converged distances, written only by the worker owning row i, with
// per-worker scratch and arena — so the tables are identical at any worker
// count.
func (t *Tables) deriveRoutes(g *Graph, workers int) {
	zone.For(workers, t.n, func(_, lo, hi int) {
		var scratch []Entry
		arena := make([]Entry, 0, t.n*t.k) // grown in whole-row steps as needed
		for i := lo; i < hi; i++ {
			t.routes[i] = make([][]Entry, t.n)
			for d := 0; d < t.n; d++ {
				if i == d {
					continue
				}
				cands := scratch[:0]
				for _, e := range g.adj[i] {
					j := int(e.To)
					if math.IsInf(t.dist[j][d], 1) {
						continue
					}
					cands = append(cands, Entry{
						NextHop: e.To,
						Cost:    e.WeightMW + t.dist[j][d],
						Hops:    1 + t.hops[j][d],
					})
				}
				scratch = cands
				slices.SortFunc(cands, func(a, b Entry) int {
					if !approxEqual(a.Cost, b.Cost) {
						if a.Cost < b.Cost {
							return -1
						}
						return 1
					}
					if a.Hops != b.Hops {
						return a.Hops - b.Hops
					}
					return int(a.NextHop) - int(b.NextHop)
				})
				if len(cands) > t.k {
					cands = cands[:t.k]
				}
				if len(cands) == 0 {
					continue
				}
				if cap(arena)-len(arena) < len(cands) {
					arena = make([]Entry, 0, t.n*t.k)
				}
				start := len(arena)
				arena = append(arena, cands...)
				t.routes[i][d] = arena[start:len(arena):len(arena)]
			}
		}
	})
}

// Rounds returns how many synchronous rounds DBF took to converge.
func (t *Tables) Rounds() int { return t.rounds }

// Broadcasts returns the total number of distance-vector broadcasts, the
// unit of routing-convergence cost.
func (t *Tables) Broadcasts() int { return t.broadcasts }

// NodeBroadcasts returns how many vector broadcasts node id made.
func (t *Tables) NodeBroadcasts(id packet.NodeID) int {
	t.check(id)
	return t.perNodeBcasts[id]
}

func (t *Tables) check(id packet.NodeID) {
	if id < 0 || int(id) >= t.n {
		panic(fmt.Sprintf("routing: node id %d out of range [0,%d)", id, t.n))
	}
}

// Routes returns up to k alternative entries for src→dst, best first.
// The slice is owned by the table; callers must not modify it.
func (t *Tables) Routes(src, dst packet.NodeID) []Entry {
	t.check(src)
	t.check(dst)
	if src == dst {
		return nil
	}
	return t.routes[src][dst]
}

// NextHop returns the primary next hop for src→dst.
func (t *Tables) NextHop(src, dst packet.NodeID) (packet.NodeID, bool) {
	rs := t.Routes(src, dst)
	if len(rs) == 0 {
		return packet.None, false
	}
	return rs[0].NextHop, true
}

// Cost returns the shortest-path cost src→dst in summed milliwatts.
func (t *Tables) Cost(src, dst packet.NodeID) (float64, bool) {
	t.check(src)
	t.check(dst)
	d := t.dist[src][dst]
	if math.IsInf(d, 1) {
		return 0, false
	}
	return d, true
}

// Hops returns the hop count of the shortest path src→dst.
func (t *Tables) Hops(src, dst packet.NodeID) (int, bool) {
	t.check(src)
	t.check(dst)
	if math.IsInf(t.dist[src][dst], 1) {
		return 0, false
	}
	return t.hops[src][dst], true
}

// Path materializes the primary route src→dst by following next hops.
// Returns nil if dst is unreachable. The result includes both endpoints.
func (t *Tables) Path(src, dst packet.NodeID) []packet.NodeID {
	t.check(src)
	t.check(dst)
	if src == dst {
		return []packet.NodeID{src}
	}
	path := []packet.NodeID{src}
	cur := src
	for cur != dst {
		next, ok := t.NextHop(cur, dst)
		if !ok {
			return nil
		}
		path = append(path, next)
		cur = next
		if len(path) > t.n {
			// A loop would indicate inconsistent tables; DBF on a static
			// snapshot cannot produce one, so this is a bug guard.
			panic(fmt.Sprintf("routing: next-hop loop from %d to %d: %v", src, dst, path))
		}
	}
	return path
}

// CtrlEntryBytes is the on-air size of one distance-vector entry
// (destination id + path cost), the unit a DBF broadcast's payload scales
// with.
const CtrlEntryBytes = 4

// ChargeConvergenceEnergy charges one DBF execution's radio traffic to the
// energy account: each vector broadcast is a control packet at maximum
// power carrying the broadcaster's distance vector — CtrlEntryBytes per
// zone destination, floored at the base CTRL size — received by every zone
// neighbor. This is the cost §5.1.3 includes in SPMS's mobility-scenario
// energy.
func ChargeConvergenceEnergy(t *Tables, f *topo.Field, sizes packet.Sizes, acct *metrics.EnergyAccount) {
	m := f.Model()
	for i := 0; i < t.n; i++ {
		id := packet.NodeID(i)
		b := t.perNodeBcasts[i]
		if b == 0 {
			continue
		}
		neighbors := f.ZoneNeighbors(id)
		vectorBytes := CtrlEntryBytes * (1 + len(neighbors))
		if base := sizes.Of(packet.CTRL); vectorBytes < base {
			vectorBytes = base
		}
		txE := m.TxEnergy(vectorBytes, radio.MaxPower)
		rxE := m.RxEnergy(vectorBytes)
		acct.AddCtrl(id, radio.Energy(float64(b))*txE)
		for _, nb := range neighbors {
			acct.AddCtrl(nb, radio.Energy(float64(b))*rxE)
		}
	}
}
