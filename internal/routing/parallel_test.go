package routing

// Parallel-vs-serial equality for the routing kernels: BuildGraphWorkers
// and ComputeWorkers must produce structures deeply equal to the serial
// path at every worker count — the routing half of the §10 byte-identical
// determinism contract. GOMAXPROCS is raised so single-core machines still
// fork real workers.

import (
	"runtime"
	"testing"

	"repro/internal/packet"
)

func TestBuildGraphWorkersMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	f := gridField(t, 100, 8, 20)
	serial := BuildGraph(f)
	for _, workers := range []int{2, 4, 7} {
		g := BuildGraphWorkers(gridField(t, 100, 8, 20), workers)
		if g.N() != serial.N() {
			t.Fatalf("workers=%d: N=%d, want %d", workers, g.N(), serial.N())
		}
		for i := 0; i < serial.N(); i++ {
			a, b := serial.Neighbors(packet.NodeID(i)), g.Neighbors(packet.NodeID(i))
			if len(a) != len(b) {
				t.Fatalf("workers=%d node %d: %d edges, want %d", workers, i, len(b), len(a))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("workers=%d node %d edge %d: %+v, want %+v", workers, i, k, b[k], a[k])
				}
			}
		}
	}
}

func TestComputeWorkersMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	f := gridField(t, 100, 8, 20)
	g := BuildGraph(f)
	const k = 3
	serial := Compute(g, k)
	for _, workers := range []int{2, 4, 7} {
		par := ComputeWorkers(g, k, workers)
		if par.Rounds() != serial.Rounds() || par.Broadcasts() != serial.Broadcasts() {
			t.Fatalf("workers=%d: rounds/broadcasts %d/%d, want %d/%d",
				workers, par.Rounds(), par.Broadcasts(), serial.Rounds(), serial.Broadcasts())
		}
		for s := 0; s < g.N(); s++ {
			for d := 0; d < g.N(); d++ {
				a := serial.Routes(packet.NodeID(s), packet.NodeID(d))
				b := par.Routes(packet.NodeID(s), packet.NodeID(d))
				if len(a) != len(b) {
					t.Fatalf("workers=%d %d->%d: %d routes, want %d", workers, s, d, len(b), len(a))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("workers=%d %d->%d route %d: %+v, want %+v", workers, s, d, i, b[i], a[i])
					}
				}
			}
		}
	}
}
