package radio

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMICA2Table1Constants(t *testing.T) {
	m := MICA2()
	wantPower := []float64{3.1622, 0.7943, 0.1995, 0.05, 0.0125}
	wantRange := []float64{91.44, 45.72, 22.86, 11.28, 5.48}
	if m.NumLevels() != 5 {
		t.Fatalf("NumLevels=%d, want 5", m.NumLevels())
	}
	for i := 0; i < 5; i++ {
		l := Level(i + 1)
		if got := m.PowerMW(l); got != wantPower[i] {
			t.Fatalf("PowerMW(%d)=%v, want %v", l, got, wantPower[i])
		}
		if got := m.RangeM(l); got != wantRange[i] {
			t.Fatalf("RangeM(%d)=%v, want %v", l, got, wantRange[i])
		}
	}
	if m.MaxRange() != 91.44 {
		t.Fatalf("MaxRange=%v, want 91.44", m.MaxRange())
	}
	if m.MinPower() != 5 {
		t.Fatalf("MinPower=%v, want 5", m.MinPower())
	}
	if m.Alpha() != 3.5 {
		t.Fatalf("Alpha=%v, want 3.5", m.Alpha())
	}
}

func TestTxTimeMatchesTable1(t *testing.T) {
	m := MICA2()
	// Table 1: 0.05 ms/byte. A 2-byte ADV takes 0.1 ms; a 40-byte DATA 2 ms.
	if got := m.TxTime(2); got != 100*time.Microsecond {
		t.Fatalf("TxTime(2)=%v, want 100µs", got)
	}
	if got := m.TxTime(40); got != 2*time.Millisecond {
		t.Fatalf("TxTime(40)=%v, want 2ms", got)
	}
	if m.TxTime(0) != 0 || m.TxTime(-5) != 0 {
		t.Fatal("non-positive sizes must take zero time")
	}
}

func TestLevelFor(t *testing.T) {
	m := MICA2()
	tests := []struct {
		dist    float64
		want    Level
		wantOK  bool
		comment string
	}{
		{0, 5, true, "zero distance uses lowest power"},
		{5.48, 5, true, "exact lowest range boundary"},
		{5.49, 4, true, "just past lowest range"},
		{11.28, 4, true, "level-4 boundary"},
		{20, 3, true, "mid level 3"},
		{22.86, 3, true, "level-3 boundary"},
		{45.72, 2, true, "level-2 boundary"},
		{45.73, 1, true, "just past level 2"},
		{91.44, 1, true, "max range boundary"},
		{91.45, 0, false, "out of range"},
	}
	for _, tt := range tests {
		t.Run(tt.comment, func(t *testing.T) {
			got, ok := m.LevelFor(tt.dist)
			if got != tt.want || ok != tt.wantOK {
				t.Fatalf("LevelFor(%v) = (%v, %v), want (%v, %v)", tt.dist, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestLevelForIsMinimalPowerProperty(t *testing.T) {
	m := MICA2()
	prop := func(raw uint16) bool {
		dist := float64(raw) / 65535 * m.MaxRange()
		l, ok := m.LevelFor(dist)
		if !ok {
			return false
		}
		if m.RangeM(l) < dist {
			return false // must reach
		}
		// No lower-power level may also reach.
		for lower := l + 1; lower <= m.MinPower(); lower++ {
			if m.RangeM(lower) >= dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTxEnergy(t *testing.T) {
	m := MICA2()
	// 40 bytes at level 1: 3.1622 mW × 2 ms = 6.3244 µJ.
	if got := m.TxEnergy(40, 1); math.Abs(float64(got)-6.3244) > 1e-9 {
		t.Fatalf("TxEnergy(40,1)=%v, want 6.3244", got)
	}
	// 2 bytes at level 5: 0.0125 mW × 0.1 ms = 0.00125 µJ.
	if got := m.TxEnergy(2, 5); math.Abs(float64(got)-0.00125) > 1e-12 {
		t.Fatalf("TxEnergy(2,5)=%v, want 0.00125", got)
	}
	if m.TxEnergy(0, 1) != 0 {
		t.Fatal("zero bytes must cost zero energy")
	}
}

func TestRxEnergyEqualsLowestLevel(t *testing.T) {
	m := MICA2()
	// Paper: Er = Em (lowest transmit level).
	if got, want := m.RxEnergy(40), m.TxEnergy(40, 5); got != want {
		t.Fatalf("RxEnergy(40)=%v, want %v", got, want)
	}
	if m.RxEnergy(-1) != 0 {
		t.Fatal("negative bytes must cost zero energy")
	}
}

func TestEnergyMonotonicInLevelAndSize(t *testing.T) {
	m := MICA2()
	for l := Level(1); l < m.MinPower(); l++ {
		if m.TxEnergy(10, l) <= m.TxEnergy(10, l+1) {
			t.Fatalf("energy not decreasing with level: %v vs %v", l, l+1)
		}
	}
	if m.TxEnergy(20, 1) <= m.TxEnergy(10, 1) {
		t.Fatal("energy not increasing with size")
	}
}

func TestInvalidLevelPanics(t *testing.T) {
	m := MICA2()
	for _, l := range []Level{0, 6, -1} {
		l := l
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PowerMW(%d) did not panic", l)
				}
			}()
			m.PowerMW(l)
		}()
	}
}

func TestScaledMICA2(t *testing.T) {
	m, err := ScaledMICA2(20)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	if math.Abs(m.MaxRange()-20) > 1e-9 {
		t.Fatalf("MaxRange=%v, want 20", m.MaxRange())
	}
	// Range ratios preserved: level 2 is half of level 1 in MICA2.
	if r := m.RangeM(2) / m.RangeM(1); math.Abs(r-45.72/91.44) > 1e-9 {
		t.Fatalf("range ratio %v, want %v", r, 45.72/91.44)
	}
	// Power scales as s^alpha.
	s := 20.0 / 91.44
	wantP1 := 3.1622 * math.Pow(s, 3.5)
	if math.Abs(m.PowerMW(1)-wantP1) > 1e-9 {
		t.Fatalf("PowerMW(1)=%v, want %v", m.PowerMW(1), wantP1)
	}
	// Relative level economics preserved.
	orig := MICA2()
	if r1, r2 := m.PowerMW(1)/m.PowerMW(3), orig.PowerMW(1)/orig.PowerMW(3); math.Abs(r1-r2) > 1e-9 {
		t.Fatalf("power ratio changed under scaling: %v vs %v", r1, r2)
	}
	if _, err := ScaledMICA2(0); err == nil {
		t.Fatal("ScaledMICA2(0) should fail")
	}
	if _, err := ScaledMICA2(-3); err == nil {
		t.Fatal("ScaledMICA2(-3) should fail")
	}
}

func TestNewModelValidation(t *testing.T) {
	tests := []struct {
		name    string
		powers  []float64
		ranges  []float64
		perByte time.Duration
		rx      float64
		wantErr bool
	}{
		{"valid", []float64{2, 1}, []float64{50, 25}, time.Microsecond, 0.5, false},
		{"empty", nil, nil, time.Microsecond, 0.5, true},
		{"mismatched", []float64{2}, []float64{50, 25}, time.Microsecond, 0.5, true},
		{"non-decreasing ranges", []float64{2, 1}, []float64{25, 50}, time.Microsecond, 0.5, true},
		{"equal ranges", []float64{2, 1}, []float64{50, 50}, time.Microsecond, 0.5, true},
		{"zero power", []float64{0, 1}, []float64{50, 25}, time.Microsecond, 0.5, true},
		{"zero per-byte", []float64{2, 1}, []float64{50, 25}, 0, 0.5, true},
		{"negative rx", []float64{2, 1}, []float64{50, 25}, time.Microsecond, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewModel(tt.powers, tt.ranges, tt.perByte, tt.rx, 2)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestNewModelDefaultsAlpha(t *testing.T) {
	m, err := NewModel([]float64{2, 1}, []float64{50, 25}, time.Microsecond, 0.5, 0)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if m.Alpha() != DefaultAlpha {
		t.Fatalf("Alpha=%v, want default %v", m.Alpha(), DefaultAlpha)
	}
}

func TestPathLossEnergy(t *testing.T) {
	m := MICA2()
	if m.PathLossEnergy(0) != 0 || m.PathLossEnergy(-2) != 0 {
		t.Fatal("non-positive distance must cost zero")
	}
	if got, want := m.PathLossEnergy(2), math.Pow(2, 3.5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PathLossEnergy(2)=%v, want %v", got, want)
	}
	// Superlinearity: doubling distance more than doubles energy.
	if m.PathLossEnergy(10) <= 2*m.PathLossEnergy(5) {
		t.Fatal("path loss should be superlinear in distance")
	}
}
