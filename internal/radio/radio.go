// Package radio models the physical layer of a sensor node: discrete
// transmit power levels with their reachable ranges, transmission timing,
// and per-packet energy accounting.
//
// The default model is parameterized from the MICA2 Berkeley mote numbers in
// Table 1 of the paper: five power levels (3.1622 … 0.0125 mW) reaching
// 91.44 … 5.48 m, a transmission time of 0.05 ms/byte, and receive energy
// equal to the per-bit energy of the lowest transmit level (Er = Em, after
// Savvides & Srivastava [16]).
package radio

import (
	"fmt"
	"math"
	"time"
)

// Level identifies a discrete transmit power level. Level 1 is the maximum
// power (largest range); higher level numbers are lower powers, matching the
// paper's "Power level (1-5)" table.
type Level int

// MaxPower is the level-1 (maximum power, maximum range) transmit setting.
const MaxPower Level = 1

// Energy is an amount of energy in microjoules (mW × ms).
type Energy float64

// Microjoules returns the energy as a plain float64 in µJ.
func (e Energy) Microjoules() float64 { return float64(e) }

// levelSpec is one row of the power table.
type levelSpec struct {
	powerMW float64 // transmit power in milliwatts
	rangeM  float64 // reliable communication range in meters
}

// Model is an immutable radio parameterization shared by all nodes in a
// simulation. Construct one with MICA2, ScaledMICA2, or NewModel.
type Model struct {
	levels    []levelSpec // index 0 = Level 1 (max power)
	perByte   time.Duration
	rxPowerMW float64 // receive path power draw in mW
	alpha     float64 // path-loss exponent, for analytic scaling
}

// mica2Levels are the Table 1 constants: five transmit settings of the
// MICA2 mote (CC1000 radio).
var mica2Levels = []levelSpec{
	{powerMW: 3.1622, rangeM: 91.44},
	{powerMW: 0.7943, rangeM: 45.72},
	{powerMW: 0.1995, rangeM: 22.86},
	{powerMW: 0.05, rangeM: 11.28},
	{powerMW: 0.0125, rangeM: 5.48},
}

// PerByteTime is Table 1's "Time of transmission": 0.05 ms per byte.
const PerByteTime = 50 * time.Microsecond

// DefaultAlpha is the path-loss exponent used by the paper's energy
// analysis (2-ray ground propagation beyond ~7 m).
const DefaultAlpha = 3.5

// MICA2 returns the paper's default radio model.
func MICA2() *Model {
	return &Model{
		levels:    mica2Levels,
		perByte:   PerByteTime,
		rxPowerMW: mica2Levels[len(mica2Levels)-1].powerMW,
		alpha:     DefaultAlpha,
	}
}

// ScaledMICA2 returns a MICA2-shaped model whose maximum range is maxRange
// meters. Ranges scale proportionally; powers scale as range^alpha so the
// relative economics of the levels are preserved. The experiments that sweep
// "radius of transmission" (Figures 7, 9, 11, 12, 13) use this.
func ScaledMICA2(maxRange float64) (*Model, error) {
	if maxRange <= 0 {
		return nil, fmt.Errorf("radio: non-positive max range %v", maxRange)
	}
	base := mica2Levels[0].rangeM
	s := maxRange / base
	levels := make([]levelSpec, len(mica2Levels))
	for i, l := range mica2Levels {
		levels[i] = levelSpec{
			powerMW: l.powerMW * math.Pow(s, DefaultAlpha),
			rangeM:  l.rangeM * s,
		}
	}
	return &Model{
		levels:    levels,
		perByte:   PerByteTime,
		rxPowerMW: levels[len(levels)-1].powerMW,
		alpha:     DefaultAlpha,
	}, nil
}

// NewModel builds a custom radio model. powersMW and rangesM must be the
// same length, ordered from maximum power (level 1) downward, with strictly
// decreasing ranges. rxPowerMW is the receive draw; alpha the path-loss
// exponent used for analytic extrapolation.
func NewModel(powersMW, rangesM []float64, perByte time.Duration, rxPowerMW, alpha float64) (*Model, error) {
	if len(powersMW) == 0 || len(powersMW) != len(rangesM) {
		return nil, fmt.Errorf("radio: need equal non-empty powers/ranges, got %d/%d", len(powersMW), len(rangesM))
	}
	if perByte <= 0 {
		return nil, fmt.Errorf("radio: non-positive per-byte time %v", perByte)
	}
	levels := make([]levelSpec, len(powersMW))
	for i := range powersMW {
		if powersMW[i] <= 0 || rangesM[i] <= 0 {
			return nil, fmt.Errorf("radio: level %d has non-positive power or range", i+1)
		}
		if i > 0 && rangesM[i] >= rangesM[i-1] {
			return nil, fmt.Errorf("radio: ranges must strictly decrease (level %d)", i+1)
		}
		levels[i] = levelSpec{powerMW: powersMW[i], rangeM: rangesM[i]}
	}
	if rxPowerMW < 0 {
		return nil, fmt.Errorf("radio: negative rx power %v", rxPowerMW)
	}
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	return &Model{levels: levels, perByte: perByte, rxPowerMW: rxPowerMW, alpha: alpha}, nil
}

// NumLevels returns how many discrete power levels the model has.
func (m *Model) NumLevels() int { return len(m.levels) }

// Alpha returns the path-loss exponent.
func (m *Model) Alpha() float64 { return m.alpha }

// MinPower returns the lowest-power level.
func (m *Model) MinPower() Level { return Level(len(m.levels)) }

// valid reports whether l is a level this model defines.
func (m *Model) valid(l Level) bool { return l >= 1 && int(l) <= len(m.levels) }

// PowerMW returns the transmit power in milliwatts at level l.
func (m *Model) PowerMW(l Level) float64 {
	if !m.valid(l) {
		panic(fmt.Sprintf("radio: invalid level %d (model has %d)", l, len(m.levels)))
	}
	return m.levels[l-1].powerMW
}

// RangeM returns the reliable range in meters at level l.
func (m *Model) RangeM(l Level) float64 {
	if !m.valid(l) {
		panic(fmt.Sprintf("radio: invalid level %d (model has %d)", l, len(m.levels)))
	}
	return m.levels[l-1].rangeM
}

// MaxRange returns the range at maximum power; it defines the zone radius.
func (m *Model) MaxRange() float64 { return m.levels[0].rangeM }

// LevelFor returns the lowest-power (highest-numbered) level whose range
// covers dist meters. ok is false when dist exceeds the maximum range.
func (m *Model) LevelFor(dist float64) (Level, bool) {
	if dist > m.levels[0].rangeM {
		return 0, false
	}
	// Walk from the lowest power upward; tables are tiny (5 entries), so a
	// linear scan beats anything fancier.
	for i := len(m.levels) - 1; i >= 0; i-- {
		if m.levels[i].rangeM >= dist {
			return Level(i + 1), true
		}
	}
	return 0, false
}

// TxTime returns the time to transmit a packet of the given size.
func (m *Model) TxTime(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(bytes) * m.perByte
}

// TxEnergy returns the energy to transmit bytes at level l: P(l) × t(bytes).
func (m *Model) TxEnergy(bytes int, l Level) Energy {
	if bytes <= 0 {
		return 0
	}
	ms := float64(m.TxTime(bytes)) / float64(time.Millisecond)
	return Energy(m.PowerMW(l) * ms)
}

// RxEnergy returns the energy to receive bytes. Per the paper (Er = Em) this
// uses the lowest transmit level's power draw.
func (m *Model) RxEnergy(bytes int) Energy {
	if bytes <= 0 {
		return 0
	}
	ms := float64(m.TxTime(bytes)) / float64(time.Millisecond)
	return Energy(m.rxPowerMW * ms)
}

// PathLossEnergy returns the relative energy to cover dist meters under the
// continuous d^alpha path-loss model. Used only by the analytic package; the
// simulator always uses the discrete level table.
func (m *Model) PathLossEnergy(dist float64) float64 {
	if dist <= 0 {
		return 0
	}
	return math.Pow(dist, m.alpha)
}
