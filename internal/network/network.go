// Package network is the shared transmission substrate the protocols run
// on. It binds the event kernel, the field geometry, the MAC contention
// model, and the radio energy model into broadcast/unicast primitives with
// the paper's semantics:
//
//   - Carrier sense serializes the shared channel: a transmission at level
//     l occupies the air for every node inside the transmitter's level-l
//     radius until the frame ends; a node whose channel is busy defers its
//     own transmission until the reservation clears. This is what produces
//     the paper's central delay effect — SPIN's maximum-power traffic
//     monopolizes ~n1 nodes per frame while SPMS's low-power hops occupy
//     only ~ns nodes and proceed in parallel (spatial reuse).
//   - On top of the busy-wait, a transmission takes a slotted random
//     backoff (Table 1: 20 slots × 0.1 ms), an optional deterministic
//     G·n² contention term (0 in the simulation default; the §4 analytic
//     value is mac.AnalyticConfig), and the per-byte transmission time.
//   - A failed node cannot transmit; a transmission whose sender fails
//     before completion is cancelled; a failed receiver drops the packet
//     ("during the time of repair, any received message is dropped and any
//     scheduled packet transfer is cancelled", §5.1.2).
//   - Transmit energy is charged to the sender, receive energy to each
//     alive node the frame actually reaches.
package network

import (
	"fmt"
	"time"

	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Receiver is a per-node protocol instance. HandlePacket runs at delivery
// time with the scheduler clock set to the delivery instant.
type Receiver interface {
	HandlePacket(p packet.Packet)
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceTx TraceKind = iota + 1
	TraceDeliver
	TraceDrop
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceTx:
		return "tx"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable network action, for scripted protocol tests.
type TraceEvent struct {
	Kind   TraceKind
	Packet packet.Packet
	Node   packet.NodeID // delivering/dropping node (TraceDeliver/TraceDrop), sender for TraceTx
	Reason string        // drop reason, empty otherwise
}

// Config parameterizes a Network.
type Config struct {
	Sizes packet.Sizes
	MAC   mac.Config
	// CarrierSense enables shared-channel serialization on top of the
	// per-transmission access delay. It is off by default: under the
	// paper's Table 1 traffic (Poisson 1/ms per node, 40-byte DATA,
	// all-to-all interest) a serializing channel saturates unconditionally
	// — each item carries ~2·(n-1) ms of airtime — so the paper's reported
	// millisecond-scale delays imply its simulator modeled contention as a
	// per-transmission delay, not an occupancy. The mechanism is kept for
	// the MAC ablation benchmark.
	CarrierSense bool
}

// DefaultConfig returns Table 1 packet sizes and the §4 G·n² contention
// MAC, the configuration every figure reproduction uses.
func DefaultConfig() Config {
	return Config{Sizes: packet.DefaultSizes(), MAC: mac.AnalyticConfig()}
}

// flight is one in-flight transmission in the pooled arena: the packet on
// the air and, in deferred-processing mode, the receivers it reached alive
// at delivery time (the batch the T+Proc dispatch walks). Slots are
// recycled through a free list, so the steady-state transmission cycle —
// Send → complete → batch-dispatch — allocates nothing once the arena and
// each slot's dsts buffer have grown to the working set.
type flight struct {
	p    packet.Packet
	dsts []packet.NodeID
}

// Network is the radio medium plus node liveness. It implements
// fault.Target so the injector can drive it.
type Network struct {
	sched    *sim.Scheduler
	field    *topo.Field
	csma     *mac.CSMA
	rng      *sim.RNG
	sizes    packet.Sizes
	alive    []bool
	handlers []Receiver

	// busyUntil[i] is the virtual time node i's channel clears: the end of
	// the latest transmission whose radio range covers node i. Nodes defer
	// their own transmissions past this point (carrier sense).
	busyUntil    []time.Duration
	carrierSense bool

	// In-flight transmission arena plus the pre-bound event handlers
	// (method values created once so AtArg scheduling never allocates).
	flights     []flight
	freeFlights []uint64
	completeFn  sim.ArgHandler
	deliverFn   sim.ArgHandler

	// Deferred processing (DeferProcessing): when enabled, a completed
	// transmission charges energy and traces per receiver at delivery time
	// T as always, but runs the protocol handlers of all its receivers in
	// one batched event at T+proc — one heap event per transmission instead
	// of one per receiver.
	deferred bool
	proc     time.Duration

	energy *metrics.EnergyAccount
	count  *metrics.Counters
	trace  func(TraceEvent)
}

// New builds a network over the given field. All dependencies are required.
func New(sched *sim.Scheduler, field *topo.Field, rng *sim.RNG, cfg Config) (*Network, error) {
	if sched == nil || field == nil || rng == nil {
		return nil, fmt.Errorf("network: nil dependency (sched=%v field=%v rng=%v)",
			sched != nil, field != nil, rng != nil)
	}
	if err := cfg.Sizes.Validate(); err != nil {
		return nil, err
	}
	csma, err := mac.NewCSMA(cfg.MAC)
	if err != nil {
		return nil, err
	}
	n := field.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	nw := &Network{
		sched:        sched,
		field:        field,
		csma:         csma,
		rng:          rng,
		sizes:        cfg.Sizes,
		alive:        alive,
		handlers:     make([]Receiver, n),
		busyUntil:    make([]time.Duration, n),
		carrierSense: cfg.CarrierSense,
		energy:       metrics.NewEnergyAccount(n),
		count:        metrics.NewCounters(),
	}
	// Method values allocate at each evaluation; binding them once here
	// keeps the per-transmission scheduling path allocation-free.
	nw.completeFn = nw.onComplete
	nw.deliverFn = nw.onDeliverBatch
	return nw, nil
}

// DeferProcessing switches delivery into batched mode: every receiver of a
// completed transmission still pays energy, tracing, and liveness checks
// individually at delivery time T, but the protocol handlers run together
// in a single event at T+proc (with a per-receiver liveness re-check, since
// a node can fail between delivery and processing). This replaces the
// protocols' historical per-receiver After(Proc) closure — one pooled heap
// event per transmission instead of one allocated closure per receiver —
// and preserves event order exactly: the per-receiver events it replaces
// were scheduled back-to-back with consecutive sequence numbers, so nothing
// could interleave between them anyway.
//
// Protocol constructors call this with their processing delay; networks
// driven directly by tests keep the synchronous immediate-dispatch path.
func (nw *Network) DeferProcessing(proc time.Duration) {
	if proc < 0 {
		panic(fmt.Sprintf("network: negative processing delay %v", proc))
	}
	nw.deferred = true
	nw.proc = proc
}

// allocFlight takes a pooled arena slot for a departing packet. The returned
// index — not a pointer — is what events carry: the arena's backing array
// may move when it grows mid-handler.
func (nw *Network) allocFlight(p packet.Packet) uint64 {
	var idx uint64
	if n := len(nw.freeFlights); n > 0 {
		idx = nw.freeFlights[n-1]
		nw.freeFlights = nw.freeFlights[:n-1]
	} else {
		nw.flights = append(nw.flights, flight{})
		idx = uint64(len(nw.flights) - 1)
	}
	fl := &nw.flights[idx]
	fl.p = p
	fl.dsts = fl.dsts[:0]
	return idx
}

// freeFlight returns a slot to the pool, keeping its dsts capacity.
func (nw *Network) freeFlight(idx uint64) {
	fl := &nw.flights[idx]
	fl.p = packet.Packet{}
	fl.dsts = fl.dsts[:0]
	nw.freeFlights = append(nw.freeFlights, idx)
}

// Bind attaches the protocol instance for node id. Must be called for every
// node before traffic flows.
func (nw *Network) Bind(id packet.NodeID, r Receiver) {
	nw.check(id)
	if r == nil {
		panic("network: Bind with nil receiver")
	}
	nw.handlers[id] = r
}

// Scheduler returns the underlying event kernel (protocols schedule their
// timers on it).
func (nw *Network) Scheduler() *sim.Scheduler { return nw.sched }

// Field returns the topology.
func (nw *Network) Field() *topo.Field { return nw.field }

// Sizes returns the configured packet sizes.
func (nw *Network) Sizes() packet.Sizes { return nw.sizes }

// Energy returns the energy account.
func (nw *Network) Energy() *metrics.EnergyAccount { return nw.energy }

// Counters returns the protocol event counters.
func (nw *Network) Counters() *metrics.Counters { return nw.count }

// RNG returns the network's random stream (protocols share it for backoff
// draws so a single seed reproduces a run).
func (nw *Network) RNG() *sim.RNG { return nw.rng }

// SetTrace installs a trace callback; pass nil to disable.
func (nw *Network) SetTrace(fn func(TraceEvent)) { nw.trace = fn }

func (nw *Network) emit(ev TraceEvent) {
	if nw.trace != nil {
		nw.trace(ev)
	}
}

// N implements fault.Target.
func (nw *Network) N() int { return len(nw.alive) }

// Alive implements fault.Target.
func (nw *Network) Alive(id packet.NodeID) bool {
	nw.check(id)
	return nw.alive[id]
}

// Fail implements fault.Target.
func (nw *Network) Fail(id packet.NodeID) {
	nw.check(id)
	nw.alive[id] = false
}

// Recover implements fault.Target.
func (nw *Network) Recover(id packet.NodeID) {
	nw.check(id)
	nw.alive[id] = true
}

// Send transmits p from p.Src to p.Dst as a unicast at p.Level, or as a
// zone broadcast when p.Dst == packet.Broadcast. p.Bytes is filled from the
// configured sizes if zero. Silently drops (with a counter) when the sender
// is down.
func (nw *Network) Send(p packet.Packet) {
	nw.check(p.Src)
	if p.Bytes == 0 {
		p.Bytes = nw.sizes.Of(p.Kind)
	}
	if !nw.alive[p.Src] {
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: p.Src, Reason: "sender down"})
		return
	}
	model := nw.field.Model()
	contenders := nw.field.Contenders(p.Src, p.Level)
	slot := 0
	if n := nw.csma.NumSlots(); n > 0 {
		slot = nw.rng.Intn(n)
	}
	access := nw.csma.AccessDelay(contenders, slot)

	// Carrier sense: wait for the channel around the transmitter to clear,
	// then back off, then transmit. The frame reserves the air for every
	// node inside the transmit radius until it ends — exactly the sender
	// plus its cached level neighbors, so the reservation loop is
	// O(neighbors) rather than a distance scan over all N nodes.
	now := nw.sched.Now()
	start := now
	if nw.carrierSense && nw.busyUntil[p.Src] > now {
		start = nw.busyUntil[p.Src]
	}
	start += access
	end := start + model.TxTime(p.Bytes)
	if nw.carrierSense {
		if nw.busyUntil[p.Src] < end {
			nw.busyUntil[p.Src] = end
		}
		for _, i := range nw.field.ReachedBy(p.Src, p.Level) {
			if nw.busyUntil[i] < end {
				nw.busyUntil[i] = end
			}
		}
	}

	nw.count.CountSend(p.Kind)
	nw.emit(TraceEvent{Kind: TraceTx, Packet: p, Node: p.Src})

	nw.sched.AtArg(end, nw.completeFn, nw.allocFlight(p))
}

// onComplete finishes the transmission in arena slot arg: verifies the
// sender survived the airtime, charges energies, and delivers to the
// recipient set. In deferred mode the recipients' handlers run later in one
// batched event; otherwise they run here, synchronously, in receiver order.
func (nw *Network) onComplete(arg uint64) {
	p := nw.flights[arg].p
	if !nw.alive[p.Src] {
		// Sender failed mid-transmission: the frame never finished.
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: p.Src, Reason: "sender failed mid-tx"})
		nw.freeFlight(arg)
		return
	}
	model := nw.field.Model()
	nw.energy.AddTx(p.Src, model.TxEnergy(p.Bytes, p.Level))

	if p.Dst == packet.Broadcast {
		for _, dst := range nw.field.ReachedBy(p.Src, p.Level) {
			nw.deliver(arg, p, dst)
		}
	} else {
		nw.check(p.Dst)
		if !nw.field.InRange(p.Src, p.Dst, p.Level) {
			// Receiver moved out of range during the exchange.
			nw.count.Drops++
			nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: p.Dst, Reason: "out of range"})
			nw.freeFlight(arg)
			return
		}
		nw.deliver(arg, p, p.Dst)
	}
	// Re-take the slot pointer: synchronous handlers may have Sent, growing
	// the arena and moving its backing array.
	if fl := &nw.flights[arg]; nw.deferred && len(fl.dsts) > 0 {
		nw.sched.AtArg(nw.sched.Now()+nw.proc, nw.deliverFn, arg)
		return
	}
	nw.freeFlight(arg)
}

// deliver records the delivery of p to dst at the current (completion)
// time: liveness check, receive energy, trace. In deferred mode the handler
// call is queued on the flight's batch; otherwise it runs immediately.
func (nw *Network) deliver(arg uint64, p packet.Packet, dst packet.NodeID) {
	if !nw.alive[dst] {
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: dst, Reason: "receiver down"})
		return
	}
	nw.energy.AddRx(dst, nw.field.Model().RxEnergy(p.Bytes))
	nw.emit(TraceEvent{Kind: TraceDeliver, Packet: p, Node: dst})
	if nw.deferred {
		fl := &nw.flights[arg]
		fl.dsts = append(fl.dsts, dst)
		return
	}
	h := nw.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("network: node %d has no bound receiver", dst))
	}
	h.HandlePacket(p)
}

// onDeliverBatch runs the protocol handlers of every receiver collected at
// completion time, in delivery order, re-checking liveness: a receiver that
// failed between delivery and processing silently skips its handler, exactly
// as the per-receiver After(Proc) closures it replaces did. Handlers may
// Send (growing the arena), so the slot is re-indexed each iteration and
// freed only after the last handler returns.
func (nw *Network) onDeliverBatch(arg uint64) {
	p := nw.flights[arg].p
	for i := 0; ; i++ {
		fl := &nw.flights[arg]
		if i >= len(fl.dsts) {
			break
		}
		dst := fl.dsts[i]
		if !nw.alive[dst] {
			continue
		}
		h := nw.handlers[dst]
		if h == nil {
			panic(fmt.Sprintf("network: node %d has no bound receiver", dst))
		}
		h.HandlePacket(p)
	}
	nw.freeFlight(arg)
}

func (nw *Network) check(id packet.NodeID) {
	if id < 0 || int(id) >= len(nw.alive) {
		panic(fmt.Sprintf("network: node id %d out of range [0,%d)", id, len(nw.alive)))
	}
}
