// Package network is the shared transmission substrate the protocols run
// on. It binds the event kernel, the field geometry, the MAC contention
// model, and the radio energy model into broadcast/unicast primitives with
// the paper's semantics:
//
//   - Carrier sense serializes the shared channel: a transmission at level
//     l occupies the air for every node inside the transmitter's level-l
//     radius until the frame ends; a node whose channel is busy defers its
//     own transmission until the reservation clears. This is what produces
//     the paper's central delay effect — SPIN's maximum-power traffic
//     monopolizes ~n1 nodes per frame while SPMS's low-power hops occupy
//     only ~ns nodes and proceed in parallel (spatial reuse).
//   - On top of the busy-wait, a transmission takes a slotted random
//     backoff (Table 1: 20 slots × 0.1 ms), an optional deterministic
//     G·n² contention term (0 in the simulation default; the §4 analytic
//     value is mac.AnalyticConfig), and the per-byte transmission time.
//   - A failed node cannot transmit; a transmission whose sender fails
//     before completion is cancelled; a failed receiver drops the packet
//     ("during the time of repair, any received message is dropped and any
//     scheduled packet transfer is cancelled", §5.1.2).
//   - Transmit energy is charged to the sender, receive energy to each
//     alive node the frame actually reaches.
package network

import (
	"fmt"
	"time"

	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Receiver is a per-node protocol instance. HandlePacket runs at delivery
// time with the scheduler clock set to the delivery instant.
type Receiver interface {
	HandlePacket(p packet.Packet)
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceTx TraceKind = iota + 1
	TraceDeliver
	TraceDrop
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceTx:
		return "tx"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable network action, for scripted protocol tests.
type TraceEvent struct {
	Kind   TraceKind
	Packet packet.Packet
	Node   packet.NodeID // delivering/dropping node (TraceDeliver/TraceDrop), sender for TraceTx
	Reason string        // drop reason, empty otherwise
}

// Config parameterizes a Network.
type Config struct {
	Sizes packet.Sizes
	MAC   mac.Config
	// CarrierSense enables shared-channel serialization on top of the
	// per-transmission access delay. It is off by default: under the
	// paper's Table 1 traffic (Poisson 1/ms per node, 40-byte DATA,
	// all-to-all interest) a serializing channel saturates unconditionally
	// — each item carries ~2·(n-1) ms of airtime — so the paper's reported
	// millisecond-scale delays imply its simulator modeled contention as a
	// per-transmission delay, not an occupancy. The mechanism is kept for
	// the MAC ablation benchmark.
	CarrierSense bool
}

// DefaultConfig returns Table 1 packet sizes and the §4 G·n² contention
// MAC, the configuration every figure reproduction uses.
func DefaultConfig() Config {
	return Config{Sizes: packet.DefaultSizes(), MAC: mac.AnalyticConfig()}
}

// Network is the radio medium plus node liveness. It implements
// fault.Target so the injector can drive it.
type Network struct {
	sched    *sim.Scheduler
	field    *topo.Field
	csma     *mac.CSMA
	rng      *sim.RNG
	sizes    packet.Sizes
	alive    []bool
	handlers []Receiver

	// busyUntil[i] is the virtual time node i's channel clears: the end of
	// the latest transmission whose radio range covers node i. Nodes defer
	// their own transmissions past this point (carrier sense).
	busyUntil    []time.Duration
	carrierSense bool

	energy *metrics.EnergyAccount
	count  *metrics.Counters
	trace  func(TraceEvent)
}

// New builds a network over the given field. All dependencies are required.
func New(sched *sim.Scheduler, field *topo.Field, rng *sim.RNG, cfg Config) (*Network, error) {
	if sched == nil || field == nil || rng == nil {
		return nil, fmt.Errorf("network: nil dependency (sched=%v field=%v rng=%v)",
			sched != nil, field != nil, rng != nil)
	}
	if err := cfg.Sizes.Validate(); err != nil {
		return nil, err
	}
	csma, err := mac.NewCSMA(cfg.MAC)
	if err != nil {
		return nil, err
	}
	n := field.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	return &Network{
		sched:        sched,
		field:        field,
		csma:         csma,
		rng:          rng,
		sizes:        cfg.Sizes,
		alive:        alive,
		handlers:     make([]Receiver, n),
		busyUntil:    make([]time.Duration, n),
		carrierSense: cfg.CarrierSense,
		energy:       metrics.NewEnergyAccount(n),
		count:        metrics.NewCounters(),
	}, nil
}

// Bind attaches the protocol instance for node id. Must be called for every
// node before traffic flows.
func (nw *Network) Bind(id packet.NodeID, r Receiver) {
	nw.check(id)
	if r == nil {
		panic("network: Bind with nil receiver")
	}
	nw.handlers[id] = r
}

// Scheduler returns the underlying event kernel (protocols schedule their
// timers on it).
func (nw *Network) Scheduler() *sim.Scheduler { return nw.sched }

// Field returns the topology.
func (nw *Network) Field() *topo.Field { return nw.field }

// Sizes returns the configured packet sizes.
func (nw *Network) Sizes() packet.Sizes { return nw.sizes }

// Energy returns the energy account.
func (nw *Network) Energy() *metrics.EnergyAccount { return nw.energy }

// Counters returns the protocol event counters.
func (nw *Network) Counters() *metrics.Counters { return nw.count }

// RNG returns the network's random stream (protocols share it for backoff
// draws so a single seed reproduces a run).
func (nw *Network) RNG() *sim.RNG { return nw.rng }

// SetTrace installs a trace callback; pass nil to disable.
func (nw *Network) SetTrace(fn func(TraceEvent)) { nw.trace = fn }

func (nw *Network) emit(ev TraceEvent) {
	if nw.trace != nil {
		nw.trace(ev)
	}
}

// N implements fault.Target.
func (nw *Network) N() int { return len(nw.alive) }

// Alive implements fault.Target.
func (nw *Network) Alive(id packet.NodeID) bool {
	nw.check(id)
	return nw.alive[id]
}

// Fail implements fault.Target.
func (nw *Network) Fail(id packet.NodeID) {
	nw.check(id)
	nw.alive[id] = false
}

// Recover implements fault.Target.
func (nw *Network) Recover(id packet.NodeID) {
	nw.check(id)
	nw.alive[id] = true
}

// Send transmits p from p.Src to p.Dst as a unicast at p.Level, or as a
// zone broadcast when p.Dst == packet.Broadcast. p.Bytes is filled from the
// configured sizes if zero. Silently drops (with a counter) when the sender
// is down.
func (nw *Network) Send(p packet.Packet) {
	nw.check(p.Src)
	if p.Bytes == 0 {
		p.Bytes = nw.sizes.Of(p.Kind)
	}
	if !nw.alive[p.Src] {
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: p.Src, Reason: "sender down"})
		return
	}
	model := nw.field.Model()
	contenders := nw.field.Contenders(p.Src, p.Level)
	slot := 0
	if n := nw.csma.NumSlots(); n > 0 {
		slot = nw.rng.Intn(n)
	}
	access := nw.csma.AccessDelay(contenders, slot)

	// Carrier sense: wait for the channel around the transmitter to clear,
	// then back off, then transmit. The frame reserves the air for every
	// node inside the transmit radius until it ends — exactly the sender
	// plus its cached level neighbors, so the reservation loop is
	// O(neighbors) rather than a distance scan over all N nodes.
	now := nw.sched.Now()
	start := now
	if nw.carrierSense && nw.busyUntil[p.Src] > now {
		start = nw.busyUntil[p.Src]
	}
	start += access
	end := start + model.TxTime(p.Bytes)
	if nw.carrierSense {
		if nw.busyUntil[p.Src] < end {
			nw.busyUntil[p.Src] = end
		}
		for _, i := range nw.field.ReachedBy(p.Src, p.Level) {
			if nw.busyUntil[i] < end {
				nw.busyUntil[i] = end
			}
		}
	}

	nw.count.CountSend(p.Kind)
	nw.emit(TraceEvent{Kind: TraceTx, Packet: p, Node: p.Src})

	nw.sched.At(end, func() { nw.complete(p) })
}

// complete finishes a transmission: verifies the sender survived the
// airtime, charges energies, and delivers to the recipient set.
func (nw *Network) complete(p packet.Packet) {
	if !nw.alive[p.Src] {
		// Sender failed mid-transmission: the frame never finished.
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: p.Src, Reason: "sender failed mid-tx"})
		return
	}
	model := nw.field.Model()
	nw.energy.AddTx(p.Src, model.TxEnergy(p.Bytes, p.Level))

	if p.Dst == packet.Broadcast {
		for _, dst := range nw.field.ReachedBy(p.Src, p.Level) {
			nw.deliver(p, dst)
		}
		return
	}
	nw.check(p.Dst)
	if !nw.field.InRange(p.Src, p.Dst, p.Level) {
		// Receiver moved out of range during the exchange.
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: p.Dst, Reason: "out of range"})
		return
	}
	nw.deliver(p, p.Dst)
}

func (nw *Network) deliver(p packet.Packet, dst packet.NodeID) {
	if !nw.alive[dst] {
		nw.count.Drops++
		nw.emit(TraceEvent{Kind: TraceDrop, Packet: p, Node: dst, Reason: "receiver down"})
		return
	}
	nw.energy.AddRx(dst, nw.field.Model().RxEnergy(p.Bytes))
	nw.emit(TraceEvent{Kind: TraceDeliver, Packet: p, Node: dst})
	h := nw.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("network: node %d has no bound receiver", dst))
	}
	h.HandlePacket(p)
}

func (nw *Network) check(id packet.NodeID) {
	if id < 0 || int(id) >= len(nw.alive) {
		panic(fmt.Sprintf("network: node id %d out of range [0,%d)", id, len(nw.alive)))
	}
}
