package network

// Tests for deferred (batched) delivery: DeferProcessing replaces the old
// per-receiver After(Proc) closures with one arg-event per transmission, and
// these pin the semantics that replacement must preserve — handler timing at
// completion+proc, receiver order, the silent skip of receivers that die
// between delivery and processing — plus the allocation-free steady state
// that motivates the mechanism.

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/radio"
)

// timedRecorder logs each delivery with the simulation time it was handled.
type timedRecorder struct {
	fx    *fixture
	order *[]packet.NodeID // shared across receivers: global handler order
	id    packet.NodeID
	times []time.Duration
}

func (r *timedRecorder) HandlePacket(p packet.Packet) {
	r.times = append(r.times, r.fx.sched.Now())
	*r.order = append(*r.order, r.id)
}

// deferredFixture rebinds the standard 3-node chain fixture with
// time-logging receivers and switches the network to deferred mode.
func deferredFixture(t *testing.T, proc time.Duration) (*fixture, []*timedRecorder, *[]packet.NodeID) {
	t.Helper()
	fx := newFixture(t, noBackoff())
	fx.nw.DeferProcessing(proc)
	order := new([]packet.NodeID)
	recs := make([]*timedRecorder, 3)
	for i := range recs {
		recs[i] = &timedRecorder{fx: fx, order: order, id: packet.NodeID(i)}
		fx.nw.Bind(packet.NodeID(i), recs[i])
	}
	return fx, recs, order
}

func TestDeferredHandlersRunAtCompletionPlusProc(t *testing.T) {
	const proc = 5 * time.Millisecond
	fx, recs, _ := deferredFixture(t, proc)

	var delivered time.Duration
	fx.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			delivered = fx.sched.Now()
		}
	})
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 1, Dst: packet.Broadcast, Level: radio.MaxPower})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if delivered == 0 {
		t.Fatal("no delivery traced")
	}
	for _, r := range []*timedRecorder{recs[0], recs[2]} {
		if len(r.times) != 1 {
			t.Fatalf("node %d handled %d packets, want 1", r.id, len(r.times))
		}
		if got, want := r.times[0], delivered+proc; got != want {
			t.Fatalf("node %d handler ran at %v, want delivery(%v)+proc = %v", r.id, got, delivered, want)
		}
	}
}

func TestDeferredBatchPreservesReceiverOrder(t *testing.T) {
	fx, _, order := deferredFixture(t, time.Millisecond)
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 1, Dst: packet.Broadcast, Level: radio.MaxPower})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	// ReachedBy order is ascending node id: 0 then 2.
	if len(*order) != 2 || (*order)[0] != 0 || (*order)[1] != 2 {
		t.Fatalf("handler order %v, want [0 2]", *order)
	}
}

func TestDeferredSkipsReceiverDeadBeforeProcessing(t *testing.T) {
	// A receiver that fails after delivery (energy charged, trace emitted)
	// but before completion+proc silently skips its handler — the same
	// window the old per-receiver After(Proc) closures checked.
	const proc = 2 * time.Second
	fx, recs, _ := deferredFixture(t, proc)
	// The transmission completes within milliseconds; 1s is safely inside
	// the (completion, completion+proc) window.
	fx.sched.At(time.Second, func() { fx.nw.Fail(2) })
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 1, Dst: packet.Broadcast, Level: radio.MaxPower})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(recs[0].times) != 1 {
		t.Fatalf("live receiver handled %d packets, want 1", len(recs[0].times))
	}
	if len(recs[2].times) != 0 {
		t.Fatalf("dead receiver's handler ran %d times, want 0", len(recs[2].times))
	}
	// The delivery itself happened while the node was up: it counts as Rx
	// energy, not as a drop.
	if fx.nw.Counters().Drops != 0 {
		t.Fatalf("Drops = %d, want 0 (death after delivery is not a drop)", fx.nw.Counters().Drops)
	}
}

func TestDeferProcessingZeroStillBatches(t *testing.T) {
	// proc=0 matches the old After(0) semantics: handlers run at the
	// completion instant but in their own event, after onComplete returns.
	fx, recs, _ := deferredFixture(t, 0)
	var delivered time.Duration
	fx.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			delivered = fx.sched.Now()
		}
	})
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 0, Dst: 1, Level: 1})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(recs[1].times) != 1 || recs[1].times[0] != delivered {
		t.Fatalf("unicast handler times %v, want one handling at delivery time %v", recs[1].times, delivered)
	}
}

// forwarder re-Sends from its own node on the first packet it handles —
// the re-entrant case that grows the flight arena mid-batch.
type forwarder struct {
	fx   *fixture
	id   packet.NodeID
	got  int
	sent bool
}

func (f *forwarder) HandlePacket(p packet.Packet) {
	f.got++
	if !f.sent {
		f.sent = true
		f.fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: f.id, Dst: packet.Broadcast, Level: radio.MaxPower})
	}
}

func TestDeferredReentrantSendGrowsArenaSafely(t *testing.T) {
	// Handlers Sending mid-batch append new flights; the batch must keep
	// iterating its own (possibly relocated) slot without losing receivers.
	fx := newFixture(t, noBackoff())
	fx.nw.DeferProcessing(time.Millisecond)
	fwds := make([]*forwarder, 3)
	for i := range fwds {
		fwds[i] = &forwarder{fx: fx, id: packet.NodeID(i)}
		fx.nw.Bind(packet.NodeID(i), fwds[i])
	}
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 1, Dst: packet.Broadcast, Level: radio.MaxPower})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	// At max power every broadcast reaches both other nodes. Each node
	// forwards exactly once: 4 transmissions × 2 receivers = 8 deliveries,
	// 3 at the ends (seed + two forwards) and 2 at the seeding middle node.
	total := fwds[0].got + fwds[1].got + fwds[2].got
	if total != 8 || fwds[0].got != 3 || fwds[1].got != 2 || fwds[2].got != 3 {
		t.Fatalf("deliveries %d/%d/%d (total %d), want 3/2/3", fwds[0].got, fwds[1].got, fwds[2].got, total)
	}
	if got := fx.nw.Counters().TotalSent(); got != 4 {
		t.Fatalf("TotalSent = %d, want 4", got)
	}
}

// countingRecorder handles packets without retaining them, so the steady
// state allocates nothing on the receiver side either.
type countingRecorder struct{ n int }

func (r *countingRecorder) HandlePacket(packet.Packet) { r.n++ }

// TestBatchedDispatchAllocFree is the 0-alloc guard on the batched dispatch
// path (run in CI): after warmup, a full Send → complete → batched-handler
// cycle must not allocate — flight slots, destination lists, and scheduler
// events are all pooled, and the pre-bound method values avoid the
// per-packet closures this design replaced.
func TestBatchedDispatchAllocFree(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.DeferProcessing(time.Millisecond)
	recs := make([]*countingRecorder, 3)
	for i := range recs {
		recs[i] = &countingRecorder{}
		fx.nw.Bind(packet.NodeID(i), recs[i])
	}
	lvl := radio.MaxPower
	cycle := func() {
		for i := 0; i < 16; i++ {
			fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 1, Dst: packet.Broadcast, Level: lvl})
			fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 1})
		}
		if err := fx.sched.RunUntilIdle(0); err != nil {
			t.Error(err)
		}
	}
	cycle() // warm the arena, dsts capacity, and event pool
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state batched dispatch allocated %.1f times per cycle, want 0", allocs)
	}
	if recs[0].n == 0 || recs[1].n == 0 {
		t.Fatal("no deliveries recorded — cycle did not exercise the dispatch path")
	}
}
