package network

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topo"
)

// recorder is a Receiver that logs deliveries.
type recorder struct {
	got []packet.Packet
}

func (r *recorder) HandlePacket(p packet.Packet) { r.got = append(r.got, p) }

type fixture struct {
	sched *sim.Scheduler
	nw    *Network
	recs  []*recorder
}

// newFixture builds a 3-node chain, 5 m apart, MICA2 radio, zero-backoff MAC
// for exact-delay assertions (G=0.01 retained).
func newFixture(t *testing.T, macCfg mac.Config) *fixture {
	t.Helper()
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(3, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	nw, err := New(sched, f, sim.NewRNG(1), Config{Sizes: packet.DefaultSizes(), MAC: macCfg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = &recorder{}
		nw.Bind(packet.NodeID(i), recs[i])
	}
	return &fixture{sched: sched, nw: nw, recs: recs}
}

func noBackoff() mac.Config {
	return mac.Config{G: 0.01, SlotTime: 0, NumSlots: 0}
}

func TestNewValidation(t *testing.T) {
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(2, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	rng := sim.NewRNG(1)
	if _, err := New(nil, f, rng, DefaultConfig()); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := New(sched, nil, rng, DefaultConfig()); err == nil {
		t.Fatal("nil field accepted")
	}
	if _, err := New(sched, f, nil, DefaultConfig()); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := DefaultConfig()
	bad.Sizes.ADV = 0
	if _, err := New(sched, f, rng, bad); err == nil {
		t.Fatal("invalid sizes accepted")
	}
	bad2 := DefaultConfig()
	bad2.MAC.G = -1
	if _, err := New(sched, f, rng, bad2); err == nil {
		t.Fatal("invalid MAC config accepted")
	}
}

func TestUnicastDelivery(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 1 {
		t.Fatalf("node 1 got %d packets, want 1", len(fx.recs[1].got))
	}
	if len(fx.recs[0].got) != 0 || len(fx.recs[2].got) != 0 {
		t.Fatal("unicast leaked to other nodes")
	}
	got := fx.recs[1].got[0]
	if got.Kind != packet.REQ || got.Bytes != 2 {
		t.Fatalf("delivered packet %v; want REQ with 2 bytes", got)
	}
}

func TestUnicastTiming(t *testing.T) {
	fx := newFixture(t, noBackoff())
	// Node 0 at min power (5.48 m) reaches node 1 only: contenders = 2.
	// Access delay = 0.01·4 = 0.04 ms; DATA airtime = 40 B × 0.05 ms = 2 ms.
	var deliveredAt time.Duration
	fx.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			deliveredAt = fx.sched.Now()
		}
	})
	fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := 40*time.Microsecond + 2*time.Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestBroadcastReachesLevelRange(t *testing.T) {
	fx := newFixture(t, noBackoff())
	// Level 4 (11.28 m) from node 0 reaches nodes 1 (5 m) and 2 (10 m).
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 0, Dst: packet.Broadcast, Level: 4})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 1 || len(fx.recs[2].got) != 1 {
		t.Fatalf("broadcast deliveries = %d/%d, want 1/1", len(fx.recs[1].got), len(fx.recs[2].got))
	}
	// At level 5 (5.48 m) only node 1 is reachable.
	fx2 := newFixture(t, noBackoff())
	fx2.nw.Send(packet.Packet{Kind: packet.ADV, Src: 0, Dst: packet.Broadcast, Level: 5})
	if err := fx2.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx2.recs[1].got) != 1 || len(fx2.recs[2].got) != 0 {
		t.Fatal("level-5 broadcast should reach only node 1")
	}
}

func TestEnergyAccounting(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	m := radio.MICA2()
	wantTx := m.TxEnergy(40, 5)
	wantRx := m.RxEnergy(40)
	if got := fx.nw.Energy().Node(0).Tx; got != wantTx {
		t.Fatalf("sender tx energy %v, want %v", got, wantTx)
	}
	if got := fx.nw.Energy().Node(1).Rx; got != wantRx {
		t.Fatalf("receiver rx energy %v, want %v", got, wantRx)
	}
	if got := fx.nw.Energy().Node(2).Total(); got != 0 {
		t.Fatalf("bystander charged %v", got)
	}
}

func TestBroadcastChargesAllReceivers(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 0, Dst: packet.Broadcast, Level: 1})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	m := radio.MICA2()
	for _, id := range []packet.NodeID{1, 2} {
		if got := fx.nw.Energy().Node(id).Rx; got != m.RxEnergy(2) {
			t.Fatalf("node %d rx=%v, want %v", id, got, m.RxEnergy(2))
		}
	}
}

func TestDeadSenderDrops(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Fail(0)
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 0 {
		t.Fatal("dead sender delivered a packet")
	}
	if fx.nw.Counters().Drops != 1 {
		t.Fatalf("Drops=%d, want 1", fx.nw.Counters().Drops)
	}
	if fx.nw.Energy().Total() != 0 {
		t.Fatal("dead sender was charged energy")
	}
}

func TestSenderFailsMidTransmission(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 5})
	// Kill the sender while the frame is in the air (airtime ≈ 2.04 ms).
	fx.sched.After(time.Millisecond, func() { fx.nw.Fail(0) })
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 0 {
		t.Fatal("packet delivered despite sender failing mid-tx")
	}
	if fx.nw.Energy().Node(0).Tx != 0 {
		t.Fatal("cancelled transmission was charged")
	}
}

func TestDeadReceiverDrops(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Fail(1)
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 0 {
		t.Fatal("dead receiver handled a packet")
	}
	// Sender still spent the tx energy (it doesn't know the peer is down).
	if fx.nw.Energy().Node(0).Tx == 0 {
		t.Fatal("sender should be charged for the attempt")
	}
	if fx.nw.Energy().Node(1).Rx != 0 {
		t.Fatal("dead receiver was charged rx energy")
	}
}

func TestRecoveryRestoresDelivery(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Fail(1)
	fx.nw.Recover(1)
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 1 {
		t.Fatal("recovered node did not receive")
	}
}

func TestOutOfRangeUnicastDrops(t *testing.T) {
	fx := newFixture(t, noBackoff())
	// Node 2 is 10 m away; level 5 reaches 5.48 m.
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 2, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[2].got) != 0 {
		t.Fatal("out-of-range unicast delivered")
	}
	if fx.nw.Counters().Drops != 1 {
		t.Fatalf("Drops=%d, want 1", fx.nw.Counters().Drops)
	}
}

func TestBroadcastSkipsDeadNodes(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Fail(1)
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 0, Dst: packet.Broadcast, Level: 1})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(fx.recs[1].got) != 0 {
		t.Fatal("dead node received broadcast")
	}
	if len(fx.recs[2].got) != 1 {
		t.Fatal("alive node missed broadcast")
	}
}

func TestCountersTrackSends(t *testing.T) {
	fx := newFixture(t, noBackoff())
	fx.nw.Send(packet.Packet{Kind: packet.ADV, Src: 0, Dst: packet.Broadcast, Level: 1})
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 1, Dst: 0, Level: 5})
	fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	c := fx.nw.Counters()
	if c.Sent[packet.ADV] != 1 || c.Sent[packet.REQ] != 1 || c.Sent[packet.DATA] != 1 {
		t.Fatalf("Sent=%v", c.Sent)
	}
	if c.TotalSent() != 3 {
		t.Fatalf("TotalSent=%d, want 3", c.TotalSent())
	}
}

func TestTraceEvents(t *testing.T) {
	fx := newFixture(t, noBackoff())
	var events []TraceEvent
	fx.nw.SetTrace(func(ev TraceEvent) { events = append(events, ev) })
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d trace events, want tx+deliver", len(events))
	}
	if events[0].Kind != TraceTx || events[1].Kind != TraceDeliver {
		t.Fatalf("trace order wrong: %v, %v", events[0].Kind, events[1].Kind)
	}
	fx.nw.SetTrace(nil) // must not panic afterwards
	fx.nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Property: the account's total energy equals the sum, over trace
	// events, of the model's per-event energies — no double counting, no
	// leaks. Drive a random mix of unicasts and broadcasts.
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(5, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	nw, err := New(sched, f, sim.NewRNG(9), DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		nw.Bind(packet.NodeID(i), &recorder{})
	}
	m := f.Model()
	// Rx side: sum the model's receive energy over delivery trace events.
	var expected float64
	nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			expected += float64(m.RxEnergy(ev.Packet.Bytes))
		}
	})
	// Tx side: every send completes (all nodes stay alive), so the Tx sum
	// must equal the per-send model energies exactly.
	rng := sim.NewRNG(10)
	type sent struct {
		bytes int
		level radio.Level
	}
	var sends []sent
	for i := 0; i < 200; i++ {
		src := packet.NodeID(rng.Intn(5))
		kind := packet.REQ
		if rng.Bool(0.3) {
			kind = packet.DATA
		}
		p := packet.Packet{Kind: kind, Src: src, Level: radio.Level(1 + rng.Intn(5))}
		if rng.Bool(0.5) {
			p.Dst = packet.Broadcast
		} else {
			p.Dst = packet.NodeID(rng.Intn(5))
			if p.Dst == src {
				p.Dst = (p.Dst + 1) % 5
			}
		}
		nw.Send(p)
		sends = append(sends, sent{bytes: nw.Sizes().Of(kind), level: p.Level})
	}
	if err := sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	var expectedTx float64
	for _, s := range sends {
		expectedTx += float64(m.TxEnergy(s.bytes, s.level))
	}
	gotTx := float64(nw.Energy().TotalBreakdown().Tx)
	if diff := gotTx - expectedTx; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("tx energy %v, expected %v (all senders alive)", gotTx, expectedTx)
	}
	gotRx := float64(nw.Energy().TotalBreakdown().Rx)
	if diff := gotRx - expected; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("rx energy %v, trace-derived %v", gotRx, expected)
	}
	if nw.Energy().TotalBreakdown().Ctrl != 0 {
		t.Fatal("no control traffic was sent")
	}
}

func TestFaultTargetInterface(t *testing.T) {
	fx := newFixture(t, noBackoff())
	var target fault.Target = fx.nw
	if target.N() != 3 {
		t.Fatalf("N=%d, want 3", target.N())
	}
	if !target.Alive(0) {
		t.Fatal("nodes must start alive")
	}
	target.Fail(0)
	if target.Alive(0) {
		t.Fatal("Fail did not take")
	}
	target.Recover(0)
	if !target.Alive(0) {
		t.Fatal("Recover did not take")
	}
}

func TestUnboundReceiverPanics(t *testing.T) {
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(2, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	nw, err := New(sched, f, sim.NewRNG(1), Config{Sizes: packet.DefaultSizes(), MAC: noBackoff()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	nw.Bind(0, &recorder{})
	nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to unbound node should panic")
		}
	}()
	_ = sched.RunUntilIdle(0)
}

func TestBindValidation(t *testing.T) {
	fx := newFixture(t, noBackoff())
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil receiver should panic")
			}
		}()
		fx.nw.Bind(0, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range bind should panic")
			}
		}()
		fx.nw.Bind(9, &recorder{})
	}()
}

func TestCarrierSenseSerializesOverlappingTransmissions(t *testing.T) {
	// Two max-power DATA sends from the same node: with carrier sense the
	// second must start after the first frame ends, so the deliveries are
	// at least one DATA airtime (2 ms) apart.
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(3, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	cfg := Config{Sizes: packet.DefaultSizes(), MAC: noBackoff(), CarrierSense: true}
	nw, err := New(sched, f, sim.NewRNG(1), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		nw.Bind(packet.NodeID(i), &recorder{})
	}
	var deliveries []time.Duration
	nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			deliveries = append(deliveries, sched.Now())
		}
	})
	nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 1})
	nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 2, Level: 1})
	if err := sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(deliveries))
	}
	gap := deliveries[1] - deliveries[0]
	if gap < 2*time.Millisecond {
		t.Fatalf("deliveries %v apart; carrier sense should serialize by ≥ one 2ms airtime", gap)
	}
}

func TestCarrierSenseSpatialReuse(t *testing.T) {
	// Two low-power transmissions in disjoint neighborhoods must NOT
	// serialize: node 0→1 and node 3→4 on a chain where min power (5.48 m)
	// keeps the reservations disjoint.
	sched := sim.NewScheduler()
	f, err := topo.NewChainField(5, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	// Zero-delay MAC so any delivery-time difference can only come from
	// channel serialization.
	cfg := Config{Sizes: packet.DefaultSizes(), MAC: mac.Config{}, CarrierSense: true}
	nw, err := New(sched, f, sim.NewRNG(1), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		nw.Bind(packet.NodeID(i), &recorder{})
	}
	var deliveries []time.Duration
	nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			deliveries = append(deliveries, sched.Now())
		}
	})
	nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 5})
	nw.Send(packet.Packet{Kind: packet.DATA, Src: 3, Dst: 4, Level: 5})
	if err := sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(deliveries))
	}
	if gap := deliveries[1] - deliveries[0]; gap != 0 {
		t.Fatalf("disjoint low-power transmissions serialized by %v; spatial reuse broken", gap)
	}
}

func TestCarrierSenseOffByDefault(t *testing.T) {
	fx := newFixture(t, noBackoff())
	var deliveries []time.Duration
	fx.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDeliver {
			deliveries = append(deliveries, fx.sched.Now())
		}
	})
	fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 1, Level: 1})
	fx.nw.Send(packet.Packet{Kind: packet.DATA, Src: 0, Dst: 2, Level: 1})
	if err := fx.sched.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(deliveries))
	}
	if gap := deliveries[1] - deliveries[0]; gap != 0 {
		t.Fatalf("without carrier sense, concurrent sends should overlap (gap %v)", gap)
	}
}

func TestBackoffVariesWithRNG(t *testing.T) {
	// With the full Table 1 MAC, delivery times should vary across seeds.
	times := map[time.Duration]bool{}
	for seed := int64(0); seed < 8; seed++ {
		sched := sim.NewScheduler()
		f, err := topo.NewChainField(3, 5, radio.MICA2())
		if err != nil {
			t.Fatalf("NewChainField: %v", err)
		}
		nw, err := New(sched, f, sim.NewRNG(seed), DefaultConfig())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for i := 0; i < 3; i++ {
			nw.Bind(packet.NodeID(i), &recorder{})
		}
		var at time.Duration
		nw.SetTrace(func(ev TraceEvent) {
			if ev.Kind == TraceDeliver {
				at = sched.Now()
			}
		})
		nw.Send(packet.Packet{Kind: packet.REQ, Src: 0, Dst: 1, Level: 5})
		if err := sched.RunUntilIdle(0); err != nil {
			t.Fatalf("RunUntilIdle: %v", err)
		}
		times[at] = true
	}
	if len(times) < 2 {
		t.Fatal("backoff produced identical delays across 8 seeds")
	}
}
