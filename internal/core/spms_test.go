package core

import (
	"testing"
	"time"

	"repro/internal/dissem"
	"repro/internal/mac"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
)

type fixture struct {
	sched  *sim.Scheduler
	field  *topo.Field
	nw     *network.Network
	ledger *dissem.Ledger
	sys    *System
	events []network.TraceEvent
}

func (fx *fixture) recordTrace() {
	fx.nw.SetTrace(func(ev network.TraceEvent) { fx.events = append(fx.events, ev) })
}

func buildFixture(t *testing.T, field *topo.Field, interest dissem.Interest, cfg Config, seed int64) *fixture {
	t.Helper()
	sched := sim.NewScheduler()
	nw, err := network.New(sched, field, sim.NewRNG(seed), network.Config{
		Sizes: packet.DefaultSizes(),
		MAC:   mac.DefaultConfig(),
	})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	ledger := dissem.NewLedger()
	tables := routing.Compute(routing.BuildGraph(field), routing.DefaultAlternatives)
	sys, err := NewSystem(nw, ledger, interest, tables, cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return &fixture{sched: sched, field: field, nw: nw, ledger: ledger, sys: sys}
}

// chainFixture builds the §3.3/§3.5 line topology: n nodes 5 m apart with
// full MICA2, so every node is in every other's zone and multi-hop at
// minimum power is cheaper than any direct transmission.
func chainFixture(t *testing.T, n int, interest dissem.Interest, seed int64) *fixture {
	t.Helper()
	f, err := topo.NewChainField(n, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	return buildFixture(t, f, interest, DefaultConfig(), seed)
}

// patientChainFixture is chainFixture with a τADV long enough that waiting
// destinations always hear a relay's re-advertisement first — the explicit
// assumption of the paper's worked examples ("suppose C's timer τADV has
// not expired yet", §3.3; likewise §3.5's promotion sequence).
func patientChainFixture(t *testing.T, n int, interest dissem.Interest, seed int64) *fixture {
	t.Helper()
	f, err := topo.NewChainField(n, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	cfg := DefaultConfig()
	cfg.TOutADV = 30 * time.Millisecond
	return buildFixture(t, f, interest, cfg, seed)
}

func gridFixture(t *testing.T, n int, zoneRadius float64, interest dissem.Interest, seed int64) *fixture {
	t.Helper()
	m, err := radio.ScaledMICA2(zoneRadius)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewGridField(n, 5, m)
	if err != nil {
		t.Fatalf("NewGridField: %v", err)
	}
	return buildFixture(t, f, interest, DefaultConfig(), seed)
}

func run(t *testing.T, fx *fixture, horizon time.Duration) {
	t.Helper()
	if err := fx.sched.Run(horizon); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default", func(c *Config) {}, false},
		{"zero TOutADV", func(c *Config) { c.TOutADV = 0 }, true},
		{"zero TOutDAT", func(c *Config) { c.TOutDAT = 0 }, true},
		{"negative proc", func(c *Config) { c.Proc = -1 }, true},
		{"negative attempts", func(c *Config) { c.MaxAttempts = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestNewSystemValidation(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 1)
	tables := fx.sys.Tables()
	if _, err := NewSystem(nil, fx.ledger, dissem.Everyone, tables, DefaultConfig()); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewSystem(fx.nw, nil, dissem.Everyone, tables, DefaultConfig()); err == nil {
		t.Fatal("nil ledger accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, nil, tables, DefaultConfig()); err == nil {
		t.Fatal("nil interest accepted")
	}
	if _, err := NewSystem(fx.nw, fx.ledger, dissem.Everyone, nil, DefaultConfig()); err == nil {
		t.Fatal("nil tables accepted")
	}
	bad := DefaultConfig()
	bad.TOutADV = 0
	if _, err := NewSystem(fx.nw, fx.ledger, dissem.Everyone, tables, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOriginateValidation(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 1)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(1, d); err == nil {
		t.Fatal("wrong origin accepted")
	}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	if err := fx.sys.Originate(0, d); err == nil {
		t.Fatal("duplicate origination accepted")
	}
	fx.nw.Fail(2)
	if err := fx.sys.Originate(2, packet.DataID{Origin: 2, Seq: 0}); err == nil {
		t.Fatal("dead origin accepted")
	}
}

// TestSection33CaseI scripts §3.3 Case I: A(0), B(1), C(2); both B and C
// want A's data. B requests directly; C waits, hears B's re-advertisement,
// promotes B to PRONE (SCONE=A) and requests B directly.
func TestSection33CaseI(t *testing.T) {
	fx := patientChainFixture(t, 3, dissem.Everyone, 3)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 500*time.Millisecond)

	if !fx.sys.Has(1, d) || !fx.sys.Has(2, d) {
		t.Fatal("B or C never received the data")
	}
	if fx.ledger.Deliveries() != 2 {
		t.Fatalf("Deliveries=%d, want 2", fx.ledger.Deliveries())
	}
	// C's REQ must have gone to B (node 1), never to A at high power.
	var reqFromC []packet.Packet
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.REQ && ev.Packet.Src == 2 {
			reqFromC = append(reqFromC, ev.Packet)
		}
	}
	if len(reqFromC) != 1 {
		t.Fatalf("C sent %d REQs, want 1", len(reqFromC))
	}
	if reqFromC[0].Dst != 1 || reqFromC[0].Provider != 1 {
		t.Fatalf("C requested %v, want direct to B", reqFromC[0])
	}
	// The DATA C received must come from B at minimum power (5 m hop).
	for _, ev := range fx.events {
		if ev.Kind == network.TraceDeliver && ev.Packet.Kind == packet.DATA && ev.Node == 2 {
			if ev.Packet.Src != 1 {
				t.Fatalf("C's data came from %d, want B", ev.Packet.Src)
			}
			if ev.Packet.Level != 5 {
				t.Fatalf("C's data at level %v, want 5 (minimum power)", ev.Packet.Level)
			}
		}
	}
	if fx.nw.Counters().Failovers != 0 {
		t.Fatalf("failure-free run recorded %d failovers", fx.nw.Counters().Failovers)
	}
}

// TestSection33CaseII scripts §3.3 Case II: B is not interested, so C's
// τADV expires and its REQ is routed through B to A; the data comes back
// through B.
func TestSection33CaseII(t *testing.T) {
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == 2 }
	fx := chainFixture(t, 3, interest, 4)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 500*time.Millisecond)

	if !fx.sys.Has(2, d) {
		t.Fatal("C never received the data")
	}
	// B must have relayed C's REQ toward A.
	sawRelayedREQ := false
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.REQ &&
			ev.Packet.Src == 1 && ev.Packet.Dst == 0 &&
			ev.Packet.Requester == 2 && ev.Packet.Provider == 0 {
			sawRelayedREQ = true
		}
	}
	if !sawRelayedREQ {
		t.Fatal("B never relayed C's REQ to A")
	}
	// B relayed the DATA and therefore caches it (§1: relays may cache).
	if !fx.sys.Has(1, d) {
		t.Fatal("relay B did not cache the data")
	}
	// C's τADV expired exactly once before the multi-hop request.
	if fx.nw.Counters().Timeouts < 1 {
		t.Fatal("expected at least one τADV expiry")
	}
}

// TestSection35Case1 scripts §3.5 Case 1: A(0), r1(1), r2(2), C(3); r2
// fails before acquiring/advertising the data. C's τADV expires, its
// multi-hop REQ dies at r2, τDAT expires, and C requests PRONE r1 directly
// at a higher power level.
func TestSection35Case1(t *testing.T) {
	fx := patientChainFixture(t, 4, dissem.Everyone, 5)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	// Fail r2 immediately: it never requests, never advertises.
	fx.nw.Fail(2)
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 2*time.Second)

	if !fx.sys.Has(3, d) {
		t.Fatal("C never received the data despite failover")
	}
	if fx.nw.Counters().Failovers == 0 {
		t.Fatal("no failover recorded")
	}
	// C's final successful request went directly to r1 (node 1): Dst=1 and
	// Provider=1 from Src=3 at a level spanning 10 m (level 4, not 5).
	var directREQ *packet.Packet
	for i := range fx.events {
		ev := fx.events[i]
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.REQ &&
			ev.Packet.Src == 3 && ev.Packet.Dst == 1 && ev.Packet.Provider == 1 {
			directREQ = &fx.events[i].Packet
		}
	}
	if directREQ == nil {
		t.Fatal("C never sent the direct REQ to r1")
	}
	if directREQ.Level != 4 {
		t.Fatalf("direct REQ at level %v, want 4 (higher power for 10 m)", directREQ.Level)
	}
	// And r1 answered with a direct DATA to C.
	sawDirectData := false
	for _, ev := range fx.events {
		if ev.Kind == network.TraceDeliver && ev.Packet.Kind == packet.DATA &&
			ev.Node == 3 && ev.Packet.Src == 1 {
			sawDirectData = true
		}
	}
	if !sawDirectData {
		t.Fatal("r1 did not serve C directly")
	}
}

// TestSection35Case2 scripts §3.5 Case 2: r2 fails after advertising. C
// requests r2 directly (its next-hop neighbor and PRONE), times out, and
// falls over to the SCONE r1 directly.
func TestSection35Case2(t *testing.T) {
	fx := patientChainFixture(t, 4, dissem.Everyone, 6)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}

	// Let r2 acquire and advertise, then kill it the moment its ADV is on
	// the air (trace callback runs at tx time).
	killed := false
	fx.nw.SetTrace(func(ev network.TraceEvent) {
		fx.events = append(fx.events, ev)
		if !killed && ev.Kind == network.TraceDeliver && ev.Packet.Kind == packet.ADV && ev.Packet.Src == 2 {
			killed = true
			fx.nw.Fail(2)
		}
	})
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 2*time.Second)

	if !killed {
		t.Fatal("test setup: r2 never advertised")
	}
	if !fx.sys.Has(3, d) {
		t.Fatal("C never received the data despite failover")
	}
	// Before the failure, C promoted r2 to PRONE with SCONE r1 — verify the
	// failover REQ went directly to r1.
	sawSconeREQ := false
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.REQ &&
			ev.Packet.Src == 3 && ev.Packet.Dst == 1 && ev.Packet.Provider == 1 {
			sawSconeREQ = true
		}
	}
	if !sawSconeREQ {
		t.Fatal("C never fell over to SCONE r1")
	}
	if fx.nw.Counters().Failovers == 0 {
		t.Fatal("no failover recorded")
	}
}

func TestProneSconePromotion(t *testing.T) {
	fx := patientChainFixture(t, 3, dissem.Everyone, 7)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	// Stop the run at the instant C has heard both A's and B's ADVs but is
	// still waiting for its data: B's ADV goes out after it gets the data.
	// Poll PRONE state as the run progresses.
	var sawPromotion bool
	var check func()
	check = func() {
		prone, scone, ok := fx.sys.Prone(2, d)
		if ok && prone == 1 && scone == 0 {
			sawPromotion = true
		}
		if !fx.sys.Has(2, d) {
			fx.sched.After(100*time.Microsecond, check)
		}
	}
	fx.sched.After(100*time.Microsecond, check)
	run(t, fx, time.Second)
	if !sawPromotion {
		t.Fatal("C never promoted B to PRONE with A as SCONE")
	}
	// After delivery the acquisition state is cleared.
	if _, _, ok := fx.sys.Prone(2, d); ok {
		t.Fatal("acquisition state not cleared after delivery")
	}
}

func TestMultiHopUsesMinimumPower(t *testing.T) {
	// On the 5 m chain every protocol hop (REQ/DATA) must use level 5; only
	// ADV broadcasts and failover escalations may use more power.
	fx := chainFixture(t, 5, dissem.Everyone, 8)
	fx.recordTrace()
	if err := fx.sys.Originate(0, packet.DataID{Origin: 0, Seq: 0}); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 2*time.Second)
	for _, ev := range fx.events {
		if ev.Kind != network.TraceTx {
			continue
		}
		switch ev.Packet.Kind {
		case packet.ADV:
			if ev.Packet.Level != radio.MaxPower {
				t.Fatalf("ADV at level %v, want max power", ev.Packet.Level)
			}
		case packet.REQ, packet.DATA:
			if ev.Packet.Level != 5 {
				t.Fatalf("failure-free %v hop at level %v, want 5: %v",
					ev.Packet.Kind, ev.Packet.Level, ev.Packet)
			}
		}
	}
}

func TestFullDisseminationOnGrid(t *testing.T) {
	fx := gridFixture(t, 25, 15, dissem.Everyone, 9)
	d := packet.DataID{Origin: 12, Seq: 0}
	if err := fx.sys.Originate(12, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 5*time.Second)
	for id := 0; id < 25; id++ {
		if !fx.sys.Has(packet.NodeID(id), d) {
			t.Fatalf("node %d never received the data", id)
		}
	}
	if fx.ledger.Deliveries() != 24 {
		t.Fatalf("Deliveries=%d, want 24", fx.ledger.Deliveries())
	}
}

func TestCornerToCornerAcrossZones(t *testing.T) {
	// 7×7 grid with a 12 m zone: corner to corner is far outside one zone,
	// so delivery relies on relay re-advertisement rippling data across.
	fx := gridFixture(t, 49, 12, dissem.Everyone, 10)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 10*time.Second)
	if !fx.sys.Has(48, d) {
		t.Fatal("far corner never received the data")
	}
	if fx.ledger.Deliveries() != 48 {
		t.Fatalf("Deliveries=%d, want 48", fx.ledger.Deliveries())
	}
}

func TestUninterestedNodesServeAsRelays(t *testing.T) {
	// Only the chain's far end wants data; middle nodes must still relay.
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == 3 }
	fx := chainFixture(t, 4, interest, 11)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 2*time.Second)
	if !fx.sys.Has(3, d) {
		t.Fatal("interested node starved")
	}
	if fx.ledger.Deliveries() != 1 {
		t.Fatalf("Deliveries=%d, want 1 (only one interested node)", fx.ledger.Deliveries())
	}
}

func TestSourceFailureAfterNeighborHasData(t *testing.T) {
	// §3.4 tolerance claim 1: the source may die once any zone neighbor
	// holds the data; the rest of the network still gets it.
	fx := chainFixture(t, 4, dissem.Everyone, 12)
	d := packet.DataID{Origin: 0, Seq: 0}
	killed := false
	fx.nw.SetTrace(func(ev network.TraceEvent) {
		// Kill A as soon as r1 (node 1) has received the DATA.
		if !killed && ev.Kind == network.TraceDeliver && ev.Packet.Kind == packet.DATA && ev.Node == 1 {
			killed = true
			fx.nw.Fail(0)
		}
	})
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 3*time.Second)
	if !killed {
		t.Fatal("test setup: node 1 never received data")
	}
	for id := 1; id < 4; id++ {
		if !fx.sys.Has(packet.NodeID(id), d) {
			t.Fatalf("node %d starved after source failure", id)
		}
	}
}

func TestTransientFailureRecoveryServesCache(t *testing.T) {
	// A node that held data, failed, and recovered still serves it: the
	// cache survives transient failures.
	fx := chainFixture(t, 3, dissem.Everyone, 13)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, time.Second)
	if !fx.sys.Has(1, d) {
		t.Fatal("setup: B lacks data")
	}
	fx.nw.Fail(1)
	fx.nw.Recover(1)
	if !fx.sys.Has(1, d) {
		t.Fatal("cache lost across transient failure")
	}
}

func TestSetTables(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 14)
	fresh := routing.Compute(routing.BuildGraph(fx.field), 2)
	fx.sys.SetTables(fresh)
	if fx.sys.Tables() != fresh {
		t.Fatal("SetTables did not swap tables")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetTables(nil) should panic")
		}
	}()
	fx.sys.SetTables(nil)
}

func TestAutoTimeoutsScaleWithHops(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 15)
	if got, want := fx.sys.tauDAT(3), fx.sys.tauDAT(1); got <= want {
		t.Fatalf("tauDAT(3)=%v not > tauDAT(1)=%v", got, want)
	}
	if fx.sys.tauADV() != fx.sys.cfg.TOutADV {
		t.Fatal("τADV must stay at the tight base value (see Config doc)")
	}
	// Fixed timeouts return the configured constants.
	cfg := DefaultConfig()
	cfg.AutoTimeouts = false
	f, err := topo.NewChainField(3, 5, radio.MICA2())
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	fixed := buildFixture(t, f, dissem.Everyone, cfg, 15)
	if fixed.sys.tauADV() != DefaultTOutADV {
		t.Fatalf("fixed tauADV=%v, want %v", fixed.sys.tauADV(), DefaultTOutADV)
	}
	if fixed.sys.tauDAT(7) != DefaultTOutDAT {
		t.Fatalf("fixed tauDAT=%v, want %v", fixed.sys.tauDAT(7), DefaultTOutDAT)
	}
}

func TestMaxAttemptsBoundsRequests(t *testing.T) {
	// Kill every possible provider: C can never get data, and its REQ count
	// must stay within MaxAttempts.
	fx := chainFixture(t, 3, dissem.Everyone, 16)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	// Fail A and B right after the initial ADV leaves A.
	fx.sched.After(50*time.Millisecond, func() {
		fx.nw.Fail(0)
		fx.nw.Fail(1)
	})
	run(t, fx, 10*time.Second)
	reqs := 0
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.REQ && ev.Packet.Src == 2 {
			reqs++
		}
	}
	if reqs > fx.sys.Config().MaxAttempts {
		t.Fatalf("C sent %d REQs, budget %d", reqs, fx.sys.Config().MaxAttempts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	results := make([]time.Duration, 2)
	deliveries := make([]int, 2)
	for i := range results {
		fx := gridFixture(t, 25, 15, dissem.Everyone, 77)
		if err := fx.sys.Originate(12, packet.DataID{Origin: 12, Seq: 0}); err != nil {
			t.Fatalf("Originate: %v", err)
		}
		run(t, fx, 3*time.Second)
		results[i] = fx.ledger.Delays().Mean()
		deliveries[i] = fx.ledger.Deliveries()
	}
	if results[0] != results[1] || deliveries[0] != deliveries[1] {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", results[0], deliveries[0], results[1], deliveries[1])
	}
}

func TestHooksPanicOutOfRange(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 1)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Has", func() { fx.sys.Has(99, packet.DataID{}) }},
		{"Prone", func() { fx.sys.Prone(-1, packet.DataID{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}
