// interzone.go implements the paper's §6 future-work extension: "an
// extension to SPMS to disseminate data when the source and the destination
// are in separate zones with no interested nodes in the intermediate zones.
// This would require the use of zone routing of [4] and the request phase
// of the protocol to go across zones."
//
// The mechanism is a ZRP-style bordercast (Haas & Pearlman [4]): a node
// that wants data it has never heard advertised issues a QRY that hops from
// zone to zone via border nodes (peripheral zone neighbors, spread by
// direction). Each QRY accumulates its forwarding trail; the first node
// holding the data answers with a DATA packet source-routed back along the
// reversed trail. Retries bump a sequence number so per-hop duplicate
// suppression does not swallow them.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Inter-zone query defaults.
const (
	// DefaultQueryHorizon bounds a QRY's trail length (zones crossed).
	DefaultQueryHorizon = 8
	// DefaultBorderFanout is how many border nodes a bordercast forwards to.
	DefaultBorderFanout = 4
	// borderRingFraction of the zone radius marks the peripheral ring from
	// which border nodes are preferred.
	borderRingFraction = 0.6
)

// queryKey identifies one query instance for duplicate suppression.
type queryKey struct {
	meta      packet.DataID
	requester packet.NodeID
	seq       int
}

// pendingQuery is the requester-side state of an inter-zone pull.
type pendingQuery struct {
	seq      int
	attempts int
	timer    sim.Timer
}

// Query pulls data across zones (§6 extension): if the requesting node has
// a route to the data's origin it issues a normal multi-hop REQ (reusing
// the acquisition machinery and its failover ladder); otherwise it
// bordercasts a QRY that propagates zone to zone until some node holding
// the data answers with a source-routed reply. Retries are bounded by
// MaxAttempts. Query returns an error only for invalid arguments or a dead
// requester; a lost query surfaces as non-delivery, observable via Has.
func (s *System) Query(requester packet.NodeID, d packet.DataID) error {
	if requester < 0 || int(requester) >= len(s.nodes) {
		return fmt.Errorf("core: query node %d out of range", requester)
	}
	n := &s.nodes[requester]
	if !s.nw.Alive(requester) {
		return fmt.Errorf("core: query node %d is down", requester)
	}
	it := s.ledger.Index(d)
	if n.hasItem(it) {
		return nil // already holds it
	}

	// In-zone pull: when the origin is a zone neighbor the node legitimately
	// has routing state for it (SPMS maintains routes only to zone
	// neighbors, §3.2) — reuse the standard REQ path with its PRONE/SCONE
	// failover. The zone check matters even though our DBF tables happen to
	// be all-pairs: a cross-zone destination is outside the protocol's
	// routing state and must go through the bordercast extension.
	if s.nw.Field().InZone(requester, d.Origin) {
		if hops, ok := s.tables.Hops(requester, d.Origin); ok {
			acq := n.wantFor(d, it)
			if acq == nil {
				acq = &acquisition{prone: d.Origin, scone: d.Origin}
				n.setWant(d, it, acq)
			}
			if acq.tauDAT.Active() {
				return nil // a request is already in flight
			}
			n.sendREQ(d, it, acq, d.Origin, hops == 1)
			return nil
		}
	}

	// Cross-zone pull: bordercast.
	if q := n.queries[d.Key()]; q != nil && q.timer.Active() {
		return nil // a query is already in flight
	}
	n.startQuery(d, it)
	return nil
}

// startQuery issues (or re-issues) a bordercast and arms its retry timer.
func (n *node) startQuery(d packet.DataID, it int) {
	if n.queries == nil {
		n.queries = make(map[uint64]*pendingQuery)
	}
	q := n.queries[d.Key()]
	if q == nil {
		q = &pendingQuery{}
		n.queries[d.Key()] = q
	}
	if q.attempts >= n.sys.cfg.MaxAttempts {
		return // out of budget; give up silently (observable via Has)
	}
	q.attempts++
	q.seq++
	n.forwardQuery(packet.Packet{
		Kind:      packet.QRY,
		Meta:      d,
		Src:       n.id,
		Requester: n.id,
		Provider:  packet.None,
		QuerySeq:  q.seq,
		Trail:     []packet.NodeID{n.id},
	})
	// Worst case: horizon zones out and back, each leg one border hop.
	wait := n.sys.tauDAT(1) + 2*time.Duration(n.sys.cfg.QueryHorizon)*n.sys.hopRTT
	q.timer = n.sys.nw.Scheduler().After(wait, func() {
		if !n.sys.nw.Alive(n.id) || n.hasItem(it) {
			return
		}
		n.sys.nw.Counters().Timeouts++
		n.startQuery(d, it)
	})
}

// onQRY runs at a node receiving an inter-zone query: answer from the local
// cache, or bordercast onward.
func (n *node) onQRY(p packet.Packet, it int) {
	key := queryKey{meta: p.Meta, requester: p.Requester, seq: p.QuerySeq}
	if n.seenQueries == nil {
		n.seenQueries = make(map[queryKey]bool)
	}
	if n.seenQueries[key] {
		return // already processed this query instance
	}
	n.seenQueries[key] = true

	if n.hasItem(it) {
		n.replyToQuery(p)
		return
	}
	if len(p.Trail) >= n.sys.cfg.QueryHorizon {
		n.sys.nw.Counters().Drops++
		return
	}
	fwd := p
	fwd.Trail = appendTrail(p.Trail, n.id)
	n.forwardQuery(fwd)
}

// appendTrail copies-on-extend so concurrent forwarders never share backing
// arrays.
func appendTrail(trail []packet.NodeID, id packet.NodeID) []packet.NodeID {
	out := make([]packet.NodeID, len(trail)+1)
	copy(out, trail)
	out[len(trail)] = id
	return out
}

// forwardQuery unicasts the QRY to up to BorderFanout border nodes that are
// not already on the trail. Border nodes are zone neighbors on the
// peripheral ring, spread across direction quadrants so the query expands
// outward rather than ping-ponging.
func (n *node) forwardQuery(p packet.Packet) {
	targets := n.borderNodes(p.Trail)
	if len(targets) == 0 {
		n.sys.nw.Counters().Drops++
		return
	}
	sz := n.sys.nw.Sizes()
	for _, t := range targets {
		level, ok := n.sys.nw.Field().LevelTo(n.id, t)
		if !ok {
			continue
		}
		out := p
		out.Src = n.id
		out.Dst = t
		out.Level = level
		out.Bytes = sz.Of(packet.QRY) + len(p.Trail) // header + trail entries
		n.sys.nw.Send(out)
	}
}

// borderNodes selects bordercast targets: peripheral zone neighbors (beyond
// borderRingFraction of the zone radius) not on the trail, at most one per
// direction quadrant, farthest first; topped up with any remaining
// candidates up to the fanout.
func (n *node) borderNodes(trail []packet.NodeID) []packet.NodeID {
	f := n.sys.nw.Field()
	ring := borderRingFraction * f.Model().MaxRange()
	onTrail := make(map[packet.NodeID]bool, len(trail))
	for _, id := range trail {
		onTrail[id] = true
	}

	type candidate struct {
		id   packet.NodeID
		dist float64
		quad int
	}
	var cands []candidate
	self := f.Pos(n.id)
	for _, nb := range f.ZoneNeighbors(n.id) {
		if onTrail[nb] {
			continue
		}
		pos := f.Pos(nb)
		quad := 0
		if pos.X >= self.X {
			quad |= 1
		}
		if pos.Y >= self.Y {
			quad |= 2
		}
		cands = append(cands, candidate{id: nb, dist: f.Dist(n.id, nb), quad: quad})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist > cands[j].dist
		}
		return cands[i].id < cands[j].id
	})

	fanout := n.sys.cfg.BorderFanout
	picked := make([]packet.NodeID, 0, fanout)
	usedQuad := make(map[int]bool)
	// First pass: farthest peripheral node per quadrant.
	for _, c := range cands {
		if len(picked) == fanout {
			return picked
		}
		if c.dist < ring || usedQuad[c.quad] {
			continue
		}
		usedQuad[c.quad] = true
		picked = append(picked, c.id)
	}
	// Top up with the farthest remaining candidates of any kind.
	for _, c := range cands {
		if len(picked) == fanout {
			break
		}
		if contains(picked, c.id) {
			continue
		}
		picked = append(picked, c.id)
	}
	return picked
}

func contains(ids []packet.NodeID, id packet.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// replyToQuery serves a QRY from the local cache: the DATA retraces the
// query's trail in reverse (source routing), so no routing state beyond the
// trail is needed.
func (n *node) replyToQuery(q packet.Packet) {
	if len(q.Trail) == 0 {
		n.sys.nw.Counters().Drops++
		return
	}
	rev := make([]packet.NodeID, len(q.Trail))
	for i, id := range q.Trail {
		rev[len(q.Trail)-1-i] = id
	}
	next := rev[0]
	level, ok := n.sys.nw.Field().LevelTo(n.id, next)
	if !ok {
		n.sys.nw.Counters().Drops++
		return
	}
	n.sys.nw.Send(packet.Packet{
		Kind:      packet.DATA,
		Meta:      q.Meta,
		Src:       n.id,
		Dst:       next,
		Requester: q.Requester,
		Provider:  n.id,
		Level:     level,
		Bytes:     n.sys.nw.Sizes().DATA,
		Trail:     rev[1:],
	})
}

// forwardSourceRouted advances a trail-carrying DATA reply one hop. It
// reports whether it consumed the packet (false means the caller should
// fall back to table routing).
func (n *node) forwardSourceRouted(p packet.Packet) bool {
	if len(p.Trail) == 0 {
		return false
	}
	next := p.Trail[0]
	level, ok := n.sys.nw.Field().LevelTo(n.id, next)
	if !ok {
		n.sys.nw.Counters().Drops++
		return true // consumed (and lost); the requester's retry recovers
	}
	fwd := p
	fwd.Src = n.id
	fwd.Dst = next
	fwd.Level = level
	fwd.Trail = p.Trail[1:]
	n.sys.nw.Send(fwd)
	return true
}
