package core

import (
	"testing"
	"time"

	"repro/internal/dissem"
	"repro/internal/network"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/topo"
)

// stripFixture builds a long, narrow field: a chain of n nodes 5 m apart
// with a 12 m zone (each node sees only ±2 neighbors), so the two ends are
// several zones apart and an end-to-end pull must cross zones. With
// 12 nodes the span is within the default query horizon; 20 nodes exceeds
// it (used by the horizon test).
func stripFixture(t *testing.T, n int, interest dissem.Interest, seed int64) *fixture {
	t.Helper()
	m, err := radio.ScaledMICA2(12)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewChainField(n, 5, m)
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	return buildFixture(t, f, interest, DefaultConfig(), seed)
}

func TestQueryValidation(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 1)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Query(99, d); err == nil {
		t.Fatal("out-of-range requester accepted")
	}
	fx.nw.Fail(2)
	if err := fx.sys.Query(2, d); err == nil {
		t.Fatal("dead requester accepted")
	}
}

func TestQueryAlreadyHeldIsNoop(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 2)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, time.Second)
	sent := fx.nw.Counters().TotalSent()
	if err := fx.sys.Query(2, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	run(t, fx, 2*time.Second)
	if got := fx.nw.Counters().TotalSent(); got != sent {
		t.Fatalf("query for held data transmitted %d packets", got-sent)
	}
}

func TestQueryWithinZoneUsesRoutedREQ(t *testing.T) {
	// Nobody is interested, so the data sits at the source. A same-zone
	// query must pull it via the normal multi-hop REQ path (no QRY frames).
	nobody := func(packet.NodeID, packet.DataID) bool { return false }
	fx := chainFixture(t, 3, nobody, 3)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 100*time.Millisecond)
	if err := fx.sys.Query(2, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	run(t, fx, time.Second)
	if !fx.sys.Has(2, d) {
		t.Fatal("in-zone query did not deliver")
	}
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.QRY {
			t.Fatal("in-zone query used bordercast instead of routed REQ")
		}
	}
}

func TestQueryAcrossZonesDelivers(t *testing.T) {
	// Only the far end wants the data, it is several zones away, and no
	// intermediate node requests it: plain SPMS leaves the far end starved
	// (the §6 motivation); Query recovers it.
	far := packet.NodeID(11)
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == far }
	fx := stripFixture(t, 12, interest, 4)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 300*time.Millisecond)
	if fx.sys.Has(far, d) {
		t.Fatal("setup broken: far node already has the data without a query")
	}

	if err := fx.sys.Query(far, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	run(t, fx, 5*time.Second)
	if !fx.sys.Has(far, d) {
		t.Fatal("cross-zone query never delivered")
	}
	// The pull must have used QRY frames.
	sawQRY := false
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.QRY {
			sawQRY = true
			break
		}
	}
	if !sawQRY {
		t.Fatal("cross-zone delivery happened without any QRY")
	}
}

func TestQueryCheaperThanFlooding(t *testing.T) {
	// Bordercast prunes the search: the number of QRY transmissions must be
	// well below one-per-node-per-query (what flooding the query would
	// cost). Chain topology: at most 2 border directions per node.
	far := packet.NodeID(11)
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == far }
	fx := stripFixture(t, 12, interest, 5)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 300*time.Millisecond)
	if err := fx.sys.Query(far, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	run(t, fx, 5*time.Second)
	if !fx.sys.Has(far, d) {
		t.Fatal("query failed")
	}
	qry := fx.nw.Counters().Sent[packet.QRY]
	if qry == 0 {
		t.Fatal("no QRY sent")
	}
	// 12 nodes; flooding would visit every node per attempt. The bordercast
	// should stay within a small multiple of the chain length.
	if qry > 30 {
		t.Fatalf("QRY count %d suggests flooding, not bordercast", qry)
	}
}

func TestQueryDuplicateSuppression(t *testing.T) {
	// Issuing the same query twice while one is in flight must not spawn a
	// second bordercast: the requester's first-hop QRY count stays within
	// one fanout burst (at most 2 border directions on a chain end).
	far := packet.NodeID(11)
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == far }
	fx := stripFixture(t, 12, interest, 6)
	fx.recordTrace()
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 200*time.Millisecond)
	if err := fx.sys.Query(far, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if err := fx.sys.Query(far, d); err != nil {
		t.Fatalf("second Query: %v", err)
	}
	run(t, fx, fx.sched.Now()+10*time.Millisecond)
	fromRequester := 0
	for _, ev := range fx.events {
		if ev.Kind == network.TraceTx && ev.Packet.Kind == packet.QRY && ev.Packet.Src == far {
			fromRequester++
		}
	}
	if fromRequester == 0 {
		t.Fatal("no first-hop QRY at all")
	}
	if fromRequester > 2 {
		t.Fatalf("%d first-hop QRYs; duplicate query burst not suppressed", fromRequester)
	}
}

func TestQueryRetriesAfterTrailFailure(t *testing.T) {
	// Kill a mid-strip node so the first query (or its reply) dies; the
	// retry must find another border path (fanout explores both the near
	// and far ring) or re-issue until delivery.
	far := packet.NodeID(11)
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == far }
	fx := stripFixture(t, 12, interest, 7)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 200*time.Millisecond)
	// A transient failure window on node 6 (mid-strip).
	fx.nw.Fail(6)
	fx.sched.After(300*time.Millisecond, func() { fx.nw.Recover(6) })
	if err := fx.sys.Query(far, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	run(t, fx, 20*time.Second)
	if !fx.sys.Has(far, d) {
		t.Fatal("query never recovered from trail failure")
	}
}

func TestQueryHorizonBounds(t *testing.T) {
	// With a horizon of 1 zone, the far end is unreachable; the query gives
	// up after MaxAttempts without flooding forever.
	far := packet.NodeID(19)
	interest := func(id packet.NodeID, d packet.DataID) bool { return id == far }
	m, err := radio.ScaledMICA2(12)
	if err != nil {
		t.Fatalf("ScaledMICA2: %v", err)
	}
	f, err := topo.NewChainField(20, 5, m)
	if err != nil {
		t.Fatalf("NewChainField: %v", err)
	}
	cfg := DefaultConfig()
	cfg.QueryHorizon = 1
	fx := buildFixture(t, f, interest, cfg, 8)
	d := packet.DataID{Origin: 0, Seq: 0}
	if err := fx.sys.Originate(0, d); err != nil {
		t.Fatalf("Originate: %v", err)
	}
	run(t, fx, 200*time.Millisecond)
	if err := fx.sys.Query(far, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	run(t, fx, 30*time.Second)
	if fx.sys.Has(far, d) {
		t.Fatal("data crossed more zones than the horizon allows")
	}
	// Bounded retries: QRY traffic stops.
	qry := fx.nw.Counters().Sent[packet.QRY]
	run(t, fx, 40*time.Second)
	if got := fx.nw.Counters().Sent[packet.QRY]; got != qry {
		t.Fatalf("QRY traffic still flowing after giving up: %d → %d", qry, got)
	}
}

func TestQueryConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryHorizon = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative QueryHorizon accepted")
	}
	cfg = DefaultConfig()
	cfg.BorderFanout = -2
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative BorderFanout accepted")
	}
}

func TestQueryDefaultsApplied(t *testing.T) {
	fx := chainFixture(t, 3, dissem.Everyone, 9)
	if fx.sys.Config().QueryHorizon != DefaultQueryHorizon {
		t.Fatalf("QueryHorizon=%d, want default", fx.sys.Config().QueryHorizon)
	}
	if fx.sys.Config().BorderFanout != DefaultBorderFanout {
		t.Fatalf("BorderFanout=%d, want default", fx.sys.Config().BorderFanout)
	}
}

func TestQueryUnoriginatedItemKeepsInFlightDedup(t *testing.T) {
	// An item that was never originated has no ledger index; its
	// acquisition state lives in the want overflow map. Two back-to-back
	// queries for it must behave like the DataID-keyed implementation did:
	// the second sees the outstanding τDAT and sends nothing new.
	fx := chainFixture(t, 3, dissem.Everyone, 31)
	d := packet.DataID{Origin: 0, Seq: 7} // never originated
	if err := fx.sys.Query(2, d); err != nil {
		t.Fatalf("Query: %v", err)
	}
	sent := fx.nw.Counters().Sent[packet.REQ]
	if sent == 0 {
		t.Fatal("first query for an in-zone origin sent no REQ")
	}
	if err := fx.sys.Query(2, d); err != nil {
		t.Fatalf("second Query: %v", err)
	}
	if got := fx.nw.Counters().Sent[packet.REQ]; got != sent {
		t.Fatalf("second query re-sent a REQ while one was in flight (%d -> %d)", sent, got)
	}
}
